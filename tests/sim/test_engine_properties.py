"""Property-based kernel tests: ordering and cancellation invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator

times = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)


@given(st.lists(times, min_size=1, max_size=200))
@settings(max_examples=100)
def test_dispatch_order_is_sorted_by_time(delays):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.schedule(d, (lambda t=d: fired.append(t)))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert sim.now == max(delays)


@given(st.lists(st.tuples(times, st.integers(-10, 10)), min_size=1, max_size=100))
@settings(max_examples=100)
def test_dispatch_order_respects_time_then_priority(entries):
    sim = Simulator()
    fired = []
    for i, (t, prio) in enumerate(entries):
        sim.schedule(t, (lambda k=(t, prio, i): fired.append(k)), priority=prio)
    sim.run()
    # (time, priority, insertion order) must be non-decreasing
    assert fired == sorted(fired)


@given(st.lists(times, min_size=2, max_size=100), st.data())
@settings(max_examples=100)
def test_cancelled_events_never_fire_and_others_all_do(delays, data):
    sim = Simulator()
    fired = []
    handles = [sim.schedule(d, (lambda k=i: fired.append(k))) for i, d in enumerate(delays)]
    to_cancel = data.draw(st.sets(st.integers(0, len(delays) - 1), max_size=len(delays)))
    for idx in to_cancel:
        sim.cancel(handles[idx])
    sim.run()
    assert set(fired) == set(range(len(delays))) - to_cancel


@given(st.lists(times, min_size=1, max_size=50), times)
@settings(max_examples=100)
def test_run_until_partitions_the_event_set(delays, cut):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.schedule(d, (lambda t=d: fired.append(t)))
    sim.run(until=cut)
    assert all(t <= cut for t in fired)
    assert sim.pending_count == sum(1 for d in delays if d > cut)
