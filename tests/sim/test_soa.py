"""BatchTicker: the deterministic clock of the batched kernel step."""

import pytest

from repro.sim.engine import SimulationError, Simulator
from repro.sim.soa import BatchTicker


def make_ticker(sim, *, n_lanes=8, interval_s=1.0, **kwargs):
    calls = []

    def step(dt):
        calls.append((sim.now, dt))
        return n_lanes

    ticker = BatchTicker(sim, n_lanes, step, interval_s, **kwargs)
    return ticker, calls


class TestValidation:
    def test_rejects_bad_args(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            BatchTicker(sim, 0, lambda dt: 0, 1.0)
        with pytest.raises(ValueError):
            BatchTicker(sim, 4, lambda dt: 4, 0.0)
        with pytest.raises(ValueError):
            BatchTicker(sim, 4, lambda dt: 4, 1.0, max_ticks=0)

    def test_double_start_raises(self):
        sim = Simulator()
        ticker, _ = make_ticker(sim, max_ticks=1)
        ticker.start()
        with pytest.raises(SimulationError):
            ticker.start()


class TestTicking:
    def test_fires_on_the_exact_grid(self):
        sim = Simulator()
        ticker, calls = make_ticker(sim, interval_s=0.25, max_ticks=4)
        ticker.start()
        sim.run_until_drained()
        assert [t for t, _ in calls] == [0.25, 0.5, 0.75, 1.0]
        assert all(dt == 0.25 for _, dt in calls)
        assert ticker.ticks == 4
        assert not ticker.running

    def test_grid_is_multiplicative_not_accumulated(self):
        # 0.1 is inexact in binary; k * 0.1 and repeated +0.1 differ.
        # The grid must be the multiplicative one so run length never
        # changes past tick times.
        sim = Simulator()
        ticker, calls = make_ticker(sim, interval_s=0.1, max_ticks=1000)
        ticker.start()
        sim.run_until_drained()
        assert calls[-1][0] == 1000 * 0.1
        acc = 0.0
        for _ in range(1000):
            acc += 0.1
        assert calls[-1][0] != acc  # repro: allow[NUM001] demonstrating the two float forms differ

    def test_counts_lane_updates(self):
        sim = Simulator()
        ticker, _ = make_ticker(sim, n_lanes=16, max_ticks=10)
        ticker.start()
        sim.run_until_drained()
        assert ticker.lane_updates == 160

    def test_stop_cancels_future_ticks(self):
        sim = Simulator()
        ticker, calls = make_ticker(sim, interval_s=1.0)
        ticker.start()
        sim.schedule(3.5, ticker.stop)
        sim.run_until_drained()
        assert ticker.ticks == 3
        assert not ticker.running

    def test_restart_after_stop_rebases_the_grid(self):
        sim = Simulator()
        ticker, calls = make_ticker(sim, interval_s=1.0, max_ticks=2)
        ticker.start()
        sim.run_until_drained()
        assert [t for t, _ in calls] == [1.0, 2.0]
        ticker.start()  # origin is now 2.0
        sim.run_until_drained()
        assert [t for t, _ in calls] == [1.0, 2.0, 3.0, 4.0]

    def test_interleaves_with_other_events_by_priority(self):
        sim = Simulator()
        order = []
        ticker = BatchTicker(sim, 1, lambda dt: order.append("tick") or 1, 1.0,
                             max_ticks=1)
        ticker.start()
        # same instant, model priority 0 < tick priority 10
        sim.schedule(1.0, lambda: order.append("model"), priority=0)
        sim.run_until_drained()
        assert order == ["model", "tick"]
