"""ResettableTimer and PeriodicTask behaviour."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTask, ResettableTimer


class TestResettableTimer:
    def test_fires_after_interval(self):
        sim = Simulator()
        fired = []
        timer = ResettableTimer(sim, 10.0, lambda: fired.append(sim.now))
        timer.arm()
        sim.run()
        assert fired == [10.0]

    def test_not_armed_never_fires(self):
        sim = Simulator()
        fired = []
        ResettableTimer(sim, 10.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == []

    def test_reset_restarts_countdown(self):
        sim = Simulator()
        fired = []
        timer = ResettableTimer(sim, 10.0, lambda: fired.append(sim.now))
        timer.arm()
        sim.schedule(7.0, timer.reset)
        sim.run()
        assert fired == [17.0]

    def test_cancel_stops_countdown(self):
        sim = Simulator()
        fired = []
        timer = ResettableTimer(sim, 10.0, lambda: fired.append(sim.now))
        timer.arm()
        sim.schedule(5.0, timer.cancel)
        sim.run()
        assert fired == []

    def test_cancel_unarmed_is_noop(self):
        sim = Simulator()
        ResettableTimer(sim, 10.0, lambda: None).cancel()

    def test_armed_property(self):
        sim = Simulator()
        timer = ResettableTimer(sim, 10.0, lambda: None)
        assert not timer.armed
        timer.arm()
        assert timer.armed
        timer.cancel()
        assert not timer.armed

    def test_interval_change_applies_to_next_arm(self):
        sim = Simulator()
        fired = []
        timer = ResettableTimer(sim, 10.0, lambda: fired.append(sim.now))
        timer.interval = 3.0  # READ's adaptive-H path rewrites this
        timer.arm()
        sim.run()
        assert fired == [3.0]

    def test_rearm_after_fire(self):
        sim = Simulator()
        fired = []

        def action():
            fired.append(sim.now)
            if len(fired) < 2:
                timer.arm()

        timer = ResettableTimer(sim, 4.0, action)
        timer.arm()
        sim.run()
        assert fired == [4.0, 8.0]

    def test_invalid_interval_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            ResettableTimer(sim, 0.0, lambda: None)


class TestPeriodicTask:
    def test_ticks_at_period(self):
        sim = Simulator()
        ticks = []
        task = PeriodicTask(sim, 5.0, lambda i: ticks.append((i, sim.now)))
        sim.run(until=17.0)
        task.stop()
        assert ticks == [(0, 5.0), (1, 10.0), (2, 15.0)]

    def test_start_offset(self):
        sim = Simulator()
        ticks = []
        task = PeriodicTask(sim, 5.0, lambda i: ticks.append(sim.now), start_offset=1.0)
        sim.run(until=12.0)
        task.stop()
        assert ticks == [1.0, 6.0, 11.0]

    def test_stop_from_inside_action(self):
        sim = Simulator()
        ticks = []

        def action(i: int) -> None:
            ticks.append(i)
            if i == 1:
                task.stop()

        task = PeriodicTask(sim, 2.0, action)
        sim.run()
        assert ticks == [0, 1]

    def test_stop_outside_prevents_future_ticks(self):
        sim = Simulator()
        ticks = []
        task = PeriodicTask(sim, 2.0, lambda i: ticks.append(i))
        sim.schedule(5.0, task.stop)
        sim.run()
        assert ticks == [0, 1]

    def test_period_change_repaces_future_ticks(self):
        sim = Simulator()
        ticks = []

        def action(i: int) -> None:
            ticks.append(sim.now)
            task.period = 10.0

        task = PeriodicTask(sim, 2.0, action)
        sim.run(until=25.0)
        task.stop()
        assert ticks == [2.0, 12.0, 22.0]

    def test_ticks_fired_counter(self):
        sim = Simulator()
        task = PeriodicTask(sim, 1.0, lambda i: None)
        sim.run(until=4.5)
        assert task.ticks_fired == 4
        task.stop()

    def test_negative_offset_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PeriodicTask(sim, 1.0, lambda i: None, start_offset=-1.0)

    def test_invalid_period_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PeriodicTask(sim, 0.0, lambda i: None)
