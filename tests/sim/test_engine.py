"""Kernel semantics: ordering, cancellation, run bounds, misuse errors."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_clock_starts_at_zero_by_default():
    assert Simulator().now == 0.0


def test_custom_start_time():
    assert Simulator(start_time=5.5).now == 5.5


def test_infinite_start_time_rejected():
    with pytest.raises(SimulationError):
        Simulator(start_time=float("inf"))


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, lambda: fired.append("c"))
    sim.schedule(1.0, lambda: fired.append("a"))
    sim.schedule(2.0, lambda: fired.append("b"))
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 3.0


def test_same_time_priority_breaks_ties():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append("low_prio"), priority=5)
    sim.schedule(1.0, lambda: fired.append("high_prio"), priority=-5)
    sim.run()
    assert fired == ["high_prio", "low_prio"]


def test_same_time_same_priority_is_fifo():
    sim = Simulator()
    fired = []
    for i in range(5):
        sim.schedule(1.0, (lambda k=i: fired.append(k)))
    sim.run()
    assert fired == [0, 1, 2, 3, 4]


def test_zero_delay_runs_at_current_time():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, lambda: sim.schedule(0.0, lambda: seen.append(sim.now)))
    sim.run()
    assert seen == [1.0]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_nan_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(float("nan"), lambda: None)


def test_schedule_into_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)


def test_non_callable_action_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(1.0, "not callable")


def test_cancel_prevents_execution():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append("x"))
    sim.cancel(handle)
    sim.run()
    assert fired == []


def test_double_cancel_is_noop():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.cancel(handle)
    sim.cancel(handle)
    sim.run()


def test_cancel_one_of_many():
    sim = Simulator()
    fired = []
    keep = sim.schedule(1.0, lambda: fired.append("keep"))
    drop = sim.schedule(1.0, lambda: fired.append("drop"))
    sim.cancel(drop)
    sim.run()
    assert fired == ["keep"]
    assert keep.time == 1.0


def test_run_until_is_inclusive_and_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, lambda: fired.append(2.0))
    sim.schedule(5.0, lambda: fired.append(5.0))
    sim.run(until=2.0)
    assert fired == [2.0]
    assert sim.now == 2.0
    sim.run(until=10.0)
    assert fired == [2.0, 5.0]
    assert sim.now == 10.0  # advanced even though the queue drained at 5


def test_run_until_before_now_rejected():
    sim = Simulator()
    sim.schedule(3.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.run(until=1.0)


def test_max_events_bounds_dispatch():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i + 1), (lambda k=i: fired.append(k)))
    sim.run(max_events=3)
    assert fired == [0, 1, 2]
    assert sim.pending_count == 7


def test_step_returns_false_when_drained():
    sim = Simulator()
    assert sim.step() is False
    sim.schedule(1.0, lambda: None)
    assert sim.step() is True
    assert sim.step() is False


def test_peek_time_skips_cancelled():
    sim = Simulator()
    first = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.cancel(first)
    assert sim.peek_time() == 2.0


def test_events_executed_counter():
    sim = Simulator()
    for i in range(4):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_executed == 4


def test_reentrant_run_rejected():
    sim = Simulator()
    errors = []

    def reenter():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, reenter)
    sim.run()
    assert len(errors) == 1


def test_actions_can_schedule_more_events():
    sim = Simulator()
    fired = []

    def chain(depth: int) -> None:
        fired.append(sim.now)
        if depth:
            sim.schedule(1.0, lambda: chain(depth - 1))

    sim.schedule(1.0, lambda: chain(3))
    sim.run()
    assert fired == [1.0, 2.0, 3.0, 4.0]


def test_run_until_drained_matches_unbounded_run():
    def build():
        s = Simulator()
        fired = []
        s.schedule(2.0, lambda: fired.append((s.now, "b")))
        s.schedule(1.0, lambda: fired.append((s.now, "a")))
        s.schedule(1.0, lambda: s.schedule(0.5, lambda: fired.append((s.now, "c"))))
        return s, fired

    ref_sim, ref_fired = build()
    ref_sim.run()
    sim, fired = build()
    sim.run_until_drained()
    assert fired == ref_fired
    assert sim.now == ref_sim.now
    assert sim.events_executed == ref_sim.events_executed


def test_run_until_drained_rejects_reentry():
    sim = Simulator()
    errors = []

    def reenter():
        try:
            sim.run_until_drained()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, reenter)
    sim.run_until_drained()
    assert len(errors) == 1


def test_request_stop_ends_run_after_current_action():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(2.0, lambda: (fired.append(2), sim.request_stop()))
    sim.schedule(3.0, lambda: fired.append(3))
    sim.run_until_drained()
    assert fired == [1, 2]
    assert sim.pending_count == 1  # the 3.0 event is still queued
    sim.run_until_drained()  # a fresh run clears the stop flag
    assert fired == [1, 2, 3]
    assert sim.pending_count == 0


def test_request_stop_outside_run_does_not_stick():
    sim = Simulator()
    fired = []
    sim.request_stop()  # no loop running: must not cancel the next run
    sim.schedule(1.0, lambda: fired.append(1))
    sim.run()
    assert fired == [1]


def test_pending_count_tracks_schedule_fire_cancel():
    sim = Simulator()
    assert sim.pending_count == 0
    handles = [sim.schedule(float(t), lambda: None) for t in range(1, 6)]
    assert sim.pending_count == 5
    sim.cancel(handles[0])
    sim.cancel(handles[0])  # double-cancel must not double-decrement
    assert sim.pending_count == 4
    sim.run(max_events=2)
    assert sim.pending_count == 2
    sim.run()
    assert sim.pending_count == 0
