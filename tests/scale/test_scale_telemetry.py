"""Scale tier: 64-disk / 16-shard telemetry capture and federation.

The acceptance contract of DESIGN.md Sec. 13 at a size where merge
bookkeeping errors (heap-order drift across many segments, remap
overflow past disk 9, tick replay over long horizons) would actually
surface:

* the merged trace is byte-identical across ``--jobs`` and across
  shard counts;
* the federated registry and merged time-series equal the unsharded
  (``n_shards=1``) run's exactly.
"""

import pytest

from repro.experiments.shard import run_sharded
from repro.obs import ObsConfig
from repro.workload.synthetic import SyntheticWorkloadConfig

pytestmark = pytest.mark.scale

CFG = SyntheticWorkloadConfig(n_files=10_000, n_requests=300_000, seed=23,
                              bursty=True)


def _obs(tmp_path, tag):
    root = tmp_path / tag
    root.mkdir(parents=True, exist_ok=True)
    return ObsConfig(trace_path=str(root / "trace.jsonl"),
                     metrics_path=str(root / "metrics.csv"),
                     sample_interval_s=600.0)


def _run(tmp_path, tag, *, n_shards, jobs=1):
    obs = _obs(tmp_path, tag)
    result, _ = run_sharded("static-high", CFG, n_disks=64,
                            n_shards=n_shards, jobs=jobs, obs=obs)
    return result


def test_64_disk_traced_merge_is_jobs_and_shard_invariant(tmp_path):
    base = _run(tmp_path, "s16j1", n_shards=16, jobs=1)
    _run(tmp_path, "s16j4", n_shards=16, jobs=4)
    _run(tmp_path, "s8j1", n_shards=8, jobs=1)
    trace = (tmp_path / "s16j1/trace.jsonl").read_bytes()
    assert (tmp_path / "s16j4/trace.jsonl").read_bytes() == trace
    assert (tmp_path / "s8j1/trace.jsonl").read_bytes() == trace

    unsharded = _run(tmp_path, "s1", n_shards=1)
    assert (tmp_path / "s1/trace.jsonl").read_bytes() == trace
    assert base.metrics == unsharded.metrics
    assert base.timeseries == unsharded.timeseries
    assert (tmp_path / "s16j1/metrics.csv").read_bytes() \
        == (tmp_path / "s1/metrics.csv").read_bytes()
    # remap sanity at scale: the last shard's gauges name disks 60..63
    assert "disk63.utilization_pct" in base.metrics
