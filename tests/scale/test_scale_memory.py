"""Scale tier: streaming a million requests stays inside a fixed RSS budget.

``resource.getrusage`` reports the *lifetime* peak RSS of a process, so
the measurement must run in a fresh subprocess — measuring in the test
process would inherit whatever earlier tests peaked at.  The child runs
a full sharded million-request cell over the streamed workload and
prints its peak; the parent asserts the budget.

Run with ``pytest -m scale tests/scale`` (excluded from the default
tier-1 run).
"""

import json
import subprocess
import sys

import pytest

pytestmark = pytest.mark.scale

#: Peak-RSS budget for the 1M-request child, in MiB.  The interpreter
#: plus numpy/scipy baseline is ~100 MiB; the streamed path adds one
#: chunk (~1 MiB), per-disk accumulators, and the bounded event heap.
#: A materialized path would add the full trace plus O(n) metrics
#: arrays and grow without bound as n does; the budget pins that out.
PEAK_RSS_BUDGET_MIB = 256

N_REQUESTS = 1_000_000

CHILD = r"""
import json
import resource
import sys

from repro.experiments.shard import run_sharded
from repro.workload.synthetic import SyntheticWorkloadConfig

cfg = SyntheticWorkloadConfig(n_files=5_000, n_requests=%(n)d, seed=17,
                              bursty=True)
result, _ = run_sharded("static-high", cfg, n_disks=16, n_shards=4)
peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
print(json.dumps({
    "n_requests": result.n_requests,
    "duration_s": result.duration_s,
    "total_energy_j": result.total_energy_j,
    "peak_rss_mib": peak_kb / 1024.0,
}))
""" % {"n": N_REQUESTS}


def test_million_request_stream_fits_the_rss_budget():
    proc = subprocess.run([sys.executable, "-c", CHILD],
                          capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stderr[-2000:]
    report = json.loads(proc.stdout.strip().splitlines()[-1])
    assert report["n_requests"] == N_REQUESTS
    assert report["total_energy_j"] > 0.0
    assert report["peak_rss_mib"] < PEAK_RSS_BUDGET_MIB, (
        f"streaming {N_REQUESTS:,} requests peaked at "
        f"{report['peak_rss_mib']:.0f} MiB "
        f"(budget {PEAK_RSS_BUDGET_MIB} MiB) — has something started "
        f"materializing the workload or per-request metrics?")
