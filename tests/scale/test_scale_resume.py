"""Scale tier: a sweep killed mid-shard resumes to the identical result.

A child process runs a 16-shard checkpointed sweep; the parent watches
the journal and SIGKILLs the child after some (but not all) shards are
committed — the harshest crash the checkpoint's atomic-republish
contract must survive.  Resuming over the half-written sweep must (a)
restore the journaled shards instead of re-running them and (b) produce
a result bit-identical to a run that was never interrupted.
"""

import os
import pickle
import signal
import subprocess
import sys
import time

import pytest

from repro.experiments.shard import run_sharded
from repro.workload.synthetic import SyntheticWorkloadConfig

pytestmark = pytest.mark.scale

CFG = SyntheticWorkloadConfig(n_files=4_000, n_requests=150_000, seed=29,
                              bursty=True)
N_DISKS = 32
N_SHARDS = 16

CHILD = r"""
import sys

from repro.experiments.shard import run_sharded
from repro.workload.synthetic import SyntheticWorkloadConfig

cfg = SyntheticWorkloadConfig(n_files=4_000, n_requests=150_000, seed=29,
                              bursty=True)
run_sharded("static-high", cfg, n_disks=32, n_shards=16,
            checkpoint=sys.argv[1])
"""


def _journaled_cells(path) -> int:
    """Completed cells in the checkpoint journal (0 if absent/torn)."""
    try:
        with open(path, "rb") as fh:
            doc = pickle.load(fh)
        return len(doc.get("cells", {}))
    except Exception:
        return 0


def test_kill_mid_shard_then_resume_is_bit_identical(tmp_path):
    ckpt = tmp_path / "sweep.ckpt"
    child = subprocess.Popen([sys.executable, "-c", CHILD, str(ckpt)],
                             stdout=subprocess.DEVNULL,
                             stderr=subprocess.DEVNULL)
    try:
        # wait until some shards are journaled, then kill without mercy
        deadline = time.monotonic() + 300
        while time.monotonic() < deadline:
            done = _journaled_cells(ckpt)
            if done >= 2:
                break
            if child.poll() is not None:
                break
            time.sleep(0.05)
        if child.poll() is None:
            os.kill(child.pid, signal.SIGKILL)
        child.wait(timeout=60)
    finally:
        if child.poll() is None:
            child.kill()

    interrupted_at = _journaled_cells(ckpt)
    if not 0 < interrupted_at < N_SHARDS:
        pytest.skip(f"child finished too fast to interrupt "
                    f"({interrupted_at}/{N_SHARDS} shards journaled)")

    resumed, summary = run_sharded("static-high", CFG, n_disks=N_DISKS,
                                   n_shards=N_SHARDS, checkpoint=str(ckpt))
    assert summary is not None
    assert summary.checkpoint_hits == interrupted_at
    assert summary.cells_run == N_SHARDS - interrupted_at

    uninterrupted, _ = run_sharded("static-high", CFG, n_disks=N_DISKS,
                                   n_shards=N_SHARDS)
    assert resumed == uninterrupted
