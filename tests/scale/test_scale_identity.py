"""Scale tier: a 64-disk sharded run equals the unsharded run bit-for-bit.

The tier-1 suite proves the sharding identity on small arrays; this is
the same contract at a scale where shard bookkeeping errors (remap
overflow, reduction-order drift, horizon mismatches across many idle
disks) would actually surface.  "Unsharded" is ``n_shards=1`` through
the same canonical reducer — the definition DESIGN.md Sec. 12 gives —
and every field, response statistics included, must match exactly.
"""

import pytest

from repro.experiments.shard import run_sharded
from repro.workload.synthetic import SyntheticWorkloadConfig

pytestmark = pytest.mark.scale

CFG = SyntheticWorkloadConfig(n_files=10_000, n_requests=300_000, seed=23,
                              bursty=True)
FIELDS = (
    "policy_name", "n_disks", "n_requests", "duration_s",
    "mean_response_s", "p95_response_s", "p99_response_s",
    "total_energy_j", "array_afr_percent", "per_disk",
    "total_transitions", "internal_jobs", "energy_breakdown_j",
    "events_executed",
)


@pytest.mark.parametrize("policy", ["static-high", "static-low"])
def test_64_disk_sharded_equals_unsharded_bit_for_bit(policy):
    unsharded, _ = run_sharded(policy, CFG, n_disks=64, n_shards=1)
    sharded, _ = run_sharded(policy, CFG, n_disks=64, n_shards=16, jobs=4)
    for f in FIELDS:
        assert getattr(sharded, f) == getattr(unsharded, f), \
            f"field {f} diverged between 16-shard and unsharded execution"


def test_64_disk_merge_is_jobs_invariant():
    serial, _ = run_sharded("static-high", CFG, n_disks=64, n_shards=8,
                            jobs=1)
    pooled, _ = run_sharded("static-high", CFG, n_disks=64, n_shards=8,
                            jobs=8)
    assert serial == pooled
