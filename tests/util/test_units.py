"""Unit-conversion sanity: round trips, paper constants, edge values."""

import math

import pytest

from repro.util import units


def test_celsius_kelvin_roundtrip():
    assert units.kelvin_to_celsius(units.celsius_to_kelvin(37.5)) == pytest.approx(37.5)


def test_paper_kelvin_offset_matches_sec_3_4():
    # the paper computes T_max = 273.16 + 50 = 323.16
    assert units.celsius_to_kelvin(50.0) == pytest.approx(323.16)


def test_joules_kwh_roundtrip():
    assert units.kwh_to_joules(units.joules_to_kwh(1.25e7)) == pytest.approx(1.25e7)


def test_one_kwh_is_3_6_megajoules():
    assert units.kwh_to_joules(1.0) == pytest.approx(3.6e6)


def test_mb_bytes_roundtrip():
    assert units.bytes_to_mb(units.mb_to_bytes(123.456)) == pytest.approx(123.456)


def test_mb_uses_datasheet_decimal_convention():
    assert units.mb_to_bytes(1.0) == pytest.approx(1.0e6)


def test_per_day_month_roundtrip():
    assert units.per_month_to_per_day(units.per_day_to_per_month(7.0)) == pytest.approx(7.0)


def test_idema_month_is_30_days():
    # 10 start/stops per day == 300 per month, the Sec. 3.4 convention
    assert units.per_day_to_per_month(10.0) == pytest.approx(300.0)


def test_seconds_per_year_is_julian():
    assert units.SECONDS_PER_YEAR == pytest.approx(365.25 * 86400.0)


def test_zero_passes_through_everywhere():
    assert units.joules_to_kwh(0.0) == 0.0
    assert units.mb_to_bytes(0.0) == 0.0
    assert units.per_day_to_per_month(0.0) == 0.0


def test_conversions_are_finite_for_large_inputs():
    assert math.isfinite(units.kwh_to_joules(1e12))
    assert math.isfinite(units.celsius_to_kelvin(1e6))
