"""Validation helpers must reject exactly the bad inputs, loudly."""

import math

import pytest

from repro.util.validation import (
    require,
    require_fraction,
    require_in_range,
    require_non_negative,
    require_positive,
)


def test_require_passes_and_fails():
    require(True, "never raised")
    with pytest.raises(ValueError, match="broken"):
        require(False, "broken")


@pytest.mark.parametrize("value", [1, 0.5, 1e-300, 7.0])
def test_require_positive_accepts(value):
    assert require_positive(value, "x") == float(value)


@pytest.mark.parametrize("value", [0, -1, -0.001, float("nan"), float("inf"), None, "3", True])
def test_require_positive_rejects(value):
    with pytest.raises(ValueError):
        require_positive(value, "x")


@pytest.mark.parametrize("value", [0, 0.0, 5, 1e9])
def test_require_non_negative_accepts(value):
    assert require_non_negative(value, "x") == float(value)


@pytest.mark.parametrize("value", [-1e-12, -5, float("nan"), float("-inf"), False])
def test_require_non_negative_rejects(value):
    with pytest.raises(ValueError):
        require_non_negative(value, "x")


def test_require_in_range_inclusive_endpoints():
    assert require_in_range(0.0, 0.0, 1.0, "x") == 0.0
    assert require_in_range(1.0, 0.0, 1.0, "x") == 1.0


@pytest.mark.parametrize("value", [-0.01, 1.01, math.nan])
def test_require_in_range_rejects(value):
    with pytest.raises(ValueError):
        require_in_range(value, 0.0, 1.0, "x")


def test_require_fraction_is_0_1_range():
    assert require_fraction(0.5, "x") == 0.5
    with pytest.raises(ValueError):
        require_fraction(1.5, "x")


def test_error_messages_name_the_parameter():
    with pytest.raises(ValueError, match="spindle_speed"):
        require_positive(-3, "spindle_speed")
