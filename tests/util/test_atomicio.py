"""Atomic publication and quarantine primitives."""

import os

import pytest

from repro.util.atomicio import (
    CORRUPT_SUFFIX,
    PARTIAL_SUFFIX,
    atomic_write_bytes,
    atomic_write_text,
    quarantine,
)


class TestAtomicWrite:
    def test_writes_bytes_and_returns_path(self, tmp_path):
        target = tmp_path / "blob.bin"
        assert atomic_write_bytes(target, b"\x00\x01payload") == target
        assert target.read_bytes() == b"\x00\x01payload"

    def test_overwrites_existing_content(self, tmp_path):
        target = tmp_path / "doc.txt"
        atomic_write_text(target, "old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "a" / "b" / "deep.txt"
        atomic_write_text(target, "hello")
        assert target.read_text() == "hello"

    def test_leaves_no_temporary_droppings(self, tmp_path):
        target = tmp_path / "clean.txt"
        atomic_write_text(target, "x")
        assert os.listdir(tmp_path) == ["clean.txt"]

    def test_failure_preserves_previous_content(self, tmp_path, monkeypatch):
        target = tmp_path / "keep.txt"
        atomic_write_text(target, "previous")

        def boom(src, dst):
            raise OSError("simulated rename failure")

        import repro.util.atomicio as atomicio
        monkeypatch.setattr(atomicio.os, "replace", boom)
        with pytest.raises(OSError):
            atomic_write_text(target, "next")
        monkeypatch.undo()
        # destination untouched, temp file cleaned up
        assert target.read_text() == "previous"
        assert os.listdir(tmp_path) == ["keep.txt"]


class TestQuarantine:
    def test_renames_aside_with_corrupt_suffix(self, tmp_path):
        victim = tmp_path / "store.npz"
        victim.write_bytes(b"garbage")
        moved = quarantine(victim)
        assert moved == tmp_path / ("store.npz" + CORRUPT_SUFFIX)
        assert not victim.exists()
        assert moved.read_bytes() == b"garbage"

    def test_custom_suffix(self, tmp_path):
        victim = tmp_path / "trace.jsonl"
        victim.write_text("half a line")
        moved = quarantine(victim, suffix=PARTIAL_SUFFIX)
        assert moved.name == "trace.jsonl" + PARTIAL_SUFFIX

    def test_missing_file_returns_none(self, tmp_path):
        assert quarantine(tmp_path / "never-existed") is None

    def test_newest_corpse_wins(self, tmp_path):
        victim = tmp_path / "f.bin"
        victim.write_bytes(b"first")
        quarantine(victim)
        victim.write_bytes(b"second")
        moved = quarantine(victim)
        assert moved.read_bytes() == b"second"
