"""RNG plumbing: determinism, independence, pass-through semantics."""

import numpy as np
import pytest

from repro.util.rngtools import fixed_seed_sequence, rng_from, spawn_rngs


def test_same_seed_same_stream():
    a = rng_from(123).random(10)
    b = rng_from(123).random(10)
    np.testing.assert_array_equal(a, b)


def test_different_seeds_differ():
    assert not np.array_equal(rng_from(1).random(10), rng_from(2).random(10))


def test_generator_passes_through_identity():
    gen = np.random.default_rng(0)
    assert rng_from(gen) is gen


def test_none_gives_fresh_generator():
    assert isinstance(rng_from(None), np.random.Generator)


def test_spawn_rngs_count_and_independence():
    children = spawn_rngs(7, 4)
    assert len(children) == 4
    draws = [c.random(5).tolist() for c in children]
    # all four streams distinct
    assert len({tuple(d) for d in draws}) == 4


def test_spawn_rngs_deterministic():
    a = [g.random(3).tolist() for g in spawn_rngs(11, 3)]
    b = [g.random(3).tolist() for g in spawn_rngs(11, 3)]
    assert a == b


def test_spawn_rngs_rejects_negative():
    with pytest.raises(ValueError):
        spawn_rngs(0, -1)


def test_fixed_seed_sequence_label_stability():
    first = fixed_seed_sequence(5, ["alpha", "beta"])
    second = fixed_seed_sequence(5, ["beta", "alpha", "gamma"])
    # adding labels / reordering never changes an existing label's stream
    np.testing.assert_array_equal(first["beta"].random(4), second["beta"].random(4))


def test_fixed_seed_sequence_differs_across_labels_and_seeds():
    table = fixed_seed_sequence(5, ["a", "b"])
    assert not np.array_equal(table["a"].random(4), table["b"].random(4))
    other = fixed_seed_sequence(6, ["a"])
    assert not np.array_equal(fixed_seed_sequence(5, ["a"])["a"].random(4),
                              other["a"].random(4))
