"""CLI smoke-to-depth tests (small workloads so each command is fast)."""

import pytest

from repro.cli import build_parser, main

SMALL = ["--files", "100", "--requests", "2000", "--interarrival-ms", "20"]


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_policy_rejected_at_parse(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--policy", "bogus"])

    def test_all_registry_policies_accepted(self):
        parser = build_parser()
        for name in ("read", "maid", "pdc", "drpm", "static-high",
                     "read-rotate", "striped-static"):
            args = parser.parse_args(["simulate", "--policy", name])
            assert args.policy == name


class TestVersion:
    def test_version_flag_exits_zero_with_a_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        # either the installed-dist version or the pyproject fallback;
        # both are dotted numerics, never the "unknown" last resort here
        assert out.split()[1][0].isdigit()

    def test_package_version_matches_pyproject(self):
        import re
        from pathlib import Path
        from repro.cli import _package_version
        pyproject = (Path(__file__).resolve().parent.parent / "pyproject.toml")
        declared = re.search(r'^version\s*=\s*"([^"]+)"', pyproject.read_text(),
                             re.MULTILINE).group(1)
        assert _package_version() == declared


class TestSimulate:
    def test_basic_run(self, capsys):
        rc = main(["simulate", "--policy", "read", "--disks", "4", *SMALL])
        out = capsys.readouterr().out
        assert rc == 0
        assert "read on 4 disks" in out
        assert "AFR_%" in out

    def test_per_disk_table(self, capsys):
        rc = main(["simulate", "--policy", "static-high", "--disks", "3",
                   "--per-disk", *SMALL])
        out = capsys.readouterr().out
        assert rc == 0
        assert "per-disk ESRRA factors" in out
        assert out.count("50.0") >= 3  # three disks at high steady temp

    def test_heavy_flag(self, capsys):
        rc = main(["simulate", "--policy", "read", "--disks", "4",
                   "--heavy", "2", *SMALL])
        assert rc == 0


class TestTelemetryFlags:
    def test_simulate_trace_out(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        rc = main(["simulate", "--policy", "read", "--disks", "4",
                   "--trace-out", str(path), *SMALL])
        out = capsys.readouterr().out
        assert rc == 0
        assert path.stat().st_size > 0
        assert "wrote trace ->" in out

    def test_simulate_metrics_out_with_interval(self, tmp_path, capsys):
        path = tmp_path / "ts.csv"
        rc = main(["simulate", "--policy", "read", "--disks", "4",
                   "--metrics-out", str(path), "--sample-interval", "5",
                   *SMALL])
        out = capsys.readouterr().out
        assert rc == 0
        assert path.read_text().startswith("time_s,disk,")
        assert "wrote time-series ->" in out

    def test_simulate_profile_prints_handler_table(self, capsys):
        rc = main(["simulate", "--policy", "read", "--disks", "4",
                   "--profile", *SMALL])
        out = capsys.readouterr().out
        assert rc == 0
        assert "event-loop profile" in out
        assert "handler" in out
        assert "mean_us" in out

    def test_compare_trace_out_suffixes_per_cell(self, tmp_path, capsys):
        base = tmp_path / "sweep.jsonl"
        rc = main(["compare", "--policies", "read,static-high",
                   "--disks", "4", "--trace-out", str(base), *SMALL])
        assert rc == 0
        assert (tmp_path / "sweep-read-4.jsonl").exists()
        assert (tmp_path / "sweep-static-high-4.jsonl").exists()
        assert "telemetry written per cell" in capsys.readouterr().out

    def test_obs_summarize_round_trip(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        assert main(["simulate", "--policy", "read", "--disks", "4",
                     "--trace-out", str(path), *SMALL]) == 0
        capsys.readouterr()
        rc = main(["obs", "summarize", str(path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "per event type" in out
        assert "per disk" in out
        assert "request.complete" in out

    def test_obs_summarize_json_document(self, tmp_path, capsys):
        import json

        path = tmp_path / "trace.jsonl"
        assert main(["simulate", "--policy", "read", "--disks", "4",
                     "--trace-out", str(path), *SMALL]) == 0
        capsys.readouterr()
        rc = main(["obs", "summarize", "--json", str(path)])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["source"] == str(path)
        assert doc["total_events"] > 0
        assert doc["unknown_types"] == []
        assert any(row["event"] == "request.complete" for row in doc["by_type"])
        assert {row["disk"] for row in doc["by_disk"]} == {0, 1, 2, 3}

    def test_obs_summarize_missing_file(self, capsys):
        rc = main(["obs", "summarize", "/nonexistent/trace.jsonl"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_obs_summarize_corrupt_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        rc = main(["obs", "summarize", str(bad)])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestCompare:
    def test_two_policy_sweep(self, capsys):
        rc = main(["compare", "--policies", "read,static-high",
                   "--disks", "4,6", "--baseline", "read", *SMALL])
        out = capsys.readouterr().out
        assert rc == 0
        assert "array AFR [%]" in out
        assert "energy [kJ]" in out
        assert "mean response [ms]" in out
        assert "read improvement" in out


class TestSweep:
    ARGS = ["sweep", "--policies", "read,static-high", "--disks", "4",
            "--baseline", "read", "--files", "60", "--requests", "800",
            "--interarrival-ms", "20"]

    def test_runs_and_writes_checkpoint(self, capsys, tmp_path):
        ckpt = tmp_path / "sweep.ckpt"
        rc = main([*self.ARGS, "--checkpoint", str(ckpt)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "array AFR [%]" in out
        assert "harness: 2 cell(s) run, 0 restored from checkpoint" in out
        assert f"checkpoint -> {ckpt}" in out
        assert ckpt.exists()

    def test_resume_skips_completed_cells(self, capsys, tmp_path):
        ckpt = tmp_path / "sweep.ckpt"
        assert main([*self.ARGS, "--checkpoint", str(ckpt)]) == 0
        capsys.readouterr()

        rc = main([*self.ARGS, "--resume", str(ckpt)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "harness: 0 cell(s) run, 2 restored from checkpoint" in out

    def test_resume_missing_checkpoint_is_an_error(self, capsys, tmp_path):
        rc = main([*self.ARGS, "--resume", str(tmp_path / "nope.ckpt")])
        err = capsys.readouterr().err
        assert rc == 2
        assert "checkpoint to resume not found" in err

    def test_report_includes_resilience_section(self, capsys, tmp_path):
        ckpt = tmp_path / "sweep.ckpt"
        report = tmp_path / "report.md"
        assert main([*self.ARGS, "--checkpoint", str(ckpt)]) == 0
        rc = main([*self.ARGS, "--resume", str(ckpt),
                   "--report", str(report)])
        assert rc == 0
        text = report.read_text()
        assert "### Harness resilience" in text
        assert "read improvements" in text

    def test_works_without_checkpoint(self, capsys):
        rc = main([*self.ARGS])
        out = capsys.readouterr().out
        assert rc == 0
        assert "harness: 2 cell(s) run" in out
        assert "checkpoint ->" not in out


class TestSweepTelemetry:
    ARGS = ["sweep", "--policies", "read", "--disks", "4", "--baseline", "",
            "--files", "60", "--requests", "800", "--interarrival-ms", "20"]

    def test_status_out_feed_readable_by_obs_status(self, tmp_path, capsys):
        status = tmp_path / "status.json"
        rc = main([*self.ARGS, "--status-out", str(status)])
        assert rc == 0
        assert "status feed ->" in capsys.readouterr().out
        rc = main(["obs", "status", str(status)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "sweep done: 1/1 cells" in out

    def test_obs_status_json_document(self, tmp_path, capsys):
        import json

        status = tmp_path / "status.json"
        assert main([*self.ARGS, "--status-out", str(status)]) == 0
        capsys.readouterr()
        rc = main(["obs", "status", "--json", str(status)])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["state"] == "done"
        assert doc["cells_done"] == 1
        assert "read x 4 disks" in doc["cells"]

    def test_sharded_sweep_writes_segments_and_merged_trace(
            self, tmp_path, capsys):
        base = tmp_path / "trace.jsonl"
        rc = main([*self.ARGS, "--shards", "2", "--trace-out", str(base)])
        assert rc == 0
        assert "telemetry written per cell" in capsys.readouterr().out
        assert (tmp_path / "trace-read-4.jsonl").exists()
        assert (tmp_path / "trace-read-4.shard0000.jsonl").exists()
        assert (tmp_path / "trace-read-4.shard0001.jsonl").exists()

    def test_summarize_glob_rolls_segments_up(self, tmp_path, capsys):
        import json

        base = tmp_path / "trace.jsonl"
        assert main([*self.ARGS, "--shards", "2",
                     "--trace-out", str(base)]) == 0
        capsys.readouterr()
        rc = main(["obs", "summarize", "--json",
                   str(tmp_path / "trace-read-4.shard*.jsonl")])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert "shard0000" in doc["source"] and "shard0001" in doc["source"]
        # segments carry global disk ids: the rollup is array-wide
        assert {row["disk"] for row in doc["by_disk"]} == {0, 1, 2, 3}

    def test_summarize_accepts_multiple_paths(self, tmp_path, capsys):
        import json

        base = tmp_path / "trace.jsonl"
        assert main([*self.ARGS, "--shards", "2",
                     "--trace-out", str(base)]) == 0
        capsys.readouterr()
        s0 = str(tmp_path / "trace-read-4.shard0000.jsonl")
        s1 = str(tmp_path / "trace-read-4.shard0001.jsonl")
        rc = main(["obs", "summarize", "--json", s0, s1])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["source"] == f"{s0},{s1}"

    def test_faults_with_shards_is_a_capability_error(self, capsys):
        rc = main([*self.ARGS, "--faults", "on", "--shards", "2"])
        err = capsys.readouterr().err
        assert rc == 2
        assert "--faults cannot be combined with --shards" in err

    def test_summarize_glob_without_matches_errors(self, tmp_path, capsys):
        rc = main(["obs", "summarize", str(tmp_path / "none.shard*.jsonl")])
        assert rc == 2
        assert "no trace files match" in capsys.readouterr().err

    def test_obs_status_missing_file_errors(self, tmp_path, capsys):
        rc = main(["obs", "status", str(tmp_path / "nope.json")])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_obs_status_rejects_non_status_json(self, tmp_path, capsys):
        p = tmp_path / "other.json"
        p.write_text('{"hello": 1}')
        rc = main(["obs", "status", str(p)])
        assert rc == 2
        assert "not a sweep status document" in capsys.readouterr().err


class TestPress:
    def test_point_evaluation(self, capsys):
        rc = main(["press", "--temp", "40", "--util", "30", "--freq", "0"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "= 7.500 %" in out

    def test_surface(self, capsys):
        rc = main(["press", "--surface", "50"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "PRESS AFR % at 50 degC" in out
        assert "f=1600/d" in out


class TestWorthwhile:
    def test_read_vs_static(self, capsys):
        rc = main(["worthwhile", "--scheme", "read", "--reference",
                   "static-high", "--disks", "4", *SMALL])
        out = capsys.readouterr().out
        assert "net benefit" in out
        assert rc in (0, 3)  # verdict-dependent exit code

    def test_exit_code_reflects_verdict(self, capsys):
        # static-low vs static-high saves energy with a *lower* AFR ->
        # always worthwhile -> exit 0
        rc = main(["worthwhile", "--scheme", "static-low", "--reference",
                   "static-high", "--disks", "4", *SMALL])
        assert rc == 0


class TestReport:
    def test_report_command_writes_markdown(self, tmp_path, capsys):
        out_md = tmp_path / "r.md"
        rc = main(["report", "--out", str(out_md), "--policies",
                   "read,static-high", "--disks", "4", *SMALL])
        assert rc == 0
        assert out_md.exists()
        assert "Array AFR" in out_md.read_text()


class TestTrace:
    def test_generate_and_info_roundtrip(self, tmp_path, capsys):
        out_csv = tmp_path / "trace.csv"
        rc = main(["trace", "generate", "--out", str(out_csv), *SMALL])
        assert rc == 0
        assert out_csv.exists()
        rc = main(["trace", "info", str(out_csv)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "requests          : 2000" in out

    def test_convert_wc98(self, tmp_path, capsys):
        from repro.workload.wc98 import WC98Record, write_wc98
        bin_path = tmp_path / "day.bin"
        write_wc98([WC98Record(1000 + i, 1, i % 5, 4000, 0, 2, 1, 0)
                    for i in range(50)], bin_path)
        out_csv = tmp_path / "day.csv"
        rc = main(["trace", "convert-wc98", str(bin_path), "--out", str(out_csv)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "decoded 50 records" in out
        assert out_csv.exists()

    def test_missing_file_is_error_exit(self, capsys):
        rc = main(["trace", "info", "/nonexistent/trace.csv"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestErrorPaths:
    """Every bad invocation must exit 2 with a diagnostic on stderr —
    never a traceback, never a zero exit."""

    def test_unknown_policy_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["simulate", "--policy", "bogus", *SMALL])
        assert excinfo.value.code == 2
        assert "invalid choice: 'bogus'" in capsys.readouterr().err

    def test_unknown_policy_in_compare_list(self, capsys):
        # --policies is free-form CSV, so this surfaces at run time
        rc = main(["compare", "--policies", "read,bogus", "--disks", "4", *SMALL])
        assert rc == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "unknown policy 'bogus'" in err

    def test_bad_jobs_count(self, capsys):
        rc = main(["compare", "--policies", "read", "--disks", "4",
                   "--jobs", "0", *SMALL])
        assert rc == 2
        assert "jobs must be >= 1" in capsys.readouterr().err

    def test_missing_trace_file(self, capsys):
        rc = main(["trace", "info", "/nonexistent/trace.csv"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_wc98_binary(self, capsys):
        rc = main(["trace", "convert-wc98", "/nonexistent/day.bin",
                   "--out", "/tmp/out.csv"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    @pytest.mark.parametrize("spec, fragment", [
        ("accel=banana", "bad --faults value for 'accel'"),
        ("nonsense=1", "unknown --faults key"),
        ("seed", "expected key=value"),
        ("", "--faults spec must not be empty"),
        ("accel=-5", "accel"),
    ])
    def test_invalid_faults_spec(self, capsys, spec, fragment):
        rc = main(["simulate", "--policy", "read", "--faults", spec, *SMALL])
        assert rc == 2
        assert fragment in capsys.readouterr().err


class TestFaultsFlag:
    def test_simulate_with_faults_prints_reliability_block(self, capsys):
        rc = main(["simulate", "--policy", "read", "--disks", "4",
                   "--faults", "seed=3,accel=200000", *SMALL])
        out = capsys.readouterr().out
        assert rc == 0
        assert "fault injection:" in out
        assert "availability" in out

    def test_compare_with_faults_prints_availability_series(self, capsys):
        rc = main(["compare", "--policies", "read", "--disks", "4",
                   "--faults", "on", *SMALL])
        out = capsys.readouterr().out
        assert rc == 0
        assert "availability [%]" in out
        assert "data-loss events" in out


class TestRedundancyFlag:
    def test_simulate_prints_redundancy_block(self, capsys):
        rc = main(["simulate", "--policy", "read", "--disks", "8",
                   "--redundancy", "block4-2",
                   "--faults", "seed=3,accel=200000", *SMALL])
        out = capsys.readouterr().out
        assert rc == 0
        assert "redundancy [block4-2]: 1 group(s)" in out
        assert "degraded reads" in out
        assert "rebuild fan-out" in out
        assert "CTMC: MTTDL" in out

    def test_redundancy_none_is_a_plain_run(self, capsys):
        rc = main(["simulate", "--policy", "read", "--disks", "4",
                   "--redundancy", "none", *SMALL])
        out = capsys.readouterr().out
        assert rc == 0
        assert "redundancy [" not in out

    def test_unknown_scheme_is_usage_error(self, capsys):
        rc = main(["simulate", "--policy", "read", "--disks", "8",
                   "--redundancy", "raid6", *SMALL])
        err = capsys.readouterr().err
        assert rc == 2
        assert "unknown --redundancy scheme" in err
        assert "block4-2" in err  # the error names the candidates

    def test_redundancy_with_shards_is_a_capability_error(self, capsys):
        rc = main(["sweep", "--policies", "read", "--disks", "4",
                   "--shards", "2", "--redundancy", "mirror2", *SMALL])
        err = capsys.readouterr().err
        assert rc == 2
        assert "--redundancy cannot be combined with --shards" in err

    def test_worthwhile_reports_ctmc_and_loss_model(self, capsys):
        rc = main(["worthwhile", "--scheme", "read", "--reference",
                   "static-high", "--disks", "4",
                   "--redundancy", "mirror2", *SMALL])
        out = capsys.readouterr().out
        assert rc in (0, 3)
        assert "CTMC [mirror2]" in out
        assert "loss model         : ctmc" in out

    def test_worthwhile_without_redundancy_uses_legacy_model(self, capsys):
        rc = main(["worthwhile", "--scheme", "read", "--reference",
                   "static-high", "--disks", "4", *SMALL])
        out = capsys.readouterr().out
        assert rc in (0, 3)
        assert "loss model         : per-disk-afr" in out
