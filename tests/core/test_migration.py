"""FRD migration planning: pure-function invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.migration import plan_migrations
from repro.core.placement import ZoneLayout
from repro.core.popularity import split_by_popularity


def make_inputs(m=8, n=4, n_hot=2, theta=0.5, seed=0):
    rng = np.random.default_rng(seed)
    split = split_by_popularity(rng.permutation(m), theta)
    layout = ZoneLayout(n_disks=n, n_hot=n_hot)
    placement = rng.integers(0, n, m)
    sizes = np.ones(m)
    loads = np.bincount(placement, weights=sizes, minlength=n).astype(float)
    return split, layout, placement, loads, sizes


class TestPlanning:
    def test_popular_file_on_cold_disk_moves_hot(self):
        split = split_by_popularity(np.arange(4), 0.5)  # popular: 0,1
        layout = ZoneLayout(n_disks=4, n_hot=2)
        placement = np.array([3, 0, 1, 2])  # file 0 is popular but cold
        sizes = np.ones(4)
        loads = np.bincount(placement, weights=sizes, minlength=4).astype(float)
        plan = plan_migrations(split, layout, placement, loads, sizes, 100.0)
        moves = dict(plan.moves)
        assert 0 in moves and moves[0] in (0, 1)

    def test_unpopular_file_on_hot_disk_moves_cold(self):
        split = split_by_popularity(np.arange(4), 0.5)  # unpopular: 2,3
        layout = ZoneLayout(n_disks=4, n_hot=2)
        placement = np.array([0, 1, 0, 3])  # file 2 unpopular but hot
        sizes = np.ones(4)
        loads = np.bincount(placement, weights=sizes, minlength=4).astype(float)
        plan = plan_migrations(split, layout, placement, loads, sizes, 100.0)
        moves = dict(plan.moves)
        assert 2 in moves and moves[2] in (2, 3)

    def test_correctly_zoned_files_stay(self):
        split = split_by_popularity(np.arange(4), 0.5)
        layout = ZoneLayout(n_disks=4, n_hot=2)
        placement = np.array([0, 1, 2, 3])  # perfectly zoned
        sizes = np.ones(4)
        loads = np.ones(4)
        plan = plan_migrations(split, layout, placement, loads, sizes, 100.0)
        assert len(plan) == 0

    def test_destinations_balance_load(self):
        split = split_by_popularity(np.arange(6), 0.5)  # popular: 0,1,2
        layout = ZoneLayout(n_disks=4, n_hot=2)
        placement = np.array([2, 3, 2, 3, 2, 3])  # everything cold
        sizes = np.ones(6)
        loads = np.array([0.0, 5.0, 3.0, 3.0])  # hot disk 0 nearly empty
        plan = plan_migrations(split, layout, placement, loads, sizes, 100.0)
        # first mover goes to the least-loaded hot disk (0)
        assert plan.moves[0][1] == 0

    def test_max_moves_cap(self):
        split, layout, placement, loads, sizes = make_inputs(m=20, seed=3)
        capped = plan_migrations(split, layout, placement, loads, sizes, 1e6,
                                 max_moves=2)
        assert len(capped) <= 2

    def test_hottest_movers_first(self):
        split = split_by_popularity(np.array([4, 3, 2, 1, 0]), 0.4)
        layout = ZoneLayout(n_disks=4, n_hot=2)
        placement = np.array([2, 2, 2, 2, 2])  # all cold
        sizes = np.ones(5)
        loads = np.bincount(placement, weights=sizes, minlength=4).astype(float)
        plan = plan_migrations(split, layout, placement, loads, sizes, 100.0)
        # most popular mover (file 4, rank 0) is first
        assert plan.moves[0][0] == 4

    def test_full_zone_skips_move(self):
        split = split_by_popularity(np.arange(3), 0.5)  # popular: 0 (and 1)
        layout = ZoneLayout(n_disks=2, n_hot=1)
        placement = np.array([1, 0, 1])
        sizes = np.array([5.0, 5.0, 1.0])
        loads = np.array([5.0, 6.0])
        # hot disk 0 has 5 of 8 capacity used: file 0 (5 MB) cannot fit
        plan = plan_migrations(split, layout, placement, loads, sizes, 8.0)
        assert 0 not in dict(plan.moves)

    @given(st.integers(4, 40), st.integers(2, 6), st.floats(0.1, 0.9),
           st.integers(0, 100))
    @settings(max_examples=100)
    def test_plan_never_overfills_and_moves_are_cross_zone(self, m, n, theta, seed):
        rng = np.random.default_rng(seed)
        split = split_by_popularity(rng.permutation(m), theta)
        n_hot = rng.integers(1, n)
        layout = ZoneLayout(n_disks=n, n_hot=int(n_hot))
        placement = rng.integers(0, n, m)
        sizes = rng.uniform(0.1, 1.0, m)
        loads = np.bincount(placement, weights=sizes, minlength=n).astype(float)
        capacity = float(sizes.sum())
        plan = plan_migrations(split, layout, placement, loads, sizes, capacity)

        popular = set(split.popular_ids.tolist())
        new_loads = loads.copy()
        for fid, dst in plan.moves:
            src = placement[fid]
            assert src != dst
            # moves always correct the zone
            if fid in popular:
                assert not layout.is_hot(int(src)) and layout.is_hot(dst)
            else:
                assert layout.is_hot(int(src)) and not layout.is_hot(dst)
            new_loads[src] -= sizes[fid]
            new_loads[dst] += sizes[fid]
        assert np.all(new_loads <= capacity + 1e-9)

    def test_plan_file_ids_accessor(self):
        split, layout, placement, loads, sizes = make_inputs(seed=5)
        plan = plan_migrations(split, layout, placement, loads, sizes, 1e6)
        assert plan.file_ids == [fid for fid, _ in plan.moves]
