"""READ extensions: role rotation and hot-file replication."""

import numpy as np
import pytest

from repro.core.extensions import (
    ReplicatingREADConfig,
    ReplicatingREADPolicy,
    RotatingREADConfig,
    RotatingREADPolicy,
)
from repro.disk.array import DiskArray
from repro.disk.parameters import DiskSpeed
from repro.experiments.runner import run_simulation
from repro.workload.files import FileSet
from repro.workload.request import Request


@pytest.fixture
def uniform_files():
    return FileSet(np.full(24, 1.0))


def bound(policy_cls, config, sim, params, fileset, n_disks=4):
    policy = policy_cls(config)
    array = DiskArray(sim, params, n_disks, fileset)
    policy.bind(sim, array, fileset)
    policy.initial_layout()
    return policy, array


class TestRotatingREAD:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            RotatingREADConfig(rotation_epochs=0)

    def test_rotation_swaps_roles(self, sim, params, uniform_files):
        cfg = RotatingREADConfig(epoch_s=10.0, rotation_epochs=1)
        policy, array = bound(RotatingREADPolicy, cfg, sim, params, uniform_files)
        initial_hot = set(int(d) for d in policy.layout.hot_ids)
        # drive some traffic so epochs have counts
        for i in range(100):
            policy.route(Request(i * 0.05, i % 24, 1.0))
        sim.run(until=25.0)
        policy.shutdown()
        assert policy.rotations_performed >= 1
        assert policy._hot_set != initial_hot

    def test_rotation_respects_budget(self, sim, params, uniform_files):
        # budget of 1 cannot pay for a two-disk swap: no rotations
        cfg = RotatingREADConfig(epoch_s=10.0, rotation_epochs=1,
                                 max_transitions_per_day=1)
        policy, array = bound(RotatingREADPolicy, cfg, sim, params, uniform_files)
        for i in range(100):
            policy.route(Request(i * 0.05, i % 24, 1.0))
        sim.run(until=25.0)
        policy.shutdown()
        assert policy.rotations_performed == 0

    def test_rotation_moves_files_with_roles(self, sim, params, uniform_files):
        cfg = RotatingREADConfig(epoch_s=10.0, rotation_epochs=1)
        policy, array = bound(RotatingREADPolicy, cfg, sim, params, uniform_files)
        for i in range(100):
            policy.route(Request(i * 0.05, i % 24, 1.0))
        sim.run(until=25.0)
        policy.shutdown()
        if policy.rotations_performed:
            assert policy.migrations_performed > 0

    def test_describe_includes_rotation(self, sim, params, uniform_files):
        cfg = RotatingREADConfig(epoch_s=10.0, rotation_epochs=2)
        policy, _ = bound(RotatingREADPolicy, cfg, sim, params, uniform_files)
        info = policy.describe()
        assert info["rotation_epochs"] == 2
        assert info["rotations_performed"] == 0

    def test_full_run_spreads_hot_tenure(self, small_workload, params):
        """With rotation, high-speed residence spreads across more disks
        than the static zone split."""
        fileset, trace = small_workload
        rotating = run_simulation(
            RotatingREADPolicy(RotatingREADConfig(epoch_s=10.0, rotation_epochs=1)),
            fileset, trace.head(4000), n_disks=5, disk_params=params)
        plain_hot_temps = run_simulation(
            RotatingREADPolicy(RotatingREADConfig(epoch_s=10.0, rotation_epochs=10**6)),
            fileset, trace.head(4000), n_disks=5, disk_params=params)
        # rotation narrows the spread between hottest and coolest disk
        def spread(result):
            temps = [f.mean_temperature_c for f in result.per_disk]
            return max(temps) - min(temps)
        assert spread(rotating) <= spread(plain_hot_temps) + 1e-9


class TestReplicatingREAD:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            ReplicatingREADConfig(replicate_top_k=-1)

    def test_replicas_created_for_hot_files(self, sim, params, uniform_files):
        cfg = ReplicatingREADConfig(epoch_s=10.0, replicate_top_k=2)
        policy, array = bound(ReplicatingREADPolicy, cfg, sim, params,
                              uniform_files, n_disks=6)
        hot_file = 0
        for i in range(200):
            policy.route(Request(i * 0.04, hot_file, 1.0))
        sim.run(until=15.0)
        policy.shutdown()
        assert policy.replicas_created >= 1
        assert hot_file in policy._replicas
        # replica lives on a hot disk distinct from the primary
        replica_disk = policy._replicas[hot_file]
        assert replica_disk != array.location_of(hot_file)
        assert policy.layout.is_hot(replica_disk)

    def test_replica_dropped_when_file_cools(self, sim, params, uniform_files):
        cfg = ReplicatingREADConfig(epoch_s=10.0, replicate_top_k=1)
        policy, array = bound(ReplicatingREADPolicy, cfg, sim, params,
                              uniform_files, n_disks=6)
        for i in range(100):
            policy.route(Request(i * 0.05, 0, 1.0))
        sim.run(until=11.0)
        assert 0 in policy._replicas
        # a different file dominates the next epoch
        t0 = sim.now
        for i in range(100):
            policy.route(Request(t0 + i * 0.05, 1, 1.0))
        sim.run(until=25.0)
        policy.shutdown()
        assert 0 not in policy._replicas

    def test_zero_k_degenerates_to_plain_read(self, sim, params, uniform_files):
        cfg = ReplicatingREADConfig(epoch_s=10.0, replicate_top_k=0)
        policy, _ = bound(ReplicatingREADPolicy, cfg, sim, params,
                          uniform_files, n_disks=6)
        for i in range(100):
            policy.route(Request(i * 0.05, 0, 1.0))
        sim.run(until=25.0)
        policy.shutdown()
        assert policy.replicas_created == 0

    def test_routing_picks_less_backlogged_copy(self, sim, params, uniform_files):
        cfg = ReplicatingREADConfig(epoch_s=5.0, replicate_top_k=1)
        policy, array = bound(ReplicatingREADPolicy, cfg, sim, params,
                              uniform_files, n_disks=6)
        for i in range(100):
            policy.route(Request(i * 0.02, 0, 1.0))
        sim.run(until=6.0)
        assert 0 in policy._replicas
        primary = array.location_of(0)
        replica = policy._replicas[0]
        # pile synthetic work on the primary, then route: must pick replica
        from repro.disk.drive import Job
        for _ in range(5):
            array.drive(primary).submit(Job.internal_transfer(5.0))
        req = Request(sim.now, 0, 1.0)
        policy.route(req)
        sim.run(until=sim.now + 30.0)
        policy.shutdown()
        assert req.served_by == replica

    def test_full_run_reduces_worst_utilization(self, small_workload, params):
        fileset, trace = small_workload
        sub = trace.head(4000)
        plain = run_simulation(
            ReplicatingREADPolicy(ReplicatingREADConfig(epoch_s=10.0, replicate_top_k=0)),
            fileset, sub, n_disks=5, disk_params=params)
        replicated = run_simulation(
            ReplicatingREADPolicy(ReplicatingREADConfig(epoch_s=10.0, replicate_top_k=8)),
            fileset, sub, n_disks=5, disk_params=params)
        assert replicated.policy_detail["active_replicas"] >= 0
        # replication must not make response time worse
        assert replicated.mean_response_s <= plain.mean_response_s * 1.25
