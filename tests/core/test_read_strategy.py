"""READ policy end to end: zones, budget, adaptive H, FRD epochs."""

import numpy as np
import pytest

from repro.core.read_strategy import READConfig, READPolicy
from repro.disk.array import DiskArray
from repro.disk.parameters import DiskSpeed
from repro.experiments.runner import run_simulation
from repro.policies.base import SpeedControlConfig
from repro.workload.files import FileSet
from repro.workload.request import Request


def bound_read(sim, params, fileset, n_disks=4, **cfg):
    policy = READPolicy(READConfig(**cfg)) if cfg else READPolicy()
    array = DiskArray(sim, params, n_disks, fileset)
    policy.bind(sim, array, fileset)
    policy.initial_layout()
    return policy, array


@pytest.fixture
def uniform_files():
    return FileSet(np.full(24, 1.0))


class TestInitialRound:
    def test_zones_configured(self, sim, params, uniform_files):
        policy, array = bound_read(sim, params, uniform_files)
        layout = policy.layout
        assert layout is not None
        for d in range(array.n_disks):
            expected = DiskSpeed.HIGH if layout.is_hot(d) else DiskSpeed.LOW
            assert array.drive(d).speed is expected

    def test_initial_config_costs_nothing(self, sim, params, uniform_files):
        _, array = bound_read(sim, params, uniform_files)
        assert all(d.stats.speed_transitions_total == 0 for d in array.drives)
        assert array.total_energy_j() == 0.0

    def test_every_file_placed(self, sim, params, uniform_files):
        _, array = bound_read(sim, params, uniform_files)
        assert np.all(array.placement >= 0)

    def test_smallest_files_go_hot(self, sim, params):
        sizes = np.concatenate([np.full(12, 0.1), np.full(12, 5.0)])
        fileset = FileSet(sizes)
        policy, array = bound_read(sim, params, fileset)
        small_disks = set(array.placement[:12].tolist())
        assert all(policy.layout.is_hot(d) for d in small_disks)

    def test_describe_reports_zones(self, sim, params, uniform_files):
        policy, _ = bound_read(sim, params, uniform_files)
        info = policy.describe()
        assert info["name"] == "read"
        assert info["n_hot"] == policy.layout.n_hot
        assert info["transition_cap_per_day"] == 40


class TestRoutingAndSpeed:
    def test_requests_served_from_placed_disk(self, sim, params, uniform_files):
        policy, array = bound_read(sim, params, uniform_files)
        req = Request(0.0, 0, 1.0)
        policy.route(req)
        sim.run(until=5.0)
        assert req.served_by == array.location_of(0)

    def test_cold_disk_serves_at_low_without_spin_up(self, sim, params, uniform_files):
        policy, array = bound_read(sim, params, uniform_files)
        cold_file = int(np.flatnonzero(
            ~policy.layout.is_hot(array.placement) if False else
            np.array([not policy.layout.is_hot(int(d)) for d in array.placement]))[0])
        req = Request(0.0, cold_file, 1.0)
        policy.route(req)
        sim.run(until=5.0)
        disk = array.drive(req.served_by)
        assert disk.speed is DiskSpeed.LOW
        assert disk.stats.speed_transitions_total == 0

    def test_sustained_backlog_spins_cold_disk_up(self, sim, params, uniform_files):
        policy, array = bound_read(
            sim, params, uniform_files,
            speed=SpeedControlConfig(idle_threshold_s=60.0, spin_up_queue_len=3,
                                     spin_up_wait_s=1e9))
        cold_disk = int(policy.layout.cold_ids[0])
        cold_files = array.files_on(cold_disk)
        for i in range(4):
            policy.route(Request(0.0, int(cold_files[i % len(cold_files)]), 1.0))
        assert array.drive(cold_disk).effective_target_speed is DiskSpeed.HIGH


class TestTransitionBudget:
    def test_transitions_capped_at_s(self, sim, params, uniform_files):
        cfg = dict(max_transitions_per_day=2,
                   speed=SpeedControlConfig(idle_threshold_s=1.0,
                                            spin_up_queue_len=1,
                                            spin_up_wait_s=0.01))
        policy, array = bound_read(sim, params, uniform_files, **cfg)
        hot_disk = int(policy.layout.hot_ids[0])
        hot_files = array.files_on(hot_disk)
        # ping the disk periodically with long gaps: each gap spins down
        # (budget permitting), each arrival spins up
        t = 0.0
        for i in range(12):
            policy.route(Request(t, int(hot_files[0]), 1.0))
            t += 10.0
            sim.run(until=t)
        policy.shutdown()
        assert array.drive(hot_disk).stats.speed_transitions_total <= 2

    def test_adaptive_threshold_doubles_h(self, sim, params, uniform_files):
        cfg = dict(max_transitions_per_day=4, adaptive_threshold=True,
                   speed=SpeedControlConfig(idle_threshold_s=1.0,
                                            spin_up_queue_len=1,
                                            spin_up_wait_s=0.01))
        policy, array = bound_read(sim, params, uniform_files, **cfg)
        hot_disk = int(policy.layout.hot_ids[0])
        hot_files = array.files_on(hot_disk)
        t = 0.0
        for i in range(8):
            policy.route(Request(t, int(hot_files[0]), 1.0))
            t += 30.0
            sim.run(until=t)
        policy.shutdown()
        assert policy._controller.idle_threshold(hot_disk) > 1.0

    def test_fixed_threshold_when_adaptation_off(self, sim, params, uniform_files):
        cfg = dict(max_transitions_per_day=4, adaptive_threshold=False,
                   speed=SpeedControlConfig(idle_threshold_s=1.0,
                                            spin_up_queue_len=1,
                                            spin_up_wait_s=0.01))
        policy, array = bound_read(sim, params, uniform_files, **cfg)
        hot_disk = int(policy.layout.hot_ids[0])
        hot_files = array.files_on(hot_disk)
        t = 0.0
        for i in range(8):
            policy.route(Request(t, int(hot_files[0]), 1.0))
            t += 30.0
            sim.run(until=t)
        policy.shutdown()
        assert policy._controller.idle_threshold(hot_disk) == 1.0


class TestFRDEpochs:
    def test_newly_hot_file_migrates_to_hot_zone(self, sim, params, uniform_files):
        policy, array = bound_read(sim, params, uniform_files, epoch_s=50.0)
        cold_file = None
        for fid in range(len(uniform_files)):
            if not policy.layout.is_hot(array.location_of(fid)):
                cold_file = fid
                break
        assert cold_file is not None
        for i in range(200):
            policy.route(Request(i * 0.2, cold_file, 1.0))
        sim.run(until=120.0)
        policy.shutdown()
        assert policy.layout.is_hot(array.location_of(cold_file))
        assert policy.migrations_performed >= 1

    def test_theta_reestimated(self, sim, params, uniform_files):
        policy, array = bound_read(sim, params, uniform_files, epoch_s=50.0)
        initial_theta = policy.theta
        for i in range(300):
            policy.route(Request(i * 0.1, i % 3, 1.0))  # heavy 3-file skew
        sim.run(until=60.0)
        policy.shutdown()
        assert policy.theta != initial_theta

    def test_migration_cap_zero_disables_frd_moves(self, sim, params, uniform_files):
        policy, array = bound_read(sim, params, uniform_files, epoch_s=50.0,
                                   max_migrations_per_epoch=0)
        for i in range(200):
            policy.route(Request(i * 0.2, 23, 1.0))
        sim.run(until=120.0)
        policy.shutdown()
        assert policy.migrations_performed == 0


class TestEndToEnd:
    def test_full_run_few_transitions(self, small_workload, params):
        fileset, trace = small_workload
        policy = READPolicy(READConfig(epoch_s=20.0))
        result = run_simulation(policy, fileset, trace.head(3000), n_disks=6,
                                disk_params=params)
        assert result.policy_name == "read"
        # READ's defining property: transitions stay within the cap
        per_disk_cap = policy.config.max_transitions_per_day
        for drive_factors in result.per_disk:
            assert drive_factors.transitions_per_day * result.duration_s / 86400.0 \
                <= per_disk_cap + 1e-9
