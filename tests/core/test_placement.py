"""READ's zone layout and round-robin dealing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.placement import ZoneLayout, compute_zone_layout, round_robin_zone_placement
from repro.core.popularity import split_by_popularity


class TestZoneLayout:
    def test_fig6_formula(self):
        # HD = gamma*n/(gamma+1): gamma=3, n=8 -> 6
        assert compute_zone_layout(3.0, 8).n_hot == 6

    def test_rounding(self):
        assert compute_zone_layout(1.0, 10).n_hot == 5

    def test_clamp_keeps_both_zones(self):
        assert compute_zone_layout(1e9, 10).n_hot == 9
        assert compute_zone_layout(1e-9, 10).n_hot == 1

    def test_zone_ids(self):
        layout = ZoneLayout(n_disks=6, n_hot=2)
        np.testing.assert_array_equal(layout.hot_ids, [0, 1])
        np.testing.assert_array_equal(layout.cold_ids, [2, 3, 4, 5])
        assert layout.n_cold == 4
        assert layout.is_hot(1) and not layout.is_hot(2)

    def test_invalid_layouts_rejected(self):
        with pytest.raises(ValueError):
            ZoneLayout(n_disks=4, n_hot=0)
        with pytest.raises(ValueError):
            ZoneLayout(n_disks=4, n_hot=4)
        with pytest.raises(ValueError):
            compute_zone_layout(1.0, 1)

    @given(st.floats(1e-6, 1e6), st.integers(2, 64))
    @settings(max_examples=200)
    def test_layout_always_valid(self, gamma, n):
        layout = compute_zone_layout(gamma, n)
        assert 1 <= layout.n_hot <= n - 1


class TestRoundRobinPlacement:
    def test_popular_on_hot_unpopular_on_cold(self):
        split = split_by_popularity(np.arange(8), 0.5)
        layout = ZoneLayout(n_disks=4, n_hot=2)
        sizes = np.ones(8)
        placement = round_robin_zone_placement(split, layout, sizes, 100.0)
        for fid in split.popular_ids:
            assert placement[fid] in (0, 1)
        for fid in split.unpopular_ids:
            assert placement[fid] in (2, 3)

    def test_round_robin_order(self):
        # most popular file lands on first hot disk, second on second...
        split = split_by_popularity(np.array([5, 4, 3, 2, 1, 0]), 0.5)
        layout = ZoneLayout(n_disks=4, n_hot=2)
        placement = round_robin_zone_placement(split, layout, np.ones(6), 100.0)
        assert placement[5] == 0  # rank 0 -> hot disk 0
        assert placement[4] == 1  # rank 1 -> hot disk 1
        assert placement[3] == 0  # rank 2 wraps

    def test_balanced_within_zone(self):
        split = split_by_popularity(np.arange(100), 0.5)
        layout = ZoneLayout(n_disks=10, n_hot=5)
        placement = round_robin_zone_placement(split, layout, np.ones(100), 1000.0)
        hot_counts = np.bincount(placement[split.popular_ids], minlength=10)[:5]
        assert hot_counts.max() - hot_counts.min() <= 1

    def test_capacity_skip(self):
        split = split_by_popularity(np.array([0, 1, 2, 3]), 0.5)
        layout = ZoneLayout(n_disks=4, n_hot=2)
        sizes = np.array([8.0, 8.0, 1.0, 1.0])
        placement = round_robin_zone_placement(split, layout, sizes, 10.0)
        # both big popular files cannot share one 10 MB disk
        assert placement[0] != placement[1]

    def test_spill_to_other_zone_when_zone_full(self):
        split = split_by_popularity(np.array([0, 1, 2, 3]), 0.5)
        layout = ZoneLayout(n_disks=3, n_hot=1)
        sizes = np.array([6.0, 6.0, 1.0, 1.0])
        placement = round_robin_zone_placement(split, layout, sizes, 10.0)
        # second popular file cannot fit on the only hot disk; spills cold
        assert placement[0] == 0
        assert placement[1] != 0

    def test_impossible_fit_rejected(self):
        split = split_by_popularity(np.array([0, 1]), 0.5)
        layout = ZoneLayout(n_disks=2, n_hot=1)
        with pytest.raises(ValueError):
            round_robin_zone_placement(split, layout, np.array([50.0, 1.0]), 10.0)

    @given(st.integers(4, 60), st.integers(2, 8), st.floats(0.1, 0.9))
    @settings(max_examples=100)
    def test_every_file_placed_within_capacity(self, m, n, theta):
        rng = np.random.default_rng(m * n)
        sizes = rng.uniform(0.1, 2.0, m)
        split = split_by_popularity(rng.permutation(m), theta)
        layout = compute_zone_layout(1.0, n)
        capacity = sizes.sum()  # generous
        placement = round_robin_zone_placement(split, layout, sizes, capacity)
        assert np.all(placement >= 0) and np.all(placement < n)
        used = np.bincount(placement, weights=sizes, minlength=n)
        assert np.all(used <= capacity + 1e-9)
