"""READ's popularity math: Eqs. 4-5 and the popular/unpopular split."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.popularity import (
    estimate_file_loads,
    popular_file_count,
    popular_unpopular_ratio_delta,
    split_by_popularity,
    zone_load_ratio_gamma,
)

thetas = st.floats(0.01, 0.99)


class TestPopularFileCount:
    def test_paper_formula(self):
        # |Fp| = (1 - theta) * m
        assert popular_file_count(0.25, 100) == 75

    def test_clamped_to_keep_both_classes(self):
        assert popular_file_count(0.999999 - 1e-7, 100) >= 1
        assert popular_file_count(0.0000011, 100) <= 99

    def test_rounding(self):
        assert popular_file_count(0.5, 5) in (2, 3)

    def test_theta_bounds_rejected(self):
        with pytest.raises(ValueError):
            popular_file_count(0.0, 10)
        with pytest.raises(ValueError):
            popular_file_count(1.0, 10)

    def test_too_few_files_rejected(self):
        with pytest.raises(ValueError):
            popular_file_count(0.5, 1)

    @given(thetas, st.integers(2, 10_000))
    @settings(max_examples=200)
    def test_count_always_valid(self, theta, m):
        c = popular_file_count(theta, m)
        assert 1 <= c <= m - 1


class TestDelta:
    def test_eq4(self):
        assert popular_unpopular_ratio_delta(0.2) == pytest.approx(4.0)

    def test_uniform_edge(self):
        assert popular_unpopular_ratio_delta(0.5) == pytest.approx(1.0)

    @given(thetas)
    @settings(max_examples=100)
    def test_delta_consistent_with_counts(self, theta):
        m = 10_000
        c = popular_file_count(theta, m)
        delta = popular_unpopular_ratio_delta(theta)
        assert c / (m - c) == pytest.approx(delta, rel=0.01)


class TestSplit:
    def test_split_respects_ranking(self):
        ranking = np.array([3, 1, 4, 0, 2])
        split = split_by_popularity(ranking, 0.4)
        assert popular_file_count(0.4, 5) == split.popular_ids.size
        np.testing.assert_array_equal(split.popular_ids, ranking[:split.popular_ids.size])

    def test_partition_property(self):
        ranking = np.random.default_rng(0).permutation(50)
        split = split_by_popularity(ranking, 0.3)
        combined = np.sort(np.concatenate([split.popular_ids, split.unpopular_ids]))
        np.testing.assert_array_equal(combined, np.arange(50))

    def test_mask(self):
        split = split_by_popularity(np.arange(10), 0.5)
        mask = split.is_popular()
        assert mask.sum() == split.popular_ids.size
        assert np.all(mask[split.popular_ids])

    def test_non_permutation_rejected(self):
        with pytest.raises(ValueError):
            split_by_popularity(np.array([0, 0, 1]), 0.5)

    @given(thetas, st.integers(2, 300))
    @settings(max_examples=100)
    def test_split_sizes_property(self, theta, m):
        split = split_by_popularity(np.arange(m), theta)
        assert split.popular_ids.size + split.unpopular_ids.size == m
        assert split.popular_ids.size >= 1
        assert split.unpopular_ids.size >= 1


class TestLoads:
    def test_measured_counts_load(self):
        sizes = np.array([1.0, 2.0, 4.0])
        counts = np.array([10, 5, 0])
        loads = estimate_file_loads(sizes, np.arange(3), counts=counts)
        np.testing.assert_allclose(loads, [10.0, 10.0, 0.0])

    def test_zipf_bootstrap_rates_follow_ranking(self):
        sizes = np.ones(10)
        ranking = np.array([9, 8, 7, 6, 5, 4, 3, 2, 1, 0])
        loads = estimate_file_loads(sizes, ranking, zipf_alpha=0.8)
        # file 9 is rank 0 (most popular) -> largest load
        assert loads[9] == loads.max()
        assert loads[0] == loads.min()

    def test_loads_scale_with_size(self):
        sizes = np.array([1.0, 10.0])
        loads = estimate_file_loads(sizes, np.array([0, 1]), zipf_alpha=0.0)
        assert loads[1] == pytest.approx(10 * loads[0])

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            estimate_file_loads(np.ones(2), np.arange(2), counts=np.array([-1, 1]))


class TestGamma:
    def test_eq5_formula(self):
        split = split_by_popularity(np.arange(4), 0.5)  # 2 popular, 2 unpopular
        loads = np.array([3.0, 1.0, 1.0, 1.0])
        # gamma = ((1-0.5)*4) / (0.5*2) = 2
        assert zone_load_ratio_gamma(split, loads) == pytest.approx(2.0)

    def test_zero_unpopular_load_clamped(self):
        split = split_by_popularity(np.arange(4), 0.5)
        loads = np.array([1.0, 1.0, 0.0, 0.0])
        assert zone_load_ratio_gamma(split, loads) == 1e6

    def test_zero_popular_load_clamped(self):
        split = split_by_popularity(np.arange(4), 0.5)
        loads = np.array([0.0, 0.0, 1.0, 1.0])
        assert zone_load_ratio_gamma(split, loads) == 1e-6

    @given(thetas, st.integers(4, 50))
    @settings(max_examples=100)
    def test_gamma_positive(self, theta, m):
        split = split_by_popularity(np.arange(m), theta)
        loads = np.linspace(1.0, 2.0, m)
        assert zone_load_ratio_gamma(split, loads) > 0
