"""Streaming workload generation: chunked == materialized, bit for bit.

The streaming layer's whole contract is that chunked generation is a
pure re-buffering of the batch generators — same RNG draws, same
arithmetic, same arrays — for *any* chunk size.  These tests pin that
with hypothesis over the synthetic generator's parameter space, pin the
WC98 chunked reader against the scalar reader (including the malformed
tails), and pin the cache-key contract: a workload's digest is a
function of its spec, never of how it was buffered.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.cache import workload_key
from repro.workload.stream import (
    DEFAULT_CHUNK_SIZE,
    SyntheticStream,
    SyntheticStreamSpec,
    WC98Stream,
    WC98StreamSpec,
    materialize,
    open_stream,
)
from repro.workload.synthetic import SyntheticWorkloadConfig, WorldCupLikeWorkload
from repro.workload.wc98 import (
    RECORD_SIZE,
    TraceFormatError,
    WC98Record,
    iter_wc98_chunks,
    read_wc98,
    wc98_to_trace,
    write_wc98,
)


def assert_traces_identical(a, b):
    """Bit-exact equality of two (FileSet, Trace) pairs."""
    fs_a, tr_a = a
    fs_b, tr_b = b
    np.testing.assert_array_equal(fs_a.sizes_mb, fs_b.sizes_mb)
    np.testing.assert_array_equal(tr_a.times_s, tr_b.times_s)
    np.testing.assert_array_equal(tr_a.file_ids, tr_b.file_ids)


# ----------------------------------------------------------------------
# synthetic streams: hypothesis over the generator's parameter space
# ----------------------------------------------------------------------
class TestSyntheticStreamEquivalence:
    @given(
        n_requests=st.integers(1, 3_000),
        chunk_size=st.integers(1, 4_096),
        seed=st.integers(0, 2**31 - 1),
        bursty=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_chunked_equals_materialized_generation(self, n_requests,
                                                    chunk_size, seed, bursty):
        cfg = SyntheticWorkloadConfig(n_files=40, n_requests=n_requests,
                                      seed=seed, bursty=bursty)
        batch = WorldCupLikeWorkload(cfg).generate()
        streamed = materialize(cfg, chunk_size=chunk_size)
        assert_traces_identical(batch, streamed)

    @given(chunk_a=st.integers(1, 997), chunk_b=st.integers(1, 997))
    @settings(max_examples=20, deadline=None)
    def test_chunk_size_never_changes_the_stream(self, chunk_a, chunk_b):
        cfg = SyntheticWorkloadConfig(n_files=30, n_requests=1_500, seed=5,
                                      bursty=True)
        assert_traces_identical(materialize(cfg, chunk_size=chunk_a),
                                materialize(cfg, chunk_size=chunk_b))

    def test_chunks_partition_the_request_count(self):
        cfg = SyntheticWorkloadConfig(n_files=20, n_requests=1_000, seed=9)
        stream = SyntheticStream(cfg)
        lengths = [len(c) for c in stream.chunks(333)]
        assert sum(lengths) == cfg.n_requests
        assert all(n == 333 for n in lengths[:-1])
        assert stream.n_requests == cfg.n_requests

    def test_times_are_globally_nondecreasing_across_chunks(self):
        cfg = SyntheticWorkloadConfig(n_files=20, n_requests=2_000, seed=13,
                                      bursty=True)
        last = -np.inf
        for chunk in SyntheticStream(cfg).chunks(101):
            assert chunk.times_s[0] >= last
            assert np.all(np.diff(chunk.times_s) >= 0)
            last = chunk.times_s[-1]

    def test_bad_chunk_size_rejected(self):
        cfg = SyntheticWorkloadConfig(n_files=10, n_requests=100, seed=1)
        with pytest.raises(ValueError):
            next(SyntheticStream(cfg).chunks(0))

    def test_open_stream_coerces_all_forms(self):
        cfg = SyntheticWorkloadConfig(n_files=10, n_requests=100, seed=1)
        from_cfg = open_stream(cfg)
        from_spec = open_stream(SyntheticStreamSpec(cfg))
        assert isinstance(from_cfg, SyntheticStream)
        assert isinstance(from_spec, SyntheticStream)
        already_open = open_stream(from_cfg)
        assert already_open is from_cfg


# ----------------------------------------------------------------------
# cache keying: the digest is spec-derived, buffering-independent
# ----------------------------------------------------------------------
class TestStreamCacheKeys:
    def test_stream_spec_shares_the_config_digest(self):
        cfg = SyntheticWorkloadConfig(n_files=25, n_requests=500, seed=3)
        assert workload_key(SyntheticStreamSpec(cfg)) == workload_key(cfg)

    def test_digest_has_no_chunk_size_input(self):
        # the key API takes no buffering parameters at all: whatever
        # chunk size later drains the stream, the cache entry is shared
        cfg = SyntheticWorkloadConfig(n_files=25, n_requests=500, seed=3)
        key = workload_key(cfg)
        for chunk_size in (1, 97, DEFAULT_CHUNK_SIZE):
            fs, tr = materialize(cfg, chunk_size=chunk_size)
            assert workload_key(cfg) == key

    def test_wc98_spec_key_depends_on_filters(self, tmp_path):
        path = tmp_path / "t.bin"
        write_wc98([_rec(ts=t, obj=t % 3) for t in range(10)], path)
        base = workload_key(WC98StreamSpec(str(path)))
        assert base == workload_key(WC98StreamSpec(str(path)))
        assert base != workload_key(WC98StreamSpec(str(path), min_size_bytes=9))
        assert base != workload_key(WC98StreamSpec(str(path), methods=(0, 1)))


# ----------------------------------------------------------------------
# WC98: chunked reader and stream vs the scalar batch path
# ----------------------------------------------------------------------
def _rec(ts=1000, obj=1, size=5000, method=0):
    return WC98Record(timestamp=ts, client_id=7, object_id=obj, size=size,
                      method=method, status=2, type=1, server=0)


class TestWC98ChunkedReader:
    def test_chunked_concat_equals_scalar_reader(self, tmp_path):
        path = tmp_path / "t.bin"
        records = [_rec(ts=1000 + i, obj=i % 5, size=100 * (i + 1))
                   for i in range(257)]
        write_wc98(records, path)
        scalar = read_wc98(path)
        for rpc in (1, 3, 256, 257, 1000):
            arrs = list(iter_wc98_chunks(path, records_per_chunk=rpc))
            assert sum(a.size for a in arrs) == len(records)
            flat = np.concatenate(arrs)
            assert [int(x) for x in flat["timestamp"]] == \
                [r.timestamp for r in scalar]
            assert [int(x) for x in flat["object_id"]] == \
                [r.object_id for r in scalar]

    def test_chunk_boundary_on_record_boundary(self, tmp_path):
        # file length an exact multiple of both record and chunk size:
        # the EOF probe must terminate cleanly, not yield an empty chunk
        path = tmp_path / "exact.bin"
        write_wc98([_rec(ts=t) for t in range(8)], path)
        arrs = list(iter_wc98_chunks(path, records_per_chunk=4))
        assert [a.size for a in arrs] == [4, 4]

    def test_empty_file_yields_nothing(self, tmp_path):
        path = tmp_path / "empty.bin"
        path.write_bytes(b"")
        assert list(iter_wc98_chunks(path)) == []

    def test_truncated_final_record_located_exactly(self, tmp_path):
        # 5 whole records + 11 stray bytes, read with chunks of 2: the
        # error must carry the *global* record index and byte offset
        path = tmp_path / "cut.bin"
        body = b"".join(_rec(ts=t).pack() for t in range(5))
        path.write_bytes(body + _rec().pack()[:11])
        with pytest.raises(TraceFormatError) as excinfo:
            list(iter_wc98_chunks(path, records_per_chunk=2))
        err = excinfo.value
        assert err.record_index == 5
        assert err.byte_offset == 5 * RECORD_SIZE
        assert err.got_bytes == 11

    def test_truncation_error_does_not_depend_on_chunking(self, tmp_path):
        path = tmp_path / "cut.bin"
        path.write_bytes(b"".join(_rec(ts=t).pack() for t in range(7)) + b"\x01\x02")
        reports = []
        for rpc in (1, 2, 7, 64):
            with pytest.raises(TraceFormatError) as excinfo:
                list(iter_wc98_chunks(path, records_per_chunk=rpc))
            err = excinfo.value
            reports.append((err.record_index, err.byte_offset, err.got_bytes))
        assert set(reports) == {(7, 7 * RECORD_SIZE, 2)}


class TestWC98StreamEquivalence:
    def _write_trace(self, tmp_path, n=200):
        path = tmp_path / "wc.bin"
        records = [_rec(ts=1_000_000 + i // 2, obj=(i * 7) % 13,
                        size=1_000 + 100 * (i % 9), method=(0 if i % 5 else 3))
                   for i in range(n)]
        write_wc98(records, path)
        return path, records

    def test_stream_equals_batch_converter(self, tmp_path):
        path, records = self._write_trace(tmp_path)
        batch_fs, batch_tr = wc98_to_trace(read_wc98(path))
        for chunk_size in (1, 17, 1000):
            streamed = materialize(WC98StreamSpec(str(path)),
                                   chunk_size=chunk_size)
            assert_traces_identical((batch_fs, batch_tr), streamed)

    def test_stream_counts_match_filter(self, tmp_path):
        path, records = self._write_trace(tmp_path)
        stream = WC98Stream(str(path))
        kept = [r for r in records if r.method == 0 and r.size >= 1]
        assert stream.n_requests == len(kept)
        assert stream.t0 == min(r.timestamp for r in kept)

    def test_out_of_order_timestamps_rejected(self, tmp_path):
        path = tmp_path / "ooo.bin"
        write_wc98([_rec(ts=2000), _rec(ts=1000)], path)
        with pytest.raises(ValueError, match="sorted non-decreasing"):
            WC98Stream(str(path))

    def test_nothing_survives_filter_rejected(self, tmp_path):
        path = tmp_path / "allpost.bin"
        write_wc98([_rec(ts=1, method=3)], path)
        with pytest.raises(ValueError, match="survive"):
            WC98Stream(str(path))
