"""Windowed trace analysis: counts, dispersion, working sets, churn."""

import numpy as np
import pytest

from repro.workload.analysis import (
    analyze_trace,
    index_of_dispersion,
    popularity_churn,
    windowed_request_counts,
    working_set_sizes,
)
from repro.workload.synthetic import SyntheticWorkloadConfig, WorldCupLikeWorkload
from repro.workload.trace import Trace


def make_trace(times, fids):
    return Trace(np.asarray(times, dtype=float), np.asarray(fids, dtype=np.int64))


class TestWindowedCounts:
    def test_basic_bucketing(self):
        trace = make_trace([0.1, 0.9, 1.1, 2.5, 2.6], [0, 0, 1, 2, 0])
        np.testing.assert_array_equal(windowed_request_counts(trace, 1.0), [2, 1, 2])

    def test_empty_windows_counted(self):
        trace = make_trace([0.1, 5.1], [0, 1])
        counts = windowed_request_counts(trace, 1.0)
        assert counts.size == 6
        assert counts.sum() == 2

    def test_invalid_window_rejected(self):
        trace = make_trace([0.1], [0])
        with pytest.raises(ValueError):
            windowed_request_counts(trace, 0.0)


class TestDispersion:
    def test_poisson_near_one(self):
        cfg = SyntheticWorkloadConfig(n_files=50, n_requests=50_000, seed=1,
                                      bursty=False, popularity_drift=0.0,
                                      mean_interarrival_s=0.01)
        fs, trace = WorldCupLikeWorkload(cfg).generate()
        assert index_of_dispersion(trace, 5.0) == pytest.approx(1.0, abs=0.4)

    def test_bursty_above_poisson(self):
        base = dict(n_files=50, n_requests=50_000, seed=1,
                    popularity_drift=0.0, mean_interarrival_s=0.01)
        _, poisson = WorldCupLikeWorkload(SyntheticWorkloadConfig(
            bursty=False, **base)).generate()
        _, bursty = WorldCupLikeWorkload(SyntheticWorkloadConfig(
            bursty=True, **base)).generate()
        assert index_of_dispersion(bursty, 1.0) > index_of_dispersion(poisson, 1.0)

    def test_deterministic_grid_below_poisson(self):
        trace = make_trace(np.arange(1, 1001) * 0.01, np.zeros(1000, dtype=int))
        assert index_of_dispersion(trace, 1.0) < 0.5


class TestWorkingSet:
    def test_distinct_files_per_window(self):
        trace = make_trace([0.1, 0.2, 0.3, 1.5, 1.6], [0, 0, 1, 2, 2])
        np.testing.assert_array_equal(working_set_sizes(trace, 1.0), [2, 1])

    def test_bounded_by_population(self):
        cfg = SyntheticWorkloadConfig(n_files=30, n_requests=5_000, seed=2,
                                      mean_interarrival_s=0.01)
        fs, trace = WorldCupLikeWorkload(cfg).generate()
        assert working_set_sizes(trace, 10.0).max() <= 30


class TestPopularityChurn:
    def test_static_popularity_high_correlation(self):
        cfg = SyntheticWorkloadConfig(n_files=100, n_requests=40_000, seed=3,
                                      popularity_drift=0.0, bursty=False,
                                      mean_interarrival_s=0.005)
        fs, trace = WorldCupLikeWorkload(cfg).generate()
        spearman, jaccard = popularity_churn(trace, 100, 50.0)
        assert spearman.mean() > 0.7
        assert jaccard.mean() > 0.6

    def test_drift_lowers_overlap(self):
        base = dict(n_files=100, n_requests=40_000, seed=3, bursty=False,
                    mean_interarrival_s=0.005, drift_segments=8)
        _, static = WorldCupLikeWorkload(SyntheticWorkloadConfig(
            popularity_drift=0.0, **base)).generate()
        _, drifting = WorldCupLikeWorkload(SyntheticWorkloadConfig(
            popularity_drift=0.8, **base)).generate()
        _, j_static = popularity_churn(static, 100, 25.0)
        _, j_drift = popularity_churn(drifting, 100, 25.0)
        assert j_drift.mean() < j_static.mean()

    def test_needs_two_windows(self):
        trace = make_trace([0.1, 0.2], [0, 1])
        with pytest.raises(ValueError):
            popularity_churn(trace, 2, 10.0)


class TestAnalyzeTrace:
    def test_summary_fields(self):
        cfg = SyntheticWorkloadConfig(n_files=80, n_requests=20_000, seed=4,
                                      mean_interarrival_s=0.01)
        fs, trace = WorldCupLikeWorkload(cfg).generate()
        a = analyze_trace(trace, 80, window_s=20.0)
        assert a.n_windows >= 2
        assert a.mean_rate_per_s == pytest.approx(100.0, rel=0.3)
        assert 0 < a.mean_working_set <= a.max_working_set <= 80
        assert -1.0 <= a.mean_rank_correlation <= 1.0
        assert 0.0 <= a.mean_topk_jaccard <= 1.0

    def test_single_window_degenerate(self):
        trace = make_trace([0.1, 0.2, 0.3], [0, 1, 2])
        a = analyze_trace(trace, 3, window_s=100.0)
        assert a.n_windows == 1
        assert a.mean_rank_correlation == 1.0
