"""Zipf popularity math: distribution shape, sampling, and the paper's
skew parameter (DESIGN.md inconsistency 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.zipf import (
    fit_zipf_alpha,
    measure_access_skew,
    skew_theta,
    theta_from_counts,
    zipf_probabilities,
    zipf_sample_ranks,
)


class TestZipfProbabilities:
    def test_sums_to_one(self):
        assert zipf_probabilities(1000, 0.8).sum() == pytest.approx(1.0)

    def test_alpha_zero_is_uniform(self):
        p = zipf_probabilities(10, 0.0)
        np.testing.assert_allclose(p, 0.1)

    def test_monotone_decreasing_in_rank(self):
        p = zipf_probabilities(500, 0.7)
        assert np.all(np.diff(p) <= 0)

    def test_classic_zipf_ratio(self):
        p = zipf_probabilities(100, 1.0)
        assert p[0] / p[1] == pytest.approx(2.0)

    def test_single_file(self):
        np.testing.assert_allclose(zipf_probabilities(1, 0.9), [1.0])

    def test_invalid_n_rejected(self):
        with pytest.raises(ValueError):
            zipf_probabilities(0, 0.5)


class TestZipfSampling:
    def test_deterministic_with_seed(self):
        a = zipf_sample_ranks(100, 0.8, 1000, seed=3)
        b = zipf_sample_ranks(100, 0.8, 1000, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_ranks_in_range(self):
        ranks = zipf_sample_ranks(50, 0.9, 10_000, seed=1)
        assert ranks.min() >= 0
        assert ranks.max() < 50

    def test_empirical_frequencies_match_probabilities(self):
        n, alpha = 20, 0.8
        ranks = zipf_sample_ranks(n, alpha, 200_000, seed=5)
        empirical = np.bincount(ranks, minlength=n) / ranks.size
        np.testing.assert_allclose(empirical, zipf_probabilities(n, alpha), atol=0.01)

    def test_zero_samples(self):
        assert zipf_sample_ranks(10, 0.5, 0).size == 0


class TestSkewMeasurement:
    def test_uniform_counts_give_top_fraction(self):
        counts = np.ones(100)
        assert measure_access_skew(counts, 0.2) == pytest.approx(0.2)

    def test_total_concentration(self):
        counts = np.zeros(100)
        counts[3] = 50
        assert measure_access_skew(counts, 0.2) == pytest.approx(1.0)

    def test_zero_counts_give_zero(self):
        assert measure_access_skew(np.zeros(10), 0.2) == 0.0

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            measure_access_skew(np.array([1.0, -1.0]), 0.2)


class TestSkewTheta:
    def test_80_20_rule(self):
        # theta = ln(0.8)/ln(0.2) ~ 0.1386
        assert skew_theta(80.0, 20.0) == pytest.approx(0.13864, abs=1e-4)

    def test_uniform_gives_one(self):
        assert skew_theta(20.0, 20.0) == pytest.approx(1.0)

    def test_more_skew_gives_smaller_theta(self):
        assert skew_theta(95.0, 20.0) < skew_theta(70.0, 20.0)

    def test_all_accesses_in_top_gives_zero(self):
        assert skew_theta(100.0, 20.0) == 0.0

    def test_accesses_below_files_rejected(self):
        with pytest.raises(ValueError):
            skew_theta(10.0, 20.0)

    @given(st.floats(1.0, 99.0), st.floats(1.0, 99.0))
    @settings(max_examples=200)
    def test_theta_always_in_unit_interval(self, a, b):
        if a < b:
            a, b = b, a
        theta = skew_theta(a, b)
        assert 0.0 <= theta <= 1.0


class TestThetaFromCounts:
    def test_measured_theta_matches_direct_formula(self):
        counts = np.zeros(100)
        counts[:20] = 40.0  # exactly 80% of accesses on top 20% of files
        counts[20:] = 2.5
        assert theta_from_counts(counts, 0.2) == pytest.approx(skew_theta(80.0, 20.0), abs=1e-6)

    def test_no_accesses_treated_as_uniform(self):
        assert theta_from_counts(np.zeros(10)) == 1.0

    def test_zipf_sample_theta_reasonable(self):
        ranks = zipf_sample_ranks(1000, 0.8, 100_000, seed=2)
        counts = np.bincount(ranks, minlength=1000)
        theta = theta_from_counts(counts)
        assert 0.05 < theta < 0.9


class TestFitZipfAlpha:
    def test_recovers_generating_alpha(self):
        ranks = zipf_sample_ranks(500, 0.8, 500_000, seed=9)
        counts = np.bincount(ranks, minlength=500)
        assert fit_zipf_alpha(counts) == pytest.approx(0.8, abs=0.1)

    def test_uniform_counts_fit_zero(self):
        assert fit_zipf_alpha(np.full(100, 50.0)) == pytest.approx(0.0, abs=1e-9)

    def test_needs_two_nonzero(self):
        with pytest.raises(ValueError):
            fit_zipf_alpha(np.array([5.0, 0.0, 0.0]))
