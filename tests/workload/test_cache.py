"""WorkloadCache: keying, LRU behavior, on-disk round-trip."""

import dataclasses

import numpy as np
import pytest

from repro.workload.cache import (
    DEFAULT_MAX_ENTRIES,
    WorkloadCache,
    cached_generate,
    default_cache,
    workload_key,
)
from repro.workload.synthetic import SyntheticWorkloadConfig

CFG = SyntheticWorkloadConfig(n_files=60, n_requests=800, seed=9)


def _variants() -> list[SyntheticWorkloadConfig]:
    return [
        CFG,
        dataclasses.replace(CFG, seed=10),
        dataclasses.replace(CFG, n_requests=801),
        dataclasses.replace(CFG, bursty=True),
        dataclasses.replace(CFG, size_kwargs={"median_kb": 64.0}),
    ]


class TestWorkloadKey:
    def test_equal_configs_share_a_key(self):
        assert workload_key(CFG) == workload_key(dataclasses.replace(CFG))

    def test_any_field_change_changes_the_key(self):
        keys = [workload_key(c) for c in _variants()]
        assert len(set(keys)) == len(keys)

    def test_size_kwargs_order_does_not_matter(self):
        a = dataclasses.replace(CFG, size_kwargs={"median_kb": 32.0, "sigma": 1.2})
        b = dataclasses.replace(CFG, size_kwargs={"sigma": 1.2, "median_kb": 32.0})
        assert workload_key(a) == workload_key(b)


class TestInMemoryCache:
    def test_miss_then_hit_returns_same_objects(self):
        cache = WorkloadCache()
        first = cache.get_or_generate(CFG)
        second = cache.get_or_generate(dataclasses.replace(CFG))
        assert first[0] is second[0] and first[1] is second[1]
        assert (cache.misses, cache.hits) == (1, 1)

    def test_distinct_configs_miss_independently(self):
        cache = WorkloadCache()
        for cfg in _variants():
            cache.get_or_generate(cfg)
        assert cache.misses == len(_variants())
        assert cache.hits == 0

    def test_lru_eviction_drops_oldest(self):
        cache = WorkloadCache(max_entries=2)
        a, b, c = _variants()[:3]
        cache.get_or_generate(a)
        cache.get_or_generate(b)
        cache.get_or_generate(a)   # refresh a; b is now oldest
        cache.get_or_generate(c)   # evicts b
        assert len(cache) == 2
        cache.get_or_generate(a)
        assert cache.hits == 2     # a stayed resident
        cache.get_or_generate(b)   # regenerated
        assert cache.misses == 4

    def test_clear_empties_memory(self):
        cache = WorkloadCache()
        cache.get_or_generate(CFG)
        cache.clear()
        assert len(cache) == 0
        cache.get_or_generate(CFG)
        assert cache.misses == 2

    def test_rejects_bad_max_entries(self):
        with pytest.raises(ValueError, match="max_entries"):
            WorkloadCache(max_entries=0)


class TestOnDiskStore:
    def test_round_trip_across_cache_instances(self, tmp_path):
        writer = WorkloadCache(disk_dir=tmp_path)
        fs1, tr1 = writer.get_or_generate(CFG)
        assert writer.misses == 1
        assert list(tmp_path.glob("workload-*.npz"))

        reader = WorkloadCache(disk_dir=tmp_path)
        fs2, tr2 = reader.get_or_generate(CFG)
        assert (reader.misses, reader.disk_hits) == (0, 1)
        np.testing.assert_array_equal(fs1.sizes_mb, fs2.sizes_mb)
        np.testing.assert_array_equal(tr1.times_s, tr2.times_s)
        np.testing.assert_array_equal(tr1.file_ids, tr2.file_ids)

    def test_corrupt_entry_falls_back_to_regeneration(self, tmp_path):
        writer = WorkloadCache(disk_dir=tmp_path)
        writer.get_or_generate(CFG)
        (path,) = tmp_path.glob("workload-*.npz")
        path.write_bytes(b"not an npz archive")

        reader = WorkloadCache(disk_dir=tmp_path)
        fs, tr = reader.get_or_generate(CFG)
        assert reader.misses == 1 and reader.disk_hits == 0
        assert len(tr) == CFG.n_requests

    def test_corrupt_entry_is_quarantined_not_deleted(self, tmp_path):
        writer = WorkloadCache(disk_dir=tmp_path)
        writer.get_or_generate(CFG)
        (path,) = tmp_path.glob("workload-*.npz")
        path.write_bytes(b"not an npz archive")

        reader = WorkloadCache(disk_dir=tmp_path)
        reader.get_or_generate(CFG)
        assert reader.quarantined == 1
        corpse = path.with_name(path.name + ".corrupt")
        assert corpse.exists() and corpse.read_bytes() == b"not an npz archive"
        # regeneration republished a healthy entry under the original name
        assert path.exists()
        fresh = WorkloadCache(disk_dir=tmp_path)
        fresh.get_or_generate(CFG)
        assert fresh.disk_hits == 1 and fresh.quarantined == 0

    def test_truncated_entry_is_quarantined(self, tmp_path):
        """A process killed mid-write leaves a torn zip: quarantine it."""
        writer = WorkloadCache(disk_dir=tmp_path)
        writer.get_or_generate(CFG)
        (path,) = tmp_path.glob("workload-*.npz")
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])

        reader = WorkloadCache(disk_dir=tmp_path)
        fs, tr = reader.get_or_generate(CFG)
        assert reader.quarantined == 1 and reader.misses == 1
        assert len(tr) == CFG.n_requests
        assert path.with_name(path.name + ".corrupt").exists()

    def test_writes_leave_no_temp_droppings(self, tmp_path):
        cache = WorkloadCache(disk_dir=tmp_path)
        cache.get_or_generate(CFG)
        leftovers = [p for p in tmp_path.iterdir() if p.suffix != ".npz"]
        assert leftovers == []

    def test_memory_only_cache_never_touches_disk(self, tmp_path):
        cache = WorkloadCache()
        assert cache.disk_dir is None
        cache.get_or_generate(CFG)
        assert not list(tmp_path.iterdir())


class TestDefaultCache:
    def test_cached_generate_uses_the_singleton(self):
        cache = default_cache()
        assert cache.max_entries == DEFAULT_MAX_ENTRIES
        before = cache.hits + cache.misses
        a = cached_generate(CFG)
        b = cached_generate(dataclasses.replace(CFG))
        assert a[0] is b[0]
        assert cache.hits + cache.misses >= before + 2
