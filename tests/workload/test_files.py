"""FileSet and size-distribution generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.files import (
    FileSet,
    hybrid_web_sizes,
    lognormal_web_sizes,
    pareto_web_sizes,
)


class TestSizeDistributions:
    def test_lognormal_positive_and_deterministic(self):
        a = lognormal_web_sizes(1000, seed=1)
        b = lognormal_web_sizes(1000, seed=1)
        assert np.all(a > 0)
        np.testing.assert_array_equal(a, b)

    def test_lognormal_median_close_to_parameter(self):
        sizes = lognormal_web_sizes(50_000, median_kb=6.0, seed=2)
        assert np.median(sizes) * 1024 == pytest.approx(6.0, rel=0.1)

    def test_pareto_respects_minimum(self):
        sizes = pareto_web_sizes(5000, min_kb=30.0, seed=3)
        assert np.all(sizes * 1024 >= 30.0 - 1e-9)

    def test_pareto_heavier_tail_than_lognormal(self):
        ln = lognormal_web_sizes(50_000, seed=4)
        pa = pareto_web_sizes(50_000, seed=4)
        assert pa.max() > ln.max()

    def test_hybrid_mixes_tail(self):
        sizes = hybrid_web_sizes(10_000, tail_fraction=0.1, seed=5)
        assert sizes.size == 10_000
        assert np.all(sizes > 0)

    def test_hybrid_zero_tail_is_pure_lognormal_shape(self):
        sizes = hybrid_web_sizes(1000, tail_fraction=0.0, seed=6)
        assert np.all(sizes > 0)

    def test_hybrid_rejects_unknown_kwargs(self):
        with pytest.raises(ValueError, match="unknown"):
            hybrid_web_sizes(10, bogus_param=1.0)

    def test_empty_generation(self):
        assert lognormal_web_sizes(0).size == 0
        assert pareto_web_sizes(0).size == 0


class TestFileSet:
    def test_basic_accessors(self, tiny_fileset):
        assert len(tiny_fileset) == 8
        assert tiny_fileset.size_of(2) == 4.0
        assert tiny_fileset.total_mb == pytest.approx(30.0)
        assert tiny_fileset.mean_mb == pytest.approx(3.75)
        assert tiny_fileset[1].size_mb == 2.0

    def test_iteration_yields_specs_in_id_order(self, tiny_fileset):
        specs = list(tiny_fileset)
        assert [s.file_id for s in specs] == list(range(8))

    def test_sizes_readonly(self, tiny_fileset):
        with pytest.raises(ValueError):
            tiny_fileset.sizes_mb[0] = 99.0

    def test_sorted_by_size_stable(self, tiny_fileset):
        order = tiny_fileset.ids_sorted_by_size()
        sizes = tiny_fileset.sizes_mb[order]
        assert np.all(np.diff(sizes) >= 0)
        # stability: equal sizes keep id order (1.0 MB files are ids 0, 4)
        assert list(order[:2]) == [0, 4]

    def test_sorted_descending(self, tiny_fileset):
        order = tiny_fileset.ids_sorted_by_size(descending=True)
        assert tiny_fileset.sizes_mb[order[0]] == 8.0

    def test_uniform_constructor(self):
        fs = FileSet.uniform(5, 2.5)
        assert np.all(fs.sizes_mb == 2.5)

    def test_web_like_constructor_deterministic(self):
        a = FileSet.web_like(100, seed=7)
        b = FileSet.web_like(100, seed=7)
        np.testing.assert_array_equal(a.sizes_mb, b.sizes_mb)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            FileSet(np.array([]))

    def test_rejects_nonpositive_sizes(self):
        with pytest.raises(ValueError):
            FileSet(np.array([1.0, 0.0]))

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            FileSet(np.array([1.0, np.nan]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            FileSet(np.ones((2, 2)))

    @given(st.lists(st.floats(1e-6, 1e3), min_size=1, max_size=50))
    @settings(max_examples=50)
    def test_total_is_sum_property(self, sizes):
        fs = FileSet(np.array(sizes))
        assert fs.total_mb == pytest.approx(sum(sizes), rel=1e-9)
