"""Trace container: validation, stats, transforms, persistence."""

import numpy as np
import pytest

from repro.workload.files import FileSet
from repro.workload.trace import Trace


@pytest.fixture
def simple_trace() -> Trace:
    return Trace(np.array([0.0, 1.0, 2.0, 2.0, 5.0]),
                 np.array([0, 1, 0, 2, 1]))


class TestConstruction:
    def test_basic(self, simple_trace):
        assert len(simple_trace) == 5
        assert simple_trace.duration_s == 5.0

    def test_empty_trace(self):
        t = Trace(np.array([]), np.array([], dtype=np.int64))
        assert len(t) == 0
        assert t.duration_s == 0.0

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            Trace(np.array([1.0, 0.5]), np.array([0, 0]))

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            Trace(np.array([-1.0, 0.0]), np.array([0, 0]))

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            Trace(np.array([0.0]), np.array([-1]))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Trace(np.array([0.0, 1.0]), np.array([0]))

    def test_arrays_are_readonly(self, simple_trace):
        with pytest.raises(ValueError):
            simple_trace.times_s[0] = 9.0

    def test_defensive_copy_of_inputs(self):
        times = np.array([0.0, 1.0])
        t = Trace(times, np.array([0, 1]))
        times[0] = 99.0
        assert t.times_s[0] == 0.0


class TestAccessCounts:
    def test_counts(self, simple_trace):
        counts = simple_trace.access_counts(4)
        np.testing.assert_array_equal(counts, [2, 2, 1, 0])

    def test_too_small_population_rejected(self, simple_trace):
        with pytest.raises(ValueError):
            simple_trace.access_counts(2)


class TestStats:
    def test_stats_fields(self, simple_trace):
        s = simple_trace.stats(3)
        assert s.n_requests == 5
        assert s.n_files_referenced == 3
        assert s.duration_s == 5.0
        assert s.mean_interarrival_s == pytest.approx(1.25)
        assert 0.0 <= s.theta <= 1.0

    def test_stats_requires_two_requests(self):
        t = Trace(np.array([1.0]), np.array([0]))
        with pytest.raises(ValueError):
            t.stats()


class TestTransforms:
    def test_time_scaled_compresses(self, simple_trace):
        heavy = simple_trace.time_scaled(0.5)
        assert heavy.duration_s == 2.5
        np.testing.assert_array_equal(heavy.file_ids, simple_trace.file_ids)

    def test_time_scaled_rejects_nonpositive(self, simple_trace):
        with pytest.raises(ValueError):
            simple_trace.time_scaled(0.0)

    def test_head(self, simple_trace):
        h = simple_trace.head(2)
        assert len(h) == 2
        assert h.duration_s == 1.0

    def test_window_rebases_times(self, simple_trace):
        w = simple_trace.window(1.0, 3.0)
        np.testing.assert_allclose(w.times_s, [0.0, 1.0, 1.0])
        np.testing.assert_array_equal(w.file_ids, [1, 0, 2])

    def test_window_empty(self, simple_trace):
        assert len(simple_trace.window(10.0, 20.0)) == 0


class TestPersistence:
    def test_csv_roundtrip(self, simple_trace, tmp_path):
        path = tmp_path / "trace.csv"
        simple_trace.to_csv(path)
        loaded = Trace.from_csv(path)
        np.testing.assert_allclose(loaded.times_s, simple_trace.times_s)
        np.testing.assert_array_equal(loaded.file_ids, simple_trace.file_ids)

    def test_csv_header_present(self, simple_trace, tmp_path):
        path = tmp_path / "trace.csv"
        simple_trace.to_csv(path)
        assert path.read_text().splitlines()[0] == "time_s,file_id"


class TestRequestsIterator:
    def test_materializes_sizes(self, simple_trace):
        fs = FileSet(np.array([1.0, 2.0, 3.0]))
        reqs = list(simple_trace.requests(fs))
        assert len(reqs) == 5
        assert reqs[0].size_mb == 1.0
        assert reqs[3].size_mb == 3.0
        assert reqs[4].arrival_time == 5.0
