"""Synthetic WC98-like generator: determinism, statistics, drift, heavy."""

import numpy as np
import pytest

from repro.workload.synthetic import (
    WORLDCUP_MEAN_INTERARRIVAL_S,
    SyntheticWorkloadConfig,
    WorldCupLikeWorkload,
)


def make(n_files=300, n_requests=20_000, **kw):
    return WorldCupLikeWorkload(SyntheticWorkloadConfig(
        n_files=n_files, n_requests=n_requests, seed=11, **kw))


class TestConfig:
    def test_defaults_match_paper_trace(self):
        cfg = SyntheticWorkloadConfig()
        assert cfg.n_files == 4079
        assert cfg.mean_interarrival_s == WORLDCUP_MEAN_INTERARRIVAL_S

    def test_heavy_scales_rate_and_requests_same_duration(self):
        cfg = SyntheticWorkloadConfig(n_requests=1000)
        heavy = cfg.heavy(4.0)
        assert heavy.mean_interarrival_s == pytest.approx(cfg.mean_interarrival_s / 4)
        assert heavy.n_requests == 4000

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            SyntheticWorkloadConfig(zipf_alpha=1.5)

    def test_invalid_drift_rejected(self):
        with pytest.raises(ValueError):
            SyntheticWorkloadConfig(popularity_drift=1.5)


class TestGeneration:
    def test_deterministic(self):
        fs1, t1 = make().generate()
        fs2, t2 = make().generate()
        np.testing.assert_array_equal(fs1.sizes_mb, fs2.sizes_mb)
        np.testing.assert_array_equal(t1.file_ids, t2.file_ids)
        np.testing.assert_allclose(t1.times_s, t2.times_s)

    def test_trace_statistics_near_config(self):
        wl = make(n_requests=50_000)
        fs, trace = wl.generate()
        stats = trace.stats(len(fs))
        assert stats.mean_interarrival_s == pytest.approx(
            wl.config.mean_interarrival_s, rel=0.05)
        assert stats.zipf_alpha == pytest.approx(wl.config.zipf_alpha, abs=0.2)

    def test_all_ids_in_range(self):
        fs, trace = make().generate()
        assert trace.file_ids.min() >= 0
        assert trace.file_ids.max() < len(fs)

    def test_skew_present(self):
        fs, trace = make(n_requests=50_000).generate()
        stats = trace.stats(len(fs))
        assert stats.top20_access_fraction > 0.4  # clearly non-uniform


class TestPopularityOrder:
    def test_full_correlation_puts_smallest_first(self):
        wl = make(size_popularity_correlation=1.0)
        fs = wl.build_fileset()
        order = wl.popularity_order(fs)
        sizes_in_rank_order = fs.sizes_mb[order]
        # rank 0 (most popular) is the smallest file
        assert sizes_in_rank_order[0] == fs.sizes_mb.min()

    def test_order_is_permutation(self):
        wl = make()
        fs = wl.build_fileset()
        order = wl.popularity_order(fs)
        np.testing.assert_array_equal(np.sort(order), np.arange(len(fs)))

    def test_zero_correlation_decorrelates(self):
        wl = make(size_popularity_correlation=0.0)
        fs = wl.build_fileset()
        order = wl.popularity_order(fs)
        ranks = np.empty(len(fs))
        ranks[order] = np.arange(len(fs))
        corr = np.corrcoef(ranks, fs.sizes_mb)[0, 1]
        assert abs(corr) < 0.2


class TestDrift:
    def test_zero_drift_single_mapping(self):
        wl = make(popularity_drift=0.0, drift_segments=4)
        fs = wl.build_fileset()
        orders = wl.drifted_orders(fs)
        for o in orders[1:]:
            np.testing.assert_array_equal(o, orders[0])

    def test_drift_changes_mappings(self):
        wl = make(popularity_drift=0.3, drift_segments=4)
        fs = wl.build_fileset()
        orders = wl.drifted_orders(fs)
        assert any(not np.array_equal(o, orders[0]) for o in orders[1:])

    def test_drift_preserves_permutation(self):
        wl = make(popularity_drift=0.5, drift_segments=6)
        fs = wl.build_fileset()
        for o in wl.drifted_orders(fs):
            np.testing.assert_array_equal(np.sort(o), np.arange(len(fs)))

    def test_drift_fraction_controls_movement(self):
        wl = make(popularity_drift=0.1, drift_segments=2)
        fs = wl.build_fileset()
        o0, o1 = wl.drifted_orders(fs)
        moved = np.sum(o0 != o1)
        assert 0 < moved <= int(0.1 * len(fs)) + 1
