"""WorldCup98 binary format: wire layout, roundtrips, trace conversion."""

import io
import struct

import numpy as np
import pytest

from repro.workload.wc98 import (
    RECORD_SIZE,
    TraceFormatError,
    WC98Record,
    read_wc98,
    wc98_to_trace,
    write_wc98,
)


def rec(ts=1000, obj=1, size=5000, method=0, **kw):
    return WC98Record(timestamp=ts, client_id=kw.get("client_id", 42),
                      object_id=obj, size=size, method=method,
                      status=kw.get("status", 2), type=kw.get("type", 1),
                      server=kw.get("server", 0))


class TestWireFormat:
    def test_record_is_20_bytes(self):
        assert RECORD_SIZE == 20
        assert len(rec().pack()) == 20

    def test_big_endian_layout(self):
        packed = rec(ts=0x01020304, obj=0x0A0B0C0D, size=0x11223344).pack()
        assert packed[:4] == bytes([1, 2, 3, 4])
        assert packed[8:12] == bytes([0x0A, 0x0B, 0x0C, 0x0D])
        assert packed[12:16] == bytes([0x11, 0x22, 0x33, 0x44])

    def test_field_order_matches_spec(self):
        packed = rec(method=7, status=8, type=9).pack()
        ts, cid, oid, size, method, status, ftype, server = struct.unpack(">IIIIBBBB", packed)
        assert (method, status, ftype) == (7, 8, 9)


class TestRoundtrip:
    def test_file_roundtrip(self, tmp_path):
        records = [rec(ts=1000 + i, obj=i % 3, size=100 * (i + 1)) for i in range(10)]
        path = tmp_path / "wc98.bin"
        assert write_wc98(records, path) == 10
        loaded = read_wc98(path)
        assert loaded == records

    def test_stream_roundtrip(self):
        records = [rec(ts=t) for t in (5, 6, 7)]
        buf = io.BytesIO()
        write_wc98(records, buf)
        buf.seek(0)
        assert read_wc98(buf) == records

    def test_max_records_cap(self, tmp_path):
        path = tmp_path / "wc98.bin"
        write_wc98([rec(ts=t) for t in range(50)], path)
        assert len(read_wc98(path, max_records=7)) == 7

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(rec().pack()[:13])
        with pytest.raises(ValueError, match="truncated"):
            read_wc98(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.bin"
        path.write_bytes(b"")
        assert read_wc98(path) == []


class TestMalformedInput:
    """Crafted corrupt/truncated streams must fail with a located
    TraceFormatError, never silently drop or mis-parse the tail."""

    def test_error_locates_truncated_tail(self, tmp_path):
        # 3 good records followed by 13 bytes of a fourth
        path = tmp_path / "cut.bin"
        good = [rec(ts=t) for t in range(3)]
        path.write_bytes(b"".join(r.pack() for r in good) + rec().pack()[:13])
        with pytest.raises(TraceFormatError) as excinfo:
            read_wc98(path)
        err = excinfo.value
        assert err.record_index == 3
        assert err.byte_offset == 3 * RECORD_SIZE
        assert err.got_bytes == 13
        assert "record #3" in str(err)
        assert f"byte {3 * RECORD_SIZE}" in str(err)

    def test_single_trailing_byte(self, tmp_path):
        path = tmp_path / "one.bin"
        path.write_bytes(rec().pack() + b"\x00")
        with pytest.raises(TraceFormatError) as excinfo:
            read_wc98(path)
        assert excinfo.value.record_index == 1
        assert excinfo.value.got_bytes == 1

    def test_error_is_a_value_error(self):
        # callers catching the historical ValueError keep working
        with pytest.raises(ValueError, match="truncated"):
            read_wc98(io.BytesIO(b"\x01" * 7))

    def test_max_records_before_corruption_still_reads(self, tmp_path):
        # the cap stops reading before the bad tail is ever touched
        path = tmp_path / "cut.bin"
        good = [rec(ts=t) for t in range(5)]
        path.write_bytes(b"".join(r.pack() for r in good) + b"\xff" * 6)
        assert read_wc98(path, max_records=5) == good
        with pytest.raises(TraceFormatError):
            read_wc98(path)

    def test_short_reads_mid_stream_are_completed(self):
        # a pipe-like stream that returns one byte per read() is legal
        # input, not corruption
        class Dribble(io.RawIOBase):
            def __init__(self, data):
                self._buf = io.BytesIO(data)

            def read(self, n=-1):
                return self._buf.read(1 if n is None or n < 0 else min(1, n))

        records = [rec(ts=t) for t in (5, 6, 7)]
        data = b"".join(r.pack() for r in records)
        assert read_wc98(Dribble(data)) == records


class TestTraceConversion:
    def test_basic_conversion(self):
        records = [
            rec(ts=100, obj=7, size=2_000_000),
            rec(ts=101, obj=9, size=1_000_000),
            rec(ts=103, obj=7, size=2_000_000),
        ]
        fs, trace = wc98_to_trace(records)
        assert len(fs) == 2
        assert len(trace) == 3
        np.testing.assert_allclose(trace.times_s, [0.0, 1.0, 3.0])
        # dense remap: obj 7 -> 0, obj 9 -> 1 (sorted unique)
        np.testing.assert_array_equal(trace.file_ids, [0, 1, 0])
        assert fs.size_of(0) == pytest.approx(2.0)  # bytes -> MB

    def test_max_response_size_wins(self):
        records = [rec(ts=1, obj=5, size=100_000), rec(ts=2, obj=5, size=900_000)]
        fs, _ = wc98_to_trace(records)
        assert fs.size_of(0) == pytest.approx(0.9)

    def test_method_filtering(self):
        records = [rec(ts=1, obj=1, method=0), rec(ts=2, obj=2, method=3)]
        fs, trace = wc98_to_trace(records)
        assert len(trace) == 1

    def test_zero_size_filtered(self):
        records = [rec(ts=1, obj=1, size=0), rec(ts=2, obj=2, size=10)]
        _, trace = wc98_to_trace(records)
        assert len(trace) == 1

    def test_unsorted_input_is_sorted(self):
        records = [rec(ts=50, obj=1), rec(ts=10, obj=2)]
        _, trace = wc98_to_trace(records)
        assert trace.times_s[0] == 0.0
        assert trace.duration_s == 40.0

    def test_all_filtered_rejected(self):
        with pytest.raises(ValueError):
            wc98_to_trace([rec(method=9)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            wc98_to_trace([])

    def test_synthetic_day_roundtrip(self, tmp_path):
        """Write a synthetic 'day' in WC98 format, read it back, simulate-ready."""
        rng = np.random.default_rng(0)
        records = [rec(ts=int(t), obj=int(o), size=int(s))
                   for t, o, s in zip(np.sort(rng.integers(0, 86400, 500)),
                                      rng.integers(0, 40, 500),
                                      rng.integers(1000, 500_000, 500))]
        path = tmp_path / "day.bin"
        write_wc98(records, path)
        fs, trace = wc98_to_trace(read_wc98(path))
        assert len(trace) == 500
        assert trace.file_ids.max() < len(fs)
