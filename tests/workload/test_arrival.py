"""Arrival processes: rates, ordering, determinism."""

import numpy as np
import pytest

from repro.workload.arrival import (
    diurnal_poisson_arrivals,
    onoff_bursty_arrivals,
    poisson_arrivals,
    uniform_arrivals,
)

ALL_GENERATORS = [
    lambda n, gap, seed: poisson_arrivals(n, gap, seed=seed),
    lambda n, gap, seed: onoff_bursty_arrivals(n, gap, seed=seed),
    lambda n, gap, seed: diurnal_poisson_arrivals(n, gap, seed=seed),
]


@pytest.mark.parametrize("gen", ALL_GENERATORS)
def test_sorted_positive_and_correct_length(gen):
    times = gen(5000, 0.05, 1)
    assert times.size == 5000
    assert np.all(np.diff(times) >= 0)
    assert times[0] >= 0


@pytest.mark.parametrize("gen", ALL_GENERATORS)
def test_deterministic_with_seed(gen):
    np.testing.assert_array_equal(gen(1000, 0.1, 7), gen(1000, 0.1, 7))


@pytest.mark.parametrize("gen", ALL_GENERATORS)
def test_zero_requests(gen):
    assert gen(0, 0.1, 1).size == 0


def test_poisson_mean_interarrival():
    times = poisson_arrivals(100_000, 0.0584, seed=2)
    assert np.diff(times).mean() == pytest.approx(0.0584, rel=0.02)


def test_uniform_is_exact_grid():
    times = uniform_arrivals(5, 2.0)
    np.testing.assert_allclose(times, [2.0, 4.0, 6.0, 8.0, 10.0])


def test_bursty_preserves_global_mean():
    times = onoff_bursty_arrivals(200_000, 0.05, seed=3)
    assert np.diff(times).mean() == pytest.approx(0.05, rel=0.05)


def test_bursty_has_higher_variance_than_poisson():
    gaps_b = np.diff(onoff_bursty_arrivals(100_000, 0.05, seed=4))
    gaps_p = np.diff(poisson_arrivals(100_000, 0.05, seed=4))
    assert gaps_b.std() > gaps_p.std()


def test_bursty_parameter_validation():
    with pytest.raises(ValueError):
        onoff_bursty_arrivals(10, 0.05, burst_factor=1.0)
    with pytest.raises(ValueError):
        onoff_bursty_arrivals(10, 0.05, on_fraction=1.0)
    with pytest.raises(ValueError):
        onoff_bursty_arrivals(10, 0.05, mean_burst_len=0)


def test_diurnal_rate_varies_with_phase():
    # rate peaks at period/4 (sin max), troughs at 3*period/4
    period = 10_000.0
    times = diurnal_poisson_arrivals(200_000, 0.05, period_s=period,
                                     amplitude=0.8, seed=5)
    phase = (times % period) / period
    peak = np.sum((phase > 0.15) & (phase < 0.35))
    trough = np.sum((phase > 0.65) & (phase < 0.85))
    assert peak > 1.5 * trough


def test_diurnal_amplitude_validation():
    with pytest.raises(ValueError):
        diurnal_poisson_arrivals(10, 0.05, amplitude=1.0)
    with pytest.raises(ValueError):
        diurnal_poisson_arrivals(10, 0.05, amplitude=-0.1)
