"""FileSpec and Request value types."""

import pytest

from repro.workload.request import FileSpec, Request


class TestFileSpec:
    def test_valid(self):
        spec = FileSpec(3, 1.5)
        assert spec.file_id == 3
        assert spec.size_mb == 1.5

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            FileSpec(-1, 1.0)

    def test_nonpositive_size_rejected(self):
        with pytest.raises(ValueError):
            FileSpec(0, 0.0)

    def test_frozen(self):
        spec = FileSpec(0, 1.0)
        with pytest.raises(AttributeError):
            spec.size_mb = 2.0


class TestRequest:
    def test_lifecycle(self):
        req = Request(arrival_time=1.0, file_id=2, size_mb=0.5)
        assert not req.completed
        req.service_start = 1.5
        req.completion_time = 2.0
        assert req.completed
        assert req.response_time == pytest.approx(1.0)
        assert req.waiting_time == pytest.approx(0.5)

    def test_response_time_before_completion_raises(self):
        req = Request(arrival_time=0.0, file_id=0, size_mb=1.0)
        with pytest.raises(ValueError):
            _ = req.response_time

    def test_waiting_time_before_service_raises(self):
        req = Request(arrival_time=0.0, file_id=0, size_mb=1.0)
        with pytest.raises(ValueError):
            _ = req.waiting_time

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError):
            Request(arrival_time=-1.0, file_id=0, size_mb=1.0)

    def test_bad_file_id_rejected(self):
        with pytest.raises(ValueError):
            Request(arrival_time=0.0, file_id=-2, size_mb=1.0)

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            Request(arrival_time=0.0, file_id=0, size_mb=-1.0)
