"""DiskArray: placement ledger, routing, migration cost, capacity."""

import numpy as np
import pytest

from repro.disk.array import DiskArray
from repro.disk.parameters import DiskSpeed
from repro.sim.engine import Simulator
from repro.workload.files import FileSet
from repro.workload.request import Request


@pytest.fixture
def array(sim, params, tiny_fileset):
    return DiskArray(sim, params, 4, tiny_fileset)


class TestConstruction:
    def test_geometry(self, array):
        assert len(array) == 4
        assert array.n_disks == 4
        assert array.drive(2).disk_id == 2

    def test_all_unplaced_initially(self, array, tiny_fileset):
        assert np.all(array.placement == -1)
        assert array.location_of(0) == -1

    def test_oversized_fileset_rejected(self, sim, params):
        huge = FileSet(np.array([params.capacity_mb * 3]))
        with pytest.raises(ValueError):
            DiskArray(sim, params, 2, huge)

    def test_initial_speed_applies_to_all(self, sim, params, tiny_fileset):
        arr = DiskArray(sim, params, 2, tiny_fileset, initial_speed=DiskSpeed.LOW)
        assert all(d.speed is DiskSpeed.LOW for d in arr.drives)


class TestPlacement:
    def test_place_file_updates_ledgers(self, array, tiny_fileset):
        array.place_file(2, 1)
        assert array.location_of(2) == 1
        assert array.used_mb[1] == pytest.approx(4.0)
        assert array.free_mb(1) == pytest.approx(array.params.capacity_mb - 4.0)

    def test_double_place_rejected(self, array):
        array.place_file(0, 0)
        with pytest.raises(ValueError, match="already placed"):
            array.place_file(0, 1)

    def test_place_all_roundtrip(self, array, tiny_fileset):
        placement = np.array([0, 1, 2, 3, 0, 1, 2, 3])
        array.place_all(placement)
        np.testing.assert_array_equal(array.placement, placement)
        np.testing.assert_array_equal(array.files_on(1), [1, 5])
        assert array.used_mb[3] == pytest.approx(16.0)

    def test_place_all_requires_unplaced(self, array):
        array.place_file(0, 0)
        with pytest.raises(ValueError):
            array.place_all(np.zeros(8, dtype=np.int64))

    def test_place_all_rejects_out_of_range(self, array):
        with pytest.raises(ValueError):
            array.place_all(np.full(8, 99))

    def test_placement_view_readonly(self, array):
        with pytest.raises(ValueError):
            array.placement[0] = 2


class TestRouting:
    def test_routes_to_placed_disk(self, sim, array):
        array.place_all(np.array([0, 1, 2, 3, 0, 1, 2, 3]))
        done = []
        req = Request(0.0, 5, array.fileset.size_of(5))
        array.submit_request(req, on_complete=lambda j: done.append(j))
        sim.run()
        assert req.served_by == 1
        assert len(done) == 1

    def test_explicit_disk_override(self, sim, array):
        array.place_all(np.array([0, 1, 2, 3, 0, 1, 2, 3]))
        req = Request(0.0, 5, array.fileset.size_of(5))
        array.submit_request(req, disk_id=3)
        sim.run()
        assert req.served_by == 3

    def test_unplaced_file_rejected(self, array):
        with pytest.raises(ValueError, match="not placed"):
            array.submit_request(Request(0.0, 0, 1.0))


class TestMigration:
    def test_migration_flips_placement_immediately(self, sim, array):
        array.place_all(np.array([0, 1, 2, 3, 0, 1, 2, 3]))
        assert array.migrate_file(0, 3) is True
        assert array.location_of(0) == 3
        # disk 0 held files {0, 4} = 2 MB; moving file 0 (1 MB) leaves 1 MB
        assert array.used_mb[0] == pytest.approx(1.0)
        # disk 3 held files {3, 7} = 16 MB; gains 1 MB
        assert array.used_mb[3] == pytest.approx(17.0)

    def test_migration_charges_read_then_write(self, sim, array):
        array.place_all(np.array([0, 1, 2, 3, 0, 1, 2, 3]))
        done = []
        array.migrate_file(0, 3, on_done=lambda f, s, d: done.append((f, s, d)))
        sim.run()
        assert done == [(0, 0, 3)]
        assert array.drive(0).stats.internal_jobs_served == 1  # read leg
        assert array.drive(3).stats.internal_jobs_served == 1  # write leg
        # write starts only after read completes
        read_t = array.params.high.service_time_s(1.0)
        assert sim.now == pytest.approx(2 * read_t)

    def test_migrate_to_same_disk_is_noop(self, sim, array):
        array.place_all(np.array([0, 1, 2, 3, 0, 1, 2, 3]))
        assert array.migrate_file(0, 0) is False
        sim.run()
        assert array.drive(0).stats.internal_jobs_served == 0

    def test_migrate_over_capacity_refused(self, sim, params, tiny_fileset):
        small = params.with_capacity(16.0)
        arr = DiskArray(Simulator(), small, 4, tiny_fileset)
        arr.place_all(np.array([0, 1, 2, 3, 0, 1, 2, 3]))
        # disk 3 holds 16 MB already (ids 3 and 7): no room for 8 more
        assert arr.migrate_file(3, 3) is False
        assert arr.migrate_file(2, 3) is False
        assert arr.location_of(2) == 2

    def test_migrate_unplaced_rejected(self, array):
        with pytest.raises(ValueError):
            array.migrate_file(0, 1)


class TestEnergyAggregation:
    def test_total_energy_sums_drives(self, sim, array):
        array.place_all(np.array([0, 1, 2, 3, 0, 1, 2, 3]))
        array.submit_request(Request(0.0, 0, 1.0))
        sim.run(until=10.0)
        array.finalize()
        assert array.total_energy_j() == pytest.approx(
            sum(d.energy.total_energy_j for d in array.drives))
        assert array.total_energy_j() > 0.0

    def test_hooks_forwarded(self, sim, array):
        events = []
        array.set_idle_handler(lambda d: events.append(("idle", d)))
        array.set_busy_handler(lambda d: events.append(("busy", d)))
        array.place_all(np.array([0, 1, 2, 3, 0, 1, 2, 3]))
        array.submit_request(Request(0.0, 0, 1.0))
        sim.run()
        assert ("busy", 0) in events
        assert ("idle", 0) in events
