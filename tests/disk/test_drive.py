"""TwoSpeedDrive state machine: service, transitions, accounting."""

import pytest

from repro.disk.drive import DrivePhase, Job, TwoSpeedDrive
from repro.disk.parameters import DiskSpeed
from repro.sim.engine import Simulator


@pytest.fixture
def drive(sim, params):
    return TwoSpeedDrive(sim, params, disk_id=0, initial_speed=DiskSpeed.HIGH)


def service_time(params, speed, size_mb):
    return params.mode(speed).service_time_s(size_mb)


class TestService:
    def test_single_job_timing(self, sim, params, drive):
        done = []
        drive.submit(Job.internal_transfer(10.0, on_complete=lambda j: done.append(j)))
        sim.run()
        assert len(done) == 1
        assert done[0].completion_time == pytest.approx(
            service_time(params, DiskSpeed.HIGH, 10.0))
        assert drive.is_idle

    def test_fcfs_order(self, sim, params, drive):
        completed = []
        for tag in range(3):
            drive.submit(Job.internal_transfer(1.0, on_complete=(
                lambda j, t=tag: completed.append(t))))
        sim.run()
        assert completed == [0, 1, 2]

    def test_queueing_delay(self, sim, params, drive):
        jobs = [Job.internal_transfer(10.0) for _ in range(2)]
        for j in jobs:
            drive.submit(j)
        sim.run()
        st = service_time(params, DiskSpeed.HIGH, 10.0)
        assert jobs[0].completion_time == pytest.approx(st)
        assert jobs[1].service_start == pytest.approx(st)
        assert jobs[1].completion_time == pytest.approx(2 * st)

    def test_low_speed_service_slower(self, sim, params):
        slow = TwoSpeedDrive(sim, params, 0, initial_speed=DiskSpeed.LOW)
        job = Job.internal_transfer(10.0)
        slow.submit(job)
        sim.run()
        assert job.completion_time == pytest.approx(
            service_time(params, DiskSpeed.LOW, 10.0))
        assert job.completion_time > service_time(params, DiskSpeed.HIGH, 10.0)

    def test_request_fields_stamped(self, sim, params, drive):
        from repro.workload.request import Request
        req = Request(arrival_time=0.0, file_id=3, size_mb=2.0)
        drive.submit(Job.for_request(req))
        sim.run()
        assert req.served_by == 0
        assert req.completed
        assert req.response_time == pytest.approx(
            service_time(params, DiskSpeed.HIGH, 2.0))

    def test_stats_count_user_vs_internal(self, sim, params, drive):
        from repro.workload.request import Request
        drive.submit(Job.for_request(Request(0.0, 0, 1.0)))
        drive.submit(Job.internal_transfer(1.0))
        sim.run()
        assert drive.stats.requests_served == 1
        assert drive.stats.internal_jobs_served == 1


class TestTransitions:
    def test_idle_transition_timing_and_count(self, sim, params, drive):
        assert drive.request_speed(DiskSpeed.LOW) is True
        assert drive.phase is DrivePhase.TRANSITIONING
        sim.run()
        assert drive.speed is DiskSpeed.LOW
        assert drive.phase is DrivePhase.IDLE
        assert sim.now == pytest.approx(params.transition_time_s)
        assert drive.stats.speed_transitions_total == 1

    def test_same_speed_request_is_noop(self, sim, drive):
        assert drive.request_speed(DiskSpeed.HIGH) is False
        assert drive.stats.speed_transitions_total == 0

    def test_no_service_during_transition(self, sim, params, drive):
        drive.request_speed(DiskSpeed.LOW)
        job = Job.internal_transfer(1.0)
        drive.submit(job)
        sim.run()
        # service could only start after the transition completed
        assert job.service_start == pytest.approx(params.transition_time_s)
        assert job.completion_time == pytest.approx(
            params.transition_time_s + service_time(params, DiskSpeed.LOW, 1.0))

    def test_transition_deferred_while_busy(self, sim, params, drive):
        job = Job.internal_transfer(10.0)
        drive.submit(job)
        assert drive.request_speed(DiskSpeed.LOW) is True
        assert drive.phase is DrivePhase.BUSY  # transition waits for drain
        sim.run()
        st = service_time(params, DiskSpeed.HIGH, 10.0)
        assert job.completion_time == pytest.approx(st)
        assert drive.speed is DiskSpeed.LOW
        assert sim.now == pytest.approx(st + params.transition_time_s)

    def test_queued_jobs_serve_at_new_speed_after_deferred_transition(self, sim, params, drive):
        first = Job.internal_transfer(10.0)
        second = Job.internal_transfer(10.0)
        drive.submit(first)
        drive.request_speed(DiskSpeed.LOW)
        drive.submit(second)
        sim.run()
        st_high = service_time(params, DiskSpeed.HIGH, 10.0)
        st_low = service_time(params, DiskSpeed.LOW, 10.0)
        assert second.completion_time == pytest.approx(
            st_high + params.transition_time_s + st_low)

    def test_duplicate_request_while_transitioning_ignored(self, sim, drive):
        drive.request_speed(DiskSpeed.LOW)
        assert drive.request_speed(DiskSpeed.LOW) is False
        sim.run()
        assert drive.stats.speed_transitions_total == 1

    def test_reversal_mid_transition_queues_second_transition(self, sim, params, drive):
        drive.request_speed(DiskSpeed.LOW)
        assert drive.request_speed(DiskSpeed.HIGH) is True
        sim.run()
        assert drive.speed is DiskSpeed.HIGH
        assert drive.stats.speed_transitions_total == 2
        assert sim.now == pytest.approx(2 * params.transition_time_s)

    def test_pending_cancelled_by_opposite_request(self, sim, params, drive):
        job = Job.internal_transfer(10.0)
        drive.submit(job)
        drive.request_speed(DiskSpeed.LOW)   # deferred
        drive.request_speed(DiskSpeed.HIGH)  # cancels the pending LOW
        sim.run()
        assert drive.speed is DiskSpeed.HIGH
        assert drive.stats.speed_transitions_total == 0

    def test_effective_target_speed(self, sim, drive):
        assert drive.effective_target_speed is DiskSpeed.HIGH
        drive.request_speed(DiskSpeed.LOW)
        assert drive.effective_target_speed is DiskSpeed.LOW
        sim.run()
        assert drive.effective_target_speed is DiskSpeed.LOW


class TestForceSpeed:
    def test_force_speed_free_and_instant(self, sim, params, drive):
        drive.force_speed(DiskSpeed.LOW)
        assert drive.speed is DiskSpeed.LOW
        assert drive.stats.speed_transitions_total == 0
        assert drive.energy.total_energy_j == 0.0
        assert sim.now == 0.0

    def test_force_speed_at_t0_resets_temperature(self, sim, params, drive):
        drive.force_speed(DiskSpeed.LOW)
        assert drive.thermal.temperature_c == params.low.steady_temp_c

    def test_force_speed_rejected_when_busy(self, sim, drive):
        drive.submit(Job.internal_transfer(1.0))
        with pytest.raises(RuntimeError):
            drive.force_speed(DiskSpeed.LOW)


class TestHooks:
    def test_idle_and_busy_hooks_fire(self, sim, params):
        events = []
        drive = TwoSpeedDrive(sim, params, 3,
                              on_idle=lambda d: events.append(("idle", d, sim.now)),
                              on_busy=lambda d: events.append(("busy", d, sim.now)))
        drive.submit(Job.internal_transfer(10.0))
        sim.run()
        st = service_time(params, DiskSpeed.HIGH, 10.0)
        assert events == [("busy", 3, 0.0), ("idle", 3, pytest.approx(st))]

    def test_idle_hook_fires_after_transition_with_empty_queue(self, sim, params):
        events = []
        drive = TwoSpeedDrive(sim, params, 0,
                              on_idle=lambda d: events.append(sim.now))
        drive.request_speed(DiskSpeed.LOW)
        sim.run()
        assert events == [pytest.approx(params.transition_time_s)]


class TestAccounting:
    def test_energy_matches_hand_computation(self, sim, params, drive):
        """idle 10s -> serve 10 MB -> idle to t=30: exact energy."""
        st = service_time(params, DiskSpeed.HIGH, 10.0)
        sim.schedule(10.0, lambda: drive.submit(Job.internal_transfer(10.0)))
        sim.run(until=30.0)
        drive.finalize()
        expected = (params.high.idle_w * (30.0 - st)
                    + params.high.active_w * st)
        assert drive.energy.total_energy_j == pytest.approx(expected)

    def test_transition_energy_accounted(self, sim, params, drive):
        from repro.disk.energy import DiskPowerState
        drive.request_speed(DiskSpeed.LOW)
        sim.run()
        drive.finalize()
        assert drive.energy.energy_j(DiskPowerState.TRANSITION) == pytest.approx(
            params.transition_energy_j)

    def test_total_time_equals_wall_clock(self, sim, params, drive):
        drive.submit(Job.internal_transfer(5.0))
        drive.request_speed(DiskSpeed.LOW)
        sim.run(until=100.0)
        drive.finalize()
        assert drive.energy.total_time_s == pytest.approx(100.0)
        assert drive.power_on_time_s() == pytest.approx(100.0)

    def test_utilization_matches_active_fraction(self, sim, params, drive):
        st = service_time(params, DiskSpeed.HIGH, 10.0)
        drive.submit(Job.internal_transfer(10.0))
        sim.run(until=100.0)
        drive.finalize()
        assert drive.utilization() == pytest.approx(st / 100.0)

    def test_finalize_idempotent(self, sim, params, drive):
        drive.submit(Job.internal_transfer(1.0))
        sim.run(until=50.0)
        drive.finalize()
        first = drive.energy.total_energy_j
        drive.finalize()
        assert drive.energy.total_energy_j == first

    def test_estimated_wait_counts_backlog(self, sim, params, drive):
        drive.submit(Job.internal_transfer(10.0))  # in service, not counted
        drive.submit(Job.internal_transfer(10.0))  # queued
        assert drive.estimated_wait_s() == pytest.approx(
            service_time(params, DiskSpeed.HIGH, 10.0))
