"""Struct-of-arrays state: buffers, write-back ledgers, batched tick.

The cross-backend *result* equivalence lives in
``tests/experiments/test_soa_equivalence.py``; this module unit-tests
the :mod:`repro.disk.state` layer itself — buffer layout, the ledger
write-back contract, the vectorized whole-array reads against their
scalar counterparts, and the semantics of the batched fluid tick.
"""

import math

import numpy as np
import pytest

from repro.disk.energy import DiskPowerState, EnergyMeter, N_POWER_STATES
from repro.disk.parameters import DiskSpeed, cheetah_two_speed
from repro.disk.state import (
    PHASE_BUSY,
    PHASE_FAILED,
    PHASE_IDLE,
    PHASE_NAMES,
    SPEED_NAMES,
    ArrayState,
    SoADiskStats,
    SoAEnergyMeter,
    SoAThermalModel,
)
from repro.disk.stats import DiskStats
from repro.disk.thermal import ThermalModel

PARAMS = cheetah_two_speed()


@pytest.fixture
def state():
    return ArrayState(4, PARAMS)


class TestArrayStateLayout:
    def test_buffer_shapes_and_dtypes(self, state):
        assert state.energy_time_s.shape == (4, N_POWER_STATES)
        assert state.energy_j.shape == (4, N_POWER_STATES)
        for name in ("temp_c", "thermal_integral_c_s", "thermal_elapsed_s",
                     "mb_served", "start_time_s", "backlog_mb"):
            buf = getattr(state, name)
            assert buf.shape == (4,) and buf.dtype == np.float64, name
        for name in ("requests_served", "internal_jobs_served",
                     "speed_transitions", "queue_depth"):
            buf = getattr(state, name)
            assert buf.shape == (4,) and buf.dtype == np.int64, name
        assert state.speed_code.dtype == np.int8
        assert state.phase_code.dtype == np.int8

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            ArrayState(0, PARAMS)
        with pytest.raises(ValueError):
            ArrayState(4, PARAMS, tau_s=0.0)

    def test_name_tables_cover_the_codes(self):
        assert len(SPEED_NAMES) == 2
        assert len(PHASE_NAMES) == 4
        assert PHASE_NAMES[PHASE_IDLE] == "idle"
        assert PHASE_NAMES[PHASE_FAILED] == "failed"


class TestWriteBackLedgers:
    """The SoA ledgers inherit the object hot path; sync() publishes."""

    def test_energy_meter_matches_object_meter_bitwise(self, state):
        soa = SoAEnergyMeter(PARAMS, state, disk_id=1)
        obj = EnergyMeter(PARAMS)
        intervals = [(DiskPowerState.IDLE_HIGH, 3.25),
                     (DiskPowerState.ACTIVE_HIGH, 0.125),
                     (DiskPowerState.TRANSITION, 6.0),
                     (DiskPowerState.ACTIVE_LOW, 0.7),
                     (DiskPowerState.IDLE_LOW, 11.1)]
        for power_state, dt in intervals:
            soa.accumulate(power_state, dt)
            obj.accumulate(power_state, dt)
        soa.sync()
        assert soa.total_energy_j == obj.total_energy_j
        assert soa.total_time_s == obj.total_time_s
        # and the published row is a lossless copy of the accumulators
        row = state.energy_j[1]
        for power_state in DiskPowerState:
            assert soa.energy_j(power_state) == obj.energy_j(power_state)
        assert state.total_energy_j_per_disk()[1] == obj.total_energy_j
        assert float(row.sum()) == pytest.approx(obj.total_energy_j)

    def test_energy_sync_only_touches_own_slot(self, state):
        a = SoAEnergyMeter(PARAMS, state, disk_id=0)
        b = SoAEnergyMeter(PARAMS, state, disk_id=2)
        a.accumulate(DiskPowerState.ACTIVE_HIGH, 2.0)
        a.sync()
        b.sync()
        assert state.energy_time_s[0].sum() > 0.0
        assert state.energy_time_s[2].sum() == 0.0
        assert state.energy_time_s[1].sum() == 0.0

    def test_thermal_model_matches_object_model_bitwise(self, state):
        soa = SoAThermalModel(state, 3, initial_c=40.0)
        obj = ThermalModel(initial_c=40.0)
        for dt, steady in [(10.0, 55.22), (3.5, 46.0), (700.0, 55.22)]:
            assert soa.advance(dt, steady) == obj.advance(dt, steady)
        assert soa.mean_temperature_c() == obj.mean_temperature_c()
        soa.sync()
        assert float(state.temp_c[3]) == obj.temperature_c
        assert state.mean_temperature_c()[3] == obj.mean_temperature_c()

    def test_thermal_ctor_publishes_initial_temperature(self, state):
        SoAThermalModel(state, 2, initial_c=51.5)
        assert float(state.temp_c[2]) == 51.5

    def test_stats_match_object_stats(self, state):
        soa = SoADiskStats(state, 1)
        obj = DiskStats(1)
        for recorder in (soa, obj):
            recorder.record_service(10.0, internal=False)
            recorder.record_service(2.5, internal=True)
            recorder.record_transition(100.0)
        soa.sync()
        assert int(state.requests_served[1]) == obj.requests_served == 1
        assert int(state.internal_jobs_served[1]) == obj.internal_jobs_served == 1
        assert float(state.mb_served[1]) == obj.mb_served == 12.5
        assert int(state.speed_transitions[1]) == obj.speed_transitions_total == 1
        assert soa.max_transitions_per_day() == obj.max_transitions_per_day()


class TestVectorizedReads:
    """Whole-array expressions equal the per-disk scalar forms bitwise."""

    def _populated(self):
        state = ArrayState(3, PARAMS)
        models = [SoAThermalModel(state, i, initial_c=40.0 + i) for i in range(3)]
        meters = [SoAEnergyMeter(PARAMS, state, i) for i in range(3)]
        for i, (model, meter) in enumerate(zip(models, meters)):
            model.advance(5.0 * (i + 1), 55.22)
            meter.accumulate(DiskPowerState.ACTIVE_HIGH, 0.25 * (i + 1))
            meter.accumulate(DiskPowerState.IDLE_HIGH, 9.0)
            model.sync()
            meter.sync()
        return state, models, meters

    def test_mean_temperature_matches_scalar(self):
        state, models, _ = self._populated()
        batch = state.mean_temperature_c()
        for i, model in enumerate(models):
            assert batch[i] == model.mean_temperature_c()

    def test_utilization_matches_scalar(self):
        state, _, meters = self._populated()
        now = 12.0
        batch = state.utilization_pct(now)
        for i, meter in enumerate(meters):
            expected = 100.0 * min(meter.active_time_s / now, 1.0)
            assert batch[i] == expected

    def test_utilization_zero_elapsed_guard(self):
        state = ArrayState(2, PARAMS)
        state.start_time_s[:] = 5.0
        assert list(state.utilization_pct(5.0)) == [0.0, 0.0]

    def test_total_energy_matches_object_reduction_order(self):
        state, _, meters = self._populated()
        expected = sum(m.total_energy_j for m in meters)
        assert state.total_energy_j() == expected

    def test_snapshot_is_a_frozen_copy(self):
        state, _, _ = self._populated()
        snap = state.snapshot(12.0)
        before = snap.temperature_c.copy()
        state.temp_c[:] = 0.0
        assert np.array_equal(snap.temperature_c, before)
        assert snap.time_s == 12.0


class TestBatchStep:
    def test_rejects_bad_dt(self, state):
        with pytest.raises(ValueError):
            state.batch_step(0.0)
        with pytest.raises(ValueError):
            state.batch_step(-1.0)
        with pytest.raises(ValueError):
            state.batch_step(math.inf)

    def test_idle_tick_accrues_idle_energy_only(self, state):
        state.speed_code[:] = 1
        n = state.batch_step(2.0)
        assert n == 4
        assert np.all(state.phase_code == PHASE_IDLE)
        idle_high_j = PARAMS.high.idle_w * 2.0
        assert np.allclose(state.energy_j[:, 1], idle_high_j)
        assert np.all(state.energy_j[:, [0, 2, 3, 4]] == 0.0)
        assert np.all(state.mb_served == 0.0)

    def test_drain_serves_up_to_capacity(self, state):
        state.speed_code[:] = 1
        rate = PARAMS.high.transfer_mb_s
        arrivals = np.array([0.0, rate * 0.5, rate * 2.0, rate * 10.0])
        state.batch_step(1.0, arrivals)
        served = state.mb_served
        assert served[0] == 0.0
        assert served[1] == rate * 0.5
        assert served[2] == rate          # capacity-bound
        assert served[3] == rate
        assert float(state.backlog_mb[3]) == pytest.approx(rate * 9.0)
        assert state.phase_code[0] == PHASE_IDLE
        assert all(state.phase_code[1:] == PHASE_BUSY)
        assert state.queue_depth[3] == 9

    def test_busy_fraction_splits_energy(self, state):
        state.speed_code[:] = 1
        rate = PARAMS.high.transfer_mb_s
        state.batch_step(1.0, np.full(4, rate * 0.25))
        assert np.allclose(state.energy_time_s[:, 3], 0.25)   # active_high
        assert np.allclose(state.energy_time_s[:, 1], 0.75)   # idle_high
        assert np.allclose(state.energy_j[:, 3], PARAMS.high.active_w * 0.25)

    def test_thermal_relaxes_toward_speed_steady_state(self, state):
        state.speed_code[:] = 1
        state.temp_c[:] = 30.0
        steady = PARAMS.high.steady_temp_c
        state.batch_step(100.0)
        assert np.all(state.temp_c > 30.0)
        assert np.all(state.temp_c < steady)
        # matches the scalar closed form bit for bit
        expected = steady + (30.0 - steady) * math.exp(-100.0 / state.tau_s)
        assert np.all(state.temp_c == expected)

    def test_failed_lane_is_inert(self, state):
        state.speed_code[:] = 1
        state.phase_code[2] = PHASE_FAILED
        t_before = float(state.temp_c[2])
        state.batch_step(1.0, np.full(4, 1.0))
        assert state.mb_served[2] == 0.0
        assert state.phase_code[2] == PHASE_FAILED
        assert float(state.temp_c[2]) == t_before
        assert state.energy_time_s[2].sum() == 0.0
        # live lanes still served their arrivals
        assert state.mb_served[0] == 1.0
        assert state.phase_code[0] == PHASE_BUSY

    def test_speed_mix_uses_per_speed_tables(self, state):
        state.speed_code[:] = [0, 0, 1, 1]
        state.batch_step(1.0)
        assert np.allclose(state.energy_j[:2, 0], PARAMS.low.idle_w)
        assert np.allclose(state.energy_j[2:, 1], PARAMS.high.idle_w)
