"""Queue disciplines: FCFS vs SJF semantics and the classic trade-off."""

import numpy as np
import pytest

from repro.disk.drive import Job, QueueDiscipline, TwoSpeedDrive
from repro.experiments.runner import make_policy, run_simulation
from repro.sim.engine import Simulator
from repro.workload.files import FileSet
from repro.workload.trace import Trace


class TestSemantics:
    def test_fcfs_is_submission_order(self, sim, params):
        drive = TwoSpeedDrive(sim, params, 0,
                              queue_discipline=QueueDiscipline.FCFS)
        done = []
        for size, tag in [(10.0, "big"), (0.1, "small"), (5.0, "mid")]:
            drive.submit(Job.internal_transfer(size, on_complete=(
                lambda j, t=tag: done.append(t))))
        sim.run()
        assert done == ["big", "small", "mid"]

    def test_sjf_picks_smallest_queued(self, sim, params):
        drive = TwoSpeedDrive(sim, params, 0,
                              queue_discipline=QueueDiscipline.SJF)
        done = []
        # first job starts immediately (non-preemptive); the rest queue
        for size, tag in [(10.0, "first"), (5.0, "mid"), (0.1, "small")]:
            drive.submit(Job.internal_transfer(size, on_complete=(
                lambda j, t=tag: done.append(t))))
        sim.run()
        assert done == ["first", "small", "mid"]

    def test_sjf_fifo_tiebreak(self, sim, params):
        drive = TwoSpeedDrive(sim, params, 0,
                              queue_discipline=QueueDiscipline.SJF)
        done = []
        for tag in ["first", "a", "b", "c"]:
            drive.submit(Job.internal_transfer(1.0, on_complete=(
                lambda j, t=tag: done.append(t))))
        sim.run()
        assert done == ["first", "a", "b", "c"]

    def test_all_jobs_still_complete(self, sim, params):
        drive = TwoSpeedDrive(sim, params, 0,
                              queue_discipline=QueueDiscipline.SJF)
        jobs = [Job.internal_transfer(s) for s in (3.0, 1.0, 2.0, 0.5)]
        for j in jobs:
            drive.submit(j)
        sim.run()
        assert all(j.completion_time >= 0 for j in jobs)
        assert drive.stats.internal_jobs_served == 4


class TestTradeOff:
    """SJF lowers the mean and raises the big-file tail on heavy-tailed
    sizes — the textbook result, on our simulator."""

    @pytest.fixture(scope="class")
    def workload(self):
        rng = np.random.default_rng(0)
        sizes = np.concatenate([np.full(45, 0.02), np.full(5, 10.0)])
        fileset = FileSet(sizes)
        n = 4_000
        times = np.sort(rng.uniform(0, 400.0, n))
        fids = rng.integers(0, 50, n)
        return fileset, Trace(times, fids)

    def test_sjf_improves_mean_response(self, workload, params):
        fileset, trace = workload
        fcfs = run_simulation(make_policy("static-high"), fileset, trace,
                              n_disks=2, disk_params=params,
                              queue_discipline=QueueDiscipline.FCFS)
        sjf = run_simulation(make_policy("static-high"), fileset, trace,
                             n_disks=2, disk_params=params,
                             queue_discipline=QueueDiscipline.SJF)
        assert sjf.mean_response_s < fcfs.mean_response_s

    def test_energy_independent_of_discipline(self, workload, params):
        """Work conservation: the same jobs at the same speeds consume
        the same energy regardless of service order."""
        fileset, trace = workload
        fcfs = run_simulation(make_policy("static-high"), fileset, trace,
                              n_disks=2, disk_params=params,
                              queue_discipline=QueueDiscipline.FCFS)
        sjf = run_simulation(make_policy("static-high"), fileset, trace,
                             n_disks=2, disk_params=params,
                             queue_discipline=QueueDiscipline.SJF)
        assert sjf.total_energy_j == pytest.approx(fcfs.total_energy_j, rel=0.01)
