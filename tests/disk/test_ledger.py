"""Open/closed disk ledgers: deferred close == live finalize, exactly.

The sharded runner (:mod:`repro.experiments.shard`) captures drives
*open* and performs the final accounting step in the merge process, at
the global end time.  These tests pin the contract that makes that
legal: ``drive.open_ledger().close(t)`` is bit-identical to
``drive.finalize()`` at ``t`` — same per-state times and energies, same
thermal integral, same counters — on both kernel backends.
"""

import math
import pickle

import pytest

from repro.disk.array import DiskArray
from repro.disk.drive import Job, TwoSpeedDrive
from repro.disk.energy import DiskPowerState
from repro.disk.ledger import ClosedDiskLedger, OpenDiskLedger
from repro.disk.parameters import AMBIENT_TEMPERATURE_C, DiskSpeed
from repro.sim.engine import Simulator
from repro.workload.files import FileSet
from repro.workload.request import Request


def _drive_after_some_work(backend: str):
    """A 2-disk array that served requests and switched speeds."""
    sim = Simulator()
    fileset = FileSet([1.0, 2.0, 4.0, 8.0])
    array = DiskArray(sim, _params(), 2, fileset,
                      initial_speed=DiskSpeed.HIGH,
                      kernel_backend=backend)
    array.place_all([0, 1, 0, 1])
    for t, fid in [(0.0, 0), (0.5, 1), (1.0, 2), (1.5, 3)]:
        sim.schedule_at(t, lambda fid=fid, t=t: array.submit_request(
            Request.from_validated(t, fid, fileset.sizes_mb[fid])))
    sim.schedule_at(0.7, lambda: array.drives[0].request_speed(DiskSpeed.LOW))
    sim.run()
    return sim, array


def _params():
    from repro.disk.parameters import cheetah_two_speed
    return cheetah_two_speed()


def _assert_ledger_equals_finalized(drive: TwoSpeedDrive,
                                    closed: ClosedDiskLedger) -> None:
    """Every field of the closed ledger equals the finalized drive, exactly."""
    for state in DiskPowerState:
        i = list(DiskPowerState).index(state)
        assert closed.time_s[i] == drive.energy.time_s(state)
        assert closed.energy_j[i] == drive.energy.energy_j(state)
    assert closed.total_energy_j == drive.energy.total_energy_j
    assert closed.active_time_s == drive.energy.active_time_s
    assert closed.breakdown() == drive.energy.breakdown()
    assert closed.temperature_c == drive.thermal.temperature_c
    assert closed.integral_c_s == drive.thermal.integral_c_s
    assert closed.elapsed_s == drive.thermal.elapsed_s
    assert closed.mean_temperature_c() == drive.thermal.mean_temperature_c()
    assert closed.requests_served == drive.stats.requests_served
    assert closed.internal_jobs_served == drive.stats.internal_jobs_served
    assert closed.mb_served == drive.stats.mb_served
    assert closed.transitions_total == drive.stats.speed_transitions_total
    assert dict(closed.transitions_by_day) == drive.stats.transitions_by_day


class TestDeferredCloseEqualsFinalize:
    @pytest.mark.parametrize("backend", ["object", "soa"])
    def test_close_matches_finalize_bit_for_bit(self, backend):
        sim, array = _drive_after_some_work(backend)
        end = sim.now + 3.0  # close strictly after the last event
        open_ledgers = [d.open_ledger() for d in array.drives]
        # advance the clock to `end` and do the live finalize there
        sim.run(until=end)
        array.finalize()
        for drive, ledger in zip(array.drives, open_ledgers):
            _assert_ledger_equals_finalized(drive, ledger.close(end))

    @pytest.mark.parametrize("backend", ["object", "soa"])
    def test_zero_dt_close_is_the_captured_state(self, backend):
        sim, array = _drive_after_some_work(backend)
        drive = array.drives[0]
        ledger = drive.open_ledger()
        closed = ledger.close(ledger.last_account_s)
        assert closed.temperature_c == ledger.temp_c
        assert closed.integral_c_s == ledger.integral_c_s
        assert closed.time_s == ledger.time_s
        assert closed.energy_j == ledger.energy_j

    def test_close_before_capture_rejected(self):
        sim, array = _drive_after_some_work("object")
        ledger = array.drives[0].open_ledger()
        with pytest.raises(ValueError):
            ledger.close(ledger.last_account_s - 1.0)

    def test_failed_drive_accrues_no_energy_and_cools(self, sim, params):
        drive = TwoSpeedDrive(sim, params, 0, initial_speed=DiskSpeed.HIGH)
        drive.submit(Job.internal_transfer(4.0))
        sim.run()
        sim.schedule_at(sim.now + 10.0, drive.fail)
        sim.run()
        ledger = drive.open_ledger()
        assert ledger.state_index is None
        assert ledger.power_w == 0.0
        assert ledger.steady_c == AMBIENT_TEMPERATURE_C
        before = ledger.close(sim.now)
        after = ledger.close(sim.now + 3600.0)
        # no state accrues time or energy after the failure...
        assert after.time_s == before.time_s
        assert after.energy_j == before.energy_j
        # ...but the thermal trajectory keeps decaying toward ambient
        assert after.temperature_c < before.temperature_c
        assert after.temperature_c > AMBIENT_TEMPERATURE_C
        assert after.elapsed_s == before.elapsed_s + 3600.0

    def test_close_mirrors_thermal_integral_formula(self):
        sim, array = _drive_after_some_work("object")
        ledger = array.drives[1].open_ledger()
        dt = 123.456
        closed = ledger.close(ledger.last_account_s + dt)
        decay = math.exp(-dt / ledger.tau_s)
        expected_temp = ledger.steady_c + (ledger.temp_c - ledger.steady_c) * decay
        expected_integral = (ledger.integral_c_s + ledger.steady_c * dt
                             + (ledger.temp_c - ledger.steady_c)
                             * ledger.tau_s * (1.0 - decay))
        assert closed.temperature_c == expected_temp
        assert closed.integral_c_s == expected_integral


class TestLedgerTransport:
    def test_ledgers_pickle_round_trip(self):
        sim, array = _drive_after_some_work("soa")
        for drive in array.drives:
            ledger = drive.open_ledger()
            clone = pickle.loads(pickle.dumps(ledger))
            assert clone == ledger
            end = ledger.last_account_s + 7.0
            assert clone.close(end) == ledger.close(end)

    def test_open_ledger_types(self):
        sim, array = _drive_after_some_work("object")
        ledger = array.drives[0].open_ledger()
        assert isinstance(ledger, OpenDiskLedger)
        assert isinstance(ledger.close(ledger.last_account_s), ClosedDiskLedger)
        assert len(ledger.time_s) == len(DiskPowerState)
