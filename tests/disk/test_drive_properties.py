"""Property-based drive tests: the accounting invariants hold under any
interleaving of jobs and speed requests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk.drive import Job, TwoSpeedDrive
from repro.disk.parameters import DiskSpeed, cheetah_two_speed
from repro.sim.engine import Simulator

PARAMS = cheetah_two_speed()

# an action script: (kind, value) where kind submits a job, requests a
# speed, or lets time pass
actions = st.lists(
    st.one_of(
        st.tuples(st.just("job"), st.floats(0.1, 50.0)),
        st.tuples(st.just("speed"), st.sampled_from([DiskSpeed.LOW, DiskSpeed.HIGH])),
        st.tuples(st.just("wait"), st.floats(0.1, 100.0)),
    ),
    min_size=1, max_size=30,
)


def run_script(script):
    sim = Simulator()
    drive = TwoSpeedDrive(sim, PARAMS, 0)
    t = 0.0
    jobs = []
    for kind, value in script:
        if kind == "job":
            job = Job.internal_transfer(value)
            jobs.append(job)
            sim.schedule_at(t, (lambda j=job: drive.submit(j)))
        elif kind == "speed":
            sim.schedule_at(t, (lambda s=value: drive.request_speed(s)))
        else:
            t += value
    sim.run()
    drive.finalize()
    return sim, drive, jobs


@given(actions)
@settings(max_examples=150, deadline=None)
def test_state_time_partitions_wall_clock(script):
    sim, drive, _jobs = run_script(script)
    assert drive.energy.total_time_s == pytest.approx(sim.now, abs=1e-6)


@given(actions)
@settings(max_examples=150, deadline=None)
def test_all_jobs_complete_exactly_once(script):
    _sim, drive, jobs = run_script(script)
    assert all(j.completion_time >= 0 for j in jobs)
    assert drive.stats.internal_jobs_served == len(jobs)


@given(actions)
@settings(max_examples=150, deadline=None)
def test_service_never_overlaps_and_is_fcfs_per_submit_order(script):
    _sim, drive, jobs = run_script(script)
    spans = sorted((j.service_start, j.completion_time) for j in jobs)
    for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
        assert e1 <= s2 + 1e-9


@given(actions)
@settings(max_examples=150, deadline=None)
def test_energy_bounded_by_extreme_power_states(script):
    sim, drive, _jobs = run_script(script)
    if sim.now == 0.0:
        return
    min_power = PARAMS.low.idle_w
    max_power = max(PARAMS.high.active_w, PARAMS.transition_power_w)
    energy = drive.energy.total_energy_j
    assert min_power * sim.now - 1e-6 <= energy <= max_power * sim.now + 1e-6


@given(actions)
@settings(max_examples=150, deadline=None)
def test_temperature_stays_within_model_bounds(script):
    _sim, drive, _jobs = run_script(script)
    lo = min(28.0, PARAMS.low.steady_temp_c)
    hi = PARAMS.high.steady_temp_c
    assert lo - 1e-9 <= drive.thermal.temperature_c <= hi + 1e-9
    assert lo - 1e-9 <= drive.thermal.mean_temperature_c() <= hi + 1e-9
