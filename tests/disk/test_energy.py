"""Energy meter: per-state accounting and exact bookkeeping."""

import pytest

from repro.disk.energy import DiskPowerState, EnergyMeter
from repro.disk.parameters import DiskSpeed


class TestDiskPowerState:
    @pytest.mark.parametrize("active,speed,expected", [
        (False, DiskSpeed.LOW, DiskPowerState.IDLE_LOW),
        (False, DiskSpeed.HIGH, DiskPowerState.IDLE_HIGH),
        (True, DiskSpeed.LOW, DiskPowerState.ACTIVE_LOW),
        (True, DiskSpeed.HIGH, DiskPowerState.ACTIVE_HIGH),
    ])
    def test_of(self, active, speed, expected):
        assert DiskPowerState.of(active, speed) is expected


class TestEnergyMeter:
    def test_power_mapping_matches_params(self, params):
        meter = EnergyMeter(params)
        assert meter.power_w(DiskPowerState.IDLE_LOW) == params.low.idle_w
        assert meter.power_w(DiskPowerState.ACTIVE_HIGH) == params.high.active_w
        assert meter.power_w(DiskPowerState.TRANSITION) == pytest.approx(
            params.transition_power_w)

    def test_accumulate_energy_is_power_times_time(self, params):
        meter = EnergyMeter(params)
        meter.accumulate(DiskPowerState.IDLE_HIGH, 10.0)
        assert meter.energy_j(DiskPowerState.IDLE_HIGH) == pytest.approx(
            params.high.idle_w * 10.0)

    def test_totals_are_sums(self, params):
        meter = EnergyMeter(params)
        meter.accumulate(DiskPowerState.IDLE_LOW, 5.0)
        meter.accumulate(DiskPowerState.ACTIVE_HIGH, 2.0)
        meter.accumulate(DiskPowerState.TRANSITION, 1.0)
        assert meter.total_time_s == pytest.approx(8.0)
        expected = (params.low.idle_w * 5 + params.high.active_w * 2
                    + params.transition_power_w * 1)
        assert meter.total_energy_j == pytest.approx(expected)

    def test_active_time_sums_both_speeds(self, params):
        meter = EnergyMeter(params)
        meter.accumulate(DiskPowerState.ACTIVE_LOW, 3.0)
        meter.accumulate(DiskPowerState.ACTIVE_HIGH, 4.0)
        meter.accumulate(DiskPowerState.IDLE_LOW, 100.0)
        assert meter.active_time_s == pytest.approx(7.0)

    def test_breakdown_keys(self, params):
        meter = EnergyMeter(params)
        bd = meter.breakdown()
        assert set(bd) == {"idle_low", "idle_high", "active_low", "active_high",
                           "transition"}
        assert all(v == 0.0 for v in bd.values())

    def test_negative_dt_rejected(self, params):
        with pytest.raises(ValueError):
            EnergyMeter(params).accumulate(DiskPowerState.IDLE_LOW, -1.0)

    def test_zero_dt_allowed(self, params):
        meter = EnergyMeter(params)
        meter.accumulate(DiskPowerState.IDLE_LOW, 0.0)
        assert meter.total_energy_j == 0.0
