"""Two-speed disk parameters and the PDC-style low-mode derivation."""

import pytest

from repro.disk.parameters import (
    DiskSpeed,
    SpeedModeParams,
    TwoSpeedDiskParams,
    cheetah_two_speed,
    derive_low_mode,
)


class TestDiskSpeed:
    def test_other_flips(self):
        assert DiskSpeed.LOW.other is DiskSpeed.HIGH
        assert DiskSpeed.HIGH.other is DiskSpeed.LOW


class TestSpeedModeParams:
    def test_service_time_components(self):
        mode = SpeedModeParams(rpm=10_000, transfer_mb_s=30.0, avg_seek_s=0.005,
                               avg_rot_latency_s=0.003, active_w=13.0, idle_w=10.0,
                               steady_temp_c=50.0)
        assert mode.positioning_s == pytest.approx(0.008)
        assert mode.service_time_s(3.0) == pytest.approx(0.008 + 0.1)

    def test_service_time_rejects_nonpositive_size(self):
        mode = cheetah_two_speed().high
        with pytest.raises(ValueError):
            mode.service_time_s(0.0)

    def test_active_below_idle_rejected(self):
        with pytest.raises(ValueError):
            SpeedModeParams(rpm=1, transfer_mb_s=1, avg_seek_s=1, avg_rot_latency_s=1,
                            active_w=5.0, idle_w=9.0, steady_temp_c=40.0)


class TestDeriveLowMode:
    def test_paper_scaling_rules(self):
        high = cheetah_two_speed().high
        low = derive_low_mode(high, 3600.0, base_power_w=4.0, low_steady_temp_c=40.0)
        ratio = 3600.0 / high.rpm
        # transfer rate scales linearly with RPM
        assert low.transfer_mb_s == pytest.approx(high.transfer_mb_s * ratio)
        # rotational latency scales inversely
        assert low.avg_rot_latency_s == pytest.approx(high.avg_rot_latency_s / ratio)
        # seek time unchanged (arm property)
        assert low.avg_seek_s == high.avg_seek_s
        # spindle power scales with RPM**2.8 above the electronics base
        expected_idle = 4.0 + (high.idle_w - 4.0) * ratio**2.8
        assert low.idle_w == pytest.approx(expected_idle)
        # active increment preserved
        assert low.active_w - low.idle_w == pytest.approx(high.active_w - high.idle_w)

    def test_low_rpm_must_be_below_high(self):
        high = cheetah_two_speed().high
        with pytest.raises(ValueError):
            derive_low_mode(high, 12_000.0, base_power_w=4.0, low_steady_temp_c=40.0)

    def test_base_power_bounds(self):
        high = cheetah_two_speed().high
        with pytest.raises(ValueError):
            derive_low_mode(high, 3600.0, base_power_w=high.idle_w + 1,
                            low_steady_temp_c=40.0)


class TestCheetahTwoSpeed:
    def test_paper_speed_points(self, params):
        assert params.low.rpm == 3600.0
        assert params.high.rpm == 10_000.0

    def test_paper_temperature_anchors(self, params):
        assert params.low.steady_temp_c == 40.0
        assert params.high.steady_temp_c == 50.0

    def test_low_mode_strictly_cheaper_and_slower(self, params):
        assert params.low.idle_w < params.high.idle_w
        assert params.low.active_w < params.high.active_w
        assert params.low.transfer_mb_s < params.high.transfer_mb_s

    def test_transition_power(self, params):
        assert params.transition_power_w == pytest.approx(
            params.transition_energy_j / params.transition_time_s)

    def test_mode_lookup(self, params):
        assert params.mode(DiskSpeed.LOW) is params.low
        assert params.mode(DiskSpeed.HIGH) is params.high

    def test_with_capacity(self, params):
        bigger = params.with_capacity(100_000.0)
        assert bigger.capacity_mb == 100_000.0
        assert bigger.high is params.high

    def test_validation_rejects_inverted_modes(self, params):
        with pytest.raises(ValueError):
            TwoSpeedDiskParams(name="bad", capacity_mb=1000.0,
                               low=params.high, high=params.low,
                               transition_time_s=1.0, transition_energy_j=1.0)
