"""First-order thermal model: exact integration, paper anchors."""

import math

import numpy as np
import pytest

from repro.disk.thermal import DEFAULT_TAU_S, ThermalModel, steady_temperature_from_rpm


class TestSteadyTemperature:
    def test_paper_anchor_points(self):
        assert steady_temperature_from_rpm(3600.0) == pytest.approx(40.0, abs=1e-9)
        assert steady_temperature_from_rpm(10_000.0) == pytest.approx(50.0, abs=1e-9)

    def test_monotone_in_rpm(self):
        rpms = np.linspace(1000, 20_000, 30)
        temps = [steady_temperature_from_rpm(r) for r in rpms]
        assert all(b > a for a, b in zip(temps, temps[1:]))

    def test_approaches_ambient_at_zero_rpm(self):
        assert steady_temperature_from_rpm(1.0) == pytest.approx(28.0, abs=0.5)

    def test_custom_ambient_shifts_curve(self):
        assert steady_temperature_from_rpm(3600.0, ambient_c=20.0) == pytest.approx(32.0)


class TestThermalModel:
    def test_initial_state(self):
        m = ThermalModel(initial_c=28.0)
        assert m.temperature_c == 28.0
        assert m.elapsed_s == 0.0
        assert m.mean_temperature_c() == 28.0

    def test_exponential_approach(self):
        m = ThermalModel(initial_c=28.0, tau_s=100.0)
        m.advance(100.0, 50.0)
        expected = 50.0 + (28.0 - 50.0) * math.exp(-1.0)
        assert m.temperature_c == pytest.approx(expected)

    def test_reaches_steady_state_after_48_minutes(self):
        """The paper's [12] anchor: steady state 'after 48 minutes'."""
        m = ThermalModel(initial_c=28.0, tau_s=DEFAULT_TAU_S)
        m.advance(48 * 60.0, 50.0)
        assert m.temperature_c == pytest.approx(50.0, abs=0.5)

    def test_mean_temperature_exact_integral(self):
        tau, t0, tss, dt = 50.0, 30.0, 50.0, 80.0
        m = ThermalModel(initial_c=t0, tau_s=tau)
        m.advance(dt, tss)
        analytic = (tss * dt + (t0 - tss) * tau * (1 - math.exp(-dt / tau))) / dt
        assert m.mean_temperature_c() == pytest.approx(analytic)

    def test_mean_matches_fine_stepping(self):
        coarse = ThermalModel(initial_c=28.0, tau_s=120.0)
        coarse.advance(500.0, 50.0)
        coarse.advance(300.0, 40.0)
        fine = ThermalModel(initial_c=28.0, tau_s=120.0)
        for _ in range(5000):
            fine.advance(0.1, 50.0)
        for _ in range(3000):
            fine.advance(0.1, 40.0)
        assert coarse.mean_temperature_c() == pytest.approx(fine.mean_temperature_c(), rel=1e-6)
        assert coarse.temperature_c == pytest.approx(fine.temperature_c, rel=1e-6)

    def test_zero_dt_is_noop(self):
        m = ThermalModel(initial_c=35.0)
        m.advance(0.0, 50.0)
        assert m.temperature_c == 35.0
        assert m.elapsed_s == 0.0

    def test_negative_dt_rejected(self):
        with pytest.raises(ValueError):
            ThermalModel().advance(-1.0, 50.0)

    def test_at_steady_state_stays(self):
        m = ThermalModel(initial_c=50.0)
        m.advance(1000.0, 50.0)
        assert m.temperature_c == pytest.approx(50.0)
        assert m.mean_temperature_c() == pytest.approx(50.0)

    def test_cooling_direction(self):
        m = ThermalModel(initial_c=50.0, tau_s=100.0)
        m.advance(50.0, 40.0)
        assert 40.0 < m.temperature_c < 50.0

    def test_reset_clears_integral(self):
        m = ThermalModel(initial_c=28.0)
        m.advance(100.0, 50.0)
        m.reset(temperature_c=45.0)
        assert m.temperature_c == 45.0
        assert m.elapsed_s == 0.0
        assert m.mean_temperature_c() == 45.0

    def test_time_to_reach_basic(self):
        m = ThermalModel(initial_c=28.0, tau_s=100.0)
        t = m.time_to_reach(39.0, 50.0)
        # verify by advancing exactly that long
        m.advance(t, 50.0)
        assert m.temperature_c == pytest.approx(39.0)

    def test_time_to_reach_unreachable(self):
        m = ThermalModel(initial_c=28.0, tau_s=100.0)
        assert m.time_to_reach(60.0, 50.0) == math.inf

    def test_time_to_reach_already_past(self):
        m = ThermalModel(initial_c=45.0, tau_s=100.0)
        assert m.time_to_reach(40.0, 50.0) == 0.0
