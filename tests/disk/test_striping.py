"""Stripe layout math: chunking, wrapping, accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk.striping import PAPER_STRIPE_UNIT_MB, StripeLayout


class TestChunking:
    def test_paper_stripe_unit(self):
        assert PAPER_STRIPE_UNIT_MB == pytest.approx(0.512)

    def test_small_file_single_chunk(self):
        layout = StripeLayout(4, stripe_unit_mb=0.5)
        chunks = layout.chunks_of(file_id=2, size_mb=0.3)
        assert len(chunks) == 1
        assert chunks[0].disk_id == 2
        assert chunks[0].size_mb == 0.3

    def test_exact_unit_stays_whole(self):
        layout = StripeLayout(4, stripe_unit_mb=0.5)
        assert len(layout.chunks_of(0, 0.5)) == 1

    def test_large_file_chunk_count_and_sizes(self):
        layout = StripeLayout(4, stripe_unit_mb=0.5)
        chunks = layout.chunks_of(file_id=0, size_mb=1.7)
        assert [c.size_mb for c in chunks] == pytest.approx([0.5, 0.5, 0.5, 0.2])
        assert [c.disk_id for c in chunks] == [0, 1, 2, 3]

    def test_start_disk_staggers_by_file_id(self):
        layout = StripeLayout(4, stripe_unit_mb=0.5)
        assert layout.chunks_of(1, 1.0)[0].disk_id == 1
        assert layout.chunks_of(5, 1.0)[0].disk_id == 1

    def test_wraps_past_array_size(self):
        layout = StripeLayout(2, stripe_unit_mb=0.5)
        chunks = layout.chunks_of(0, 1.6)
        assert [c.disk_id for c in chunks] == [0, 1, 0, 1]

    def test_invalid_inputs(self):
        layout = StripeLayout(4)
        with pytest.raises(ValueError):
            layout.chunks_of(-1, 1.0)
        with pytest.raises(ValueError):
            layout.chunks_of(0, 0.0)
        with pytest.raises(ValueError):
            StripeLayout(0)


class TestAccessors:
    def test_disks_of_distinct_ordered(self):
        layout = StripeLayout(3, stripe_unit_mb=0.5)
        assert layout.disks_of(1, 2.0) == [1, 2, 0]

    def test_per_disk_bytes_accounting(self):
        layout = StripeLayout(2, stripe_unit_mb=0.5)
        per_disk = layout.per_disk_bytes(0, 1.6)
        assert per_disk[0] == pytest.approx(1.0)  # chunks 0 and 2
        assert per_disk[1] == pytest.approx(0.6)  # chunks 1 and 3


@given(st.integers(1, 8), st.integers(0, 100), st.floats(0.01, 50.0))
@settings(max_examples=200)
def test_chunks_conserve_size(n_disks, file_id, size_mb):
    layout = StripeLayout(n_disks, stripe_unit_mb=0.512)
    chunks = layout.chunks_of(file_id, size_mb)
    assert sum(c.size_mb for c in chunks) == pytest.approx(size_mb)
    assert all(0 <= c.disk_id < n_disks for c in chunks)
    assert all(c.size_mb <= 0.512 + 1e-12 for c in chunks)
