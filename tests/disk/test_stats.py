"""Per-drive statistics: counting, day buckets, normalization."""

import pytest

from repro.disk.stats import DiskStats
from repro.util.units import SECONDS_PER_DAY


class TestServiceCounting:
    def test_user_vs_internal(self):
        s = DiskStats(0)
        s.record_service(2.0, internal=False)
        s.record_service(3.0, internal=True)
        assert s.requests_served == 1
        assert s.internal_jobs_served == 1
        assert s.mb_served == pytest.approx(5.0)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            DiskStats(0).record_service(0.0, internal=False)


class TestTransitionCounting:
    def test_day_bucketing(self):
        s = DiskStats(0)
        s.record_transition(10.0)
        s.record_transition(SECONDS_PER_DAY - 1)
        s.record_transition(SECONDS_PER_DAY + 1)
        assert s.speed_transitions_total == 3
        assert s.transitions_on_day(0) == 2
        assert s.transitions_on_day(1) == 1
        assert s.transitions_on_day(7) == 0

    def test_max_transitions_per_day(self):
        s = DiskStats(0)
        assert s.max_transitions_per_day() == 0
        for t in (1.0, 2.0, 3.0, SECONDS_PER_DAY + 5):
            s.record_transition(t)
        assert s.max_transitions_per_day() == 3

    def test_per_day_normalization_extrapolates(self):
        s = DiskStats(0)
        for t in (1.0, 2.0):
            s.record_transition(t)
        # 2 transitions in half a day -> 4 per day
        assert s.transitions_per_day(SECONDS_PER_DAY / 2) == pytest.approx(4.0)

    def test_per_day_requires_positive_duration(self):
        with pytest.raises(ValueError):
            DiskStats(0).transitions_per_day(0.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            DiskStats(0).record_transition(-1.0)

    def test_midnight_boundary_belongs_to_the_new_day(self):
        # t == k * 86400 opens day k: the bucketing is floor(t / day),
        # so midnight itself is the first instant of the next day.
        s = DiskStats(0)
        s.record_transition(SECONDS_PER_DAY)
        s.record_transition(2 * SECONDS_PER_DAY)
        assert s.transitions_on_day(0) == 0
        assert s.transitions_on_day(1) == 1
        assert s.transitions_on_day(2) == 1

    def test_instant_before_midnight_stays_on_the_old_day(self):
        s = DiskStats(0)
        s.record_transition(SECONDS_PER_DAY - 1e-9)
        assert s.transitions_on_day(0) == 1
        assert s.transitions_on_day(1) == 0

    def test_time_zero_counts_on_day_zero(self):
        s = DiskStats(0)
        s.record_transition(0.0)
        assert s.transitions_on_day(0) == 1

    def test_sub_day_extrapolation_scales_linearly(self):
        # 3 transitions in one hour -> 72/day; in one second -> 259200/day.
        s = DiskStats(0)
        for t in (0.1, 0.2, 0.3):
            s.record_transition(t)
        assert s.transitions_per_day(3600.0) == pytest.approx(72.0)
        assert s.transitions_per_day(1.0) == pytest.approx(3 * SECONDS_PER_DAY)

    def test_zero_transitions_normalize_to_zero(self):
        assert DiskStats(0).transitions_per_day(5.0) == 0.0


class TestUtilization:
    def test_paper_definition(self):
        s = DiskStats(0)
        assert s.utilization(25.0, 100.0) == pytest.approx(0.25)

    def test_clamped_at_one(self):
        s = DiskStats(0)
        assert s.utilization(150.0, 100.0) == 1.0

    def test_zero_active(self):
        assert DiskStats(0).utilization(0.0, 100.0) == 0.0

    def test_invalid_power_on_time(self):
        with pytest.raises(ValueError):
            DiskStats(0).utilization(1.0, 0.0)

    def test_zero_power_on_time_rejected_even_when_idle(self):
        # A drive that never powered on has no defined utilization —
        # 0/0 must raise rather than silently return 0.
        with pytest.raises(ValueError):
            DiskStats(0).utilization(0.0, 0.0)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            DiskStats(0).utilization(-1.0, 100.0)
        with pytest.raises(ValueError):
            DiskStats(0).utilization(1.0, -100.0)

    def test_tiny_power_on_time_is_valid(self):
        assert DiskStats(0).utilization(1e-12, 1e-9) == pytest.approx(1e-3)
