"""Temperature-reliability function (Fig. 2b)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.press.temperature import GOOGLE_3YR_TEMPERATURE_ANCHORS, TemperatureReliability


@pytest.fixture(scope="module")
def f():
    return TemperatureReliability()


class TestAnchors:
    def test_anchor_values_exact(self, f):
        for temp, afr in GOOGLE_3YR_TEMPERATURE_ANCHORS:
            assert f(temp) == pytest.approx(afr)

    def test_paper_speed_temperatures(self, f):
        # the two PRESS operating points (Sec. 3.5)
        assert f(40.0) == pytest.approx(9.0)
        assert f(50.0) == pytest.approx(15.0)

    def test_domain(self, f):
        assert f.domain_c == (25.0, 50.0)


class TestMonotonicity:
    def test_monotone_over_domain(self, f):
        temps, afrs = f.curve(200)
        assert np.all(np.diff(afrs) >= -1e-12)

    @given(st.floats(25.0, 50.0), st.floats(25.0, 50.0))
    @settings(max_examples=200)
    def test_pairwise_monotone(self, f, t1, t2):
        if t1 > t2:
            t1, t2 = t2, t1
        assert f(t1) <= f(t2) + 1e-12


class TestClamping:
    def test_below_domain_clamps_to_low_anchor(self, f):
        assert f(0.0) == pytest.approx(4.5)
        assert f(24.9) == pytest.approx(4.5)

    def test_above_domain_clamps_to_high_anchor(self, f):
        assert f(80.0) == pytest.approx(15.0)

    def test_nan_rejected(self, f):
        with pytest.raises(ValueError):
            f(float("nan"))


class TestVectorized:
    def test_array_input_matches_scalar(self, f):
        temps = np.array([30.0, 42.5, 55.0])
        out = f(temps)
        assert out.shape == (3,)
        for t, v in zip(temps, out):
            assert v == pytest.approx(f(float(t)))

    def test_scalar_returns_float(self, f):
        assert isinstance(f(33.0), float)

    def test_curve_shapes(self, f):
        temps, afrs = f.curve(11)
        assert temps.shape == afrs.shape == (11,)
        assert temps[0] == 25.0 and temps[-1] == 50.0


class TestCustomAnchors:
    def test_custom_anchor_set(self):
        g = TemperatureReliability(((20.0, 1.0), (60.0, 3.0)))
        assert g(20.0) == pytest.approx(1.0)
        assert g(40.0) == pytest.approx(2.0)

    def test_decreasing_afr_rejected(self):
        with pytest.raises(ValueError):
            TemperatureReliability(((20.0, 5.0), (30.0, 4.0)))

    def test_unsorted_temps_rejected(self):
        with pytest.raises(ValueError):
            TemperatureReliability(((30.0, 1.0), (20.0, 2.0)))

    def test_single_anchor_rejected(self):
        with pytest.raises(ValueError):
            TemperatureReliability(((30.0, 1.0),))
