"""Assembled PRESS model: analytic surface + simulation interface."""

import numpy as np
import pytest

from repro.disk.array import DiskArray
from repro.disk.drive import Job, TwoSpeedDrive
from repro.disk.parameters import DiskSpeed
from repro.press.integrator import CombinationStrategy
from repro.press.model import PRESSModel
from repro.sim.engine import Simulator
from repro.workload.files import FileSet


class TestDiskAFR:
    def test_paper_operating_points_ordered(self, press):
        low_speed_quiet = press.disk_afr(40.0, 30.0, 0.0)
        high_speed_quiet = press.disk_afr(50.0, 30.0, 0.0)
        high_speed_churny = press.disk_afr(50.0, 30.0, 1000.0)
        high_speed_hot_busy = press.disk_afr(50.0, 90.0, 1000.0)
        assert low_speed_quiet < high_speed_quiet < high_speed_churny < high_speed_hot_busy

    def test_default_combination_value(self, press):
        # mean(temp=9 @40C, util=6 @30%) + freq(0) = 7.5 + 1.39e-4
        assert press.disk_afr(40.0, 30.0, 0.0) == pytest.approx(7.5, abs=0.01)

    def test_frequency_dominates_at_high_churn(self, press):
        """Sec. 3.5 insight 1: frequency is the most significant factor."""
        base = press.disk_afr(40.0, 30.0, 0.0)
        max_temp_effect = press.disk_afr(50.0, 30.0, 0.0) - base
        max_util_effect = press.disk_afr(40.0, 100.0, 0.0) - base
        max_freq_effect = press.disk_afr(40.0, 30.0, 1600.0) - base
        # frequency strictly dominates; temperature >= utilization (the
        # 40->50 degC and low->high utilization spans tie exactly under
        # the digitized anchors + mean rule)
        assert max_freq_effect > max_temp_effect >= max_util_effect


class TestSurface:
    def test_fig5_shapes(self, press):
        utils, freqs = np.linspace(25, 100, 7), np.linspace(0, 1600, 9)
        surface = press.afr_surface(50.0, utils, freqs)
        assert surface.shape == (7, 9)

    def test_fig5b_above_fig5a_everywhere(self, press):
        """50 degC surface dominates the 40 degC surface."""
        utils, freqs = np.linspace(25, 100, 7), np.linspace(0, 1600, 9)
        s40 = press.afr_surface(40.0, utils, freqs)
        s50 = press.afr_surface(50.0, utils, freqs)
        assert np.all(s50 > s40)

    def test_surface_monotone_along_both_axes(self, press):
        utils, freqs = np.linspace(25, 100, 10), np.linspace(0, 1600, 10)
        s = press.afr_surface(45.0, utils, freqs)
        assert np.all(np.diff(s, axis=0) >= -1e-12)   # utilization axis
        assert np.all(np.diff(s[:, 1:], axis=1) >= -1e-12)  # frequency axis past dip

    def test_surface_matches_pointwise_evaluation(self, press):
        utils, freqs = np.array([30.0, 80.0]), np.array([10.0, 500.0])
        s = press.afr_surface(40.0, utils, freqs)
        for i, u in enumerate(utils):
            for j, f in enumerate(freqs):
                assert s[i, j] == pytest.approx(press.disk_afr(40.0, u, f))

    def test_2d_grid_rejected(self, press):
        with pytest.raises(ValueError):
            press.afr_surface(40.0, np.ones((2, 2)), np.ones(3))


class TestSimulationInterface:
    def test_factors_of_quiet_drive(self, params, press):
        sim = Simulator()
        drive = TwoSpeedDrive(sim, params, 0, initial_speed=DiskSpeed.HIGH)
        sim.schedule(100.0, lambda: None)
        sim.run()
        drive.finalize()
        factors = press.factors_of(drive, 100.0)
        assert factors.transitions_per_day == 0.0
        assert factors.utilization_percent == 0.0
        assert factors.mean_temperature_c == pytest.approx(50.0)
        assert factors.afr_percent == pytest.approx(press.disk_afr(50.0, 0.0, 0.0))

    def test_evaluate_array_uses_max(self, params, press, tiny_fileset):
        sim = Simulator()
        array = DiskArray(sim, params, 3, tiny_fileset)
        # disk 0 transitions (worse), others stay put
        array.drive(0).request_speed(DiskSpeed.LOW)
        sim.run(until=1000.0)
        afr, factors = press.evaluate_array(array, 1000.0)
        assert len(factors) == 3
        assert afr == pytest.approx(max(f.afr_percent for f in factors))

    def test_evaluate_array_default_duration_is_now(self, params, press, tiny_fileset):
        sim = Simulator()
        array = DiskArray(sim, params, 2, tiny_fileset)
        array.drive(0).submit(Job.internal_transfer(5.0))
        sim.run()
        afr, factors = press.evaluate_array(array)
        assert all(f.utilization_percent > 0 for f in factors[:1])
        assert afr > 0


class TestStrategyFactory:
    def test_with_strategy(self):
        m = PRESSModel.with_strategy(CombinationStrategy.SUM)
        assert m.disk_afr(40.0, 30.0, 0.0) == pytest.approx(15.0, abs=0.01)

    def test_sum_dominates_default(self, press):
        m = PRESSModel.with_strategy(CombinationStrategy.SUM)
        for t, u, f in [(40, 30, 0), (50, 90, 100), (45, 60, 1500)]:
            assert m.disk_afr(t, u, f) >= press.disk_afr(t, u, f)
