"""Frequency-reliability function: Eq. 3 verbatim + the IDEMA doubling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.press.frequency import (
    EQ3_COEFFICIENTS,
    FrequencyReliability,
    frequency_afr_adder_percent,
    idema_start_stop_adder_percent,
)


class TestEq3Verbatim:
    def test_coefficients_match_paper(self):
        assert EQ3_COEFFICIENTS == (1.51e-5, -1.09e-4, 1.39e-4)

    def test_value_at_zero(self):
        # R(0) = c = 1.39e-4
        assert frequency_afr_adder_percent(0.0) == pytest.approx(1.39e-4)

    def test_value_at_1600(self):
        a, b, c = EQ3_COEFFICIENTS
        expected = a * 1600**2 + b * 1600 + c
        assert frequency_afr_adder_percent(1600.0) == pytest.approx(expected)
        assert expected == pytest.approx(38.49, abs=0.05)

    def test_paper_transition_cap_is_cheap(self):
        # READ's cap S = 40/day sits far below 1% AFR adder
        assert frequency_afr_adder_percent(40.0) < 0.03

    def test_warranty_bound_65_per_day(self):
        # the Sec. 3.5 '65 transitions/day' point is still small
        assert frequency_afr_adder_percent(65.0) < 0.06


class TestClampingAndGuards:
    def test_negative_frequency_rejected(self):
        with pytest.raises(ValueError):
            frequency_afr_adder_percent(-1.0)

    def test_quadratic_dip_clamped_at_zero(self):
        # the raw fit is negative near f ~ 3.6; adder must be >= 0
        assert frequency_afr_adder_percent(3.6) == 0.0

    def test_beyond_domain_clamps_by_default(self):
        assert frequency_afr_adder_percent(5000.0) == pytest.approx(
            frequency_afr_adder_percent(1600.0))

    def test_beyond_domain_raises_when_strict(self):
        with pytest.raises(ValueError):
            frequency_afr_adder_percent(1601.0, clip_domain=False)

    @given(st.floats(0.0, 1600.0))
    @settings(max_examples=200)
    def test_always_non_negative(self, f):
        assert frequency_afr_adder_percent(f) >= 0.0


class TestIdemaDoubling:
    def test_fig4a_is_exactly_twice_fig4b(self):
        freqs = np.linspace(0, 1600, 33)
        half = np.asarray(frequency_afr_adder_percent(freqs))
        full = np.asarray(idema_start_stop_adder_percent(freqs))
        np.testing.assert_allclose(full, 2.0 * half)

    def test_per_month_axis_conversion(self):
        # 300/month == 10/day under the 30-day convention
        assert idema_start_stop_adder_percent(300.0, per_month=True) == pytest.approx(
            idema_start_stop_adder_percent(10.0))


class TestWrapperClass:
    def test_callable_and_curves(self):
        f = FrequencyReliability()
        freqs, afrs = f.curve(17)
        assert freqs[0] == 0.0 and freqs[-1] == 1600.0
        ifreqs, iafrs = f.idema_curve(17)
        np.testing.assert_allclose(iafrs, 2 * afrs)

    def test_monotone_beyond_the_dip(self):
        f = FrequencyReliability()
        freqs = np.linspace(10, 1600, 100)
        vals = np.asarray(f(freqs))
        assert np.all(np.diff(vals) > 0)

    def test_vector_scalar_consistency(self):
        f = FrequencyReliability()
        freqs = np.array([0.0, 100.0, 1000.0])
        out = np.asarray(f(freqs))
        for q, v in zip(freqs, out):
            assert v == pytest.approx(f(float(q)))
