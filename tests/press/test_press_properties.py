"""Property-based PRESS invariants (hypothesis).

The model's load-bearing guarantees, checked over the whole input
domain rather than at hand-picked points:

* AFR is monotone non-decreasing in each ESRRA factor (temperature,
  utilization, transition frequency) within the model's fitted bounds —
  the paper's entire argument ("energy saving stresses disks") rests on
  this direction being right;
* :meth:`PRESSModel.rescore_factors` agrees with scoring the same raw
  factors through a fresh model (re-scoring is a pure function);
* :func:`annual_failure_rate_to_rate` solves ``1 - exp(-rate) == afr``
  exactly (the round-trip the docstring promises).
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.failures import annual_failure_rate_to_rate
from repro.press.frequency import EQ3_COEFFICIENTS
from repro.press.model import DiskFactors, PRESSModel

MODEL = PRESSModel()

# Eq. 3's unconstrained quadratic fit dips for f below its vertex
# (~3.6/day, see repro.press.frequency) — the monotone regime starts there
_A, _B, _ = EQ3_COEFFICIENTS
F_VERTEX = -_B / (2.0 * _A)

# the fitted domains: temperature anchors span 25-50 degC, utilization
# buckets span [25, 100] %, frequency (Eq. 3) is fitted on [0, 1600]/day
temps = st.floats(25.0, 50.0, allow_nan=False, allow_subnormal=False)
utils = st.floats(25.0, 100.0, allow_nan=False, allow_subnormal=False)
freqs = st.floats(F_VERTEX, 1600.0, allow_nan=False, allow_subnormal=False)
deltas = st.floats(0.0, 25.0, allow_nan=False, allow_subnormal=False)


class TestMonotonicity:
    @settings(max_examples=200, deadline=None)
    @given(t=temps, u=utils, f=freqs, dt=deltas)
    def test_afr_monotone_in_temperature(self, t, u, f, dt):
        hotter = min(t + dt, 50.0)
        assert MODEL.disk_afr(hotter, u, f) >= MODEL.disk_afr(t, u, f)

    @settings(max_examples=200, deadline=None)
    @given(t=temps, u=utils, f=freqs, du=deltas)
    def test_afr_monotone_in_utilization(self, t, u, f, du):
        busier = min(u + du, 100.0)
        assert MODEL.disk_afr(t, busier, f) >= MODEL.disk_afr(t, u, f)

    @settings(max_examples=200, deadline=None)
    @given(t=temps, u=utils, f=freqs,
           df=st.floats(0.0, 400.0, allow_nan=False, allow_subnormal=False))
    def test_afr_monotone_in_frequency(self, t, u, f, df):
        flappier = min(f + df, 1600.0)
        assert MODEL.disk_afr(t, u, flappier) >= MODEL.disk_afr(t, u, f)

    @settings(max_examples=100, deadline=None)
    @given(t=temps, u=utils,
           f=st.floats(0.0, 1600.0, allow_nan=False, allow_subnormal=False))
    def test_afr_bounded_and_finite(self, t, u, f):
        # includes the sub-vertex dip region of Eq. 3, where the
        # negative-adder clamp must keep the combined AFR sane
        afr = MODEL.disk_afr(t, u, f)
        assert 0.0 <= afr < 100.0


class TestRescoreConsistency:
    @settings(max_examples=100, deadline=None)
    @given(raw=st.lists(st.tuples(temps, utils, freqs), min_size=1, max_size=8))
    def test_rescore_matches_fresh_scoring(self, raw):
        factors = [
            DiskFactors(disk_id=i, mean_temperature_c=t,
                        utilization_percent=u, transitions_per_day=f,
                        # deliberately wrong input AFR: rescoring must
                        # recompute it from the raw factors alone
                        afr_percent=0.0)
            for i, (t, u, f) in enumerate(raw)
        ]
        array_afr, rescored = MODEL.rescore_factors(factors)
        fresh = [MODEL.disk_afr(t, u, f) for (t, u, f) in raw]
        assert [r.afr_percent for r in rescored] == fresh
        assert array_afr == max(fresh)
        # raw factor fields pass through untouched
        for before, after in zip(factors, rescored):
            assert after.disk_id == before.disk_id
            assert after.mean_temperature_c == before.mean_temperature_c
            assert after.utilization_percent == before.utilization_percent
            assert after.transitions_per_day == before.transitions_per_day


class TestRateRoundTrip:
    @settings(max_examples=300, deadline=None)
    @given(afr=st.floats(0.0, 99.999, allow_nan=False, allow_subnormal=False))
    def test_one_year_failure_probability_recovers_afr(self, afr):
        rate = annual_failure_rate_to_rate(afr)
        assert rate >= 0.0
        back = 1.0 - math.exp(-rate)
        assert math.isclose(back, afr / 100.0, rel_tol=1e-12, abs_tol=1e-15)

    @settings(max_examples=100, deadline=None)
    @given(a=st.floats(0.0, 99.0, allow_nan=False, allow_subnormal=False),
           d=st.floats(0.0, 0.999, allow_nan=False, allow_subnormal=False))
    def test_rate_monotone_in_afr(self, a, d):
        assert annual_failure_rate_to_rate(min(a + d, 99.999)) >= (
            annual_failure_rate_to_rate(a))
