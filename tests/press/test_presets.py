"""Anchor presets: validity and the stability of paper conclusions."""

import pytest

from repro.press.presets import (
    TEMPERATURE_PRESETS,
    UTILIZATION_PRESETS,
    preset_names,
    press_model_preset,
)


class TestPresetConstruction:
    @pytest.mark.parametrize("temp_name", sorted(TEMPERATURE_PRESETS))
    @pytest.mark.parametrize("util_name", sorted(UTILIZATION_PRESETS))
    def test_every_combination_builds(self, temp_name, util_name):
        model = press_model_preset(temp_name, util_name)
        afr = model.disk_afr(45.0, 60.0, 100.0)
        assert afr > 0

    def test_default_is_the_paper_model(self, press):
        model = press_model_preset()
        for point in [(40.0, 30.0, 0.0), (50.0, 90.0, 500.0)]:
            assert model.disk_afr(*point) == pytest.approx(press.disk_afr(*point))

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown temperature"):
            press_model_preset("bogus")
        with pytest.raises(ValueError, match="unknown utilization"):
            press_model_preset("paper-3yr", "bogus")

    def test_preset_names_cartesian(self):
        combos = preset_names()
        assert len(combos) == len(TEMPERATURE_PRESETS) * len(UTILIZATION_PRESETS)


class TestAnchorShapes:
    @pytest.mark.parametrize("name,anchors", sorted(TEMPERATURE_PRESETS.items()))
    def test_temperature_presets_monotone(self, name, anchors):
        afrs = [a for _, a in anchors]
        assert all(b >= a for a, b in zip(afrs, afrs[1:]))

    @pytest.mark.parametrize("name,buckets", sorted(UTILIZATION_PRESETS.items()))
    def test_utilization_presets_monotone(self, name, buckets):
        afrs = [a for _, a in buckets]
        assert all(b >= a for a, b in zip(afrs, afrs[1:]))

    def test_low_high_variants_bracket_default(self):
        lo = dict(TEMPERATURE_PRESETS["paper-3yr-low"])
        hi = dict(TEMPERATURE_PRESETS["paper-3yr-high"])
        mid = dict(TEMPERATURE_PRESETS["paper-3yr"])
        for temp in mid:
            assert lo[temp] < mid[temp] < hi[temp]

    def test_4yr_flatter_than_3yr(self):
        """The paper's stated reason for rejecting the 4-year data."""
        def span(anchors):
            afrs = [a for _, a in anchors]
            return afrs[-1] - afrs[0]
        assert span(TEMPERATURE_PRESETS["google-4yr"]) < span(
            TEMPERATURE_PRESETS["paper-3yr"])


class TestConclusionStability:
    """The reproduction's core robustness claim: orderings survive every
    reading of the digitized source charts."""

    @pytest.mark.parametrize("temp_name", sorted(TEMPERATURE_PRESETS))
    @pytest.mark.parametrize("util_name", sorted(UTILIZATION_PRESETS))
    def test_hot_busy_churny_disk_always_worse(self, temp_name, util_name):
        model = press_model_preset(temp_name, util_name)
        read_like = model.disk_afr(50.0, 30.0, 5.0)        # even load, capped
        maid_like = model.disk_afr(50.0, 80.0, 400.0)      # hot cache + churn
        pdc_like = model.disk_afr(50.0, 90.0, 900.0)       # concentration + churn
        assert read_like < maid_like < pdc_like

    @pytest.mark.parametrize("temp_name", sorted(TEMPERATURE_PRESETS))
    def test_frequency_still_dominates(self, temp_name):
        from repro.press.sensitivity import dominant_factor
        model = press_model_preset(temp_name)
        assert dominant_factor(model) == "frequency"
