"""Reliability integrator: combination strategies and the max rule."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.press.integrator import CombinationStrategy, ReliabilityIntegrator

afr = st.floats(0.0, 50.0)


class TestCombination:
    def test_mean_plus_adder_default(self):
        integ = ReliabilityIntegrator()
        assert integ.disk_afr(10.0, 6.0, 1.0) == pytest.approx(9.0)

    def test_sum(self):
        integ = ReliabilityIntegrator(CombinationStrategy.SUM)
        assert integ.disk_afr(10.0, 6.0, 1.0) == pytest.approx(17.0)

    def test_max_plus_adder(self):
        integ = ReliabilityIntegrator(CombinationStrategy.MAX_PLUS_ADDER)
        assert integ.disk_afr(10.0, 6.0, 1.0) == pytest.approx(11.0)

    def test_weighted(self):
        integ = ReliabilityIntegrator(CombinationStrategy.WEIGHTED,
                                      temperature_weight=0.75)
        assert integ.disk_afr(12.0, 4.0, 1.0) == pytest.approx(0.75 * 12 + 0.25 * 4 + 1)

    def test_weighted_validates_weight(self):
        with pytest.raises(ValueError):
            ReliabilityIntegrator(CombinationStrategy.WEIGHTED, temperature_weight=1.5)

    @pytest.mark.parametrize("strategy", list(CombinationStrategy))
    def test_strategies_ordered_sum_ge_max_ge_mean(self, strategy):
        integ = ReliabilityIntegrator(strategy)
        v = integ.disk_afr(10.0, 6.0, 1.0)
        mean = ReliabilityIntegrator(CombinationStrategy.MEAN_PLUS_ADDER).disk_afr(10.0, 6.0, 1.0)
        total = ReliabilityIntegrator(CombinationStrategy.SUM).disk_afr(10.0, 6.0, 1.0)
        assert mean - 1e-12 <= ReliabilityIntegrator(
            CombinationStrategy.MAX_PLUS_ADDER).disk_afr(10.0, 6.0, 1.0) <= total + 1e-12
        assert 0 <= v <= total + 1e-12

    @given(afr, afr, afr)
    @settings(max_examples=200)
    def test_all_strategies_monotone_in_each_factor(self, t, u, f):
        bump = 1.0
        for strategy in CombinationStrategy:
            integ = ReliabilityIntegrator(strategy)
            base = integ.disk_afr(t, u, f)
            assert integ.disk_afr(t + bump, u, f) >= base - 1e-12
            assert integ.disk_afr(t, u + bump, f) >= base - 1e-12
            assert integ.disk_afr(t, u, f + bump) >= base - 1e-12

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            ReliabilityIntegrator().disk_afr(-1.0, 6.0, 0.0)

    def test_vectorized_combination(self):
        integ = ReliabilityIntegrator()
        t = np.array([10.0, 12.0])
        out = integ.disk_afr(t, np.array([6.0, 6.0]), np.array([0.0, 1.0]))
        np.testing.assert_allclose(out, [8.0, 10.0])


class TestArrayReduction:
    def test_array_afr_is_max(self):
        assert ReliabilityIntegrator.array_afr([8.0, 12.5, 9.0]) == 12.5

    def test_single_disk(self):
        assert ReliabilityIntegrator.array_afr([7.0]) == 7.0

    def test_generator_input(self):
        assert ReliabilityIntegrator.array_afr(x for x in (1.0, 3.0, 2.0)) == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ReliabilityIntegrator.array_afr([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ReliabilityIntegrator.array_afr([5.0, -1.0])

    @given(st.lists(afr, min_size=1, max_size=20))
    @settings(max_examples=100)
    def test_max_rule_properties(self, afrs):
        result = ReliabilityIntegrator.array_afr(afrs)
        assert result == max(afrs)
        # never better than average (tolerance: sum/len can round above
        # the true mean when the values are nearly equal)
        assert result >= sum(afrs) / len(afrs) - 1e-9
