"""Sensitivity analysis: the paper's insight ranking, quantified."""

import numpy as np
import pytest

from repro.press.integrator import CombinationStrategy
from repro.press.model import PRESSModel
from repro.press.sensitivity import (
    DEFAULT_RANGES,
    FactorRange,
    dominant_factor,
    partial_effect,
    tornado,
)


class TestTornado:
    def test_paper_insight_ranking(self):
        """Sec. 3.5: frequency > temperature >= utilization."""
        bars = tornado()
        order = [b.factor for b in bars]
        assert order[0] == "frequency"
        swings = {b.factor: b.swing for b in bars}
        assert swings["frequency"] > swings["temperature"]
        assert swings["temperature"] >= swings["utilization"]

    def test_bars_sorted_descending(self):
        bars = tornado()
        assert all(a.swing >= b.swing for a, b in zip(bars, bars[1:]))

    def test_swing_matches_endpoints(self):
        for bar in tornado():
            assert bar.swing == pytest.approx(abs(bar.afr_at_high - bar.afr_at_low))

    def test_custom_base_point(self):
        bars = tornado(base={"temperature": 50.0, "utilization": 90.0,
                             "frequency": 1500.0})
        assert {b.factor for b in bars} == {"temperature", "utilization", "frequency"}

    def test_bad_base_rejected(self):
        with pytest.raises(ValueError):
            tornado(base={"temperature": 40.0})

    def test_narrow_frequency_range_demotes_frequency(self):
        """At READ-like transition caps the frequency axis stops
        dominating — the model's advice is range-dependent."""
        ranges = dict(DEFAULT_RANGES)
        ranges["frequency"] = FactorRange(0.0, 40.0)
        assert dominant_factor(ranges=ranges) != "frequency"

    def test_sum_strategy_preserves_ranking(self):
        press = PRESSModel.with_strategy(CombinationStrategy.SUM)
        assert dominant_factor(press) == "frequency"


class TestPartialEffect:
    def test_frequency_curve_matches_direct_eval(self):
        press = PRESSModel()
        xs, ys = partial_effect("frequency", press=press, n_points=9)
        base = {"temperature": 42.5, "utilization": 50.0}
        for x, y in zip(xs, ys):
            assert y == pytest.approx(press.disk_afr(base["temperature"],
                                                     base["utilization"], float(x)))

    def test_temperature_curve_monotone(self):
        _, ys = partial_effect("temperature")
        assert np.all(np.diff(ys) >= -1e-12)

    def test_unknown_factor_rejected(self):
        with pytest.raises(ValueError):
            partial_effect("humidity")

    def test_custom_range(self):
        xs, _ = partial_effect("frequency", factor_range=FactorRange(0.0, 65.0))
        assert xs[-1] == 65.0


class TestDominantFactor:
    def test_default_is_frequency(self):
        assert dominant_factor() == "frequency"

    def test_factor_range_validation(self):
        with pytest.raises(ValueError):
            FactorRange(10.0, 5.0)
