"""Utilization-reliability function (Fig. 3b): buckets and smooth mode."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.press.utilization import GOOGLE_4YR_UTILIZATION_BUCKETS, UtilizationReliability


@pytest.fixture(scope="module")
def step():
    return UtilizationReliability()


@pytest.fixture(scope="module")
def smooth():
    return UtilizationReliability(smooth=True)


class TestPaperBuckets:
    def test_bucket_edges_match_sec_3_3(self, step):
        # low [25,50): 6.0; medium [50,75): 8.0; high [75,100]: 12.0
        assert step(30.0) == 6.0
        assert step(49.999) == 6.0
        assert step(50.0) == 8.0
        assert step(74.999) == 8.0
        assert step(75.0) == 12.0
        assert step(100.0) == 12.0

    def test_bucket_names(self, step):
        assert step.bucket_of(30.0) == "low"
        assert step.bucket_of(60.0) == "medium"
        assert step.bucket_of(90.0) == "high"

    def test_below_25_clamps_to_low(self, step):
        assert step(0.0) == 6.0
        assert step(10.0) == 6.0

    def test_domain(self, step):
        assert step.domain_percent == (25.0, 100.0)


class TestValidation:
    def test_above_100_rejected(self, step):
        with pytest.raises(ValueError):
            step(101.0)

    def test_negative_rejected(self, step):
        with pytest.raises(ValueError):
            step(-1.0)

    def test_nan_rejected(self, step):
        with pytest.raises(ValueError):
            step(float("nan"))

    def test_decreasing_buckets_rejected(self):
        with pytest.raises(ValueError):
            UtilizationReliability(((25.0, 9.0), (50.0, 6.0), (75.0, 12.0)))


class TestSmoothVariant:
    def test_midpoints_hit_bucket_values(self, smooth):
        for edge, afr in GOOGLE_4YR_UTILIZATION_BUCKETS:
            assert smooth(edge + 12.5) == pytest.approx(afr)

    def test_smooth_is_monotone(self, smooth):
        utils, afrs = smooth.curve(300)
        assert np.all(np.diff(afrs) >= -1e-12)

    def test_smooth_interpolates_between_buckets(self, smooth):
        # halfway between low midpoint (37.5 -> 6) and medium (62.5 -> 8)
        assert smooth(50.0) == pytest.approx(7.0)

    @given(st.floats(0.0, 100.0))
    @settings(max_examples=200)
    def test_smooth_within_bucket_range(self, smooth, u):
        v = smooth(u)
        assert 6.0 - 1e-9 <= v <= 12.0 + 1e-9


class TestFromFraction:
    def test_fraction_equals_percent(self, step):
        assert step.from_fraction(0.6) == step(60.0)

    def test_vectorized_fraction(self, step):
        out = step.from_fraction(np.array([0.3, 0.6, 0.9]))
        np.testing.assert_allclose(out, [6.0, 8.0, 12.0])


class TestVectorized:
    def test_array_matches_scalar(self, step):
        utils = np.linspace(0, 100, 21)
        out = step(utils)
        for u, v in zip(utils, out):
            assert v == step(float(u))

    def test_curve_domain(self, step):
        utils, afrs = step.curve(16)
        assert utils[0] == 25.0 and utils[-1] == 100.0
        assert afrs[0] == 6.0 and afrs[-1] == 12.0
