"""Coffin-Manson/Arrhenius analysis: the Sec. 3.4 exact-claim tests.

These tests pin the reproduction of the paper's published derivation —
including the documented erratum (DESIGN.md, inconsistency 1).
"""

import math

import pytest

from repro.press.coffin_manson import (
    BOLTZMANN_EV_PER_K,
    CoffinManson,
    arrhenius_acceleration,
    paper_calibration,
)


class TestArrhenius:
    def test_paper_g_over_a_at_50c(self):
        """Paper: G(T_max)/A = 3.2275e-20 at 50 degC (1% tolerance for
        the paper's internal rounding)."""
        assert arrhenius_acceleration(50.0) == pytest.approx(3.2275e-20, rel=0.01)

    def test_boltzmann_constant_as_printed(self):
        assert BOLTZMANN_EV_PER_K == 8.617e-5

    def test_higher_temperature_larger_acceleration(self):
        assert arrhenius_acceleration(50.0) > arrhenius_acceleration(45.0)

    def test_scale_factor_linear(self):
        assert arrhenius_acceleration(40.0, scale=2.0) == pytest.approx(
            2.0 * arrhenius_acceleration(40.0))

    def test_kelvin_conversion_used(self):
        expected = math.exp(-1.25 / (8.617e-5 * (273.16 + 50.0)))
        assert arrhenius_acceleration(50.0) == pytest.approx(expected)


class TestCoffinMansonModel:
    def test_default_exponents_match_paper(self):
        m = CoffinManson()
        assert m.alpha == pytest.approx(-1.0 / 3.0)
        assert m.beta == 2.0
        assert m.ea_ev == 1.25

    def test_calibration_roundtrip(self):
        m = CoffinManson().calibrated(50_000.0, 25.0, 22.0, 50.0)
        assert m.cycles_to_failure(25.0, 22.0, 50.0) == pytest.approx(50_000.0)

    def test_fewer_cycles_at_larger_delta_t(self):
        m = CoffinManson().calibrated(50_000.0, 25.0, 22.0, 50.0)
        assert m.cycles_to_failure(25.0, 30.0, 50.0) < 50_000.0

    def test_fewer_cycles_at_higher_t_max(self):
        m = CoffinManson().calibrated(50_000.0, 25.0, 22.0, 50.0)
        # hotter peak -> larger Arrhenius acceleration of damage; but in
        # Eq. 1 as printed, G multiplies N_f, so check directionality as
        # the equation defines it
        hotter = m.cycles_to_failure(25.0, 22.0, 55.0)
        cooler = m.cycles_to_failure(25.0, 22.0, 45.0)
        assert hotter != cooler

    def test_positive_alpha_rejected(self):
        with pytest.raises(ValueError):
            CoffinManson(alpha=0.5)

    def test_invalid_inputs_rejected(self):
        m = CoffinManson()
        with pytest.raises(ValueError):
            m.cycles_to_failure(0.0, 22.0, 50.0)
        with pytest.raises(ValueError):
            m.cycles_to_failure(25.0, 0.0, 50.0)


class TestPaperCalibration:
    """The headline Sec. 3.4 numbers."""

    @pytest.fixture(scope="class")
    def cal(self):
        return paper_calibration()

    def test_transitions_to_failure_near_118529(self, cal):
        """Paper: N'_f = 118,529.  Our exact arithmetic gives ~119,522
        (the paper rounded intermediates); accept 2%."""
        assert cal.transitions_to_failure == pytest.approx(118_529, rel=0.02)

    def test_ratio_roughly_twice(self, cal):
        """Paper: N'_f 'is roughly twice of N_f'."""
        assert 2.0 <= cal.ratio <= 2.5

    def test_damage_ratio_about_half(self, cal):
        """Paper: 'a disk speed transition can cause about 50% effects on
        reliability as that of incurred by a spindle start/stop'."""
        assert cal.damage_ratio == pytest.approx(0.5, abs=0.1)

    def test_max_transitions_per_day_about_65(self, cal):
        """Paper Sec. 3.5: 118529/5/365 ~ 65 per day."""
        assert cal.max_transitions_per_day == pytest.approx(65.0, abs=1.0)

    def test_g_over_a_recorded(self, cal):
        assert cal.g_over_a_at_50c == pytest.approx(3.2275e-20, rel=0.01)

    def test_erratum_a_a0_is_order_e27_not_e26(self, cal):
        """DESIGN.md inconsistency 1: with the paper's own inputs the
        constant is ~2.2e27; the printed 2.564317e26 is inconsistent
        with the printed N'_f."""
        assert 1e27 < cal.model.a_a0 < 4e27

    def test_downstream_consistency_of_erratum(self, cal):
        """N'_f recomputed from OUR A*A0 must reproduce the paper's
        118,529 — showing the printed constant (not the result) is the
        typo."""
        nf = cal.model.cycles_to_failure(25.0, 10.0, 45.0)
        assert nf == pytest.approx(118_529, rel=0.02)

    def test_custom_warranty_scales_bound(self):
        cal3 = paper_calibration(warranty_years=3.0)
        cal5 = paper_calibration(warranty_years=5.0)
        assert cal3.max_transitions_per_day == pytest.approx(
            cal5.max_transitions_per_day * 5.0 / 3.0)
