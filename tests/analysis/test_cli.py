"""CLI contract: exit codes, JSON shape, and the self-clean gate.

The acceptance bar for the whole suite lives here:
``repro lint`` over ``src/repro`` must report zero unsuppressed
findings (exit 0), and the known-bad fixture tree must exit 1.
"""
import json
from pathlib import Path

import pytest

from repro.analysis.cli import main as lint_main
from repro.cli import main as repro_main

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src" / "repro"
BAD = Path(__file__).parent / "fixtures" / "known_bad"


# ----------------------------------------------------------------------
# the gate itself
# ----------------------------------------------------------------------
def test_source_tree_is_clean():
    assert lint_main([str(SRC)]) == 0


def test_known_bad_tree_exits_1():
    assert lint_main([str(BAD)]) == 1


def test_repro_lint_subcommand_matches_module_entry(capsys):
    assert repro_main(["lint", str(SRC)]) == 0
    assert repro_main(["lint", str(BAD)]) == 1
    capsys.readouterr()


# ----------------------------------------------------------------------
# exit codes
# ----------------------------------------------------------------------
def test_unknown_rule_code_is_usage_error(capsys):
    assert lint_main(["--rules", "NOPE999", str(BAD)]) == 2
    assert "unknown rule code" in capsys.readouterr().err


def test_missing_path_is_usage_error(capsys):
    assert lint_main([str(BAD / "no_such_dir_anywhere")]) == 2


def test_update_baseline_without_all_is_usage_error(capsys):
    assert lint_main(["--update-baseline", str(SRC)]) == 2


def test_list_rules_exits_clean(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("DET001", "DET002", "DET003", "IO001", "OBS001",
                 "NUM001", "NUM002", "ARCH001"):
        assert code in out


# ----------------------------------------------------------------------
# output contract: JSON on stdout, logs on stderr
# ----------------------------------------------------------------------
def test_json_document_shape(capsys):
    assert lint_main(["--json", str(BAD)]) == 1
    captured = capsys.readouterr()
    doc = json.loads(captured.out)     # stdout is pure JSON
    assert doc["version"] == 1
    assert doc["clean"] is False
    assert doc["files_checked"] == 8
    assert {"path", "line", "col", "code", "message", "tool"} <= set(
        doc["findings"][0])
    assert all(f["tool"] == "repro" for f in doc["findings"])
    assert "checked" in captured.err   # the summary went to stderr


def test_json_on_clean_tree_reports_suppressions(capsys):
    assert lint_main(["--json", str(SRC)]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["clean"] is True
    assert doc["findings"] == []
    # the shipped tree documents its justified exceptions
    assert doc["suppressed"], "expected pragma-suppressed sites in src/repro"
    assert all(f["justification"] for f in doc["suppressed"])


def test_human_output_renders_path_line_col(capsys):
    lint_main([str(BAD)])
    out = capsys.readouterr().out
    assert "bad_rng.py:12:" in out and "DET001" in out


# ----------------------------------------------------------------------
# rule selection
# ----------------------------------------------------------------------
def test_rules_filter_limits_findings(capsys):
    assert lint_main(["--rules", "ARCH001", "--json", str(BAD)]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert {f["code"] for f in doc["findings"]} == {"ARCH001"}


# ----------------------------------------------------------------------
# external tools are gated, not assumed
# ----------------------------------------------------------------------
def test_all_reports_tool_status(capsys):
    # must not crash whether or not mypy/ruff exist in the environment;
    # exit 2 is only legal via --require-tools
    code = lint_main(["--all", "--json", str(BAD)])
    doc = json.loads(capsys.readouterr().out)
    assert code == 1
    assert {t["tool"] for t in doc["tools"]} == {"mypy", "ruff"}
    assert all(t["status"] in ("ok", "findings", "skipped", "error")
               for t in doc["tools"])


def test_require_tools_escalates_missing_tool(capsys):
    import importlib.util
    import shutil

    have_both = (importlib.util.find_spec("mypy") is not None
                 and (shutil.which("ruff") is not None
                      or importlib.util.find_spec("ruff") is not None))
    if have_both:
        pytest.skip("both tools installed; skip path not reachable")
    assert lint_main(["--all", "--require-tools", str(BAD)]) == 2
