"""NUM002 fixture: per-element Python loops over SoA buffers.

Line numbers are asserted exactly by tests/analysis/test_rules.py.
"""


def total_energy(state) -> float:
    out = 0.0
    for value in state.energy_j:                 # line 9: NUM002 (buffer attr)
        out += value
    temps = [t for t in state.temp_c.tolist()]   # line 11: NUM002 (.tolist())
    return out + sum(temps)
