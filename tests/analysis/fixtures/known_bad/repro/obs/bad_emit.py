"""OBS001 fixture: events emitted outside the registered taxonomy.

Line numbers are asserted exactly by tests/analysis/test_rules.py.
"""


def narrate(bus, names: list[str]) -> None:
    bus.emit("totally.adhoc", 0.0)  # line 8: OBS001 (unregistered literal)
    for name in names:
        bus.emit(name, 1.0)         # line 10: OBS001 (dynamic event type)
