"""IO001 fixture: raw artifact writes that can tear on a crash.

Line numbers are asserted exactly by tests/analysis/test_rules.py.
"""
import json
from pathlib import Path


def dump(doc: dict, path: str) -> None:
    with open(path, "w") as fh:     # line 10: IO001 (raw write-mode open)
        json.dump(doc, fh)          # line 11: IO001 (raw json.dump)


def note(path: Path, text: str) -> None:
    path.write_text(text)           # line 15: IO001 (.write_text)
