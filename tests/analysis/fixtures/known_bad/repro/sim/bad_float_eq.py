"""NUM001 fixture: float equality in kernel code.

Line numbers are asserted exactly by tests/analysis/test_rules.py.
"""


def due(now_s: float, deadline_s: float) -> bool:
    return now_s == deadline_s      # line 8: NUM001 (unit-suffix idents)


def exhausted(budget: float) -> bool:
    return budget == 0.0            # line 12: NUM001 (float literal)
