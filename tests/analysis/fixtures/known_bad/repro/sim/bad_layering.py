"""ARCH001 fixture: a kernel module reaching up into the harness layer.

Line numbers are asserted exactly by tests/analysis/test_rules.py.
"""
from repro.experiments.runner import run_simulation  # line 5: ARCH001

__all__ = ["run_simulation"]
