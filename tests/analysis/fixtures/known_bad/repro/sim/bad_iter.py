"""DET003 fixture: hash-ordered iteration in kernel code.

Line numbers are asserted exactly by tests/analysis/test_rules.py.
"""


def drain(ids: list[str], table: dict[str, float]) -> list[float]:
    out = []
    for name in set(ids):           # line 9: DET003 (set iteration)
        out.append(table[name])
    for key in table.keys():        # line 11: DET003 (.keys() iteration)
        out.append(table[key])
    return out
