"""DET001 fixture: global-state RNG draws in kernel code.

Line numbers are asserted exactly by tests/analysis/test_rules.py —
keep the offending statements where they are.
"""
import random

import numpy as np


def jitter() -> float:
    return random.random()          # line 12: DET001 (random.*)


def burst(n: int) -> "np.ndarray":
    return np.random.rand(n)        # line 16: DET001 (np.random.<fn>)
