"""DET002 fixture: wall-clock and environment reads in kernel code.

Line numbers are asserted exactly by tests/analysis/test_rules.py.
"""
import os
import time


def stamp() -> float:
    return time.time()              # line 10: DET002 (wall clock)


def knob() -> str:
    return os.environ["REPRO_X"]    # line 14: DET002 (environment)
