"""Clean-telemetry fixture: every emit names a registered event.
tests/analysis/test_rules.py asserts zero findings here.
"""
from repro.obs import events as ev


def narrate(bus) -> None:
    bus.emit(ev.REQUEST_SUBMIT, 0.0, disk=0)
    bus.emit("request.complete", 1.0, disk=0)   # literal, but registered
