"""Clean-kernel fixture: the sanctioned counterpart of every known_bad
pattern.  tests/analysis/test_rules.py asserts zero findings here.
"""
import math
import time

import numpy as np


def jitter(rng: np.random.Generator) -> float:
    return float(rng.random())


def fresh(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def elapsed() -> float:
    # perf_counter is telemetry-only and explicitly allowed by DET002
    return time.perf_counter()


def drain(ids: list[str], table: dict[str, float]) -> list[float]:
    out = [table[name] for name in sorted(set(ids))]
    for key in table:           # dict iteration: insertion order, allowed
        out.append(table[key])
    return out


def due(now_s: float, deadline_s: float) -> bool:
    return math.isclose(now_s, deadline_s) or now_s > deadline_s
