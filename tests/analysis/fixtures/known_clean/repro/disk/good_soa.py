"""NUM002 clean counterpart: whole-array expressions over SoA buffers."""

import numpy as np


def total_energy(state) -> float:
    # vectorized reduction — no per-element Python loop
    return float(np.add.reduce(state.energy_j, axis=None))


def hottest_disk(state) -> int:
    return int(np.argmax(state.temp_c))
