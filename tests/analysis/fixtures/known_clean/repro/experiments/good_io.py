"""Clean-artifact fixture: reads freely, publishes atomically.
tests/analysis/test_rules.py asserts zero findings here.
"""
import json
from pathlib import Path

from repro.util.atomicio import atomic_write_text


def load(path: str) -> dict:
    with open(path) as fh:          # read-mode open is fine
        return json.load(fh)


def dump(doc: dict, path: Path) -> Path:
    return atomic_write_text(path, json.dumps(doc, sort_keys=True))
