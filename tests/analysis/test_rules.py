"""One positive and one negative test per rule code.

The positive cases pin the exact (file, line, code) of every finding in
the committed ``known_bad`` fixture tree; the negative cases assert the
``known_clean`` tree (which exercises the sanctioned counterpart of each
pattern) produces nothing.
"""
from pathlib import Path

import pytest

from repro.analysis import lint_paths, rule_codes

FIXTURES = Path(__file__).parent / "fixtures"
BAD = FIXTURES / "known_bad"
CLEAN = FIXTURES / "known_clean"


def _findings(tree: Path, code: str) -> list[tuple[str, int]]:
    result = lint_paths([tree], root=FIXTURES)
    return [(f.path, f.line) for f in result.findings if f.code == code]


# ----------------------------------------------------------------------
# positive: every rule fires at the pinned locations
# ----------------------------------------------------------------------
EXPECTED = {
    "DET001": [("known_bad/repro/sim/bad_rng.py", 12),
               ("known_bad/repro/sim/bad_rng.py", 16)],
    "DET002": [("known_bad/repro/sim/bad_clock.py", 10),
               ("known_bad/repro/sim/bad_clock.py", 14)],
    "DET003": [("known_bad/repro/sim/bad_iter.py", 9),
               ("known_bad/repro/sim/bad_iter.py", 11)],
    "IO001": [("known_bad/repro/experiments/bad_io.py", 10),
              ("known_bad/repro/experiments/bad_io.py", 11),
              ("known_bad/repro/experiments/bad_io.py", 15)],
    "OBS001": [("known_bad/repro/obs/bad_emit.py", 8),
               ("known_bad/repro/obs/bad_emit.py", 10)],
    "NUM001": [("known_bad/repro/sim/bad_float_eq.py", 8),
               ("known_bad/repro/sim/bad_float_eq.py", 12)],
    "NUM002": [("known_bad/repro/disk/bad_soa_loop.py", 9),
               ("known_bad/repro/disk/bad_soa_loop.py", 11)],
    "ARCH001": [("known_bad/repro/sim/bad_layering.py", 5)],
}


@pytest.mark.parametrize("code", sorted(EXPECTED))
def test_rule_fires_at_exact_locations(code):
    assert _findings(BAD, code) == EXPECTED[code]


def test_every_registered_rule_has_a_positive_case():
    assert set(EXPECTED) == set(rule_codes())


def test_known_bad_total_is_exactly_the_expected_set():
    result = lint_paths([BAD], root=FIXTURES)
    got = {(f.path, f.line, f.code) for f in result.findings}
    want = {(path, line, code)
            for code, locs in EXPECTED.items() for path, line in locs}
    assert got == want
    assert not result.suppressed


# ----------------------------------------------------------------------
# negative: the sanctioned counterparts stay silent
# ----------------------------------------------------------------------
@pytest.mark.parametrize("code", sorted(EXPECTED))
def test_rule_is_silent_on_clean_tree(code):
    assert _findings(CLEAN, code) == []


def test_known_clean_is_fully_clean():
    result = lint_paths([CLEAN], root=FIXTURES)
    assert result.findings == []
    assert result.files_checked == 4


# ----------------------------------------------------------------------
# scoping: the same pattern outside a rule's scope is not flagged
# ----------------------------------------------------------------------
def test_kernel_rules_ignore_out_of_scope_modules(tmp_path):
    # identical source to bad_clock.py, but placed under repro/cli-side
    # tooling where DET002 does not apply
    mod = tmp_path / "repro" / "analysis" / "clocky.py"
    mod.parent.mkdir(parents=True)
    mod.write_text("import time\n\n\ndef stamp():\n    return time.time()\n")
    result = lint_paths([mod], root=tmp_path)
    assert [f.code for f in result.findings] == []


def test_non_repro_files_are_skipped_by_scoped_rules(tmp_path):
    mod = tmp_path / "scratch.py"
    mod.write_text("import time\n\n\ndef stamp():\n    return time.time()\n")
    result = lint_paths([mod], root=tmp_path)
    assert result.findings == []
