"""Engine behaviour: pragmas, parse errors, name resolution, scoping."""
from pathlib import Path

from repro.analysis import lint_paths
from repro.analysis.core import ModuleInfo, _module_name


def _kernel_module(tmp_path: Path, source: str, name: str = "mod.py") -> Path:
    path = tmp_path / "repro" / "sim" / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return path


# ----------------------------------------------------------------------
# pragma suppression
# ----------------------------------------------------------------------
def test_justified_pragma_suppresses_and_records_why(tmp_path):
    path = _kernel_module(tmp_path,
        "import time\n"
        "\n"
        "\n"
        "def stamp():\n"
        "    return time.time()  # repro: allow[DET002] boot banner only\n")
    result = lint_paths([path], root=tmp_path)
    assert result.findings == []
    assert len(result.suppressed) == 1
    finding, why = result.suppressed[0]
    assert finding.code == "DET002" and finding.line == 5
    assert why == "boot banner only"


def test_unjustified_pragma_keeps_finding_and_flags_pragma(tmp_path):
    path = _kernel_module(tmp_path,
        "import time\n"
        "\n"
        "\n"
        "def stamp():\n"
        "    return time.time()  # repro: allow[DET002]\n")
    result = lint_paths([path], root=tmp_path)
    codes = sorted(f.code for f in result.findings)
    assert codes == ["DET002", "PRAGMA001"]
    assert not result.suppressed


def test_stale_pragma_is_flagged(tmp_path):
    path = _kernel_module(tmp_path,
        "def nothing():\n"
        "    return 1  # repro: allow[DET002] there is no clock here\n")
    result = lint_paths([path], root=tmp_path)
    assert [f.code for f in result.findings] == ["PRAGMA002"]
    assert result.findings[0].line == 2


def test_pragma_only_suppresses_named_codes(tmp_path):
    # the pragma names NUM001, so the DET002 finding on the line survives
    path = _kernel_module(tmp_path,
        "import time\n"
        "\n"
        "\n"
        "def stamp():\n"
        "    return time.time()  # repro: allow[NUM001] wrong code\n")
    result = lint_paths([path], root=tmp_path)
    codes = sorted(f.code for f in result.findings)
    assert codes == ["DET002", "PRAGMA002"]


def test_pragma_in_docstring_is_not_a_pragma(tmp_path):
    path = _kernel_module(tmp_path,
        '"""Docs quoting `# repro: allow[DET002] example` are inert."""\n'
        "def nothing():\n"
        "    return 1\n")
    result = lint_paths([path], root=tmp_path)
    assert result.findings == []


# ----------------------------------------------------------------------
# parse errors
# ----------------------------------------------------------------------
def test_syntax_error_yields_parse_finding(tmp_path):
    path = _kernel_module(tmp_path, "def broken(:\n    pass\n")
    result = lint_paths([path], root=tmp_path)
    assert [f.code for f in result.findings] == ["PARSE001"]
    assert result.files_checked == 1


# ----------------------------------------------------------------------
# module naming + resolution
# ----------------------------------------------------------------------
def test_module_name_uses_last_repro_segment():
    assert _module_name(Path("src/repro/sim/engine.py")) == "repro.sim.engine"
    assert (_module_name(Path("tests/x/fixtures/known_bad/repro/sim/a.py"))
            == "repro.sim.a")
    assert _module_name(Path("src/repro/obs/__init__.py")) == "repro.obs"
    assert _module_name(Path("elsewhere/tool.py")) == "tool"


def test_resolve_follows_import_aliases():
    source = ("import numpy as np\n"
              "from repro.obs import events as ev\n"
              "x = np.random.default_rng\n"
              "y = ev.FAULT_INJECT\n")
    info = ModuleInfo(Path("repro/sim/m.py"), "repro/sim/m.py", source)
    import ast

    assigns = [n.value for n in ast.walk(info.tree)
               if isinstance(n, ast.Assign)]
    assert info.resolve(assigns[0]) == "numpy.random.default_rng"
    assert info.resolve(assigns[1]) == "repro.obs.events.FAULT_INJECT"


def test_type_checking_imports_are_exempt_from_layering(tmp_path):
    path = _kernel_module(tmp_path,
        "from typing import TYPE_CHECKING\n"
        "\n"
        "if TYPE_CHECKING:\n"
        "    from repro.experiments.runner import ExperimentConfig\n")
    result = lint_paths([path], root=tmp_path)
    assert [f.code for f in result.findings] == []
