"""Cross-policy property tests: invariants every policy must keep on
arbitrary small workloads.

These are the safety net under the whole comparison methodology: if any
policy ever lost a request, overfilled a disk, blew its transition
budget, or leaked accounting time, the Fig. 7 numbers would be garbage.
Hypothesis drives randomized (trace, policy, array) combinations through
the full runner.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.disk.parameters import cheetah_two_speed
from repro.experiments.runner import make_policy, run_simulation
from repro.workload.files import FileSet
from repro.workload.trace import Trace

PARAMS = cheetah_two_speed()

POLICY_NAMES = ("read", "maid", "pdc", "drpm", "static-high", "static-low",
                "read-rotate", "read-replicate", "striped-static")

workloads = st.builds(
    lambda n_files, n_req, gap_ms, seed: _make_workload(n_files, n_req, gap_ms, seed),
    n_files=st.integers(4, 40),
    n_req=st.integers(20, 400),
    gap_ms=st.floats(1.0, 200.0),
    seed=st.integers(0, 10_000),
)


def _make_workload(n_files: int, n_req: int, gap_ms: float, seed: int):
    rng = np.random.default_rng(seed)
    sizes = rng.uniform(0.01, 3.0, n_files)
    times = np.cumsum(rng.exponential(gap_ms / 1e3, n_req))
    fids = rng.integers(0, n_files, n_req)
    return FileSet(sizes), Trace(times, fids)


def _policy_kwargs(name: str) -> dict:
    # shrink epochs/periods so the adaptive machinery exercises even on
    # second-scale traces
    if name in ("read", "read-rotate", "read-replicate", "pdc"):
        return {"epoch_s": 2.0}
    if name == "drpm":
        return {"control_period_s": 2.0}
    return {}


@given(workloads, st.sampled_from(POLICY_NAMES), st.integers(2, 6))
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_every_request_completes_and_books_balance(workload, policy_name, n_disks):
    fileset, trace = workload
    result = run_simulation(make_policy(policy_name, **_policy_kwargs(policy_name)),
                            fileset, trace, n_disks=n_disks, disk_params=PARAMS)

    # completeness
    assert result.n_requests == len(trace)
    assert result.duration_s >= trace.duration_s - 1e-9
    assert result.mean_response_s > 0

    # energy books balance: per-state breakdown sums to the total, and
    # the total sits between the all-low-idle floor and all-max ceiling
    assert sum(result.energy_breakdown_j.values()) == pytest.approx(
        result.total_energy_j, rel=1e-9)
    floor = n_disks * PARAMS.low.idle_w * result.duration_s
    ceiling = n_disks * max(PARAMS.high.active_w,
                            PARAMS.transition_power_w) * result.duration_s
    assert floor - 1e-6 <= result.total_energy_j <= ceiling + 1e-6

    # PRESS factors are physical
    for f in result.per_disk:
        assert 0.0 <= f.utilization_percent <= 100.0 + 1e-9
        assert PARAMS.low.steady_temp_c - 1e-9 <= f.mean_temperature_c \
            <= PARAMS.high.steady_temp_c + 1e-9
        assert f.transitions_per_day >= 0.0
        assert f.afr_percent >= 0.0
    assert result.array_afr_percent == pytest.approx(
        max(f.afr_percent for f in result.per_disk))


@given(workloads, st.sampled_from(("read", "read-rotate", "read-replicate")),
       st.integers(1, 6))
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_read_family_never_exceeds_daily_transition_budget(workload, name, cap):
    fileset, trace = workload
    policy = make_policy(name, epoch_s=2.0, max_transitions_per_day=cap)
    result = run_simulation(policy, fileset, trace, n_disks=3, disk_params=PARAMS)
    # traces here are < 1 day, so total per disk is bounded by the cap
    per_disk_total = {}
    # recover per-disk counts from factors (extrapolated back to totals)
    for f in result.per_disk:
        total = f.transitions_per_day * result.duration_s / 86400.0
        per_disk_total[f.disk_id] = total
        assert total <= cap + 1e-6


@given(workloads, st.sampled_from(POLICY_NAMES))
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_determinism_across_repeated_runs(workload, policy_name):
    fileset, trace = workload
    kwargs = _policy_kwargs(policy_name)
    a = run_simulation(make_policy(policy_name, **kwargs), fileset, trace,
                       n_disks=3, disk_params=PARAMS)
    b = run_simulation(make_policy(policy_name, **kwargs), fileset, trace,
                       n_disks=3, disk_params=PARAMS)
    assert a.total_energy_j == b.total_energy_j
    assert a.mean_response_s == b.mean_response_s
    assert a.array_afr_percent == b.array_afr_percent
    assert a.total_transitions == b.total_transitions
