"""PDC: waterfill concentration, bidirectional eviction, epoch churn."""

import numpy as np
import pytest

from repro.disk.array import DiskArray
from repro.disk.parameters import DiskSpeed
from repro.experiments.runner import run_simulation
from repro.policies.pdc import PDCConfig, PDCPolicy
from repro.sim.engine import Simulator
from repro.workload.files import FileSet
from repro.workload.request import Request


def bound_pdc(sim, params, fileset, n_disks=4, **cfg):
    policy = PDCPolicy(PDCConfig(**cfg)) if cfg else PDCPolicy()
    array = DiskArray(sim, params, n_disks, fileset)
    policy.bind(sim, array, fileset)
    policy.initial_layout()
    return policy, array


@pytest.fixture
def uniform_files():
    return FileSet(np.full(20, 1.0))


class TestInitialLayout:
    def test_round_robin_balanced(self, sim, params, uniform_files):
        _, array = bound_pdc(sim, params, uniform_files)
        counts = np.bincount(array.placement, minlength=4)
        assert counts.max() - counts.min() <= 1


class TestTargetPlacement:
    def test_hot_files_concentrate_on_disk_zero(self, sim, params, uniform_files):
        policy, array = bound_pdc(sim, params, uniform_files, epoch_s=1000.0)
        counts = np.zeros(20, dtype=np.int64)
        counts[7] = 500
        counts[3] = 400
        assignment = policy.target_placement(counts)
        assert assignment[7] == 0
        # modest combined load -> both on the head disk
        assert assignment[3] == 0

    def test_load_cap_spills_to_next_disk(self, sim, params, uniform_files):
        policy, array = bound_pdc(sim, params, uniform_files,
                                  epoch_s=100.0, load_cap=0.5)
        counts = np.zeros(20, dtype=np.int64)
        # each file's predicted load ~ count * service / epoch; make two
        # files that each exceed half the cap so they cannot share a disk
        service = params.high.service_time_s(1.0)
        per_file = int(0.4 * 100.0 / service)
        counts[0] = per_file
        counts[1] = per_file - 1
        assignment = policy.target_placement(counts)
        assert assignment[0] == 0
        assert assignment[1] == 1

    def test_below_floor_files_stay_put(self, sim, params, uniform_files):
        policy, array = bound_pdc(sim, params, uniform_files)
        before = array.placement.copy()
        counts = np.zeros(20, dtype=np.int64)
        counts[5] = 1  # a stray access, below the share cut paired w/ min 2
        assignment = policy.target_placement(counts)
        np.testing.assert_array_equal(assignment, before)

    def test_cold_files_evicted_from_head(self, sim, params, uniform_files):
        policy, array = bound_pdc(sim, params, uniform_files, epoch_s=1000.0)
        counts = np.zeros(20, dtype=np.int64)
        # file on disk 0 gets hot; other disk-0 residents become squatters
        head_files = np.flatnonzero(array.placement == 0)
        counts[head_files[0]] = 100
        assignment = policy.target_placement(counts)
        assert assignment[head_files[0]] == 0
        for fid in head_files[1:]:
            assert assignment[fid] != 0

    def test_zero_counts_change_nothing(self, sim, params, uniform_files):
        policy, array = bound_pdc(sim, params, uniform_files)
        assignment = policy.target_placement(np.zeros(20, dtype=np.int64))
        np.testing.assert_array_equal(assignment, array.placement)


class TestEpochExecution:
    def test_epoch_migrates_popular_file(self, sim, params, uniform_files):
        policy, array = bound_pdc(sim, params, uniform_files, epoch_s=50.0)
        # hammer one file that does not live on disk 0
        victim = int(np.flatnonzero(array.placement == 2)[0])
        for i in range(50):
            policy.route(Request(float(i) * 0.1, victim, 1.0))
        sim.run(until=60.0)  # crosses one epoch boundary
        assert array.location_of(victim) == 0
        assert policy.migrations_performed >= 1

    def test_migration_cap_respected(self, sim, params, uniform_files):
        policy, array = bound_pdc(sim, params, uniform_files, epoch_s=50.0,
                                  max_migrations_per_epoch=0)
        victim = int(np.flatnonzero(array.placement == 2)[0])
        for i in range(50):
            policy.route(Request(float(i) * 0.1, victim, 1.0))
        sim.run(until=60.0)
        assert policy.migrations_performed == 0

    def test_shutdown_stops_epochs(self, sim, params, uniform_files):
        policy, _ = bound_pdc(sim, params, uniform_files, epoch_s=10.0)
        policy.shutdown()
        sim.run()
        assert sim.now < 10.0  # no epoch event remained


class TestSpeedControl:
    def test_arrival_on_low_disk_spins_up(self, sim, params, uniform_files):
        policy, array = bound_pdc(sim, params, uniform_files)
        target = array.location_of(5)
        array.drive(target).force_speed(DiskSpeed.LOW)
        policy.route(Request(0.0, 5, 1.0))
        assert array.drive(target).effective_target_speed is DiskSpeed.HIGH

    def test_idle_disk_spins_down(self, sim, params, uniform_files):
        policy, array = bound_pdc(sim, params, uniform_files)
        policy.on_disk_idle(3)
        # bounded run: the policy's epoch task keeps the queue non-empty
        sim.run(until=policy.config.speed.idle_threshold_s + 10.0)
        assert array.drive(3).speed is DiskSpeed.LOW


class TestEndToEnd:
    def test_full_run_concentrates_load(self, small_workload, params):
        fileset, trace = small_workload
        policy = PDCPolicy(PDCConfig(epoch_s=20.0))
        result = run_simulation(policy, fileset, trace.head(3000), n_disks=5,
                                disk_params=params)
        assert result.policy_name == "pdc"
        assert policy.migrations_performed > 0
        # head disk serves more than its round-robin share
        served = [f for f in result.per_disk]
        utils = [f.utilization_percent for f in served]
        assert utils[0] == max(utils)
