"""Static baselines: layout, fixed speed, zero transitions."""

import numpy as np
import pytest

from repro.disk.parameters import DiskSpeed
from repro.experiments.runner import run_simulation
from repro.policies.static import StaticHighPolicy, StaticLowPolicy


class TestStaticHigh:
    def test_runs_all_high_no_transitions(self, small_workload, params):
        fileset, trace = small_workload
        result = run_simulation(StaticHighPolicy(), fileset, trace.head(500),
                                n_disks=4, disk_params=params)
        assert result.total_transitions == 0
        assert result.internal_jobs == 0
        assert result.policy_name == "static-high"
        # every disk sat at the high-speed steady temperature
        assert all(f.mean_temperature_c == pytest.approx(50.0) for f in result.per_disk)

    def test_balanced_round_robin_layout(self, sim, params, small_workload):
        from repro.disk.array import DiskArray
        fileset, _ = small_workload
        array = DiskArray(sim, params, 4, fileset)
        policy = StaticHighPolicy()
        policy.bind(sim, array, fileset)
        policy.initial_layout()
        counts = np.bincount(array.placement, minlength=4)
        assert counts.max() - counts.min() <= 1


class TestStaticLow:
    def test_all_low_no_transition_cost(self, small_workload, params):
        fileset, trace = small_workload
        result = run_simulation(StaticLowPolicy(), fileset, trace.head(500),
                                n_disks=4, disk_params=params)
        assert result.total_transitions == 0
        assert all(f.mean_temperature_c == pytest.approx(40.0) for f in result.per_disk)

    def test_low_is_slower_but_cheaper_than_high(self, small_workload, params):
        fileset, trace = small_workload
        sub = trace.head(500)
        high = run_simulation(StaticHighPolicy(), fileset, sub, n_disks=4,
                              disk_params=params)
        low = run_simulation(StaticLowPolicy(), fileset, sub, n_disks=4,
                             disk_params=params)
        assert low.mean_response_s > high.mean_response_s
        assert low.total_energy_j < high.total_energy_j
        # and the PRESS model rewards the cooler array
        assert low.array_afr_percent < high.array_afr_percent
