"""AccessTracker (ATM/FPT): counting, epoch rolls, ranking."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.policies.tracking import AccessTracker


class TestCounting:
    def test_record_and_views(self):
        t = AccessTracker(4)
        for fid in (0, 2, 2, 3):
            t.record(fid)
        np.testing.assert_array_equal(t.current_counts, [1, 0, 2, 1])
        np.testing.assert_array_equal(t.previous_counts, [0, 0, 0, 0])
        np.testing.assert_array_equal(t.lifetime_counts, [1, 0, 2, 1])

    def test_views_readonly(self):
        t = AccessTracker(3)
        with pytest.raises(ValueError):
            t.current_counts[0] = 5

    def test_invalid_population_rejected(self):
        with pytest.raises(ValueError):
            AccessTracker(0)


class TestEpochRoll:
    def test_roll_snapshots_and_resets(self):
        t = AccessTracker(3)
        t.record(1)
        t.record(1)
        snapshot = t.roll_epoch()
        np.testing.assert_array_equal(snapshot, [0, 2, 0])
        np.testing.assert_array_equal(t.current_counts, [0, 0, 0])
        np.testing.assert_array_equal(t.previous_counts, [0, 2, 0])
        assert t.epochs_completed == 1

    def test_lifetime_survives_rolls(self):
        t = AccessTracker(2)
        t.record(0)
        t.roll_epoch()
        t.record(0)
        t.record(1)
        t.roll_epoch()
        np.testing.assert_array_equal(t.lifetime_counts, [2, 1])

    def test_returned_snapshot_is_independent(self):
        t = AccessTracker(2)
        t.record(0)
        snap = t.roll_epoch()
        t.record(0)
        t.record(1)
        np.testing.assert_array_equal(snap, [1, 0])

    def test_multiple_rolls(self):
        t = AccessTracker(2)
        for epoch in range(3):
            for _ in range(epoch + 1):
                t.record(0)
            snap = t.roll_epoch()
            assert snap[0] == epoch + 1


class TestRanking:
    def test_ranking_most_accessed_first(self):
        t = AccessTracker(4)
        for fid, n in [(0, 2), (1, 5), (3, 1)]:
            for _ in range(n):
                t.record(fid)
        t.roll_epoch()
        np.testing.assert_array_equal(t.popularity_ranking(), [1, 0, 3, 2])

    def test_ranking_ties_keep_id_order(self):
        t = AccessTracker(3)
        t.roll_epoch()
        np.testing.assert_array_equal(t.popularity_ranking(), [0, 1, 2])

    def test_ranking_with_explicit_counts(self):
        t = AccessTracker(3)
        ranking = t.popularity_ranking(counts=np.array([1, 3, 2]))
        np.testing.assert_array_equal(ranking, [1, 2, 0])

    def test_ranking_length_mismatch_rejected(self):
        t = AccessTracker(3)
        with pytest.raises(ValueError):
            t.popularity_ranking(counts=np.array([1, 2]))

    @given(st.lists(st.integers(0, 9), min_size=1, max_size=200))
    @settings(max_examples=100)
    def test_roll_conserves_total_counts(self, accesses):
        t = AccessTracker(10)
        for fid in accesses:
            t.record(fid)
        snap = t.roll_epoch()
        assert snap.sum() == len(accesses)
        assert t.lifetime_counts.sum() == len(accesses)
