"""MAID: cache behaviour, routing, eviction, passive spin-down."""

import numpy as np
import pytest

from repro.disk.array import DiskArray
from repro.disk.parameters import DiskSpeed
from repro.experiments.runner import run_simulation
from repro.policies.base import SpeedControlConfig
from repro.policies.maid import MAIDConfig, MAIDPolicy
from repro.sim.engine import Simulator
from repro.workload.files import FileSet
from repro.workload.request import Request


def bound_maid(sim, params, fileset, n_disks=4, **cfg):
    policy = MAIDPolicy(MAIDConfig(**cfg)) if cfg else MAIDPolicy()
    array = DiskArray(sim, params, n_disks, fileset)
    policy.bind(sim, array, fileset)
    policy.initial_layout()
    return policy, array


class TestLayout:
    def test_default_cache_disk_count(self, sim, params, tiny_fileset):
        policy, _ = bound_maid(sim, params, tiny_fileset, n_disks=8)
        assert policy._n_cache == 2
        assert policy.is_cache_disk(0) and policy.is_cache_disk(1)
        assert not policy.is_cache_disk(2)

    def test_explicit_cache_disks(self, sim, params, tiny_fileset):
        policy, _ = bound_maid(sim, params, tiny_fileset, n_cache_disks=3)
        assert policy._n_cache == 3

    def test_primaries_only_on_passive_disks(self, sim, params, tiny_fileset):
        _, array = bound_maid(sim, params, tiny_fileset, n_disks=4)
        assert set(np.unique(array.placement)) <= {1, 2, 3}

    def test_all_cache_rejected(self, sim, params, tiny_fileset):
        with pytest.raises(ValueError):
            bound_maid(sim, params, tiny_fileset, n_disks=2, n_cache_disks=2)


class TestCaching:
    def test_miss_then_hit(self, sim, params, tiny_fileset):
        policy, array = bound_maid(sim, params, tiny_fileset)
        r1 = Request(0.0, 0, tiny_fileset.size_of(0))
        policy.route(r1)
        sim.run()
        assert policy.cache_misses == 1
        assert r1.served_by != 0 or not policy.is_cache_disk(r1.served_by)
        # second access: now cached
        r2 = Request(sim.now, 0, tiny_fileset.size_of(0))
        policy.route(r2)
        sim.run()
        assert policy.cache_hits == 1
        assert policy.is_cache_disk(r2.served_by)

    def test_copy_costs_cache_write(self, sim, params, tiny_fileset):
        policy, array = bound_maid(sim, params, tiny_fileset)
        policy.route(Request(0.0, 0, tiny_fileset.size_of(0)))
        sim.run()
        cache_writes = sum(array.drive(d).stats.internal_jobs_served
                           for d in range(policy._n_cache))
        assert cache_writes == 1

    def test_concurrent_misses_trigger_single_copy(self, sim, params, tiny_fileset):
        policy, array = bound_maid(sim, params, tiny_fileset)
        for _ in range(3):
            policy.route(Request(0.0, 0, tiny_fileset.size_of(0)))
        sim.run()
        assert policy.cache_misses == 3
        cache_writes = sum(array.drive(d).stats.internal_jobs_served
                           for d in range(policy._n_cache))
        assert cache_writes == 1

    def test_hit_rate_metric(self, sim, params, tiny_fileset):
        policy, _ = bound_maid(sim, params, tiny_fileset)
        assert policy.hit_rate == 0.0
        policy.route(Request(0.0, 0, tiny_fileset.size_of(0)))
        sim.run()
        policy.route(Request(sim.now, 0, tiny_fileset.size_of(0)))
        sim.run()
        assert policy.hit_rate == 0.5


class TestEviction:
    def test_lru_eviction_under_tiny_cache(self, sim, params):
        # files of 1 MB; cache budget = 25% of 8 MB = 2 MB per the single
        # cache disk -> at most 2 files cached at once
        fileset = FileSet(np.full(8, 1.0))
        policy, array = bound_maid(sim, params, fileset, n_disks=4,
                                   n_cache_disks=1, cache_fraction_of_data=0.25)
        t = 0.0
        for fid in range(4):
            policy.route(Request(t, fid, 1.0))
            sim.run()
            t = sim.now
        assert len(policy._cache) <= 2
        # oldest entries were evicted
        assert 0 not in policy._cache

    def test_file_larger_than_budget_never_cached(self, sim, params):
        fileset = FileSet(np.array([100.0, 1.0]))
        policy, _ = bound_maid(sim, params, fileset, n_disks=4,
                               n_cache_disks=1, cache_fraction_of_data=0.05)
        policy.route(Request(0.0, 0, 100.0))
        sim.run()
        assert 0 not in policy._cache
        assert not policy._copying


class TestSpeedControl:
    def test_cache_disks_never_spin_down(self, sim, params, tiny_fileset):
        policy, array = bound_maid(sim, params, tiny_fileset)
        policy.on_disk_idle(0)  # cache disk
        policy.on_disk_idle(3)  # passive disk
        sim.run()
        assert array.drive(0).speed is DiskSpeed.HIGH
        assert array.drive(3).speed is DiskSpeed.LOW

    def test_miss_spins_passive_disk_up(self, sim, params, tiny_fileset):
        policy, array = bound_maid(sim, params, tiny_fileset)
        # park the passive disk holding file 0
        primary = array.location_of(0)
        array.drive(primary).force_speed(DiskSpeed.LOW)
        policy.route(Request(0.0, 0, tiny_fileset.size_of(0)))
        assert array.drive(primary).effective_target_speed is DiskSpeed.HIGH


class TestEndToEnd:
    def test_full_run_metrics(self, small_workload, params):
        fileset, trace = small_workload
        policy = MAIDPolicy()
        result = run_simulation(policy, fileset, trace.head(2000), n_disks=5,
                                disk_params=params)
        assert result.policy_name == "maid"
        assert 0.0 < policy.hit_rate < 1.0
        assert result.internal_jobs > 0  # copies happened
        assert result.policy_detail["n_cache_disks"] == policy._n_cache
