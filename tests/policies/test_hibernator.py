"""Hibernator: coarse-grain model-driven speed setting."""

import numpy as np
import pytest

from repro.disk.array import DiskArray
from repro.disk.parameters import DiskSpeed
from repro.experiments.runner import make_policy, run_simulation
from repro.policies.hibernator import HibernatorConfig, HibernatorPolicy
from repro.workload.files import FileSet
from repro.workload.request import Request


def bound_hib(sim, params, fileset, n_disks=4, **cfg):
    policy = HibernatorPolicy(HibernatorConfig(**cfg)) if cfg else HibernatorPolicy()
    array = DiskArray(sim, params, n_disks, fileset)
    policy.bind(sim, array, fileset)
    policy.initial_layout()
    return policy, array


@pytest.fixture
def uniform_files():
    return FileSet(np.full(16, 1.0))


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            HibernatorConfig(epoch_s=0.0)
        with pytest.raises(ValueError):
            HibernatorConfig(response_bound_s=0.0)
        with pytest.raises(ValueError):
            HibernatorConfig(utilization_guard=0.0)


class TestPrediction:
    def test_idle_disk_predicts_positioning_only(self, sim, params, uniform_files):
        policy, array = bound_hib(sim, params, uniform_files)
        counts = np.zeros(16)
        response, rho = policy.predicted_low_speed_response_s(0, counts)
        assert rho == 0.0
        assert response == pytest.approx(params.low.positioning_s)

    def test_prediction_matches_pk_formula(self, sim, params, uniform_files):
        from repro.experiments.validation import mg1_prediction
        policy, array = bound_hib(sim, params, uniform_files, epoch_s=100.0)
        on_disk = array.files_on(0)
        counts = np.zeros(16)
        counts[on_disk] = 50.0  # uniform across this disk's files
        response, rho = policy.predicted_low_speed_response_s(0, counts)
        disk_fs = FileSet(policy.fileset.sizes_mb[on_disk])
        lam = counts[on_disk].sum() / 100.0
        pred = mg1_prediction(disk_fs, params, speed=DiskSpeed.LOW,
                              mean_interarrival_s=1.0 / lam)
        assert response == pytest.approx(pred.mean_response_s)
        assert rho == pytest.approx(pred.utilization)

    def test_unstable_low_queue_reports_inf(self, sim, params, uniform_files):
        policy, array = bound_hib(sim, params, uniform_files, epoch_s=10.0)
        counts = np.zeros(16)
        counts[array.files_on(0)] = 10_000.0
        response, rho = policy.predicted_low_speed_response_s(0, counts)
        assert response == float("inf")


class TestEpochControl:
    def test_starts_low_by_default(self, sim, params, uniform_files):
        _, array = bound_hib(sim, params, uniform_files)
        assert all(d.speed is DiskSpeed.LOW for d in array.drives)

    def test_busy_disk_promoted_at_epoch(self, sim, params, uniform_files):
        policy, array = bound_hib(sim, params, uniform_files, epoch_s=10.0,
                                  response_bound_s=0.02)
        target = array.location_of(0)
        t = 0.0
        for _ in range(200):  # ~0.8 utilization at low speed
            policy.route(Request(t, 0, 1.0))
            t += 0.05
        sim.run(until=11.0)
        assert array.drive(target).effective_target_speed is DiskSpeed.HIGH
        assert policy.epoch_decisions["high"] >= 1
        policy.shutdown()

    def test_quiet_disks_stay_low(self, sim, params, uniform_files):
        policy, array = bound_hib(sim, params, uniform_files, epoch_s=10.0)
        policy.route(Request(0.0, 0, 1.0))  # one lone request
        sim.run(until=11.0)
        quiet = [d for d in array.drives if d.disk_id != array.location_of(0)]
        assert all(d.speed is DiskSpeed.LOW for d in quiet)
        policy.shutdown()

    def test_at_most_one_transition_per_disk_per_epoch(self, small_workload, params):
        fileset, trace = small_workload
        policy = make_policy("hibernator", epoch_s=5.0)
        result = run_simulation(policy, fileset, trace.head(4000), n_disks=4,
                                disk_params=params)
        n_epochs = result.duration_s / 5.0 + 1
        for f in result.per_disk:
            total = f.transitions_per_day * result.duration_s / 86400.0
            assert total <= n_epochs + 1e-6


class TestEndToEnd:
    def test_saves_energy_with_few_transitions(self, small_workload, params):
        fileset, trace = small_workload
        sub = trace.head(4000)
        hib = run_simulation(make_policy("hibernator", epoch_s=5.0), fileset,
                             sub, n_disks=4, disk_params=params)
        static = run_simulation(make_policy("static-high"), fileset, sub,
                                n_disks=4, disk_params=params)
        drpm = run_simulation(make_policy("drpm", control_period_s=5.0),
                              fileset, sub, n_disks=4, disk_params=params)
        assert hib.total_energy_j < static.total_energy_j
        # coarse granularity: no more transitions than the fine-grained
        # controller on the same workload
        assert hib.total_transitions <= drpm.total_transitions + 4
