"""Shared policy machinery: TransitionBudget and SpeedController."""

import numpy as np
import pytest

from repro.disk.array import DiskArray
from repro.disk.drive import Job
from repro.disk.parameters import DiskSpeed
from repro.policies.base import (
    Policy,
    PolicyError,
    SpeedControlConfig,
    SpeedController,
    TransitionBudget,
)
from repro.sim.engine import Simulator
from repro.util.units import SECONDS_PER_DAY
from repro.workload.files import FileSet


@pytest.fixture
def array(sim, params, tiny_fileset):
    arr = DiskArray(sim, params, 3, tiny_fileset)
    arr.place_all(np.array([0, 1, 2, 0, 1, 2, 0, 1]))
    return arr


class TestTransitionBudget:
    def test_spend_until_exhausted(self, sim):
        budget = TransitionBudget(sim, limit_per_day=3)
        assert [budget.spend(0) for _ in range(4)] == [True, True, True, False]
        assert budget.spent_today(0) == 3
        assert not budget.available(0)

    def test_budgets_are_per_disk(self, sim):
        budget = TransitionBudget(sim, limit_per_day=1)
        assert budget.spend(0)
        assert budget.spend(1)
        assert not budget.spend(0)

    def test_budget_resets_next_day(self, sim):
        budget = TransitionBudget(sim, limit_per_day=1)
        assert budget.spend(0)
        assert not budget.spend(0)
        sim.schedule(SECONDS_PER_DAY + 1, lambda: None)
        sim.run()
        assert budget.spend(0)

    def test_half_spent_hook_fires_once_per_day(self, sim):
        fired = []
        budget = TransitionBudget(sim, limit_per_day=4,
                                  on_half_spent=lambda d: fired.append(d))
        budget.spend(0)
        assert fired == []
        budget.spend(0)  # 2/4 = half
        assert fired == [0]
        budget.spend(0)
        assert fired == [0]  # not re-fired

    def test_half_hook_with_odd_limit(self, sim):
        fired = []
        budget = TransitionBudget(sim, limit_per_day=3,
                                  on_half_spent=lambda d: fired.append(d))
        budget.spend(0)
        budget.spend(0)  # 2*2 >= 3 -> fires
        assert fired == [0]

    def test_invalid_limit_rejected(self, sim):
        with pytest.raises(ValueError):
            TransitionBudget(sim, limit_per_day=0)


class TestSpeedControllerSpinDown:
    def test_idle_timer_spins_down_after_threshold(self, sim, array):
        ctl = SpeedController(sim, array, SpeedControlConfig(idle_threshold_s=10.0))
        ctl.on_disk_idle(0)
        sim.run()
        assert array.drive(0).speed is DiskSpeed.LOW
        assert array.drive(0).stats.speed_transitions_total == 1

    def test_activity_cancels_spin_down(self, sim, array):
        ctl = SpeedController(sim, array, SpeedControlConfig(idle_threshold_s=10.0))
        ctl.on_disk_idle(0)
        sim.schedule(5.0, lambda: ctl.on_disk_busy(0))
        sim.run()
        assert array.drive(0).speed is DiskSpeed.HIGH

    def test_ineligible_disk_never_spins_down(self, sim, array):
        ctl = SpeedController(sim, array, SpeedControlConfig(idle_threshold_s=10.0),
                              eligible=lambda d: d != 0)
        ctl.on_disk_idle(0)
        ctl.on_disk_idle(1)
        sim.run()
        assert array.drive(0).speed is DiskSpeed.HIGH
        assert array.drive(1).speed is DiskSpeed.LOW

    def test_low_disk_idle_does_not_rearm(self, sim, array):
        array.drive(0).force_speed(DiskSpeed.LOW)
        ctl = SpeedController(sim, array, SpeedControlConfig(idle_threshold_s=10.0))
        ctl.on_disk_idle(0)
        sim.run()
        assert array.drive(0).stats.speed_transitions_total == 0

    def test_budget_blocks_spin_down(self, sim, array):
        budget = TransitionBudget(sim, limit_per_day=1)
        budget.spend(0)  # exhaust
        ctl = SpeedController(sim, array, SpeedControlConfig(idle_threshold_s=10.0),
                              budget=budget)
        ctl.on_disk_idle(0)
        sim.run()
        assert array.drive(0).speed is DiskSpeed.HIGH

    def test_shutdown_cancels_all_timers(self, sim, array):
        ctl = SpeedController(sim, array, SpeedControlConfig(idle_threshold_s=10.0))
        for d in range(3):
            ctl.on_disk_idle(d)
        ctl.shutdown()
        sim.run()
        assert all(d.speed is DiskSpeed.HIGH for d in array.drives)


class TestSpeedControllerSpinUp:
    def _low_disk_with_backlog(self, sim, array, n_jobs):
        drive = array.drive(0)
        drive.force_speed(DiskSpeed.LOW)
        for _ in range(n_jobs):
            drive.submit(Job.internal_transfer(1.0))
        return drive

    def test_queue_threshold_triggers_spin_up(self, sim, array):
        cfg = SpeedControlConfig(idle_threshold_s=10.0, spin_up_queue_len=3,
                                 spin_up_wait_s=1e9)
        ctl = SpeedController(sim, array, cfg)
        drive = self._low_disk_with_backlog(sim, array, 3)  # 1 serving + 2 queued
        ctl.check_spin_up(0)  # backlog = 2 + 1 incoming = 3 >= 3
        assert drive.effective_target_speed is DiskSpeed.HIGH

    def test_below_threshold_stays_low(self, sim, array):
        cfg = SpeedControlConfig(idle_threshold_s=10.0, spin_up_queue_len=5,
                                 spin_up_wait_s=1e9)
        ctl = SpeedController(sim, array, cfg)
        drive = self._low_disk_with_backlog(sim, array, 2)
        ctl.check_spin_up(0)
        assert drive.effective_target_speed is DiskSpeed.LOW

    def test_wait_bound_triggers_spin_up(self, sim, array):
        cfg = SpeedControlConfig(idle_threshold_s=10.0, spin_up_queue_len=100,
                                 spin_up_wait_s=0.1)
        ctl = SpeedController(sim, array, cfg)
        drive = array.drive(0)
        drive.force_speed(DiskSpeed.LOW)
        for _ in range(4):
            drive.submit(Job.internal_transfer(8.0))  # ~0.44s each at low
        ctl.check_spin_up(0)
        assert drive.effective_target_speed is DiskSpeed.HIGH

    def test_spin_up_on_any_arrival_when_threshold_one(self, sim, array):
        cfg = SpeedControlConfig(idle_threshold_s=10.0, spin_up_queue_len=1,
                                 spin_up_wait_s=1e9)
        ctl = SpeedController(sim, array, cfg)
        drive = array.drive(0)
        drive.force_speed(DiskSpeed.LOW)
        ctl.check_spin_up(0)  # empty disk, 1 incoming
        assert drive.effective_target_speed is DiskSpeed.HIGH

    def test_budget_blocks_spin_up(self, sim, array):
        budget = TransitionBudget(sim, limit_per_day=1)
        budget.spend(0)
        cfg = SpeedControlConfig(idle_threshold_s=10.0, spin_up_queue_len=1)
        ctl = SpeedController(sim, array, cfg, budget=budget)
        drive = array.drive(0)
        drive.force_speed(DiskSpeed.LOW)
        ctl.check_spin_up(0)
        assert drive.effective_target_speed is DiskSpeed.LOW

    def test_high_disk_needs_no_spin_up(self, sim, array):
        ctl = SpeedController(sim, array, SpeedControlConfig())
        ctl.check_spin_up(0)
        assert array.drive(0).stats.speed_transitions_total == 0

    def test_adaptive_threshold_setter(self, sim, array):
        ctl = SpeedController(sim, array, SpeedControlConfig(idle_threshold_s=10.0))
        ctl.set_idle_threshold(1, 40.0)
        assert ctl.idle_threshold(1) == 40.0
        assert ctl.idle_threshold(0) == 10.0
        with pytest.raises(ValueError):
            ctl.set_idle_threshold(1, 0.0)


class TestPolicyBase:
    def test_unbound_policy_raises(self):
        class Dummy(Policy):
            name = "dummy"

            def initial_layout(self):
                self._require_bound()

            def route(self, request):
                self._require_bound()

        with pytest.raises(PolicyError):
            Dummy().initial_layout()

    def test_describe_default(self):
        class Dummy(Policy):
            name = "dummy"

            def initial_layout(self):
                pass

            def route(self, request):
                pass

        assert Dummy().describe() == {"name": "dummy"}

    def test_speed_config_validation(self):
        with pytest.raises(ValueError):
            SpeedControlConfig(idle_threshold_s=0.0)
        with pytest.raises(ValueError):
            SpeedControlConfig(spin_up_queue_len=0)
