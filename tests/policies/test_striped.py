"""Striped policy: fan-out/fan-in semantics and the large-file win."""

import numpy as np
import pytest

from repro.experiments.runner import make_policy, run_simulation
from repro.workload.files import FileSet
from repro.workload.trace import Trace


@pytest.fixture
def media_files():
    """A mix: tiny web objects and large media files (the Sec. 6 case)."""
    return FileSet(np.array([0.02, 0.03, 8.0, 12.0]))


def single_request_trace(fid: int) -> Trace:
    return Trace(np.array([0.0]), np.array([fid], dtype=np.int64))


class TestFanInSemantics:
    def test_small_file_served_whole(self, media_files, params):
        result = run_simulation(make_policy("striped-static"), media_files,
                                single_request_trace(0), n_disks=4,
                                disk_params=params)
        assert result.n_requests == 1
        # whole-file service time at high speed
        expected = params.high.service_time_s(0.02)
        assert result.mean_response_s == pytest.approx(expected)

    def test_large_file_parallel_speedup(self, media_files, params):
        striped = run_simulation(make_policy("striped-static"), media_files,
                                 single_request_trace(3), n_disks=4,
                                 disk_params=params)
        plain = run_simulation(make_policy("static-high"), media_files,
                               single_request_trace(3), n_disks=4,
                               disk_params=params)
        # 12 MB across 4 disks: roughly 4x transfer parallelism
        assert striped.mean_response_s < plain.mean_response_s / 2.5

    def test_large_file_timing_exact(self, media_files, params):
        """Response = slowest leg: ceil(8/.512)=16 chunks on 4 disks ->
        4 sequential chunks per disk."""
        result = run_simulation(make_policy("striped-static"), media_files,
                                single_request_trace(2), n_disks=4,
                                disk_params=params)
        per_chunk = params.high.service_time_s(0.512)
        # disks serve 4 chunks back to back (one is slightly smaller:
        # 8/0.512 = 15.625 -> final chunk 0.32 MB)
        upper = 4 * per_chunk
        assert result.mean_response_s <= upper + 1e-9
        assert result.mean_response_s > 3 * per_chunk

    def test_custom_stripe_unit(self, media_files, params):
        policy = make_policy("striped-static", stripe_unit_mb=4.0)
        result = run_simulation(policy, media_files, single_request_trace(3),
                                n_disks=4, disk_params=params)
        # 12 MB in 4 MB units = 3 parallel legs, each one service call
        expected = params.high.service_time_s(4.0)
        assert result.mean_response_s == pytest.approx(expected)


class TestWorkloadRun:
    def test_mixed_workload_completes(self, media_files, params):
        times = np.sort(np.random.default_rng(0).uniform(0, 10, 200))
        fids = np.random.default_rng(1).integers(0, 4, 200)
        trace = Trace(times, fids)
        result = run_simulation(make_policy("striped-static"), media_files,
                                trace, n_disks=4, disk_params=params)
        assert result.n_requests == 200
        assert result.total_transitions == 0  # static high speed
        assert result.policy_detail["stripe_unit_mb"] == pytest.approx(0.512)
