"""DRPM watermark controller: hysteresis, decisions, end-to-end."""

import numpy as np
import pytest

from repro.disk.array import DiskArray
from repro.disk.parameters import DiskSpeed
from repro.experiments.runner import make_policy, run_simulation
from repro.policies.drpm import DRPMConfig, DRPMPolicy
from repro.workload.files import FileSet
from repro.workload.request import Request


def bound_drpm(sim, params, fileset, n_disks=4, **cfg):
    policy = DRPMPolicy(DRPMConfig(**cfg)) if cfg else DRPMPolicy()
    array = DiskArray(sim, params, n_disks, fileset)
    policy.bind(sim, array, fileset)
    policy.initial_layout()
    return policy, array


@pytest.fixture
def uniform_files():
    return FileSet(np.full(16, 1.0))


class TestConfig:
    def test_hysteresis_required(self):
        with pytest.raises(ValueError):
            DRPMConfig(up_watermark=0.2, down_watermark=0.3)
        with pytest.raises(ValueError):
            DRPMConfig(up_watermark=0.2, down_watermark=0.2)

    def test_period_validation(self):
        with pytest.raises(ValueError):
            DRPMConfig(control_period_s=0.0)


class TestController:
    def test_starts_all_low(self, sim, params, uniform_files):
        _, array = bound_drpm(sim, params, uniform_files)
        assert all(d.speed is DiskSpeed.LOW for d in array.drives)

    def test_busy_disk_steps_up_at_control_tick(self, sim, params, uniform_files):
        policy, array = bound_drpm(sim, params, uniform_files,
                                   control_period_s=10.0, demand_spin_up=False)
        target = array.location_of(0)
        # saturate one disk for the whole window
        t = 0.0
        for _ in range(300):
            policy.route(Request(t, 0, 1.0))
            t += 0.03
        sim.run(until=11.0)
        assert array.drive(target).effective_target_speed is DiskSpeed.HIGH
        assert policy.control_decisions["up"] >= 1
        policy.shutdown()

    def test_quiet_disk_steps_down(self, sim, params, uniform_files):
        policy, array = bound_drpm(sim, params, uniform_files,
                                   control_period_s=10.0, demand_spin_up=False)
        array.drive(0).force_speed(DiskSpeed.HIGH)
        sim.run(until=11.0)
        assert array.drive(0).effective_target_speed is DiskSpeed.LOW
        assert policy.control_decisions["down"] >= 1
        policy.shutdown()

    def test_hysteresis_band_holds(self, sim, params, uniform_files):
        policy, array = bound_drpm(sim, params, uniform_files,
                                   control_period_s=10.0,
                                   up_watermark=0.8, down_watermark=0.01,
                                   demand_spin_up=False)
        target = array.location_of(0)
        # moderate load: ~10% utilization, inside the band
        t = 0.0
        for _ in range(20):
            policy.route(Request(t, 0, 1.0))
            t += 0.5
        sim.run(until=11.0)
        assert array.drive(target).speed is DiskSpeed.LOW  # held
        policy.shutdown()

    def test_demand_spin_up_rider(self, sim, params, uniform_files):
        policy, array = bound_drpm(sim, params, uniform_files,
                                   control_period_s=1e6, demand_spin_up=True)
        target = array.location_of(0)
        for _ in range(8):  # exceeds spin_up_queue_len=6
            policy.route(Request(0.0, 0, 1.0))
        assert array.drive(target).effective_target_speed is DiskSpeed.HIGH
        policy.shutdown()


class TestEndToEnd:
    def test_full_run_modulates_speed(self, small_workload, params):
        fileset, trace = small_workload
        policy = make_policy("drpm", control_period_s=5.0)
        result = run_simulation(policy, fileset, trace.head(4000), n_disks=4,
                                disk_params=params)
        assert result.policy_name == "drpm"
        decisions = result.policy_detail["decisions"]
        assert decisions["up"] + decisions["down"] + decisions["hold"] > 0
        # DRPM moves no data
        migration_jobs = result.internal_jobs
        assert migration_jobs == 0

    def test_saves_energy_vs_static_high_on_light_load(self, small_workload, params):
        fileset, trace = small_workload
        sub = trace.head(3000)
        drpm = run_simulation(make_policy("drpm", control_period_s=5.0),
                              fileset, sub, n_disks=4, disk_params=params)
        static = run_simulation(make_policy("static-high"), fileset, sub,
                                n_disks=4, disk_params=params)
        assert drpm.total_energy_j < static.total_energy_j
