"""run_cells: serial/parallel equivalence, ordering, error reporting."""

import dataclasses

import pytest

from repro.experiments.metrics import SimulationResult
from repro.experiments.parallel import (
    CellExecutionError,
    RunSpec,
    run_cell,
    run_cells,
)
from repro.workload.synthetic import SyntheticWorkloadConfig

SMALL = SyntheticWorkloadConfig(n_files=80, n_requests=2_000, seed=11,
                                mean_interarrival_s=0.01)
MEDIUM = SyntheticWorkloadConfig(n_files=120, n_requests=5_000, seed=11,
                                 bursty=True)


def grid_specs() -> list[RunSpec]:
    """3 policies x 2 sizes, two workload scales — the determinism grid."""
    return [RunSpec(policy=policy, n_disks=n, workload=workload)
            for workload in (SMALL, MEDIUM)
            for policy in ("read", "maid", "static-high")
            for n in (4, 6)]


class TestSerialParallelEquivalence:
    def test_parallel_matches_serial_bit_for_bit(self):
        specs = grid_specs()
        serial = run_cells(specs, jobs=1)
        parallel = run_cells(specs, jobs=4)
        assert len(serial) == len(parallel) == len(specs)
        for spec, a, b in zip(specs, serial, parallel):
            # SimulationResult is a plain dataclass of floats/tuples;
            # equality here is exact, not approximate.
            assert a == b, f"cell {spec.label()} diverged across jobs=1/jobs=4"

    def test_results_preserve_input_order(self):
        specs = grid_specs()
        results = run_cells(specs, jobs=4)
        for spec, result in zip(specs, results):
            assert result.policy_name == spec.policy
            assert result.n_disks == spec.n_disks

    def test_run_cell_matches_run_cells(self):
        spec = RunSpec(policy="read", n_disks=4, workload=SMALL)
        assert run_cell(spec) == run_cells([spec], jobs=1)[0]


class TestValidationAndErrors:
    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            run_cells([], jobs=0)

    def test_rejects_non_spec_items(self):
        with pytest.raises(ValueError, match="RunSpec"):
            run_cells([object()], jobs=1)

    def test_empty_specs_ok(self):
        assert run_cells([], jobs=1) == []
        assert run_cells([], jobs=4) == []

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_failure_carries_spec(self, jobs):
        good = RunSpec(policy="read", n_disks=4, workload=SMALL)
        bad = RunSpec(policy="no-such-policy", n_disks=4, workload=SMALL)
        with pytest.raises(CellExecutionError) as excinfo:
            run_cells([good, bad, good], jobs=jobs)
        assert excinfo.value.spec == bad
        assert "no-such-policy" in str(excinfo.value)
        assert isinstance(excinfo.value.cause, Exception)


class TestProgressLogging:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_every_cell_logged_started_and_finished(self, caplog, jobs):
        import logging

        specs = [RunSpec(policy=policy, n_disks=4, workload=SMALL)
                 for policy in ("read", "static-high")]
        with caplog.at_level(logging.INFO, logger="repro.sweep"):
            run_cells(specs, jobs=jobs)
        messages = [r.getMessage() for r in caplog.records
                    if r.name == "repro.sweep"]
        started = [m for m in messages if "started" in m]
        finished = [m for m in messages if "finished" in m]
        assert len(started) == len(finished) == len(specs)
        assert any("1/2" in m for m in started)
        assert any("2/2" in m for m in finished)
        for spec in specs:
            assert any(spec.label() in m for m in messages)

    def test_silent_without_opt_in(self, capsys):
        # the repro root logger carries a NullHandler: no handler opt-in,
        # no output on either stream
        run_cells([RunSpec(policy="read", n_disks=4, workload=SMALL)], jobs=1)
        captured = capsys.readouterr()
        assert "cell" not in captured.out
        assert "cell" not in captured.err


class TestRunSpec:
    def test_is_frozen_and_picklable(self):
        import pickle

        spec = RunSpec(policy="maid", n_disks=6, workload=SMALL,
                       policy_kwargs={"cache_fraction": 0.2})
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.policy = "read"
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.policy == "maid"
        assert dict(clone.policy_kwargs) == {"cache_fraction": 0.2}

    def test_label_names_the_cell(self):
        spec = RunSpec(policy="read", n_disks=8, workload=SMALL,
                       policy_kwargs={"adaptive_threshold": False})
        label = spec.label()
        assert "read" in label and "8" in label and "adaptive_threshold" in label

    def test_returns_simulation_results(self):
        result = run_cell(RunSpec(policy="static-high", n_disks=4, workload=SMALL))
        assert isinstance(result, SimulationResult)
        assert result.n_disks == 4
