"""Text reporting: alignment, series, improvement lines."""

import numpy as np
import pytest

from repro.experiments.reporting import format_improvement, format_series, format_table


class TestFormatTable:
    def test_basic_alignment(self):
        rows = [{"a": 1, "b": "xx"}, {"a": 23, "b": "y"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert lines[0].split() == ["a", "b"]
        # columns right-aligned to equal width
        assert len(set(len(l) for l in lines)) == 1

    def test_title(self):
        text = format_table([{"x": 1}], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_union_of_keys_in_first_seen_order(self):
        rows = [{"a": 1}, {"b": 2, "a": 3}]
        header = format_table(rows).splitlines()[0].split()
        assert header == ["a", "b"]

    def test_missing_cells_blank(self):
        text = format_table([{"a": 1}, {"b": 2}])
        assert text  # renders without KeyError

    def test_float_formatting(self):
        text = format_table([{"v": 3.14159265}])
        assert "3.142" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            format_table([])


class TestFormatSeries:
    def test_series_table(self):
        x = np.array([1.0, 2.0])
        text = format_series(x, {"read": np.array([5.0, 6.0]),
                                 "pdc": np.array([7.0, 8.0])}, x_label="disks")
        lines = text.splitlines()
        assert lines[0].split() == ["disks", "read", "pdc"]
        assert len(lines) == 4

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_series(np.array([1.0]), {"s": np.array([1.0, 2.0])}, x_label="x")


class TestFormatImprovement:
    def test_positive_improvement(self):
        line = format_improvement("read", np.array([8.0, 9.0]),
                                  "pdc", np.array([10.0, 12.0]))
        assert "read vs pdc" in line
        assert "+22.5%" in line  # mean of 20% and 25%

    def test_degradation_shows_negative(self):
        line = format_improvement("a", np.array([12.0]), "b", np.array([10.0]))
        assert "-20.0%" in line

    def test_zero_reference_rejected(self):
        with pytest.raises(ValueError):
            format_improvement("a", np.array([1.0]), "b", np.array([0.0]))
