"""Cost model: annualization and the worthwhileness verdict."""

import math

import pytest

from repro.experiments.costmodel import (
    CostAssumptions,
    evaluate_worthwhileness,
    expected_failures_per_year,
    expected_loss_events_per_year,
)
from repro.experiments.metrics import SimulationResult
from repro.redundancy.ctmc import CtmcResult
from repro.redundancy.metrics import RedundancySummary
from repro.util.units import SECONDS_PER_YEAR


def make_ctmc(mttdl_array_years, scheme="mirror2"):
    rate = (0.0 if not math.isfinite(mttdl_array_years)
            else 1.0 / mttdl_array_years)
    return CtmcResult(
        scheme=scheme, n_units=5, unit_size=2, tolerance=1,
        failure_rate_per_year=0.1, rebuild_rate_per_year=730.5,
        rebuild_hours=12.0, mttdl_unit_years=5.0 * mttdl_array_years,
        mttdl_array_years=mttdl_array_years, p_loss_unit=rate / 5.0,
        p_loss_array=rate, mission_years=1.0)


def make_summary(ctmc):
    return RedundancySummary(
        scheme=ctmc.scheme if ctmc else "none", n_groups=1,
        final_states=("healthy",), state_changes=(), reconstruct_reads=0,
        reconstruct_legs=0, rebuild_read_legs=0, domain_outages=0,
        groups_lost_events=0, ctmc=ctmc)


def result(name, energy_j, afr, duration=3600.0, n_disks=10, n_requests=100,
           redundancy=None):
    return SimulationResult(
        policy_name=name, n_disks=n_disks, n_requests=n_requests,
        duration_s=duration, mean_response_s=0.01, p95_response_s=0.02,
        p99_response_s=0.03, total_energy_j=energy_j, array_afr_percent=afr,
        per_disk=(), total_transitions=0, internal_jobs=0,
        redundancy=redundancy)


class TestExpectedFailures:
    def test_formula(self):
        assert expected_failures_per_year(5.0, 10) == pytest.approx(0.5)

    def test_zero_afr(self):
        assert expected_failures_per_year(0.0, 10) == 0.0

    def test_zero_disks_is_legal_and_failure_free(self):
        # an empty array cannot fail, whatever its nominal AFR
        assert expected_failures_per_year(5.0, 0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_failures_per_year(-1.0, 10)
        with pytest.raises(ValueError):
            expected_failures_per_year(5.0, -1)


class TestExpectedLossEvents:
    def test_legacy_fallback_is_per_disk_failures(self):
        r = result("read", energy_j=1.0, afr=5.0, n_disks=10)
        assert expected_loss_events_per_year(r) == pytest.approx(0.5)

    def test_ctmc_rate_when_assessment_attached(self):
        r = result("read", energy_j=1.0, afr=5.0, n_disks=10,
                   redundancy=make_summary(make_ctmc(2000.0)))
        assert expected_loss_events_per_year(r) == pytest.approx(1.0 / 2000.0)

    def test_infinite_mttdl_means_no_loss(self):
        r = result("read", energy_j=1.0, afr=5.0, n_disks=10,
                   redundancy=make_summary(make_ctmc(float("inf"))))
        assert expected_loss_events_per_year(r) == 0.0

    def test_summary_without_ctmc_falls_back(self):
        r = result("read", energy_j=1.0, afr=5.0, n_disks=10,
                   redundancy=make_summary(None))
        assert expected_loss_events_per_year(r) == pytest.approx(0.5)


class TestAssumptions:
    def test_failure_cost_sums(self):
        a = CostAssumptions(disk_replacement_usd=100.0, data_loss_cost_usd=900.0)
        assert a.failure_cost_usd == 1000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CostAssumptions(electricity_usd_per_kwh=0.0)
        with pytest.raises(ValueError):
            CostAssumptions(power_overhead_factor=0.5)


class TestVerdict:
    def test_energy_saving_computed_annualized(self):
        # scheme saves 3.6 MJ (= 1 kWh) per hour -> 8766 kWh/year
        scheme = result("scheme", energy_j=0.0, afr=5.0)
        ref = result("ref", energy_j=3.6e6, afr=5.0)
        a = CostAssumptions(electricity_usd_per_kwh=0.10, power_overhead_factor=1.0)
        verdict = evaluate_worthwhileness(scheme, ref, a)
        hours_per_year = SECONDS_PER_YEAR / 3600.0
        assert verdict.energy_saving_usd_per_year == pytest.approx(0.10 * hours_per_year)
        assert verdict.extra_failure_cost_usd_per_year == 0.0
        assert verdict.worthwhile

    def test_reliability_loss_can_outweigh_saving(self):
        """The paper's Sec. 3.5 argument: high-AFR energy saving loses money."""
        scheme = result("aggressive", energy_j=3.0e6, afr=20.0)
        ref = result("static", energy_j=3.6e6, afr=7.5)
        verdict = evaluate_worthwhileness(scheme, ref)
        assert verdict.extra_failure_cost_usd_per_year > 0
        assert not verdict.worthwhile

    def test_more_reliable_and_cheaper_is_always_worthwhile(self):
        scheme = result("read", energy_j=3.0e6, afr=7.0)
        ref = result("static", energy_j=3.6e6, afr=7.5)
        verdict = evaluate_worthwhileness(scheme, ref)
        assert verdict.worthwhile
        assert verdict.extra_failure_cost_usd_per_year < 0  # reliability gain

    def test_net_benefit_sign_consistency(self):
        scheme = result("s", energy_j=3.59e6, afr=7.6)
        ref = result("r", energy_j=3.6e6, afr=7.5)
        verdict = evaluate_worthwhileness(scheme, ref)
        assert verdict.net_benefit_usd_per_year == pytest.approx(
            verdict.energy_saving_usd_per_year - verdict.extra_failure_cost_usd_per_year)

    def test_mismatched_runs_rejected(self):
        with pytest.raises(ValueError):
            evaluate_worthwhileness(result("a", 1.0, 5.0, n_disks=4),
                                    result("b", 1.0, 5.0, n_disks=8))
        with pytest.raises(ValueError):
            evaluate_worthwhileness(result("a", 1.0, 5.0, n_requests=10),
                                    result("b", 1.0, 5.0, n_requests=20))


class TestLossModelCoupling:
    def test_legacy_runs_use_per_disk_afr(self):
        verdict = evaluate_worthwhileness(result("s", 3.0e6, 20.0),
                                          result("r", 3.6e6, 7.5))
        assert verdict.loss_model == "per-disk-afr"
        assert verdict.scheme_ctmc is None
        assert verdict.reference_ctmc is None

    def test_ctmc_runs_charge_loss_by_loss_rate(self):
        """Replacement scales with disk failures; data loss only with the
        CTMC loss-event rate — not with every failure."""
        scheme_ctmc = make_ctmc(1000.0)
        ref_ctmc = make_ctmc(4000.0)
        scheme = result("s", 3.0e6, afr=20.0,
                        redundancy=make_summary(scheme_ctmc))
        ref = result("r", 3.6e6, afr=7.5, redundancy=make_summary(ref_ctmc))
        a = CostAssumptions(disk_replacement_usd=300.0,
                            data_loss_cost_usd=5000.0)
        verdict = evaluate_worthwhileness(scheme, ref, a)
        assert verdict.loss_model == "ctmc"
        assert verdict.scheme_ctmc is scheme_ctmc
        assert verdict.reference_ctmc is ref_ctmc
        extra_failures = (20.0 - 7.5) / 100.0 * 10
        extra_losses = 1.0 / 1000.0 - 1.0 / 4000.0
        assert verdict.extra_failure_cost_usd_per_year == pytest.approx(
            extra_failures * 300.0 + extra_losses * 5000.0)

    def test_one_sided_ctmc_still_switches_models(self):
        # the non-redundant side falls back to its per-disk loss rate
        scheme = result("s", 3.0e6, afr=20.0,
                        redundancy=make_summary(make_ctmc(1000.0)))
        ref = result("r", 3.6e6, afr=7.5)
        a = CostAssumptions(disk_replacement_usd=300.0,
                            data_loss_cost_usd=5000.0)
        verdict = evaluate_worthwhileness(scheme, ref, a)
        assert verdict.loss_model == "ctmc"
        assert verdict.reference_ctmc is None
        extra_failures = (20.0 - 7.5) / 100.0 * 10
        extra_losses = 1.0 / 1000.0 - 7.5 / 100.0 * 10
        assert verdict.extra_failure_cost_usd_per_year == pytest.approx(
            extra_failures * 300.0 + extra_losses * 5000.0)

    def test_redundancy_makes_aggressive_idling_worthwhile(self):
        """The PR's headline result: under the legacy model the
        high-AFR scheme loses money, but a redundancy layout that
        suppresses actual data loss flips the verdict."""
        legacy = evaluate_worthwhileness(result("s", 2.4e6, 20.0),
                                         result("r", 3.6e6, 7.5))
        assert not legacy.worthwhile
        shielded = evaluate_worthwhileness(
            result("s", 2.4e6, 20.0, redundancy=make_summary(make_ctmc(1e9))),
            result("r", 3.6e6, 7.5, redundancy=make_summary(make_ctmc(1e10))))
        assert shielded.loss_model == "ctmc"
        assert shielded.worthwhile
