"""Cost model: annualization and the worthwhileness verdict."""

import pytest

from repro.experiments.costmodel import (
    CostAssumptions,
    evaluate_worthwhileness,
    expected_failures_per_year,
)
from repro.experiments.metrics import SimulationResult
from repro.util.units import SECONDS_PER_YEAR


def result(name, energy_j, afr, duration=3600.0, n_disks=10, n_requests=100):
    return SimulationResult(
        policy_name=name, n_disks=n_disks, n_requests=n_requests,
        duration_s=duration, mean_response_s=0.01, p95_response_s=0.02,
        p99_response_s=0.03, total_energy_j=energy_j, array_afr_percent=afr,
        per_disk=(), total_transitions=0, internal_jobs=0)


class TestExpectedFailures:
    def test_formula(self):
        assert expected_failures_per_year(5.0, 10) == pytest.approx(0.5)

    def test_zero_afr(self):
        assert expected_failures_per_year(0.0, 10) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_failures_per_year(-1.0, 10)
        with pytest.raises(ValueError):
            expected_failures_per_year(5.0, 0)


class TestAssumptions:
    def test_failure_cost_sums(self):
        a = CostAssumptions(disk_replacement_usd=100.0, data_loss_cost_usd=900.0)
        assert a.failure_cost_usd == 1000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CostAssumptions(electricity_usd_per_kwh=0.0)
        with pytest.raises(ValueError):
            CostAssumptions(power_overhead_factor=0.5)


class TestVerdict:
    def test_energy_saving_computed_annualized(self):
        # scheme saves 3.6 MJ (= 1 kWh) per hour -> 8766 kWh/year
        scheme = result("scheme", energy_j=0.0, afr=5.0)
        ref = result("ref", energy_j=3.6e6, afr=5.0)
        a = CostAssumptions(electricity_usd_per_kwh=0.10, power_overhead_factor=1.0)
        verdict = evaluate_worthwhileness(scheme, ref, a)
        hours_per_year = SECONDS_PER_YEAR / 3600.0
        assert verdict.energy_saving_usd_per_year == pytest.approx(0.10 * hours_per_year)
        assert verdict.extra_failure_cost_usd_per_year == 0.0
        assert verdict.worthwhile

    def test_reliability_loss_can_outweigh_saving(self):
        """The paper's Sec. 3.5 argument: high-AFR energy saving loses money."""
        scheme = result("aggressive", energy_j=3.0e6, afr=20.0)
        ref = result("static", energy_j=3.6e6, afr=7.5)
        verdict = evaluate_worthwhileness(scheme, ref)
        assert verdict.extra_failure_cost_usd_per_year > 0
        assert not verdict.worthwhile

    def test_more_reliable_and_cheaper_is_always_worthwhile(self):
        scheme = result("read", energy_j=3.0e6, afr=7.0)
        ref = result("static", energy_j=3.6e6, afr=7.5)
        verdict = evaluate_worthwhileness(scheme, ref)
        assert verdict.worthwhile
        assert verdict.extra_failure_cost_usd_per_year < 0  # reliability gain

    def test_net_benefit_sign_consistency(self):
        scheme = result("s", energy_j=3.59e6, afr=7.6)
        ref = result("r", energy_j=3.6e6, afr=7.5)
        verdict = evaluate_worthwhileness(scheme, ref)
        assert verdict.net_benefit_usd_per_year == pytest.approx(
            verdict.energy_saving_usd_per_year - verdict.extra_failure_cost_usd_per_year)

    def test_mismatched_runs_rejected(self):
        with pytest.raises(ValueError):
            evaluate_worthwhileness(result("a", 1.0, 5.0, n_disks=4),
                                    result("b", 1.0, 5.0, n_disks=8))
        with pytest.raises(ValueError):
            evaluate_worthwhileness(result("a", 1.0, 5.0, n_requests=10),
                                    result("b", 1.0, 5.0, n_requests=20))
