"""Multi-day horizons: budget resets, per-day stats, diurnal workloads.

The transition budget and the per-day transition accounting are both
keyed to simulated calendar days; these tests run the machinery across
day boundaries (the regime the paper's S = 40/day cap is defined in).
"""

import numpy as np
import pytest

from repro.disk.array import DiskArray
from repro.disk.parameters import DiskSpeed
from repro.experiments.runner import make_policy, run_simulation
from repro.policies.base import TransitionBudget
from repro.sim.engine import Simulator
from repro.util.units import SECONDS_PER_DAY
from repro.workload.arrival import diurnal_poisson_arrivals
from repro.workload.files import FileSet
from repro.workload.trace import Trace


class TestBudgetAcrossDays:
    def test_budget_replenishes_each_day(self, sim):
        budget = TransitionBudget(sim, limit_per_day=2)
        for day in range(3):
            sim.schedule_at(day * SECONDS_PER_DAY + 1.0, lambda: None)
            sim.run(until=day * SECONDS_PER_DAY + 1.0)
            assert budget.spend(0)
            assert budget.spend(0)
            assert not budget.spend(0)

    def test_half_hook_refires_daily(self, sim):
        fired = []
        budget = TransitionBudget(sim, limit_per_day=2,
                                  on_half_spent=lambda d: fired.append(sim.now))
        budget.spend(0)
        sim.schedule_at(SECONDS_PER_DAY + 1.0, lambda: None)
        sim.run()
        budget.spend(0)
        assert len(fired) == 2


class TestPerDayDriveStats:
    def test_transition_days_bucketed_by_drive(self, sim, params, tiny_fileset):
        array = DiskArray(sim, params, 1, tiny_fileset)
        drive = array.drive(0)
        # one down/up pair on each of two days
        drive.request_speed(DiskSpeed.LOW)
        sim.run(until=100.0)
        drive.request_speed(DiskSpeed.HIGH)
        sim.run(until=SECONDS_PER_DAY + 100.0)
        drive.request_speed(DiskSpeed.LOW)
        sim.run(until=SECONDS_PER_DAY + 200.0)
        assert drive.stats.transitions_on_day(0) == 2
        assert drive.stats.transitions_on_day(1) == 1
        assert drive.stats.max_transitions_per_day() == 2


class TestDiurnalTwoDayRun:
    def test_two_day_diurnal_workload_end_to_end(self, params):
        """48 simulated hours with a day/night rate swing through READ."""
        rng = np.random.default_rng(0)
        n_req = 20_000
        times = diurnal_poisson_arrivals(n_req, 2 * SECONDS_PER_DAY / n_req,
                                         period_s=SECONDS_PER_DAY,
                                         amplitude=0.7, seed=1)
        fids = rng.integers(0, 50, n_req)
        fileset = FileSet(np.full(50, 0.5))
        trace = Trace(times, fids)

        result = run_simulation(make_policy("read", epoch_s=3600.0),
                                fileset, trace, n_disks=4, disk_params=params)
        assert result.duration_s > 1.5 * SECONDS_PER_DAY
        assert result.n_requests == n_req
        # over a multi-day horizon the run-average transitions/day can no
        # longer exceed the calendar-day cap
        for f in result.per_disk:
            assert f.transitions_per_day <= 40.0 + 1e-9

    def test_read_cap_is_per_calendar_day(self, params):
        """A drive may spend its budget on day 0 and again on day 1."""
        rng = np.random.default_rng(2)
        fileset = FileSet(np.full(8, 0.5))
        # sparse pings over two days force repeated idle->low->high churn
        times = np.sort(np.concatenate([
            rng.uniform(0, SECONDS_PER_DAY, 60),
            rng.uniform(SECONDS_PER_DAY, 2 * SECONDS_PER_DAY, 60),
        ]))
        fids = rng.integers(0, 8, 120)
        trace = Trace(times, fids)
        from repro.policies.base import SpeedControlConfig
        policy = make_policy("read", max_transitions_per_day=4,
                             speed=SpeedControlConfig(idle_threshold_s=30.0,
                                                      spin_up_queue_len=1,
                                                      spin_up_wait_s=0.5))
        result = run_simulation(policy, fileset, trace, n_disks=2,
                                disk_params=params)
        assert result.total_transitions > 0
        # verify per-calendar-day caps through the drives' day buckets
        # (re-run with direct access to the array)
        sim = Simulator()
        array = DiskArray(sim, params, 2, fileset)
        policy2 = make_policy("read", max_transitions_per_day=4,
                              speed=SpeedControlConfig(idle_threshold_s=30.0,
                                                       spin_up_queue_len=1,
                                                       spin_up_wait_s=0.5))
        policy2.bind(sim, array, fileset)
        policy2.initial_layout()
        for t, fid in zip(times, fids):
            from repro.workload.request import Request
            sim.schedule_at(float(t), (lambda r=Request(float(t), int(fid), 0.5):
                                       policy2.route(r)))
        sim.run(until=2 * SECONDS_PER_DAY)
        policy2.shutdown()
        for drive in array.drives:
            for day, count in drive.stats.transitions_by_day.items():
                assert count <= 4, f"disk {drive.disk_id} day {day}: {count} > cap"
