"""Failure Monte Carlo: rates, redundancy semantics, statistics."""

import numpy as np
import pytest

from repro.experiments.failures import (
    annual_failure_rate_to_rate,
    simulate_failures,
)


class TestRateConversion:
    def test_small_afr_approximately_linear(self):
        assert annual_failure_rate_to_rate(2.0) == pytest.approx(0.0202, abs=1e-3)

    def test_exact_inversion(self):
        rate = annual_failure_rate_to_rate(38.0)
        assert 1.0 - np.exp(-rate) == pytest.approx(0.38)

    def test_zero(self):
        assert annual_failure_rate_to_rate(0.0) == 0.0

    def test_bounds(self):
        with pytest.raises(ValueError):
            annual_failure_rate_to_rate(100.0)
        with pytest.raises(ValueError):
            annual_failure_rate_to_rate(-1.0)


class TestSimulation:
    def test_expected_failures_match_analytic(self):
        afr = 8.0
        fa = simulate_failures([afr] * 10, years=5.0, n_trials=3000, seed=1)
        analytic = 10 * 5.0 * annual_failure_rate_to_rate(afr)
        assert fa.expected_failures == pytest.approx(analytic, rel=0.1)

    def test_no_redundancy_every_failure_loses_data(self):
        fa = simulate_failures([10.0] * 4, years=3.0, n_trials=1000,
                               redundancy="none", seed=2)
        assert fa.mean_loss_events == pytest.approx(fa.expected_failures)

    def test_parity_much_safer_than_none(self):
        none = simulate_failures([8.0] * 10, years=5.0, n_trials=1500,
                                 redundancy="none", seed=3)
        parity = simulate_failures([8.0] * 10, years=5.0, n_trials=1500,
                                   redundancy="parity", seed=3)
        assert parity.p_data_loss < none.p_data_loss / 5

    def test_parity_loss_grows_with_repair_window(self):
        fast = simulate_failures([20.0] * 12, years=5.0, n_trials=1500,
                                 redundancy="parity", repair_hours=6.0, seed=4)
        slow = simulate_failures([20.0] * 12, years=5.0, n_trials=1500,
                                 redundancy="parity", repair_hours=24 * 14, seed=4)
        assert slow.p_data_loss > fast.p_data_loss

    def test_higher_afr_more_loss(self):
        low = simulate_failures([4.0] * 10, years=5.0, n_trials=1500,
                                redundancy="parity", seed=5)
        high = simulate_failures([30.0] * 10, years=5.0, n_trials=1500,
                                 redundancy="parity", seed=5)
        assert high.p_data_loss > low.p_data_loss
        assert high.expected_failures > low.expected_failures

    def test_mirror_pairs_requires_even(self):
        with pytest.raises(ValueError):
            simulate_failures([5.0] * 3, redundancy="mirror_pairs")

    def test_mirror_pairs_runs_and_is_safer_than_none(self):
        none = simulate_failures([10.0] * 8, years=5.0, n_trials=1000,
                                 redundancy="none", seed=6)
        mirror = simulate_failures([10.0] * 8, years=5.0, n_trials=1000,
                                   redundancy="mirror_pairs", seed=6)
        assert mirror.p_data_loss < none.p_data_loss

    def test_deterministic_with_seed(self):
        a = simulate_failures([7.0] * 6, n_trials=500, seed=9)
        b = simulate_failures([7.0] * 6, n_trials=500, seed=9)
        assert a == b

    def test_zero_afr_never_fails(self):
        fa = simulate_failures([0.0] * 5, n_trials=200, seed=7)
        assert fa.expected_failures == 0.0
        assert fa.p_data_loss == 0.0

    def test_per_disk_afrs_heterogeneous(self):
        fa = simulate_failures([1.0, 30.0], years=5.0, n_trials=1000, seed=8)
        assert fa.expected_failures > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_failures([])
        with pytest.raises(ValueError):
            simulate_failures([5.0], years=0.0)
        with pytest.raises(ValueError):
            simulate_failures([5.0], n_trials=0)
