"""Markdown report generation."""

import pytest

from repro.experiments.figures import figure7_comparison
from repro.experiments.report import render_markdown_report, write_markdown_report
from repro.experiments.runner import ExperimentConfig
from repro.obs import ObsConfig
from repro.workload.synthetic import SyntheticWorkloadConfig


@pytest.fixture(scope="module")
def small_fig7():
    cfg = ExperimentConfig(workload=SyntheticWorkloadConfig(
        n_files=80, n_requests=3_000, seed=5, mean_interarrival_s=0.01))
    return figure7_comparison(cfg, disk_counts=(3, 5),
                              policies=("read", "static-high"),
                              policy_kwargs={"read": {"epoch_s": 10.0}})


class TestRender:
    def test_contains_all_sections(self, small_fig7):
        md = render_markdown_report(small_fig7)
        assert md.startswith("# Policy comparison")
        assert "### Array AFR" in md
        assert "### Energy" in md
        assert "### Mean response time" in md
        assert "## read improvements" in md
        assert "## Worthwhileness vs the always-on array" in md

    def test_custom_title_and_no_baseline(self, small_fig7):
        md = render_markdown_report(small_fig7, title="My Study", baseline=None)
        assert md.startswith("# My Study")
        assert "improvements" not in md

    def test_tables_have_all_disk_counts(self, small_fig7):
        md = render_markdown_report(small_fig7)
        assert "| 3 |" in md
        assert "| 5 |" in md

    def test_worthwhile_rows_per_policy_and_size(self, small_fig7):
        md = render_markdown_report(small_fig7)
        # one verdict row per (non-reference policy, size): read x {3, 5}
        verdict_rows = [l for l in md.splitlines()
                        if l.startswith("| read |") and "worthwhile" in l]
        assert len(verdict_rows) == 2

    def test_runtime_section_present(self, small_fig7):
        md = render_markdown_report(small_fig7)
        assert "### Simulation runtime" in md
        assert "events/s" in md

    def test_runtime_telemetry_columns_only_when_captured(self, small_fig7,
                                                          tmp_path):
        # obs-off sweeps must not grow empty columns
        md = render_markdown_report(small_fig7)
        assert "samples" not in md
        assert "| metrics |" not in md

        cfg = ExperimentConfig(workload=SyntheticWorkloadConfig(
            n_files=80, n_requests=1_000, seed=5, mean_interarrival_s=0.01))
        obs = ObsConfig(metrics_path=str(tmp_path / "m.csv"),
                        sample_interval_s=5.0)
        fig7 = figure7_comparison(cfg, disk_counts=(3,), policies=("read",),
                                  obs=obs)
        md = render_markdown_report(fig7)
        runtime = md.split("### Simulation runtime")[1]
        header = next(l for l in runtime.splitlines() if l.startswith("|"))
        assert "samples" in header and "metrics" in header
        row = next(l for l in runtime.splitlines() if l.startswith("| read |"))
        counts = [c.strip() for c in row.strip("|").split("|")[-2:]]
        assert all(c != "-" and int(c) > 0 for c in counts)

    def test_markdown_tables_well_formed(self, small_fig7):
        md = render_markdown_report(small_fig7)
        for line in md.splitlines():
            if line.startswith("|"):
                assert line.endswith("|")


class TestWrite:
    def test_writes_file(self, small_fig7, tmp_path):
        path = write_markdown_report(small_fig7, tmp_path / "report.md")
        assert path.exists()
        assert path.read_text().startswith("# Policy comparison")


class TestFaultsSection:
    @pytest.fixture(scope="class")
    def faulted_fig7(self):
        from repro.faults import FaultConfig
        cfg = ExperimentConfig(workload=SyntheticWorkloadConfig(
            n_files=80, n_requests=3_000, seed=5, mean_interarrival_s=0.01))
        return figure7_comparison(
            cfg, disk_counts=(4,), policies=("read",),
            faults=FaultConfig(seed=3, accel=2e6, hazard_refresh_s=5.0,
                               repair_delay_s=10.0))

    def test_absent_without_faults(self, small_fig7):
        assert "Realized reliability" not in render_markdown_report(small_fig7)

    def test_realized_reliability_table(self, faulted_fig7):
        md = render_markdown_report(faulted_fig7)
        assert "### Realized reliability (fault injection)" in md
        assert "availability %" in md
        assert "data-loss events" in md
        assert "rebuild kJ" in md
        # the faults row carries the availability percentage column; the
        # runtime section's rows for the same cell do not
        rows = [l for l in md.splitlines()
                if l.startswith("| read | 4 |") and "91.7" in l]
        assert len(rows) == 1
