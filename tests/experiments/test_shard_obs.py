"""Telemetry under sharding: the tentpole equality/identity contracts.

The claims of DESIGN.md Sec. 13, asserted end to end:

* the merged per-shard trace is **byte-identical** across ``jobs``
  values and across shard counts (static policies, affinity
  assignment);
* it equals the unsharded run's trace record-for-record, except the
  final ``engine.stop``'s ``events`` payload (data records vs kernel
  events — shard-count-invariant by design, but a different quantity);
* the federated metrics registry and the merged time-series equal the
  unsharded run's **exactly** (tick replay, not approximation);
* telemetry does not perturb physics: the merged result's physical
  fields match the obs-off sharded run bit-for-bit, and the obs-off
  sharded path still takes the SoA backend;
* kernel profiling under sharding is refused.
"""

import json

import pytest

from repro.experiments.runner import make_policy, run_simulation
from repro.experiments.shard import run_sharded
from repro.obs import ObsConfig, read_trace
from repro.workload.cache import cached_generate
from repro.workload.synthetic import SyntheticWorkloadConfig

CFG = SyntheticWorkloadConfig(n_files=150, n_requests=2_500, seed=7,
                              mean_interarrival_s=0.02)
INTERVAL_S = 5.0
PHYSICAL_FIELDS = (
    "policy_name", "n_disks", "n_requests", "duration_s", "total_energy_j",
    "array_afr_percent", "per_disk", "total_transitions", "internal_jobs",
    "energy_breakdown_j", "events_executed",
    "mean_response_s", "p95_response_s", "p99_response_s",
)


def _obs(tmp_path, tag, *, trace=True, metrics=True):
    root = tmp_path / tag
    root.mkdir(parents=True, exist_ok=True)
    return ObsConfig(
        trace_path=str(root / "trace.jsonl") if trace else None,
        metrics_path=str(root / "metrics.csv") if metrics else None,
        sample_interval_s=INTERVAL_S if metrics else None)


def _run(tmp_path, tag, *, n_shards, jobs=1, trace=True, metrics=True):
    obs = _obs(tmp_path, tag, trace=trace, metrics=metrics)
    result, _ = run_sharded("static-high", CFG, n_disks=8,
                            n_shards=n_shards, jobs=jobs, obs=obs)
    return result, obs


class TestMergedTraceIdentity:
    def test_byte_identical_across_jobs(self, tmp_path):
        _, obs_a = _run(tmp_path, "j1", n_shards=4, jobs=1)
        _, obs_b = _run(tmp_path, "j2", n_shards=4, jobs=2)
        assert (tmp_path / "j1/trace.jsonl").read_bytes() \
            == (tmp_path / "j2/trace.jsonl").read_bytes()

    def test_byte_identical_across_shard_counts(self, tmp_path):
        for tag, n_shards in (("s1", 1), ("s2", 2), ("s4", 4)):
            _run(tmp_path, tag, n_shards=n_shards)
        base = (tmp_path / "s1/trace.jsonl").read_bytes()
        assert (tmp_path / "s2/trace.jsonl").read_bytes() == base
        assert (tmp_path / "s4/trace.jsonl").read_bytes() == base

    def test_equals_unsharded_trace_except_stop_event_count(self, tmp_path):
        _run(tmp_path, "sharded", n_shards=4)
        fileset, trace = cached_generate(CFG)
        plain_obs = _obs(tmp_path, "plain")
        run_simulation(make_policy("static-high"), fileset, trace, n_disks=8,
                       obs=plain_obs)
        merged = list(read_trace(tmp_path / "sharded/trace.jsonl"))
        plain = list(read_trace(tmp_path / "plain/trace.jsonl"))
        assert len(merged) == len(plain)
        # every record but the trailing engine.stop is identical
        assert merged[:-1] == plain[:-1]
        stop_m, stop_p = merged[-1], plain[-1]
        assert stop_m["type"] == stop_p["type"] == "engine.stop"
        assert stop_m["duration_s"] == stop_p["duration_s"]
        # merged counts its data records (shard-count-invariant); the
        # unsharded kernel counts executed events — deliberately not equal
        assert stop_m["events"] == len(merged) - 2

    def test_segments_carry_shard_tags_and_global_ids(self, tmp_path):
        _, obs = _run(tmp_path, "tagged", n_shards=4)
        seg = tmp_path / "tagged/trace.shard0003.jsonl"
        records = [r for r in read_trace(seg) if "disk" in r]
        assert records, "last shard saw no disk events"
        assert all(r["shard"] == 3 for r in records)
        # shard 3 of 8 disks owns global disks 6..7
        assert {r["disk"] for r in records} <= {6, 7}


class TestFederatedMetrics:
    def test_registry_and_timeseries_equal_unsharded(self, tmp_path):
        result, obs = _run(tmp_path, "sharded", n_shards=4)
        fileset, trace = cached_generate(CFG)
        plain_obs = _obs(tmp_path, "plain")
        plain = run_simulation(make_policy("static-high"), fileset, trace,
                               n_disks=8, obs=plain_obs)
        assert result.metrics == plain.metrics
        assert result.timeseries == plain.timeseries
        assert (tmp_path / "sharded/metrics.csv").read_bytes() \
            == (tmp_path / "plain/metrics.csv").read_bytes()

    def test_single_shard_merge_matches_plain_run(self, tmp_path):
        result, _ = _run(tmp_path, "s1", n_shards=1)
        fileset, trace = cached_generate(CFG)
        plain = run_simulation(make_policy("static-high"), fileset, trace,
                               n_disks=8, obs=_obs(tmp_path, "plain"))
        assert result.metrics == plain.metrics
        assert result.timeseries == plain.timeseries

    def test_sampler_only_uses_soa_and_remaps_rows(self, tmp_path):
        result, _ = _run(tmp_path, "soa", n_shards=4, trace=False)
        assert result.kernel_backend == "soa"
        assert result.timeseries is not None
        disks = {int(row[1]) for row in result.timeseries.rows}
        assert disks == set(range(8))  # global ids, all shards present

    def test_sampler_only_timeseries_equals_unsharded(self, tmp_path):
        result, _ = _run(tmp_path, "soa", n_shards=4, trace=False)
        fileset, trace = cached_generate(CFG)
        plain = run_simulation(
            make_policy("static-high"), fileset, trace, n_disks=8,
            obs=_obs(tmp_path, "plain", trace=False))
        assert result.timeseries == plain.timeseries
        assert result.metrics == plain.metrics


class TestTelemetryDoesNotPerturbPhysics:
    def test_tracing_leaves_physical_fields_bit_identical(self, tmp_path):
        traced, _ = _run(tmp_path, "on", n_shards=4, metrics=False)
        bare, _ = run_sharded("static-high", CFG, n_disks=8, n_shards=4)
        for f in PHYSICAL_FIELDS:
            assert getattr(traced, f) == getattr(bare, f), f"{f} diverged"

    def test_sampled_sharded_matches_sampled_unsharded(self, tmp_path):
        # The sampler's observation points regroup the floating-point
        # temperature integration (ulp-level, sampled vs unsampled), but
        # sharded-sampled vs unsharded-sampled observe at the same
        # simulated times — so these two agree bit-for-bit.
        sampled, _ = _run(tmp_path, "sampled", n_shards=4, trace=False)
        fileset, trace = cached_generate(CFG)
        plain = run_simulation(
            make_policy("static-high"), fileset, trace, n_disks=8,
            obs=_obs(tmp_path, "plain", trace=False))
        for f in PHYSICAL_FIELDS:
            # each shard runs its own sampler ticks (events differ) and
            # sharded percentiles are histogram-quantized by design
            if f in ("events_executed", "p95_response_s", "p99_response_s"):
                continue
            assert getattr(sampled, f) == getattr(plain, f), f"{f} diverged"

    def test_obs_off_sharded_path_keeps_soa_backend(self):
        bare, _ = run_sharded("static-high", CFG, n_disks=8, n_shards=2)
        assert bare.kernel_backend == "soa"
        assert bare.metrics is None
        assert bare.timeseries is None

    def test_tracing_forces_object_backend(self, tmp_path):
        traced, _ = _run(tmp_path, "obj", n_shards=2, metrics=False)
        assert traced.kernel_backend == "object"


class TestEdgeCases:
    def test_zero_request_shard_merges_cleanly(self, tmp_path):
        # seed chosen so shard 2's only file draws zero requests: its
        # segment holds no data records, its registry counts nothing
        tiny = SyntheticWorkloadConfig(n_files=4, n_requests=20, seed=2,
                                       mean_interarrival_s=0.02,
                                       zipf_alpha=1.0)
        obs = _obs(tmp_path, "tiny")
        result, _ = run_sharded("static-high", tiny, n_disks=4, n_shards=4,
                                obs=obs)
        assert result.n_requests == 20
        idle = [r for r in read_trace(tmp_path / "tiny/trace.shard0002.jsonl")
                if r["type"].startswith("request.")]
        assert idle == []
        merged = list(read_trace(tmp_path / "tiny/trace.jsonl"))
        assert merged[0]["type"] == "engine.start"
        assert merged[-1]["type"] == "engine.stop"
        # idle shards still sample: the time-series covers all 4 disks
        assert {int(r[1]) for r in result.timeseries.rows} == set(range(4))

    def test_profile_under_sharding_refused(self, tmp_path):
        with pytest.raises(ValueError, match="profiling"):
            run_sharded("static-high", CFG, n_disks=8, n_shards=2,
                        obs=ObsConfig(profile=True))

    def test_merged_trace_is_valid_jsonl_with_dense_seq(self, tmp_path):
        _run(tmp_path, "seq", n_shards=2)
        with open(tmp_path / "seq/trace.jsonl", encoding="utf-8") as fh:
            seqs = [json.loads(line)["seq"] for line in fh]
        assert seqs == list(range(len(seqs)))
