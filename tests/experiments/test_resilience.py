"""Resilient sweep engine: retries, pool recovery, checkpoint resume.

The heart of this suite is the determinism-under-fault contract: a sweep
that crashed, retried, was interrupted, and resumed must produce results
bit-identical to one that ran clean.  Worker-kill tests register suicide
policies in the parent's registry and rely on ``fork`` inheritance, so
they are skipped on spawn-only platforms.
"""

import multiprocessing
import os
import pickle
import signal
import time

import pytest

from repro.experiments import resilience as resil
from repro.experiments.parallel import CellExecutionError, RunSpec, run_cell, run_cells
from repro.experiments.resilience import (
    CellTimeoutError,
    ResilienceConfig,
    ResilienceSummary,
    SweepCheckpoint,
    SweepInterrupted,
    run_cell_resilient,
    run_cells_resilient,
    spec_key,
)
from repro.experiments.runner import _POLICY_REGISTRY
from repro.obs import events as obs_events
from repro.obs.bus import TraceBus
from repro.policies.static import StaticHighPolicy
from repro.workload.synthetic import SyntheticWorkloadConfig

TINY = SyntheticWorkloadConfig(n_files=40, n_requests=600, seed=7,
                               mean_interarrival_s=0.01)

#: Zero-backoff config so retry tests don't sleep.
FAST = ResilienceConfig(max_retries=2, retry_backoff_s=0.0)

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="suicide-policy tests need fork inheritance of the registry")


def tiny_specs(*policies: str) -> list[RunSpec]:
    return [RunSpec(policy=p, n_disks=4, workload=TINY) for p in policies]


@pytest.fixture
def registry():
    """Register throwaway policies; always deregister afterwards."""
    added: list[str] = []

    def register(name, factory):
        _POLICY_REGISTRY[name] = factory
        added.append(name)

    yield register
    for name in added:
        _POLICY_REGISTRY.pop(name, None)


class TestSpecKey:
    def test_equal_specs_share_a_key(self):
        a, b = tiny_specs("read", "read")
        assert spec_key(a) == spec_key(b)

    def test_any_field_change_changes_the_key(self):
        base = RunSpec(policy="read", n_disks=4, workload=TINY)
        variants = [
            RunSpec(policy="maid", n_disks=4, workload=TINY),
            RunSpec(policy="read", n_disks=6, workload=TINY),
            RunSpec(policy="read", n_disks=4,
                    workload=SyntheticWorkloadConfig(n_files=40, n_requests=600,
                                                     seed=8,
                                                     mean_interarrival_s=0.01)),
            RunSpec(policy="read", n_disks=4, workload=TINY,
                    policy_kwargs={"adaptive_threshold": False}),
        ]
        keys = {spec_key(s) for s in [base] + variants}
        assert len(keys) == len(variants) + 1

    def test_kwargs_insertion_order_does_not_split_keys(self):
        a = RunSpec(policy="maid", n_disks=4, workload=TINY,
                    policy_kwargs={"cache_fraction": 0.2, "idle_spindown_s": 30.0})
        b = RunSpec(policy="maid", n_disks=4, workload=TINY,
                    policy_kwargs={"idle_spindown_s": 30.0, "cache_fraction": 0.2})
        assert spec_key(a) == spec_key(b)


class TestResilienceConfig:
    @pytest.mark.parametrize("kwargs", [
        {"max_retries": -1},
        {"retry_backoff_s": -0.1},
        {"retry_jitter": 1.5},
        {"cell_timeout_s": 0.0},
        {"max_pool_respawns": -1},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            ResilienceConfig(**kwargs)

    def test_backoff_is_deterministic_per_spec_and_attempt(self):
        cfg = ResilienceConfig(retry_backoff_s=0.5, retry_jitter=0.5)
        key = spec_key(tiny_specs("read")[0])
        assert cfg.backoff_s(key, 0) == cfg.backoff_s(key, 0)
        assert cfg.backoff_s(key, 0) != cfg.backoff_s(key, 1)

    def test_backoff_grows_exponentially_within_jitter(self):
        cfg = ResilienceConfig(retry_backoff_s=0.25, retry_jitter=0.5)
        for attempt in range(4):
            base = 0.25 * 2 ** attempt
            assert base <= cfg.backoff_s("k", attempt) <= 1.5 * base

    def test_zero_backoff_stays_zero(self):
        assert FAST.backoff_s("k", 3) == 0.0


class TestSweepCheckpoint:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        spec = tiny_specs("static-high")[0]
        result = run_cell(spec)
        ckpt = SweepCheckpoint(path)
        ckpt.record(spec_key(spec), result)
        assert path.exists()

        reloaded = SweepCheckpoint(path)
        assert reloaded.loaded == 1
        assert reloaded.get(spec_key(spec)) == result
        assert spec_key(spec) in reloaded

    def test_missing_file_starts_empty(self, tmp_path):
        ckpt = SweepCheckpoint(tmp_path / "new.ckpt")
        assert len(ckpt) == 0 and ckpt.loaded == 0 and ckpt.quarantined is None

    def test_truncated_pickle_is_quarantined(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        spec = tiny_specs("static-high")[0]
        good = SweepCheckpoint(path)
        good.record(spec_key(spec), run_cell(spec))
        path.write_bytes(path.read_bytes()[:20])  # tear the journal

        ckpt = SweepCheckpoint(path)
        assert ckpt.loaded == 0
        assert ckpt.quarantined == tmp_path / "sweep.ckpt.corrupt"
        assert ckpt.quarantined.exists()
        assert not path.exists()  # corpse moved aside, path free for reuse

    def test_garbage_bytes_are_quarantined(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        path.write_bytes(b"this was never a pickle")
        ckpt = SweepCheckpoint(path)
        assert ckpt.loaded == 0 and ckpt.quarantined is not None

    def test_unknown_version_is_quarantined(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        path.write_bytes(pickle.dumps({"version": 999, "cells": {}}))
        ckpt = SweepCheckpoint(path)
        assert ckpt.loaded == 0 and ckpt.quarantined is not None


class TestRunCellResilient:
    def test_clean_cell_matches_plain_run_cell(self):
        spec = tiny_specs("read")[0]
        assert run_cell_resilient(spec, FAST) == run_cell(spec)

    def test_flaky_cell_retries_to_success(self, monkeypatch):
        spec = tiny_specs("read")[0]
        calls = {"n": 0}
        real = run_cell

        def flaky(s):
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return real(s)

        monkeypatch.setattr(resil, "run_cell", flaky)
        assert run_cell_resilient(spec, FAST) == real(spec)
        assert calls["n"] == 3

    def test_budget_exhaustion_raises_with_spec_and_cause(self, monkeypatch):
        spec = tiny_specs("read")[0]
        monkeypatch.setattr(resil, "run_cell",
                            lambda s: (_ for _ in ()).throw(OSError("always")))
        with pytest.raises(CellExecutionError) as excinfo:
            run_cell_resilient(spec, ResilienceConfig(max_retries=1,
                                                      retry_backoff_s=0.0))
        assert excinfo.value.spec == spec
        assert isinstance(excinfo.value.cause, OSError)


class TestSerialEngine:
    def test_matches_run_cells_bit_for_bit(self):
        specs = tiny_specs("read", "maid", "static-high")
        results, summary = run_cells_resilient(specs, jobs=1, config=FAST)
        assert results == run_cells(specs, jobs=1)
        assert summary == ResilienceSummary(cells_total=3, cells_run=3)
        assert not summary.eventful

    def test_retries_are_counted_and_results_unchanged(self, monkeypatch):
        specs = tiny_specs("read", "static-high")
        expected = run_cells(specs, jobs=1)
        failures = {"left": 2}
        real = run_cell

        def flaky(s):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise OSError("transient")
            return real(s)

        monkeypatch.setattr(resil, "run_cell", flaky)
        results, summary = run_cells_resilient(specs, jobs=1, config=FAST)
        assert results == expected
        assert summary.retries == 2 and summary.cells_run == 2

    def test_harness_retry_events_reach_the_bus(self, monkeypatch):
        specs = tiny_specs("read")
        failures = {"left": 1}
        real = run_cell

        def flaky(s):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise OSError("transient")
            return real(s)

        monkeypatch.setattr(resil, "run_cell", flaky)
        bus = TraceBus()
        seen = []
        bus.subscribe(seen.append)
        run_cells_resilient(specs, jobs=1, config=FAST, bus=bus)
        retry = [e for e in seen if e.type == obs_events.HARNESS_CELL_RETRY]
        assert len(retry) == 1
        assert retry[0].data["attempt"] == 1
        assert retry[0].data["reason"] == "OSError"


class TestCheckpointResume:
    """The acceptance criterion: resumed == uninterrupted, bit for bit."""

    def test_resume_skips_done_cells_and_matches_clean_run(self, tmp_path):
        specs = tiny_specs("read", "maid", "static-high")
        clean = run_cells(specs, jobs=1)
        ckpt_path = tmp_path / "sweep.ckpt"

        # phase 1: only the first two cells, journaled
        first, summary1 = run_cells_resilient(specs[:2], jobs=1, config=FAST,
                                              checkpoint=ckpt_path)
        assert summary1.cells_run == 2 and summary1.checkpoint_hits == 0

        # phase 2: the full grid resumes over the same journal
        resumed, summary2 = run_cells_resilient(specs, jobs=1, config=FAST,
                                                checkpoint=ckpt_path)
        assert resumed == clean
        assert summary2.checkpoint_hits == 2 and summary2.cells_run == 1
        assert first == resumed[:2]

    def test_checkpoint_hits_emit_bus_events(self, tmp_path):
        specs = tiny_specs("read", "static-high")
        ckpt_path = tmp_path / "sweep.ckpt"
        run_cells_resilient(specs, jobs=1, config=FAST, checkpoint=ckpt_path)

        bus = TraceBus()
        seen = []
        bus.subscribe(seen.append)
        _, summary = run_cells_resilient(specs, jobs=1, config=FAST,
                                         checkpoint=ckpt_path, bus=bus)
        hits = [e for e in seen if e.type == obs_events.HARNESS_CHECKPOINT_HIT]
        assert len(hits) == 2 == summary.checkpoint_hits
        assert summary.cells_run == 0

    def test_corrupt_checkpoint_restarts_fresh(self, tmp_path):
        specs = tiny_specs("read", "static-high")
        ckpt_path = tmp_path / "sweep.ckpt"
        ckpt_path.write_bytes(b"\x80\x04 torn mid-write")
        results, summary = run_cells_resilient(specs, jobs=1, config=FAST,
                                               checkpoint=ckpt_path)
        assert results == run_cells(specs, jobs=1)
        assert summary.checkpoint_hits == 0 and summary.cells_run == 2
        assert (tmp_path / "sweep.ckpt.corrupt").exists()
        # the fresh journal was republished and is loadable
        assert SweepCheckpoint(ckpt_path).loaded == 2

    def test_changed_spec_invalidates_the_entry(self, tmp_path):
        ckpt_path = tmp_path / "sweep.ckpt"
        run_cells_resilient(tiny_specs("read"), jobs=1, config=FAST,
                            checkpoint=ckpt_path)
        other = [RunSpec(policy="read", n_disks=6, workload=TINY)]
        _, summary = run_cells_resilient(other, jobs=1, config=FAST,
                                         checkpoint=ckpt_path)
        assert summary.checkpoint_hits == 0 and summary.cells_run == 1


class TestInterrupt:
    def test_second_signal_escalates(self):
        flag = resil._InterruptFlag()
        flag(signal.SIGINT, None)
        assert flag.tripped
        with pytest.raises(KeyboardInterrupt):
            flag(signal.SIGINT, None)

    def test_sigint_drains_flushes_and_hints_resume(self, tmp_path, monkeypatch):
        specs = tiny_specs("read", "maid", "static-high")
        ckpt_path = tmp_path / "sweep.ckpt"
        state = {"calls": 0, "kill_at": 2}
        real = run_cell

        def wrapper(s):
            result = real(s)
            state["calls"] += 1
            if state["calls"] == state["kill_at"]:
                os.kill(os.getpid(), signal.SIGINT)  # handler sets the flag
            return result

        monkeypatch.setattr(resil, "run_cell", wrapper)
        with pytest.raises(SweepInterrupted) as excinfo:
            run_cells_resilient(specs, jobs=1, config=FAST,
                                checkpoint=ckpt_path)
        exc = excinfo.value
        assert exc.done == 2 and exc.total == 3
        assert exc.checkpoint_path == ckpt_path
        assert exc.resume_hint == f"--resume {ckpt_path}"
        assert "resume" in str(exc)
        # the interrupted cells are already journaled
        assert SweepCheckpoint(ckpt_path).loaded == 2

        # picking the sweep back up completes it, bit-identical to clean
        state["kill_at"] = None
        resumed, summary = run_cells_resilient(specs, jobs=1, config=FAST,
                                               checkpoint=ckpt_path)
        assert resumed == run_cells(specs, jobs=1)
        assert summary.checkpoint_hits == 2 and summary.cells_run == 1

    def test_interrupt_without_checkpoint_says_so(self, monkeypatch):
        specs = tiny_specs("read", "static-high")
        monkeypatch.setattr(
            resil, "run_cell",
            lambda s: (_ for _ in ()).throw(KeyboardInterrupt()))
        with pytest.raises(SweepInterrupted) as excinfo:
            run_cells_resilient(specs, jobs=1, config=FAST)
        assert excinfo.value.resume_hint is None
        assert "no checkpoint" in str(excinfo.value)


@fork_only
class TestPoolRecovery:
    def test_worker_kill_exhausts_budget_and_names_the_cell(self, registry):
        registry("_kamikaze", lambda: os._exit(137))
        # both cells are suicidal: when the pool breaks, every in-flight
        # future raises, so any charged cell is legitimately the culprit
        specs = [RunSpec(policy="_kamikaze", n_disks=4, workload=TINY),
                 RunSpec(policy="_kamikaze", n_disks=6, workload=TINY)]
        cfg = ResilienceConfig(max_retries=0, retry_backoff_s=0.0,
                               max_pool_respawns=4)
        with pytest.raises(CellExecutionError) as excinfo:
            run_cells_resilient(specs, jobs=2, config=cfg)
        assert excinfo.value.spec.policy == "_kamikaze"

    def test_kill_once_recovers_bit_identical(self, registry, tmp_path):
        flag = tmp_path / "died-once"

        def kill_once():
            if not flag.exists():
                flag.write_text("x")
                os._exit(137)
            return StaticHighPolicy()

        registry("_killonce", kill_once)
        specs = [RunSpec(policy="read", n_disks=4, workload=TINY),
                 RunSpec(policy="_killonce", n_disks=4, workload=TINY),
                 RunSpec(policy="static-high", n_disks=4, workload=TINY)]
        cfg = ResilienceConfig(max_retries=2, retry_backoff_s=0.0,
                               max_pool_respawns=4)
        results, summary = run_cells_resilient(specs, jobs=2, config=cfg)

        # the crashed-and-retried cell is a static-high run in disguise;
        # its result must match a clean in-process run of the same cell
        clean = run_cell(RunSpec(policy="static-high", n_disks=4, workload=TINY))
        assert results[1] == clean
        assert results[0] == run_cell(specs[0])
        assert results[2] == clean
        assert summary.pool_respawns >= 1
        assert summary.retries + summary.cells_salvaged >= 1

    def test_survivors_reach_the_checkpoint(self, registry, tmp_path):
        registry("_kamikaze", lambda: os._exit(137))
        ckpt_path = tmp_path / "sweep.ckpt"
        good = [RunSpec(policy="read", n_disks=4, workload=TINY),
                RunSpec(policy="static-high", n_disks=4, workload=TINY)]
        specs = good + [RunSpec(policy="_kamikaze", n_disks=4, workload=TINY)]
        cfg = ResilienceConfig(max_retries=1, retry_backoff_s=0.0,
                               max_pool_respawns=6)
        with pytest.raises(CellExecutionError):
            run_cells_resilient(specs, jobs=2, config=cfg,
                                checkpoint=ckpt_path)

        # resume over the good cells only: anything journaled is reused,
        # and the final results match a clean run exactly
        results, summary = run_cells_resilient(good, jobs=1, config=FAST,
                                               checkpoint=ckpt_path)
        assert results == run_cells(good, jobs=1)
        assert summary.checkpoint_hits + summary.cells_run == len(good)

    def test_pool_results_match_serial(self):
        specs = tiny_specs("read", "maid", "static-high", "pdc")
        pooled, summary = run_cells_resilient(specs, jobs=2, config=FAST)
        assert pooled == run_cells(specs, jobs=1)
        assert summary.cells_run == 4 and not summary.eventful


@fork_only
class TestPoolTimeout:
    def test_hung_cell_times_out_without_watchdog(self, registry):
        def sleeper():
            time.sleep(60.0)
            return StaticHighPolicy()  # pragma: no cover - killed first

        registry("_sleeper", sleeper)
        specs = [RunSpec(policy="read", n_disks=4, workload=TINY),
                 RunSpec(policy="_sleeper", n_disks=4, workload=TINY)]
        cfg = ResilienceConfig(max_retries=0, retry_backoff_s=0.0,
                               cell_timeout_s=2.0, max_pool_respawns=4,
                               watchdog=False)
        start = time.monotonic()
        with pytest.raises(CellTimeoutError) as excinfo:
            run_cells_resilient(specs, jobs=2, config=cfg)
        assert excinfo.value.spec.policy == "_sleeper"
        assert excinfo.value.timeout_s == 2.0
        assert time.monotonic() - start < 30.0  # nowhere near the 60s hang


class TestValidation:
    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            run_cells_resilient([], jobs=0)

    def test_rejects_non_specs(self):
        with pytest.raises(ValueError, match="RunSpec"):
            run_cells_resilient([object()], jobs=1)

    def test_empty_specs(self, tmp_path):
        results, summary = run_cells_resilient([], jobs=1)
        assert results == [] and summary.cells_total == 0

    def test_summary_row_is_flat(self):
        row = ResilienceSummary(cells_total=3, cells_run=2,
                                checkpoint_hits=1).summary_row()
        assert row["cells_total"] == 3 and row["checkpoint_hits"] == 1


class TestRunCellsDelegation:
    def test_run_cells_resilience_kwarg_matches_plain(self):
        specs = tiny_specs("read", "static-high")
        assert run_cells(specs, jobs=1, resilience=FAST) == run_cells(specs, jobs=1)

    def test_run_cells_checkpoint_kwarg_round_trips(self, tmp_path):
        specs = tiny_specs("read", "static-high")
        ckpt_path = tmp_path / "sweep.ckpt"
        first = run_cells(specs, jobs=1, checkpoint=ckpt_path)
        again = run_cells(specs, jobs=1, checkpoint=ckpt_path)
        assert first == again == run_cells(specs, jobs=1)

    def test_figure7_attaches_resilience_summary_and_report_section(self, tmp_path):
        from repro.experiments.figures import figure7_comparison
        from repro.experiments.report import render_markdown_report
        from repro.experiments.runner import ExperimentConfig

        config = ExperimentConfig(workload=TINY)
        ckpt_path = tmp_path / "fig7.ckpt"
        fig7 = figure7_comparison(config, disk_counts=[4],
                                  policies=["read", "static-high"],
                                  checkpoint=ckpt_path)
        assert fig7.resilience is not None
        assert fig7.resilience.cells_total == 2

        resumed = figure7_comparison(config, disk_counts=[4],
                                     policies=["read", "static-high"],
                                     checkpoint=ckpt_path)
        assert resumed.results == fig7.results
        assert resumed.resilience.checkpoint_hits == 2
        report = render_markdown_report(resumed)
        assert "Harness resilience" in report
        assert "identical to an uninterrupted sweep" in report

    def test_plain_figure7_has_no_resilience_summary(self):
        from repro.experiments.figures import figure7_comparison
        from repro.experiments.runner import ExperimentConfig

        fig7 = figure7_comparison(ExperimentConfig(workload=TINY),
                                  disk_counts=[4], policies=["read"])
        assert fig7.resilience is None
