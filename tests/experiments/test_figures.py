"""Figure-regeneration functions: series shapes and small sweeps."""

import numpy as np
import pytest

from repro.experiments.figures import (
    Figure7Results,
    figure2b_series,
    figure3b_series,
    figure4a_series,
    figure4b_series,
    figure5_surface,
    figure7_comparison,
    headline_summary,
)
from repro.experiments.runner import ExperimentConfig
from repro.workload.synthetic import SyntheticWorkloadConfig


class TestModelFigures:
    def test_fig2b(self):
        temps, afrs = figure2b_series()
        assert temps[0] == 25.0 and temps[-1] == 50.0
        assert np.all(np.diff(afrs) >= -1e-12)

    def test_fig3b(self):
        utils, afrs = figure3b_series()
        assert utils[0] == 25.0 and utils[-1] == 100.0
        assert afrs[0] == 6.0 and afrs[-1] == 12.0

    def test_fig4a_doubles_fig4b(self):
        _, a = figure4a_series(21)
        _, b = figure4b_series(21)
        np.testing.assert_allclose(a, 2 * b)

    def test_fig5_50c_dominates_40c(self):
        _, _, s40 = figure5_surface(40.0)
        _, _, s50 = figure5_surface(50.0)
        assert s40.shape == s50.shape == (16, 17)
        assert np.all(s50 > s40)


@pytest.fixture(scope="module")
def tiny_fig7():
    cfg = ExperimentConfig(workload=SyntheticWorkloadConfig(
        n_files=100, n_requests=4000, seed=3, mean_interarrival_s=0.01))
    return figure7_comparison(cfg, disk_counts=(4, 6),
                              policies=("read", "static-high"),
                              policy_kwargs={"read": {"epoch_s": 10.0}})


class TestFigure7:
    def test_structure(self, tiny_fig7):
        assert tiny_fig7.disk_counts == (4, 6)
        assert set(tiny_fig7.results) == {"read", "static-high"}
        assert all(len(runs) == 2 for runs in tiny_fig7.results.values())

    def test_series_extraction(self, tiny_fig7):
        for metric in ("afr", "energy", "response"):
            series = tiny_fig7.series(metric)
            assert set(series) == {"read", "static-high"}
            assert all(v.shape == (2,) for v in series.values())
            assert all(np.all(v > 0) for v in series.values())

    def test_unknown_metric_rejected(self, tiny_fig7):
        with pytest.raises(ValueError):
            tiny_fig7.series("latency")

    def test_same_trace_for_all_policies(self, tiny_fig7):
        reqs = {runs[0].n_requests for runs in tiny_fig7.results.values()}
        assert len(reqs) == 1

    def test_headline_summary(self, tiny_fig7):
        summary = headline_summary(tiny_fig7, baseline="read")
        assert set(summary) == {"afr", "energy", "response"}
        for metric_stats in summary.values():
            assert "vs_static-high_mean_%" in metric_stats
            assert "vs_static-high_max_%" in metric_stats

    def test_headline_requires_known_baseline(self, tiny_fig7):
        with pytest.raises(ValueError):
            headline_summary(tiny_fig7, baseline="nope")
