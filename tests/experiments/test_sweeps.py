"""Ablation sweeps (small instances; shape-level assertions)."""

import pytest

from repro.experiments.runner import ExperimentConfig
from repro.experiments.sweeps import (
    sweep_idle_threshold,
    sweep_integrator_strategies,
    sweep_read_adaptive_threshold,
    sweep_read_migration,
    sweep_read_transition_cap,
)
from repro.workload.synthetic import SyntheticWorkloadConfig


@pytest.fixture(scope="module")
def cfg():
    return ExperimentConfig(workload=SyntheticWorkloadConfig(
        n_files=100, n_requests=4000, seed=5, mean_interarrival_s=0.01))


class TestIntegratorSweep:
    def test_all_strategies_present_and_ordered(self, cfg):
        out = sweep_integrator_strategies(cfg, n_disks=4)
        assert set(out) == {"mean_plus_adder", "max_plus_adder", "sum", "weighted"}
        # SUM dominates MEAN by construction
        assert out["sum"].array_afr_percent >= out["mean_plus_adder"].array_afr_percent
        # simulation itself identical across strategies
        energies = {round(r.total_energy_j, 6) for r in out.values()}
        assert len(energies) == 1

    def test_runs_exactly_one_simulation(self, cfg, monkeypatch):
        """The strategies only re-score; the trace must replay once."""
        import repro.experiments.sweeps as sweeps

        calls = []
        real_run_cell = sweeps.run_cell

        def counting_run_cell(spec):
            calls.append(spec)
            return real_run_cell(spec)

        monkeypatch.setattr(sweeps, "run_cell", counting_run_cell)
        out = sweep_integrator_strategies(cfg, n_disks=4)
        assert len(calls) == 1
        assert len(out) == len(set(out)) == 4

    def test_rescoring_matches_full_reruns(self, cfg):
        """Re-scored AFRs equal what a per-strategy re-run would produce."""
        from repro.press.integrator import CombinationStrategy
        from repro.press.model import PRESSModel

        out = sweep_integrator_strategies(cfg, n_disks=4)
        for strategy in CombinationStrategy:
            press = PRESSModel.with_strategy(strategy)
            result = out[strategy.value]
            afr, factors = press.rescore_factors(result.per_disk)
            assert result.array_afr_percent == pytest.approx(afr)
            for have, want in zip(result.per_disk, factors):
                assert have == want


class TestREADSweeps:
    def test_transition_cap_sweep_keys(self, cfg):
        out = sweep_read_transition_cap(cfg, caps=(4, 40), n_disks=4)
        assert set(out) == {4, 40}
        assert all(r.policy_name == "read" for r in out.values())

    def test_adaptive_threshold_sweep(self, cfg):
        out = sweep_read_adaptive_threshold(cfg, n_disks=4)
        assert set(out) == {"adaptive", "fixed"}
        assert out["adaptive"].policy_detail["adaptive_threshold"] is True
        assert out["fixed"].policy_detail["adaptive_threshold"] is False

    def test_migration_sweep(self, cfg):
        out = sweep_read_migration(cfg, n_disks=4)
        assert set(out) == {"frd_on", "frd_off"}
        # with FRD disabled there is no migration I/O at all
        assert out["frd_off"].internal_jobs == 0


class TestIdleThresholdSweep:
    def test_pdc_threshold_sweep(self, cfg):
        out = sweep_idle_threshold(cfg, thresholds_s=(1.0, 1000.0),
                                   policy="pdc", n_disks=4)
        assert set(out) == {1.0, 1000.0}
        # an unreachable threshold produces no spin-downs at all
        assert out[1000.0].total_transitions <= out[1.0].total_transitions

    def test_rejects_non_idling_policy(self, cfg):
        with pytest.raises(ValueError):
            sweep_idle_threshold(cfg, policy="static-high")


class TestFaultAccelerationSweep:
    def test_availability_degrades_with_acceleration(self, cfg):
        from repro.experiments.sweeps import sweep_fault_acceleration
        out = sweep_fault_acceleration(cfg, accels=(1e4, 5e6), policy="read",
                                       n_disks=4, seed=3)
        assert set(out) == {1e4, 5e6}
        low, high = out[1e4].faults, out[5e6].faults
        assert low is not None and high is not None
        # stronger acceleration -> at least as many failures, no better
        # availability (same budgets at both points, only the scale moves)
        assert high.disk_failures >= low.disk_failures
        assert high.availability <= low.availability
