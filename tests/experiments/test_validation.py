"""Simulator vs Pollaczek-Khinchine: the M/G/1 cross-check.

If these agree, the simulator's arrival/queue/service pipeline is
correct — every policy comparison in the repository stands on it.
"""

import numpy as np
import pytest

from repro.disk.array import DiskArray
from repro.disk.parameters import DiskSpeed
from repro.experiments.metrics import RequestMetrics
from repro.experiments.validation import mg1_prediction, service_moments
from repro.sim.engine import Simulator
from repro.workload.arrival import poisson_arrivals
from repro.workload.files import FileSet
from repro.workload.request import Request
from repro.workload.zipf import zipf_probabilities


def simulate_single_disk(fileset, params, mean_gap, n_requests, *,
                         speed=DiskSpeed.HIGH, weights=None, seed=0):
    """One fixed-speed drive, Poisson arrivals, files sampled by weight."""
    rng = np.random.default_rng(seed)
    times = poisson_arrivals(n_requests, mean_gap, seed=rng)
    n = len(fileset)
    p = weights if weights is not None else np.full(n, 1.0 / n)
    fids = rng.choice(n, size=n_requests, p=p / p.sum())

    sim = Simulator()
    array = DiskArray(sim, params, 1, fileset, initial_speed=speed)
    array.place_all(np.zeros(n, dtype=np.int64))
    metrics = RequestMetrics(expected=n_requests)
    for t, fid in zip(times, fids):
        req = Request(float(t), int(fid), fileset.size_of(int(fid)))
        sim.schedule_at(float(t), (lambda r=req: array.submit_request(
            r, on_complete=metrics.on_complete)))
    sim.run()
    return metrics


class TestServiceMoments:
    def test_uniform_moments(self, params):
        fs = FileSet(np.array([1.0, 3.0]))
        es, es2 = service_moments(fs, params.high)
        s1 = params.high.service_time_s(1.0)
        s2 = params.high.service_time_s(3.0)
        assert es == pytest.approx((s1 + s2) / 2)
        assert es2 == pytest.approx((s1**2 + s2**2) / 2)

    def test_weighted_moments(self, params):
        fs = FileSet(np.array([1.0, 3.0]))
        es, _ = service_moments(fs, params.high, weights=np.array([1.0, 0.0]))
        assert es == pytest.approx(params.high.service_time_s(1.0))

    def test_weight_validation(self, params):
        fs = FileSet(np.array([1.0, 3.0]))
        with pytest.raises(ValueError):
            service_moments(fs, params.high, weights=np.array([1.0]))


class TestPrediction:
    def test_unstable_queue_rejected(self, params):
        fs = FileSet(np.full(10, 50.0))  # ~1.6 s services
        with pytest.raises(ValueError, match="unstable"):
            mg1_prediction(fs, params, mean_interarrival_s=0.1)

    def test_utilization_formula(self, params):
        fs = FileSet(np.full(10, 1.0))
        pred = mg1_prediction(fs, params, mean_interarrival_s=0.2)
        assert pred.utilization == pytest.approx(
            params.high.service_time_s(1.0) / 0.2)

    def test_response_is_wait_plus_service(self, params):
        fs = FileSet(np.full(10, 1.0))
        pred = mg1_prediction(fs, params, mean_interarrival_s=0.2)
        assert pred.mean_response_s == pred.mean_wait_s + pred.mean_service_s


class TestSimulatorAgreement:
    """The headline checks: simulated means within MC error of P-K."""

    @pytest.mark.parametrize("speed", [DiskSpeed.HIGH, DiskSpeed.LOW])
    def test_uniform_sizes_moderate_load(self, params, speed):
        fs = FileSet(np.full(20, 0.5))
        gap = 0.06 if speed is DiskSpeed.HIGH else 0.12
        pred = mg1_prediction(fs, params, speed=speed, mean_interarrival_s=gap)
        metrics = simulate_single_disk(fs, params, gap, 40_000, speed=speed)
        assert metrics.waiting_times_s.mean() == pytest.approx(
            pred.mean_wait_s, rel=0.08)
        assert metrics.response_times_s.mean() == pytest.approx(
            pred.mean_response_s, rel=0.05)

    def test_heterogeneous_sizes_high_variance(self, params):
        """P-K is exquisitely sensitive to E[S^2]; mixed sizes probe it."""
        rng = np.random.default_rng(3)
        fs = FileSet(rng.uniform(0.05, 2.0, 50))
        gap = 0.08
        pred = mg1_prediction(fs, params, mean_interarrival_s=gap)
        assert pred.utilization < 0.6
        metrics = simulate_single_disk(fs, params, gap, 60_000, seed=4)
        assert metrics.waiting_times_s.mean() == pytest.approx(
            pred.mean_wait_s, rel=0.10)

    def test_zipf_weighted_access(self, params):
        """Popularity-weighted service distribution (the realistic case)."""
        fs = FileSet(np.linspace(0.1, 1.5, 30))
        weights = zipf_probabilities(30, 0.8)
        gap = 0.05
        pred = mg1_prediction(fs, params, mean_interarrival_s=gap, weights=weights)
        metrics = simulate_single_disk(fs, params, gap, 60_000,
                                       weights=weights, seed=5)
        assert metrics.waiting_times_s.mean() == pytest.approx(
            pred.mean_wait_s, rel=0.10)

    def test_high_load_regime(self, params):
        """rho ~ 0.8: waits blow up as 1/(1-rho); the simulator must track."""
        fs = FileSet(np.full(10, 1.0))
        es = params.high.service_time_s(1.0)
        gap = es / 0.8
        pred = mg1_prediction(fs, params, mean_interarrival_s=gap)
        assert pred.utilization == pytest.approx(0.8)
        metrics = simulate_single_disk(fs, params, gap, 80_000, seed=6)
        assert metrics.waiting_times_s.mean() == pytest.approx(
            pred.mean_wait_s, rel=0.15)
