"""Cross-module integration: the paper's qualitative claims at test scale.

These are the shape-level assertions EXPERIMENTS.md reports at full
scale, checked here on a reduced workload so they run in CI time.  The
workload is bursty + drifting (the regime Sec. 5 exercises — see
DESIGN.md) and large enough for the orderings to be stable.
"""

import pytest

from repro.experiments.costmodel import CostAssumptions, evaluate_worthwhileness
from repro.experiments.runner import ExperimentConfig, make_policy, run_simulation
from repro.workload.synthetic import SyntheticWorkloadConfig


@pytest.fixture(scope="module")
def comparison():
    """One shared light-condition comparison across all policies."""
    cfg = ExperimentConfig(workload=SyntheticWorkloadConfig(
        n_files=800, n_requests=40_000, seed=7, bursty=True))
    fileset, trace = cfg.generate()
    out = {}
    for name in ("static-high", "read", "maid", "pdc"):
        out[name] = run_simulation(make_policy(name), fileset, trace,
                                   n_disks=8, disk_params=cfg.disk_params)
    return out


class TestPaperOrderings:
    def test_afr_ordering_read_best_pdc_worst(self, comparison):
        """Fig. 7a: READ < MAID < PDC on array AFR."""
        assert comparison["read"].array_afr_percent \
            <= comparison["maid"].array_afr_percent \
            <= comparison["pdc"].array_afr_percent
        assert comparison["read"].array_afr_percent \
            < comparison["pdc"].array_afr_percent

    def test_read_saves_energy_vs_static(self, comparison):
        """READ spends less than the no-energy-management array."""
        assert comparison["read"].total_energy_j \
            < comparison["static-high"].total_energy_j

    def test_read_saves_energy_vs_baselines(self, comparison):
        """Fig. 7b (light): READ below both MAID and PDC."""
        assert comparison["read"].total_energy_j < comparison["maid"].total_energy_j
        assert comparison["read"].total_energy_j < comparison["pdc"].total_energy_j

    def test_response_time_ordering(self, comparison):
        """Fig. 7c: READ fastest of the three schemes; PDC slowest."""
        assert comparison["read"].mean_response_s < comparison["maid"].mean_response_s
        assert comparison["read"].mean_response_s < comparison["pdc"].mean_response_s
        assert comparison["maid"].mean_response_s < comparison["pdc"].mean_response_s

    def test_transition_counts_tell_the_story(self, comparison):
        """READ's cap holds while the baselines churn (Sec. 5.2)."""
        assert comparison["read"].total_transitions \
            < comparison["maid"].total_transitions
        assert comparison["read"].total_transitions \
            < comparison["pdc"].total_transitions

    def test_static_high_never_transitions(self, comparison):
        assert comparison["static-high"].total_transitions == 0


class TestWorthwhileness:
    def test_title_question_for_churny_scheme(self, comparison):
        """PDC's energy saving does not pay for its AFR at default
        (reliability-critical) cost assumptions — the paper's thesis."""
        verdict = evaluate_worthwhileness(comparison["pdc"],
                                          comparison["static-high"])
        assert not verdict.worthwhile

    def test_read_is_worthwhile(self, comparison):
        """READ saves energy without an AFR penalty -> positive verdict."""
        verdict = evaluate_worthwhileness(comparison["read"],
                                          comparison["static-high"])
        assert verdict.worthwhile

    def test_cheap_data_changes_the_answer(self, comparison):
        """With worthless data and free disks, even PDC's saving can win —
        the verdict is assumption-dependent, as the paper stresses."""
        lax = CostAssumptions(disk_replacement_usd=0.0, data_loss_cost_usd=0.0)
        verdict = evaluate_worthwhileness(comparison["pdc"],
                                          comparison["static-high"], lax)
        assert verdict.extra_failure_cost_usd_per_year == 0.0


class TestHeavyCondition:
    def test_heavy_utilization_differentiates(self):
        """Fig. 7 heavy: concentration pushes PDC's head-disk utilization
        into a higher PRESS bucket than READ's spread load."""
        from repro.policies.base import SpeedControlConfig

        cfg = ExperimentConfig(workload=SyntheticWorkloadConfig(
            n_files=400, n_requests=60_000, seed=9, bursty=True,
            mean_interarrival_s=0.005))
        fileset, trace = cfg.generate()
        # freeze speed churn on both sides: this test isolates the
        # utilization channel (short horizons make the per-day frequency
        # extrapolation meaninglessly twitchy)
        frozen = SpeedControlConfig(idle_threshold_s=1e6, spin_up_queue_len=1)
        read = run_simulation(make_policy("read", epoch_s=30.0, speed=frozen),
                              fileset, trace, n_disks=6, disk_params=cfg.disk_params)
        pdc = run_simulation(make_policy("pdc", epoch_s=30.0, speed=frozen),
                             fileset, trace, n_disks=6, disk_params=cfg.disk_params)
        read_max_util = max(f.utilization_percent for f in read.per_disk)
        pdc_max_util = max(f.utilization_percent for f in pdc.per_disk)
        assert pdc_max_util > read_max_util
        assert pdc.array_afr_percent >= read.array_afr_percent
