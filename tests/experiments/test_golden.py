"""Golden end-to-end regression snapshots.

A fixed-seed, fixed-workload comparison whose headline numbers are
pinned to the values produced at the time this test was written.  Any
behavioral drift anywhere in the stack — trace generation, queueing,
the energy/thermal ledgers, PRESS scoring, fault injection — moves one
of these numbers and fails loudly, which is exactly the point: the
qualitative ordering tests elsewhere would happily absorb a silent
5% shift.

Tolerances are tight (1e-9 relative) rather than exact-equality so the
snapshot survives benign float-summation differences across platforms
while still catching any real change.  If a deliberate change lands
(new integration order, different ledger granularity), regenerate the
constants with the recipe in each test's docstring and say so in the
commit message.
"""

import pytest

from repro.experiments.runner import ExperimentConfig, make_policy, run_simulation
from repro.faults import FaultConfig
from repro.redundancy import SCHEME_PRESETS
from repro.workload.synthetic import SyntheticWorkloadConfig

REL = 1e-9

#: The pinned scenario: bursty arrivals slow enough (0.3 s mean gap)
#: that idling policies actually cycle speeds, on a 6-disk array.
WORKLOAD = SyntheticWorkloadConfig(n_files=300, n_requests=12_000, seed=123,
                                   bursty=True, mean_interarrival_s=0.3)


@pytest.fixture(scope="module")
def workload():
    cfg = ExperimentConfig(workload=WORKLOAD)
    fileset, trace = cfg.generate()
    return cfg, fileset, trace


def _run(workload, policy, **kwargs):
    cfg, fileset, trace = workload
    return run_simulation(make_policy(policy), fileset, trace, n_disks=6,
                          disk_params=cfg.disk_params, **kwargs)


class TestFaultFreeSnapshot:
    """Two cells of the fault-free comparison, pinned.

    Regenerate with::

        r = run_simulation(make_policy(name), fileset, trace, n_disks=6)
        print(r.total_energy_j, r.array_afr_percent, r.mean_response_s, ...)
    """

    def test_pdc_cell(self, workload):
        r = _run(workload, "pdc")
        assert r.total_energy_j == pytest.approx(189637.55390271635, rel=REL)
        assert r.array_afr_percent == pytest.approx(48.29607502609301, rel=REL)
        assert r.mean_response_s == pytest.approx(0.08559092029231885, rel=REL)
        assert r.p95_response_s == pytest.approx(0.014992844677078664, rel=REL)
        assert r.p99_response_s == pytest.approx(4.008578951977422, rel=REL)
        assert r.total_transitions == 369
        assert r.faults is None

    def test_static_high_cell(self, workload):
        r = _run(workload, "static-high")
        assert r.total_energy_j == pytest.approx(214775.11340099556, rel=REL)
        assert r.array_afr_percent == pytest.approx(10.500139, rel=REL)
        assert r.mean_response_s == pytest.approx(0.008954224781555414, rel=REL)
        assert r.p95_response_s == pytest.approx(0.00970981319198927, rel=REL)
        assert r.p99_response_s == pytest.approx(0.014523795322306798, rel=REL)
        assert r.total_transitions == 0
        assert r.faults is None


class TestFaultInjectionSnapshot:
    """One fault-injected cell: the realized failure schedule and every
    derived reliability metric, pinned.  This is the determinism
    acceptance criterion made executable — same seed, same schedule,
    forever."""

    EXPECTED_SCHEDULE = (
        (0, 194.36058597409854), (1, 650.6190106528347),
        (3, 664.953992359861), (0, 1208.3414333100498),
        (4, 1582.3370958412338), (2, 1905.0888443981435),
        (1, 1956.9970089656258), (2, 2543.0147752856014),
        (5, 2971.5391882393014), (1, 3085.441331804838),
        (2, 3269.8865308458694), (0, 3310.541591207325),
    )

    @pytest.fixture(scope="class")
    def result(self, workload):
        return _run(workload, "read", faults=FaultConfig(seed=3, accel=2e5))

    def test_failure_schedule(self, result):
        sched = result.faults.failure_schedule
        assert [d for d, _ in sched] == [d for d, _ in self.EXPECTED_SCHEDULE]
        for (_, got), (_, want) in zip(sched, self.EXPECTED_SCHEDULE):
            assert got == pytest.approx(want, rel=REL)

    def test_reliability_metrics(self, result):
        f = result.faults
        assert f.rebuilds_completed == 8
        assert f.requests_failed == 4259
        assert f.requests_retried == 8523
        assert f.requests_redirected == 0
        assert f.data_loss_events == 12
        assert f.files_lost == 631
        assert f.availability == pytest.approx(0.7060143506652574, rel=REL)
        assert f.rebuild_energy_j == pytest.approx(8.77064511049366, rel=REL)
        assert f.downtime_s == pytest.approx(6181.9480085294745, rel=REL)

    def test_energy_under_faults(self, result):
        assert result.total_energy_j == pytest.approx(131957.592490413, rel=REL)

    def test_rerun_is_identical(self, workload, result):
        again = _run(workload, "read", faults=FaultConfig(seed=3, accel=2e5))
        assert again.faults == result.faults
        assert again.total_energy_j == result.total_energy_j
        assert again.mean_response_s == result.mean_response_s


class TestRedundancySnapshot:
    """One fault-injected ``block4-2`` cell (8 disks, one group), pinned.

    The accelerated hazard pierces the group repeatedly, so this single
    cell exercises every redundancy path: degraded k-leg reconstruction,
    rebuild read fan-out, the full health ladder down to LOST and back,
    and the CTMC assessment over measured rebuild times.  Regenerate
    with the same recipe as the other snapshots (run the cell, print the
    ``result.redundancy`` fields).
    """

    @pytest.fixture(scope="class")
    def result(self, workload):
        cfg, fileset, trace = workload
        return run_simulation(make_policy("read"), fileset, trace, n_disks=8,
                              disk_params=cfg.disk_params,
                              faults=FaultConfig(seed=3, accel=2e5),
                              redundancy=SCHEME_PRESETS["block4-2"])

    def test_reconstruction_counters(self, result):
        red = result.redundancy
        assert red.scheme == "block4-2"
        assert red.n_groups == 1
        assert red.reconstruct_reads == 1470
        assert red.reconstruct_legs == 8820  # k=6 legs per reconstruct
        assert red.rebuild_read_legs == 18
        assert red.domain_outages == 0

    def test_group_state_history(self, result):
        red = result.redundancy
        assert red.final_states == ("lost",)
        assert len(red.state_changes) == 15
        assert red.groups_lost_events == 4
        t, gid, old, new = red.state_changes[0]
        assert (gid, old, new) == (0, "healthy", "degraded")
        assert t == pytest.approx(194.36058597409857, rel=REL)
        t, gid, old, new = red.state_changes[-1]
        assert (gid, old, new) == (0, "critical", "lost")
        assert t == pytest.approx(3010.730722002629, rel=REL)

    def test_fault_metrics_under_redundancy(self, result):
        f = result.faults
        assert f.disk_failures == 17
        assert f.rebuilds_completed == 12
        assert f.requests_failed == 2504
        assert f.requests_retried == 5025
        assert f.requests_redirected == 1470
        assert f.data_loss_events == 12
        assert f.files_lost == 443
        assert f.availability == pytest.approx(0.6823270984241971, rel=REL)
        assert result.total_energy_j == pytest.approx(163524.3218158209, rel=REL)

    def test_ctmc_assessment(self, result):
        c = result.redundancy.ctmc
        assert c.scheme == "block4-2"
        assert (c.n_units, c.unit_size, c.tolerance) == (1, 8, 2)
        assert c.rebuild_hours == pytest.approx(0.16668084821047732, rel=REL)
        assert c.mttdl_array_years == pytest.approx(16913484784.239271, rel=1e-6)
        assert c.p_loss_array == pytest.approx(6.515488149005932e-11, rel=1e-6)

    def test_scheme_none_is_bit_identical_to_no_redundancy(self, workload):
        """``--redundancy none`` must not perturb anything: the run is
        the plain run, field for field, with no summary attached."""
        plain = _run(workload, "read")
        none_run = _run(workload, "read", redundancy=SCHEME_PRESETS["none"])
        assert none_run.redundancy is None
        assert none_run.total_energy_j == plain.total_energy_j
        assert none_run.mean_response_s == plain.mean_response_s
        assert none_run.p99_response_s == plain.p99_response_s
        assert none_run.array_afr_percent == plain.array_afr_percent
        assert none_run.total_transitions == plain.total_transitions

    def test_rerun_is_identical(self, workload, result):
        cfg, fileset, trace = workload
        again = run_simulation(make_policy("read"), fileset, trace, n_disks=8,
                               disk_params=cfg.disk_params,
                               faults=FaultConfig(seed=3, accel=2e5),
                               redundancy=SCHEME_PRESETS["block4-2"])
        assert again.redundancy == result.redundancy
        assert again.faults == result.faults
        assert again.total_energy_j == result.total_energy_j
