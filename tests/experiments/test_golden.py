"""Golden end-to-end regression snapshots.

A fixed-seed, fixed-workload comparison whose headline numbers are
pinned to the values produced at the time this test was written.  Any
behavioral drift anywhere in the stack — trace generation, queueing,
the energy/thermal ledgers, PRESS scoring, fault injection — moves one
of these numbers and fails loudly, which is exactly the point: the
qualitative ordering tests elsewhere would happily absorb a silent
5% shift.

Tolerances are tight (1e-9 relative) rather than exact-equality so the
snapshot survives benign float-summation differences across platforms
while still catching any real change.  If a deliberate change lands
(new integration order, different ledger granularity), regenerate the
constants with the recipe in each test's docstring and say so in the
commit message.
"""

import pytest

from repro.experiments.runner import ExperimentConfig, make_policy, run_simulation
from repro.faults import FaultConfig
from repro.workload.synthetic import SyntheticWorkloadConfig

REL = 1e-9

#: The pinned scenario: bursty arrivals slow enough (0.3 s mean gap)
#: that idling policies actually cycle speeds, on a 6-disk array.
WORKLOAD = SyntheticWorkloadConfig(n_files=300, n_requests=12_000, seed=123,
                                   bursty=True, mean_interarrival_s=0.3)


@pytest.fixture(scope="module")
def workload():
    cfg = ExperimentConfig(workload=WORKLOAD)
    fileset, trace = cfg.generate()
    return cfg, fileset, trace


def _run(workload, policy, **kwargs):
    cfg, fileset, trace = workload
    return run_simulation(make_policy(policy), fileset, trace, n_disks=6,
                          disk_params=cfg.disk_params, **kwargs)


class TestFaultFreeSnapshot:
    """Two cells of the fault-free comparison, pinned.

    Regenerate with::

        r = run_simulation(make_policy(name), fileset, trace, n_disks=6)
        print(r.total_energy_j, r.array_afr_percent, r.mean_response_s, ...)
    """

    def test_pdc_cell(self, workload):
        r = _run(workload, "pdc")
        assert r.total_energy_j == pytest.approx(189637.55390271635, rel=REL)
        assert r.array_afr_percent == pytest.approx(48.29607502609301, rel=REL)
        assert r.mean_response_s == pytest.approx(0.08559092029231885, rel=REL)
        assert r.p95_response_s == pytest.approx(0.014992844677078664, rel=REL)
        assert r.p99_response_s == pytest.approx(4.008578951977422, rel=REL)
        assert r.total_transitions == 369
        assert r.faults is None

    def test_static_high_cell(self, workload):
        r = _run(workload, "static-high")
        assert r.total_energy_j == pytest.approx(214775.11340099556, rel=REL)
        assert r.array_afr_percent == pytest.approx(10.500139, rel=REL)
        assert r.mean_response_s == pytest.approx(0.008954224781555414, rel=REL)
        assert r.p95_response_s == pytest.approx(0.00970981319198927, rel=REL)
        assert r.p99_response_s == pytest.approx(0.014523795322306798, rel=REL)
        assert r.total_transitions == 0
        assert r.faults is None


class TestFaultInjectionSnapshot:
    """One fault-injected cell: the realized failure schedule and every
    derived reliability metric, pinned.  This is the determinism
    acceptance criterion made executable — same seed, same schedule,
    forever."""

    EXPECTED_SCHEDULE = (
        (0, 194.36058597409854), (1, 650.6190106528347),
        (3, 664.953992359861), (0, 1208.3414333100498),
        (4, 1582.3370958412338), (2, 1905.0888443981435),
        (1, 1956.9970089656258), (2, 2543.0147752856014),
        (5, 2971.5391882393014), (1, 3085.441331804838),
        (2, 3269.8865308458694), (0, 3310.541591207325),
    )

    @pytest.fixture(scope="class")
    def result(self, workload):
        return _run(workload, "read", faults=FaultConfig(seed=3, accel=2e5))

    def test_failure_schedule(self, result):
        sched = result.faults.failure_schedule
        assert [d for d, _ in sched] == [d for d, _ in self.EXPECTED_SCHEDULE]
        for (_, got), (_, want) in zip(sched, self.EXPECTED_SCHEDULE):
            assert got == pytest.approx(want, rel=REL)

    def test_reliability_metrics(self, result):
        f = result.faults
        assert f.rebuilds_completed == 8
        assert f.requests_failed == 4259
        assert f.requests_retried == 8523
        assert f.requests_redirected == 0
        assert f.data_loss_events == 12
        assert f.files_lost == 631
        assert f.availability == pytest.approx(0.7060143506652574, rel=REL)
        assert f.rebuild_energy_j == pytest.approx(8.77064511049366, rel=REL)
        assert f.downtime_s == pytest.approx(6181.9480085294745, rel=REL)

    def test_energy_under_faults(self, result):
        assert result.total_energy_j == pytest.approx(131957.592490413, rel=REL)

    def test_rerun_is_identical(self, workload, result):
        again = _run(workload, "read", faults=FaultConfig(seed=3, accel=2e5))
        assert again.faults == result.faults
        assert again.total_energy_j == result.total_energy_j
        assert again.mean_response_s == result.mean_response_s
