"""Simulation runner: fairness protocol, completeness, registry."""

import numpy as np
import pytest

from repro.experiments.runner import ExperimentConfig, make_policy, run_simulation
from repro.policies.static import StaticHighPolicy
from repro.workload.synthetic import SyntheticWorkloadConfig


class TestMakePolicy:
    @pytest.mark.parametrize("name", ["read", "maid", "pdc", "static-high", "static-low"])
    def test_registry_names(self, name):
        assert make_policy(name).name == name

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("nope")

    def test_config_kwargs_forwarded(self):
        policy = make_policy("read", max_transitions_per_day=7)
        assert policy.config.max_transitions_per_day == 7

    def test_static_takes_no_config(self):
        with pytest.raises(ValueError):
            make_policy("static-high", foo=1)


class TestExperimentConfig:
    def test_generate_deterministic(self):
        cfg = ExperimentConfig(workload=SyntheticWorkloadConfig(
            n_files=50, n_requests=500, seed=1))
        fs1, t1 = cfg.generate()
        fs2, t2 = cfg.generate()
        np.testing.assert_array_equal(t1.file_ids, t2.file_ids)
        np.testing.assert_array_equal(fs1.sizes_mb, fs2.sizes_mb)

    def test_heavy_variant(self):
        cfg = ExperimentConfig(workload=SyntheticWorkloadConfig(n_requests=100))
        heavy = cfg.with_heavy_load(4.0)
        assert heavy.workload.n_requests == 400
        assert heavy.disk_params is cfg.disk_params


class TestRunSimulation:
    def test_all_requests_complete(self, small_workload, params):
        fileset, trace = small_workload
        sub = trace.head(1000)
        result = run_simulation(StaticHighPolicy(), fileset, sub, n_disks=4,
                                disk_params=params)
        assert result.n_requests == 1000
        assert result.duration_s >= sub.duration_s
        assert result.mean_response_s > 0
        assert result.p99_response_s >= result.p95_response_s >= result.mean_response_s * 0.5

    def test_deterministic_repeat(self, small_workload, params):
        fileset, trace = small_workload
        sub = trace.head(800)
        r1 = run_simulation(make_policy("read"), fileset, sub, n_disks=4,
                            disk_params=params)
        r2 = run_simulation(make_policy("read"), fileset, sub, n_disks=4,
                            disk_params=params)
        assert r1.mean_response_s == r2.mean_response_s
        assert r1.total_energy_j == r2.total_energy_j
        assert r1.array_afr_percent == r2.array_afr_percent

    def test_energy_breakdown_sums_to_total(self, small_workload, params):
        fileset, trace = small_workload
        result = run_simulation(make_policy("maid"), fileset, trace.head(1000),
                                n_disks=4, disk_params=params)
        assert sum(result.energy_breakdown_j.values()) == pytest.approx(
            result.total_energy_j)

    def test_per_disk_factors_present(self, small_workload, params):
        fileset, trace = small_workload
        result = run_simulation(make_policy("pdc"), fileset, trace.head(500),
                                n_disks=3, disk_params=params)
        assert len(result.per_disk) == 3
        assert result.array_afr_percent == pytest.approx(
            max(f.afr_percent for f in result.per_disk))

    def test_empty_trace_rejected(self, small_workload, params):
        fileset, trace = small_workload
        with pytest.raises(ValueError):
            run_simulation(StaticHighPolicy(), fileset, trace.head(0),
                           n_disks=2, disk_params=params)

    def test_power_on_energy_floor(self, small_workload, params):
        """Energy can never be below all-disks-idle-low for the duration."""
        fileset, trace = small_workload
        result = run_simulation(make_policy("pdc"), fileset, trace.head(1000),
                                n_disks=4, disk_params=params)
        floor = 4 * params.low.idle_w * result.duration_s
        assert result.total_energy_j >= floor - 1e-6
