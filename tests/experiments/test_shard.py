"""Sharded execution: plan properties, merge determinism, unsharded equality.

The load-bearing claims of :mod:`repro.experiments.shard`:

* the merged result is bit-identical across ``jobs`` values and across
  ``n_shards`` (for the shard-decomposable static policies under
  ``"affinity"`` assignment) — every field, response stats included;
* ``n_shards=1`` through the canonical reducer agrees exactly with the
  plain :func:`~repro.experiments.runner.run_simulation` on all physical
  fields (the percentile fields are histogram-quantized by design);
* sweeps over sharded cells checkpoint and resume per shard.
"""

import numpy as np
import pytest

from repro.experiments.parallel import RunSpec, run_cell
from repro.experiments.runner import make_policy, run_simulation
from repro.experiments.shard import (
    N_RESPONSE_BINS,
    ShardCellSpec,
    ShardPlan,
    histogram_percentile_s,
    merge_shard_results,
    response_bin,
    response_bin_upper_s,
    run_sharded,
)
from repro.workload.cache import cached_generate
from repro.workload.files import FileSet
from repro.workload.synthetic import SyntheticWorkloadConfig

CFG = SyntheticWorkloadConfig(n_files=150, n_requests=2_500, seed=7,
                              mean_interarrival_s=0.02)
#: Fields whose values are defined identically for sharded and plain runs.
PHYSICAL_FIELDS = (
    "policy_name", "n_disks", "n_requests", "duration_s", "total_energy_j",
    "array_afr_percent", "per_disk", "total_transitions", "internal_jobs",
    "energy_breakdown_j", "events_executed",
)
ALL_COMPARED_FIELDS = PHYSICAL_FIELDS + (
    "mean_response_s", "p95_response_s", "p99_response_s",
)


def _strip_sharding(result):
    """Policy detail minus the per-plan sharding block (differs by design)."""
    return {k: v for k, v in result.policy_detail.items() if k != "sharding"}


class TestShardPlan:
    def test_divisibility_required(self):
        with pytest.raises(ValueError):
            ShardPlan(n_disks=10, n_shards=4)

    def test_bad_assignment_rejected(self):
        with pytest.raises(ValueError):
            ShardPlan(n_disks=8, n_shards=2, assignment="hash")

    def test_round_robin_assignment(self):
        plan = ShardPlan(n_disks=6, n_shards=3, assignment="round-robin")
        fileset = FileSet([1.0] * 7)
        shard_of = plan.shard_of_files(fileset)
        assert shard_of.tolist() == [0, 1, 2, 0, 1, 2, 0]

    def test_affinity_follows_size_ranked_disks(self):
        # file k in size order goes to global disk k % n_disks; its shard
        # is that disk's contiguous group
        plan = ShardPlan(n_disks=4, n_shards=2, assignment="affinity")
        fileset = FileSet([4.0, 1.0, 3.0, 2.0, 5.0])
        order = fileset.ids_sorted_by_size()
        shard_of = plan.shard_of_files(fileset)
        for rank, fid in enumerate(order.tolist()):
            assert shard_of[fid] == (rank % 4) // 2

    def test_every_shard_gets_contiguous_disks(self):
        plan = ShardPlan(n_disks=12, n_shards=3)
        assert plan.disks_per_shard == 4
        assert [plan.disk_offset(s) for s in range(3)] == [0, 4, 8]

    def test_shard_spec_validation(self):
        plan = ShardPlan(n_disks=4, n_shards=2)
        with pytest.raises(ValueError):
            ShardCellSpec(plan, 2)
        with pytest.raises(ValueError):
            ShardCellSpec(plan, 0, chunk_size=0)


class TestResponseHistogram:
    def test_bin_edges_cover_clamped_range(self):
        assert response_bin(0.0) == 0
        assert response_bin(1e-9) == 0
        assert response_bin(1e3) == N_RESPONSE_BINS - 1
        mid = response_bin(0.01)
        assert 0 < mid < N_RESPONSE_BINS - 1
        assert response_bin_upper_s(mid) >= 0.01

    def test_bins_are_monotone_in_response(self):
        values = [1e-5, 1e-3, 0.01, 0.1, 1.0, 10.0]
        bins = [response_bin(v) for v in values]
        assert bins == sorted(bins)

    def test_percentile_upper_edge_rule(self):
        counts = np.zeros(N_RESPONSE_BINS, dtype=np.int64)
        counts[100] = 90
        counts[200] = 10
        assert histogram_percentile_s(counts, 50.0) == response_bin_upper_s(100)
        assert histogram_percentile_s(counts, 95.0) == response_bin_upper_s(200)
        assert histogram_percentile_s(counts, 100.0) == response_bin_upper_s(200)

    def test_percentile_rejects_empty(self):
        with pytest.raises(ValueError):
            histogram_percentile_s(np.zeros(N_RESPONSE_BINS, dtype=np.int64), 95.0)


class TestShardedEqualsUnsharded:
    @pytest.mark.parametrize("policy", ["static-high", "static-low"])
    def test_static_family_bit_identical_across_shardings(self, policy):
        base, _ = run_sharded(policy, CFG, n_disks=8, n_shards=1)
        for n_shards in (2, 4, 8):
            sharded, _ = run_sharded(policy, CFG, n_disks=8, n_shards=n_shards)
            for f in ALL_COMPARED_FIELDS:
                assert getattr(sharded, f) == getattr(base, f), \
                    f"{f} diverged at n_shards={n_shards}"
            assert _strip_sharding(sharded) == _strip_sharding(base)

    def test_single_shard_matches_plain_runner_physically(self):
        fileset, trace = cached_generate(CFG)
        plain = run_simulation(make_policy("static-high"), fileset, trace,
                               n_disks=6)
        sharded, summary = run_sharded("static-high", CFG, n_disks=6,
                                       n_shards=1)
        assert summary is None
        for f in PHYSICAL_FIELDS:
            assert getattr(sharded, f) == getattr(plain, f), f
        # responses: the mean reduces to the same sum; percentiles are
        # histogram-quantized, so agree to one bin (~0.9 %)
        assert sharded.mean_response_s == pytest.approx(plain.mean_response_s,
                                                        rel=1e-12)
        assert sharded.p95_response_s == pytest.approx(plain.p95_response_s,
                                                       rel=0.01)
        assert sharded.p99_response_s == pytest.approx(plain.p99_response_s,
                                                       rel=0.01)

    def test_jobs_do_not_change_the_merge(self):
        serial, _ = run_sharded("static-high", CFG, n_disks=8, n_shards=4,
                                jobs=1)
        pooled, _ = run_sharded("static-high", CFG, n_disks=8, n_shards=4,
                                jobs=3)
        assert serial == pooled

    def test_chunk_size_does_not_change_the_merge(self):
        coarse, _ = run_sharded("static-high", CFG, n_disks=8, n_shards=2,
                                chunk_size=100_000)
        fine, _ = run_sharded("static-high", CFG, n_disks=8, n_shards=2,
                              chunk_size=97)
        assert coarse == fine

    def test_round_robin_assignment_still_conserves_requests(self):
        merged, _ = run_sharded("static-high", CFG, n_disks=8, n_shards=4,
                                assignment="round-robin")
        assert merged.n_requests == CFG.n_requests
        assert merged.total_energy_j > 0.0
        sharding = merged.policy_detail["sharding"]
        assert sum(sharding["shard_requests"]) == CFG.n_requests


class TestShardCellMechanics:
    def test_fault_injection_rejected(self):
        from repro.faults import FaultConfig

        plan = ShardPlan(n_disks=4, n_shards=2)
        spec = RunSpec(policy="static-high", n_disks=4, workload=CFG,
                       faults=FaultConfig(seed=1),
                       shard=ShardCellSpec(plan, 0))
        with pytest.raises(ValueError, match="fault injection"):
            run_cell(spec)

    def test_plan_mismatch_rejected(self):
        plan = ShardPlan(n_disks=8, n_shards=2)
        spec = RunSpec(policy="static-high", n_disks=4, workload=CFG,
                       shard=ShardCellSpec(plan, 0))
        with pytest.raises(ValueError, match="n_disks"):
            run_cell(spec)

    def test_zero_request_shard_idles_until_global_end(self):
        # 3 requests can reach at most 3 of the 4 shards, so at least one
        # shard dispatches nothing — its disk must still account idle
        # energy over the full global horizon
        tiny = SyntheticWorkloadConfig(n_files=8, n_requests=3, seed=3,
                                       mean_interarrival_s=0.01)
        merged, _ = run_sharded("static-high", tiny, n_disks=4, n_shards=4)
        assert merged.n_requests == 3
        sharding = merged.policy_detail["sharding"]
        assert 0 in sharding["shard_requests"]
        # every disk (served or idle) integrates the whole duration
        for factors in merged.per_disk:
            assert factors.afr_percent > 0.0
        idle_energy = merged.energy_breakdown_j.get("idle_high", 0.0)
        assert idle_energy > 0.0
        # and the merged result matches the unsharded reference exactly
        base, _ = run_sharded("static-high", tiny, n_disks=4, n_shards=1)
        for f in ALL_COMPARED_FIELDS:
            assert getattr(merged, f) == getattr(base, f), f

    def test_file_less_shard_rejected(self):
        # 2 files over 4 shards: some shard owns nothing -> clear error
        tiny = SyntheticWorkloadConfig(n_files=2, n_requests=100, seed=3)
        with pytest.raises(Exception, match="owns no files"):
            run_sharded("static-high", tiny, n_disks=4, n_shards=4)

    def test_merge_requires_complete_shard_set(self):
        plan = ShardPlan(n_disks=4, n_shards=2)
        spec = RunSpec(policy="static-high", n_disks=4, workload=CFG,
                       shard=ShardCellSpec(plan, 0))
        partial = run_cell(spec)
        with pytest.raises(ValueError, match="one result per shard"):
            merge_shard_results([partial])  # type: ignore[list-item]

    def test_shard_results_checkpoint_and_resume(self, tmp_path):
        ckpt = tmp_path / "shards.ckpt"
        first, summary1 = run_sharded("static-high", CFG, n_disks=8,
                                      n_shards=4, checkpoint=str(ckpt))
        assert summary1 is not None and summary1.cells_run == 4
        second, summary2 = run_sharded("static-high", CFG, n_disks=8,
                                       n_shards=4, checkpoint=str(ckpt))
        assert summary2 is not None
        assert summary2.checkpoint_hits == 4
        assert summary2.cells_run == 0
        assert first == second

    def test_resume_is_chunk_size_independent(self, tmp_path):
        # the checkpoint key excludes chunk size: shards finished under
        # one --stream-chunk must be reused under another
        ckpt = tmp_path / "shards.ckpt"
        first, _ = run_sharded("static-high", CFG, n_disks=8, n_shards=2,
                               chunk_size=1000, checkpoint=str(ckpt))
        second, summary = run_sharded("static-high", CFG, n_disks=8,
                                      n_shards=2, chunk_size=77,
                                      checkpoint=str(ckpt))
        assert summary is not None and summary.checkpoint_hits == 2
        assert first == second


class TestFigure7Sharded:
    def test_figure7_sharded_equals_unsharded_for_static(self):
        from repro.experiments.figures import figure7_comparison
        from repro.experiments.runner import ExperimentConfig

        config = ExperimentConfig(workload=CFG)
        kw = dict(config=config, disk_counts=[4, 8],
                  policies=["static-high", "static-low"])
        plain = figure7_comparison(**kw)
        sharded = figure7_comparison(**kw, shards=2)
        for policy in kw["policies"]:
            for a, b in zip(plain.results[policy], sharded.results[policy]):
                for f in ("total_energy_j", "array_afr_percent", "per_disk",
                          "duration_s", "total_transitions"):
                    assert getattr(a, f) == getattr(b, f), (policy, f)

    def test_figure7_sharded_validates_divisibility(self):
        from repro.experiments.figures import figure7_comparison
        from repro.experiments.runner import ExperimentConfig

        with pytest.raises(ValueError, match="divide"):
            figure7_comparison(ExperimentConfig(workload=CFG),
                               disk_counts=[6], policies=["static-high"],
                               shards=4)
