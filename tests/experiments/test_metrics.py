"""RequestMetrics and SimulationResult."""

import numpy as np
import pytest

from repro.disk.drive import Job
from repro.experiments.metrics import RequestMetrics, SimulationResult
from repro.press.model import DiskFactors
from repro.workload.request import Request


def completed_job(arrival, start, end, fid=0):
    req = Request(arrival, fid, 1.0)
    req.service_start = start
    req.completion_time = end
    job = Job.for_request(req)
    return job


class TestRequestMetrics:
    def test_records_response_and_wait(self):
        m = RequestMetrics(expected=2)
        m.on_complete(completed_job(0.0, 1.0, 3.0))
        m.on_complete(completed_job(1.0, 1.0, 2.0))
        assert m.completed == 2
        assert m.all_done
        np.testing.assert_allclose(m.response_times_s, [3.0, 1.0])
        np.testing.assert_allclose(m.waiting_times_s, [1.0, 0.0])
        assert m.mean_response_s() == pytest.approx(2.0)

    def test_internal_jobs_ignored(self):
        m = RequestMetrics(expected=1)
        m.on_complete(Job.internal_transfer(5.0))
        assert m.completed == 0
        assert not m.all_done

    def test_percentiles(self):
        m = RequestMetrics(expected=100)
        for i in range(100):
            m.on_complete(completed_job(0.0, 0.0, float(i + 1)))
        assert m.percentile_response_s(50) == pytest.approx(50.5)
        assert m.percentile_response_s(99) > m.percentile_response_s(50)

    def test_overflow_rejected(self):
        m = RequestMetrics(expected=1)
        m.on_complete(completed_job(0.0, 0.0, 1.0))
        with pytest.raises(ValueError):
            m.on_complete(completed_job(0.0, 0.0, 1.0))

    def test_empty_mean_rejected(self):
        with pytest.raises(ValueError):
            RequestMetrics(expected=0).mean_response_s()


class TestSimulationResult:
    @pytest.fixture
    def result(self):
        factors = (
            DiskFactors(0, 50.0, 10.0, 0.0, 8.0),
            DiskFactors(1, 45.0, 30.0, 100.0, 11.5),
        )
        return SimulationResult(
            policy_name="test", n_disks=2, n_requests=100, duration_s=3600.0,
            mean_response_s=0.01, p95_response_s=0.02, p99_response_s=0.05,
            total_energy_j=7.2e6, array_afr_percent=11.5, per_disk=factors,
            total_transitions=5, internal_jobs=3,
        )

    def test_energy_kwh(self, result):
        assert result.energy_kwh == pytest.approx(2.0)

    def test_worst_disk(self, result):
        assert result.worst_disk.disk_id == 1

    def test_summary_row_keys(self, result):
        row = result.summary_row()
        assert row["policy"] == "test"
        assert row["disks"] == 2
        assert row["AFR_%"] == 11.5
        assert row["transitions"] == 5
