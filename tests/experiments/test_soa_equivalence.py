"""Cross-backend equivalence: the SoA kernel's hard gate.

The struct-of-arrays backend promises *bit-identical*
:class:`~repro.experiments.metrics.SimulationResult` values versus the
object backend at a fixed seed — not "close", identical.  This suite is
the enforcement: fixed-seed golden comparisons across policies, the
faults-on fallback, sampler byte-equivalence, the backend-resolution
rules, and a hypothesis sweep over random small workloads.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.disk.state as disk_state
import repro.obs.sampler as sampler_mod
from repro.experiments.runner import (
    make_policy,
    resolve_kernel_backend,
    run_simulation,
)
from repro.faults import FaultConfig
from repro.obs import ObsConfig
from repro.workload.synthetic import SyntheticWorkloadConfig, WorldCupLikeWorkload

POLICIES = ("read", "maid", "pdc", "static-high")


@pytest.fixture(scope="module")
def workload():
    cfg = SyntheticWorkloadConfig(n_files=200, n_requests=4_000, seed=17,
                                  bursty=True, mean_interarrival_s=0.05)
    return WorldCupLikeWorkload(cfg).generate()


class TestBackendResolution:
    def test_auto_prefers_soa(self):
        assert resolve_kernel_backend("auto", faults_on=False,
                                      tracing_on=False) == "soa"

    def test_auto_falls_back_for_faults_and_tracing(self):
        assert resolve_kernel_backend("auto", faults_on=True,
                                      tracing_on=False) == "object"
        assert resolve_kernel_backend("auto", faults_on=False,
                                      tracing_on=True) == "object"

    def test_explicit_soa_still_falls_back_for_faults(self):
        assert resolve_kernel_backend("soa", faults_on=True,
                                      tracing_on=False) == "object"

    def test_explicit_object_always_object(self):
        assert resolve_kernel_backend("object", faults_on=False,
                                      tracing_on=False) == "object"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            resolve_kernel_backend("gpu", faults_on=False, tracing_on=False)


class TestBitIdenticalResults:
    """The gate itself: identical results, per field, at a fixed seed."""

    @pytest.mark.parametrize("policy", POLICIES)
    def test_policy_cell_is_bit_identical(self, workload, policy):
        fileset, trace = workload
        obj = run_simulation(make_policy(policy), fileset, trace, n_disks=6,
                             kernel_backend="object")
        soa = run_simulation(make_policy(policy), fileset, trace, n_disks=6,
                             kernel_backend="soa")
        assert obj.kernel_backend == "object"
        assert soa.kernel_backend == "soa"
        # dataclass equality covers every compared field: response times,
        # energy (total and breakdown), PRESS per-disk factors, AFR,
        # transition and job counters, policy detail
        assert soa == obj
        # belt and braces on the headline scalars (exact, not approx)
        assert soa.total_energy_j == obj.total_energy_j
        assert soa.array_afr_percent == obj.array_afr_percent
        assert soa.mean_response_s == obj.mean_response_s
        assert soa.energy_breakdown_j == obj.energy_breakdown_j

    def test_per_disk_press_factors_identical(self, workload):
        fileset, trace = workload
        obj = run_simulation(make_policy("maid"), fileset, trace, n_disks=6,
                             kernel_backend="object")
        soa = run_simulation(make_policy("maid"), fileset, trace, n_disks=6,
                             kernel_backend="soa")
        for f_obj, f_soa in zip(obj.per_disk, soa.per_disk):
            assert f_soa.mean_temperature_c == f_obj.mean_temperature_c
            assert f_soa.utilization_percent == f_obj.utilization_percent
            assert f_soa.transitions_per_day == f_obj.transitions_per_day
            assert f_soa.afr_percent == f_obj.afr_percent

    def test_faults_on_soa_request_falls_back_and_matches(self, workload):
        fileset, trace = workload
        faults = FaultConfig(seed=3, accel=2e6, hazard_refresh_s=5.0,
                             repair_delay_s=20.0)
        obj = run_simulation(make_policy("read"), fileset, trace, n_disks=4,
                             faults=faults, kernel_backend="object")
        soa = run_simulation(make_policy("read"), fileset, trace, n_disks=4,
                             faults=faults, kernel_backend="soa")
        assert soa.kernel_backend == "object"  # fallback recorded honestly
        assert soa == obj
        assert soa.faults == obj.faults


class TestSamplerEquivalence:
    def test_sampled_rows_identical_across_backends(self, workload):
        fileset, trace = workload
        runs = {}
        for backend in ("object", "soa"):
            result = run_simulation(make_policy("maid"), fileset, trace,
                                    n_disks=6, obs=ObsConfig(sample_interval_s=5.0),
                                    kernel_backend=backend)
            assert result.kernel_backend == backend  # sampling keeps SoA
            runs[backend] = result
        ts_obj, ts_soa = runs["object"].timeseries, runs["soa"].timeseries
        assert ts_obj is not None and ts_soa is not None
        assert len(ts_soa.rows) > 0
        assert ts_soa.rows == ts_obj.rows
        # byte-identity of the exported form, not just == (guards against
        # e.g. numpy scalars leaking into the SoA rows and printing alike)
        for row_o, row_s in zip(ts_obj.rows, ts_soa.rows):
            assert repr(row_s) == repr(row_o)
            assert [type(v) for v in row_s] == [type(v) for v in row_o]

    def test_name_tables_stay_in_sync_with_obs_copies(self):
        # the obs layer may not import repro.disk (layer contract), so it
        # carries duplicated name tables — pin them to the originals
        assert sampler_mod._SPEED_NAMES == disk_state.SPEED_NAMES
        assert sampler_mod._PHASE_NAMES == disk_state.PHASE_NAMES


class TestPropertyEquivalence:
    """Random small workloads: the backends never disagree."""

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1),
           n_disks=st.integers(min_value=2, max_value=8),
           policy=st.sampled_from(("read", "maid", "pdc")))
    def test_backends_agree_on_random_workloads(self, seed, n_disks, policy):
        cfg = SyntheticWorkloadConfig(n_files=60, n_requests=400, seed=seed,
                                      mean_interarrival_s=0.05)
        fileset, trace = WorldCupLikeWorkload(cfg).generate()
        obj = run_simulation(make_policy(policy), fileset, trace,
                             n_disks=n_disks, kernel_backend="object")
        soa = run_simulation(make_policy(policy), fileset, trace,
                             n_disks=n_disks, kernel_backend="soa")
        assert soa == obj
