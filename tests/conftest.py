"""Shared fixtures: small deterministic workloads and device models.

Everything here is sized for sub-second test runs; the full-scale
paper-shaped sweeps live in ``benchmarks/``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.disk.parameters import TwoSpeedDiskParams, cheetah_two_speed
from repro.press.model import PRESSModel
from repro.sim.engine import Simulator
from repro.workload.files import FileSet
from repro.workload.synthetic import SyntheticWorkloadConfig, WorldCupLikeWorkload
from repro.workload.trace import Trace


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture(scope="session")
def params() -> TwoSpeedDiskParams:
    return cheetah_two_speed()


@pytest.fixture(scope="session")
def press() -> PRESSModel:
    return PRESSModel()


@pytest.fixture(scope="session")
def tiny_fileset() -> FileSet:
    """Eight files with round sizes for exact-arithmetic tests."""
    return FileSet(np.array([1.0, 2.0, 4.0, 8.0, 1.0, 2.0, 4.0, 8.0]))


@pytest.fixture(scope="session")
def small_workload() -> tuple[FileSet, Trace]:
    """A deterministic 5k-request WC-like workload (seeded)."""
    cfg = SyntheticWorkloadConfig(n_files=120, n_requests=5_000, seed=42,
                                  mean_interarrival_s=0.02)
    return WorldCupLikeWorkload(cfg).generate()


@pytest.fixture(scope="session")
def small_config() -> SyntheticWorkloadConfig:
    return SyntheticWorkloadConfig(n_files=120, n_requests=5_000, seed=42,
                                   mean_interarrival_s=0.02)
