"""CTMC reliability: closed-form cross-check, degeneracy, and bounds.

The mirror property test is the PR's acceptance criterion made
executable: the birth-death chain with ``unit_size=2, tolerance=1``
must reproduce Gibson's closed-form RAID-1 MTTDL
``(3*lam + mu) / (2*lam^2)`` across the whole physically plausible
(lam, mu) range — agreement here certifies the generator matrix, the
solver, and the rate conventions all at once.  Where the two *models*
diverge (max-AFR vs CTMC) is documented in DESIGN.md section 14 and
pinned by ``test_none_degenerates_to_per_disk_rate``.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.press.hazard import annual_failure_rate_to_rate
from repro.redundancy.ctmc import (
    HOURS_PER_YEAR,
    assess_scheme,
    loss_probability,
    mirror_mttdl_closed_form,
    mttdl_years,
)
from repro.redundancy.scheme import SCHEME_PRESETS, mirror_scheme

#: Physically plausible ranges: per-disk failure rates from pampered
#: (0.1%/yr) to abusive (~60%/yr AFR), rebuilds from 20 minutes to two
#: weeks.
LAMBDAS = st.floats(min_value=1e-3, max_value=1.0)
MUS = st.floats(min_value=HOURS_PER_YEAR / (14 * 24), max_value=HOURS_PER_YEAR / 0.33)


class TestMirrorClosedForm:
    @given(lam=LAMBDAS, mu=MUS)
    @settings(max_examples=200, deadline=None)
    def test_ctmc_matches_gibson_raid1_formula(self, lam, mu):
        ctmc = mttdl_years(unit_size=2, tolerance=1, lam=lam, mu=mu)
        closed = mirror_mttdl_closed_form(lam, mu)
        # 1e-6 relative: the generator solve loses a few digits when
        # mu/lam is extreme (~1e7 at the range corners), but the models
        # are identical — tighter points are pinned at 1e-9 below
        assert ctmc == pytest.approx(closed, rel=1e-6)

    def test_at_the_papers_operating_point(self):
        # PRESS-style 10.5% AFR, a 10-minute accelerated-run rebuild
        lam = annual_failure_rate_to_rate(10.5)
        mu = HOURS_PER_YEAR / (1.0 / 6.0)
        assert mttdl_years(2, 1, lam, mu) == pytest.approx(
            mirror_mttdl_closed_form(lam, mu), rel=1e-9)

    def test_no_repair_limit(self):
        # mu = 0: MTTDL of the pure-death chain is 1/(2 lam) + 1/lam
        lam = 0.5
        assert mttdl_years(2, 1, lam, 0.0) == pytest.approx(
            1.0 / (2.0 * lam) + 1.0 / lam, rel=1e-12)
        assert mirror_mttdl_closed_form(lam, 0.0) == pytest.approx(
            3.0 / (2.0 * lam), rel=1e-12)


class TestDegeneracy:
    def test_none_degenerates_to_per_disk_rate(self):
        """scheme=none: MTTDL is exactly the per-disk failure time, so
        the CTMC and the legacy per-disk-AFR convention agree by
        construction (the documented point of contact between the two
        loss models)."""
        afr = 10.5
        res = assess_scheme(SCHEME_PRESETS["none"], [afr] * 8,
                            rebuild_hours=12.0)
        lam = annual_failure_rate_to_rate(afr)
        assert res.mttdl_unit_years == pytest.approx(1.0 / lam, rel=1e-12)
        assert res.mttdl_array_years == pytest.approx(1.0 / (8 * lam), rel=1e-12)
        assert res.loss_events_per_year == pytest.approx(8 * lam, rel=1e-12)

    def test_zero_afr_never_loses_data(self):
        res = assess_scheme(SCHEME_PRESETS["block4-2"], [0.0] * 8,
                            rebuild_hours=12.0)
        assert math.isinf(res.mttdl_array_years)
        assert res.p_loss_array == 0.0
        assert res.loss_events_per_year == 0.0


class TestLossProbability:
    @given(lam=LAMBDAS, mu=MUS, years=st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=50, deadline=None)
    def test_bounds_and_consistency(self, lam, mu, years):
        p = loss_probability(2, 1, lam, mu, years)
        assert 0.0 <= p <= 1.0
        # more time, no less risk
        assert loss_probability(2, 1, lam, mu, 2.0 * years) >= p - 1e-12

    def test_matches_exponential_approximation_when_rare(self):
        # for MTTDL >> mission, P(loss) ~ T / MTTDL
        lam = annual_failure_rate_to_rate(10.5)
        mu = HOURS_PER_YEAR / 12.0
        mttdl = mttdl_years(2, 1, lam, mu)
        p = loss_probability(2, 1, lam, mu, 1.0)
        assert p == pytest.approx(1.0 / mttdl, rel=5e-2)

    def test_zero_horizon_and_zero_rate(self):
        assert loss_probability(2, 1, 0.5, 100.0, 0.0) == 0.0
        assert loss_probability(2, 1, 0.0, 100.0, 5.0) == 0.0


class TestAssessScheme:
    def test_redundancy_beats_bare_disks_by_orders_of_magnitude(self):
        afrs = [10.5] * 8
        bare = assess_scheme(SCHEME_PRESETS["none"], afrs, rebuild_hours=12.0)
        coded = assess_scheme(SCHEME_PRESETS["block4-2"], afrs,
                              rebuild_hours=12.0)
        assert coded.mttdl_array_years > 1e3 * bare.mttdl_array_years
        assert coded.p_loss_array < 1e-3 * bare.p_loss_array

    def test_mirror_units_are_replica_sets(self):
        res = assess_scheme(SCHEME_PRESETS["mirror3dc"], [5.0] * 9,
                            rebuild_hours=6.0)
        assert res.n_units == 3
        assert res.unit_size == 3
        assert res.tolerance == 2

    def test_unit_rate_is_max_of_members(self):
        # PRESS's least-reliable-disk convention applied per unit: the
        # worst member's rate drives its whole unit
        lop = [1.0, 20.0]
        res = assess_scheme(mirror_scheme(2), lop, rebuild_hours=12.0)
        lam = annual_failure_rate_to_rate(20.0)
        mu = HOURS_PER_YEAR / 12.0
        assert res.failure_rate_per_year == pytest.approx(lam, rel=1e-12)
        assert res.mttdl_unit_years == pytest.approx(
            mirror_mttdl_closed_form(lam, mu), rel=1e-9)

    def test_slower_rebuild_is_riskier(self):
        afrs = [10.5] * 8
        fast = assess_scheme(SCHEME_PRESETS["block4-2"], afrs, rebuild_hours=1.0)
        slow = assess_scheme(SCHEME_PRESETS["block4-2"], afrs, rebuild_hours=48.0)
        assert fast.mttdl_array_years > slow.mttdl_array_years
        assert fast.p_loss_array < slow.p_loss_array

    def test_array_mttdl_pools_units(self):
        one = assess_scheme(mirror_scheme(2), [10.0] * 2, rebuild_hours=12.0)
        four = assess_scheme(mirror_scheme(2), [10.0] * 8, rebuild_hours=12.0)
        assert four.n_units == 4
        assert four.mttdl_array_years == pytest.approx(
            one.mttdl_array_years / 4.0, rel=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            assess_scheme(SCHEME_PRESETS["mirror2"], [5.0] * 2, rebuild_hours=0.0)
        with pytest.raises(ValueError):
            assess_scheme(SCHEME_PRESETS["mirror2"], [], rebuild_hours=1.0)
        with pytest.raises(ValueError):
            # array not a multiple of the group size
            assess_scheme(SCHEME_PRESETS["block4-2"], [5.0] * 6, rebuild_hours=1.0)
