"""RedundancyGroups geometry: membership, domains, reconstruction, health."""

import pytest

from repro.redundancy.groups import GroupHealth, RedundancyGroups
from repro.redundancy.scheme import SCHEME_PRESETS, mirror_scheme


def up_except(*down):
    downset = set(down)
    return lambda d: d not in downset


class TestMembership:
    def test_groups_are_contiguous_blocks(self):
        g = RedundancyGroups(SCHEME_PRESETS["block4-2"], 16)
        assert g.n_groups == 2
        assert list(g.members(0)) == list(range(0, 8))
        assert list(g.members(1)) == list(range(8, 16))
        assert g.group_of(7) == 0 and g.group_of(8) == 1

    def test_array_must_be_multiple_of_group_size(self):
        with pytest.raises(ValueError):
            RedundancyGroups(SCHEME_PRESETS["block4-2"], 12)

    def test_domains_are_array_wide(self):
        # block4-2: one disk per domain per group, so domain d holds the
        # d-th member of every group
        g = RedundancyGroups(SCHEME_PRESETS["block4-2"], 16)
        assert list(g.disks_in_domain(0)) == [0, 8]
        assert list(g.disks_in_domain(7)) == [7, 15]
        assert g.domain_of(3) == 3 and g.domain_of(11) == 3

    def test_mirror3dc_copy_per_domain(self):
        # each file's three copies land one per datacenter domain
        g = RedundancyGroups(SCHEME_PRESETS["mirror3dc"], 9)
        for primary in range(9):
            copies = g.copy_disks(primary)
            assert len(copies) == 3
            assert sorted(g.domain_of(c) for c in copies) == [0, 1, 2]


class TestReconstruction:
    def test_parity_needs_k_survivors(self):
        g = RedundancyGroups(SCHEME_PRESETS["block4-2"], 8)
        targets = g.reconstruct_targets(0, up_except(0))
        assert targets == (1, 2, 3, 4, 5, 6)  # k=6 lowest live, not primary
        # two down: still k survivors
        assert len(g.reconstruct_targets(0, up_except(0, 3))) == 6
        # three down: group pierced, nothing to reconstruct from
        assert g.reconstruct_targets(0, up_except(0, 3, 5)) == ()

    def test_mirror_uses_first_live_copy(self):
        g = RedundancyGroups(mirror_scheme(3), 3)
        assert g.reconstruct_targets(0, up_except(0)) == (1,)
        assert g.reconstruct_targets(0, up_except(0, 1)) == (2,)
        assert g.reconstruct_targets(0, up_except(0, 1, 2)) == ()

    def test_servable_tracks_reconstructability(self):
        g = RedundancyGroups(SCHEME_PRESETS["block4-2"], 8)
        assert g.servable(0, up_except(1, 2))   # primary itself is up
        assert g.servable(0, up_except(0, 1))   # exactly k=6 survivors
        assert not g.servable(0, up_except(0, 1, 2))

    def test_rebuild_sources_match_reconstruct_targets(self):
        g = RedundancyGroups(SCHEME_PRESETS["block4-2"], 8)
        assert g.rebuild_sources(2, up_except(2)) == \
            g.reconstruct_targets(2, up_except(2))


class TestHealth:
    def test_parity_ladder(self):
        g = RedundancyGroups(SCHEME_PRESETS["block4-2"], 8)
        assert g.health_of(0, up_except()) is GroupHealth.HEALTHY
        assert g.health_of(0, up_except(0)) is GroupHealth.DEGRADED
        assert g.health_of(0, up_except(0, 1)) is GroupHealth.CRITICAL
        assert g.health_of(0, up_except(0, 1, 2)) is GroupHealth.LOST

    def test_two_way_mirror_has_no_slack(self):
        g = RedundancyGroups(mirror_scheme(2), 2)
        assert g.health_of(0, up_except(0)) is GroupHealth.CRITICAL
        assert g.health_of(0, up_except(0, 1)) is GroupHealth.LOST

    def test_mirror3dc_survives_a_whole_domain(self):
        g = RedundancyGroups(SCHEME_PRESETS["mirror3dc"], 9)
        domain0 = tuple(g.disks_in_domain(0))
        health = g.health_of(0, up_except(*domain0))
        # one copy of everything gone, two live everywhere: degraded
        assert health is GroupHealth.DEGRADED
        for primary in domain0:
            assert g.servable(primary, up_except(*domain0))

    def test_mirror_lost_only_when_a_whole_replica_set_dies(self):
        g = RedundancyGroups(SCHEME_PRESETS["mirror3dc"], 9)
        # copies of local index 0 live at {0, 3, 6} (stride 3)
        assert g.copy_disks(0) == (0, 3, 6)
        # three failures spread across sets: every set keeps two copies
        assert g.health_of(0, up_except(0, 4, 8)) is GroupHealth.DEGRADED
        # the same count aimed at one set kills it
        assert g.health_of(0, up_except(0, 3, 6)) is GroupHealth.LOST

    def test_snapshot_is_per_group(self):
        g = RedundancyGroups(SCHEME_PRESETS["block4-2"], 16)
        snap = g.health_snapshot(up_except(0, 9, 10))
        assert snap == (GroupHealth.DEGRADED, GroupHealth.CRITICAL)
