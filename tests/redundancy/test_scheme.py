"""GroupScheme presets, derived geometry, and the --redundancy parser."""

import pytest

from repro.redundancy.scheme import (
    SCHEME_PRESETS,
    GroupScheme,
    mirror_scheme,
    parse_redundancy_spec,
)


class TestPresets:
    def test_block4_2_geometry(self):
        s = SCHEME_PRESETS["block4-2"]
        assert s.kind == "parity"
        assert (s.group_size, s.data_shards) == (8, 6)
        assert s.fault_tolerance == 2
        assert s.fault_domains == 8
        assert s.storage_overhead == 1.5
        assert s.loss_unit_size == 8
        assert s.loss_units_per_group == 1
        assert s.reconstruct_legs == 6

    def test_mirror3dc_geometry(self):
        s = SCHEME_PRESETS["mirror3dc"]
        assert s.kind == "mirror"
        assert (s.group_size, s.replicas, s.fault_domains) == (9, 3, 3)
        assert s.fault_tolerance == 2
        assert s.storage_overhead == 3.0
        # three independent replica sets of three disks each
        assert s.loss_unit_size == 3
        assert s.loss_units_per_group == 3
        assert s.reconstruct_legs == 1

    def test_none_is_not_redundant(self):
        s = SCHEME_PRESETS["none"]
        assert not s.is_redundant
        assert s.fault_tolerance == 0

    def test_every_preset_survives_its_declared_tolerance(self):
        for name, s in SCHEME_PRESETS.items():
            assert s.name == name
            if name != "none":
                assert s.is_redundant, name
                assert s.fault_tolerance >= 1, name

    def test_mirror_family(self):
        s = mirror_scheme(5)
        assert s.name == "mirror5"
        assert s.group_size == 5 and s.replicas == 5
        assert s.fault_tolerance == 4
        with pytest.raises(ValueError):
            mirror_scheme(1)


class TestValidation:
    def test_parity_needs_k_below_n(self):
        with pytest.raises(ValueError):
            GroupScheme(name="bad", kind="parity", group_size=4,
                        data_shards=4, replicas=1, fault_domains=4,
                        storage_overhead=1.0)

    def test_mirror_group_must_divide_into_replica_sets(self):
        with pytest.raises(ValueError):
            GroupScheme(name="bad", kind="mirror", group_size=7,
                        data_shards=1, replicas=2, fault_domains=1,
                        storage_overhead=2.0)

    def test_domains_must_divide_group(self):
        with pytest.raises(ValueError):
            GroupScheme(name="bad", kind="parity", group_size=8,
                        data_shards=6, replicas=1, fault_domains=3,
                        storage_overhead=1.5)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            GroupScheme(name="bad", kind="raid", group_size=2,
                        data_shards=1, replicas=2, fault_domains=1,
                        storage_overhead=2.0)


class TestParser:
    @pytest.mark.parametrize("name", sorted(SCHEME_PRESETS))
    def test_presets_round_trip(self, name):
        assert parse_redundancy_spec(name) is SCHEME_PRESETS[name]

    def test_mirror_n_family(self):
        assert parse_redundancy_spec("mirror4").replicas == 4
        assert parse_redundancy_spec(" MIRROR2 ").name == "mirror2"

    def test_unknown_scheme_names_the_candidates(self):
        with pytest.raises(ValueError, match="block4-2"):
            parse_redundancy_spec("raid6")

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            parse_redundancy_spec("   ")

    def test_mirror1_rejected(self):
        with pytest.raises(ValueError):
            parse_redundancy_spec("mirror1")
