"""Instrument primitives: counters, gauges, histograms, the registry."""

import math

import pytest

from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               DEFAULT_LATENCY_BUCKETS_S)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("jobs")
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("jobs").inc(-1.0)

    def test_nan_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("jobs").inc(math.nan)

    def test_as_dict(self):
        c = Counter("jobs")
        c.inc(4)
        assert c.as_dict() == {"type": "counter", "value": 4.0}


class TestGauge:
    def test_starts_nan_then_last_write_wins(self):
        g = Gauge("temp")
        assert math.isnan(g.value)
        g.set(40.0)
        g.set(35.5)
        assert g.value == 35.5

    def test_as_dict(self):
        g = Gauge("temp")
        g.set(1)
        assert g.as_dict() == {"type": "gauge", "value": 1.0}


class TestHistogram:
    def test_bucketing_and_exact_stats(self):
        h = Histogram("lat", bounds=(1.0, 10.0))
        for v in (0.5, 1.0, 5.0, 50.0):
            h.observe(v)
        # <=1.0 gets 0.5 and 1.0; <=10.0 gets 5.0; overflow gets 50.0
        assert h.bucket_counts == [2, 1, 1]
        assert h.count == 4
        assert h.sum == pytest.approx(56.5)
        assert h.min == 0.5
        assert h.max == 50.0
        assert h.mean == pytest.approx(56.5 / 4)

    def test_bucket_counts_always_sum_to_count(self):
        h = Histogram("lat")
        for v in (1e-5, 1e-3, 0.2, 7.0, 1e4):
            h.observe(v)
        assert sum(h.bucket_counts) == h.count == 5

    def test_quantile_bucket_resolution(self):
        h = Histogram("lat", bounds=(1.0, 10.0, 100.0))
        for v in (0.5, 0.6, 5.0, 50.0):
            h.observe(v)
        assert h.quantile(0.5) == 1.0       # 2nd of 4 lands in bucket <=1
        assert h.quantile(1.0) == 100.0
        assert math.isnan(Histogram("empty").quantile(0.5))

    def test_overflow_quantile_is_inf(self):
        h = Histogram("lat", bounds=(1.0,))
        h.observe(2.0)
        assert h.quantile(1.0) == math.inf

    def test_empty_histogram_stats(self):
        h = Histogram("lat")
        assert math.isnan(h.mean)
        d = h.as_dict()
        assert d["count"] == 0
        assert d["min"] is None and d["max"] is None

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            Histogram("bad", bounds=())
        with pytest.raises(ValueError):
            Histogram("bad", bounds=(2.0, 1.0))

    def test_quantile_range_validated(self):
        with pytest.raises(ValueError):
            Histogram("lat").quantile(1.5)

    def test_default_bounds_are_the_latency_ladder(self):
        assert Histogram("lat").bounds == DEFAULT_LATENCY_BUCKETS_S


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_get_without_create(self):
        reg = MetricsRegistry()
        assert reg.get("missing") is None
        c = reg.counter("present")
        assert reg.get("present") is c
        assert len(reg) == 1

    def test_names_sorted(self):
        reg = MetricsRegistry()
        reg.gauge("zeta")
        reg.counter("alpha")
        assert reg.names() == ["alpha", "zeta"]

    def test_as_dict_shape(self):
        reg = MetricsRegistry()
        reg.counter("jobs").inc(3)
        reg.gauge("temp").set(41.0)
        reg.histogram("lat", bounds=(1.0,)).observe(0.5)
        d = reg.as_dict()
        assert list(d) == ["jobs", "lat", "temp"]  # sorted
        assert d["jobs"] == {"type": "counter", "value": 3.0}
        assert d["temp"] == {"type": "gauge", "value": 41.0}
        assert d["lat"]["bucket_counts"] == [1, 0]
