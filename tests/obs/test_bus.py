"""Trace bus: fan-out, sequencing, counting, subscription management."""

import pytest

from repro.obs import events as ev
from repro.obs.bus import TraceBus
from repro.obs.events import TraceEvent


class TestEmission:
    def test_subscriber_receives_typed_event(self):
        bus = TraceBus()
        seen = []
        bus.subscribe(seen.append)
        bus.emit(ev.ENGINE_START, 0.0, policy="read", n_disks=4)
        assert len(seen) == 1
        event = seen[0]
        assert isinstance(event, TraceEvent)
        assert event.type == ev.ENGINE_START
        assert event.time == 0.0
        assert event.data == {"policy": "read", "n_disks": 4}

    def test_sequence_numbers_are_monotone_from_zero(self):
        bus = TraceBus()
        seen = []
        bus.subscribe(seen.append)
        for t in (0.0, 1.5, 1.5, 3.0):
            bus.emit(ev.REQUEST_SUBMIT, t, disk=0)
        assert [e.seq for e in seen] == [0, 1, 2, 3]
        assert bus.events_emitted == 4

    def test_counts_rollup_by_type(self):
        bus = TraceBus()
        bus.emit(ev.REQUEST_SUBMIT, 0.0, disk=0)
        bus.emit(ev.REQUEST_SUBMIT, 1.0, disk=1)
        bus.emit(ev.REQUEST_COMPLETE, 2.0, disk=0)
        assert bus.counts[ev.REQUEST_SUBMIT] == 2
        assert bus.counts[ev.REQUEST_COMPLETE] == 1
        assert bus.counts[ev.REQUEST_FAIL] == 0

    def test_fan_out_preserves_subscription_order(self):
        bus = TraceBus()
        order = []
        bus.subscribe(lambda e: order.append("first"))
        bus.subscribe(lambda e: order.append("second"))
        bus.emit(ev.ENGINE_STOP, 1.0)
        assert order == ["first", "second"]

    def test_emit_with_no_subscribers_still_counts(self):
        bus = TraceBus()
        bus.emit(ev.DISK_REPLACE, 5.0, disk=2)
        assert bus.events_emitted == 1
        assert bus.counts[ev.DISK_REPLACE] == 1

    def test_emit_many(self):
        bus = TraceBus()
        seen = []
        bus.subscribe(seen.append)
        bus.emit_many([(ev.REQUEST_SUBMIT, 0.0, {"disk": 0}),
                       (ev.REQUEST_COMPLETE, 1.0, {"disk": 0})])
        assert [e.type for e in seen] == [ev.REQUEST_SUBMIT, ev.REQUEST_COMPLETE]


class TestSubscriptions:
    def test_subscribe_returns_subscriber(self):
        bus = TraceBus()
        fn = bus.subscribe(lambda e: None)
        assert callable(fn)
        assert bus.subscriber_count == 1

    def test_unsubscribe_detaches(self):
        bus = TraceBus()
        seen = []
        # bound methods compare equal across accesses, so list.remove works
        bus.subscribe(seen.append)
        bus.unsubscribe(seen.append)
        bus.emit(ev.ENGINE_STOP, 0.0)
        assert seen == []
        assert bus.subscriber_count == 0

    def test_unsubscribe_unknown_raises(self):
        with pytest.raises(ValueError):
            TraceBus().unsubscribe(lambda e: None)

    def test_non_callable_subscriber_rejected(self):
        with pytest.raises(ValueError):
            TraceBus().subscribe("not callable")
