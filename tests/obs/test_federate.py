"""Telemetry federation: trace merge determinism, typed registry merge.

The contracts under test (:mod:`repro.obs.federate`):

* :func:`merge_trace_files` interleaves per-shard segments by
  ``(time, shard, seq)``, strips the shard tag, renumbers ``seq``
  globally, and shares that sequence space with synthesized lead/tail
  events — streaming and atomic;
* :func:`federate_registries` merges snapshots typed: counters sum,
  gauges take the latest capture time (ties toward the highest shard),
  histograms merge bin-exactly;
* :func:`shard_segment_path` names segments so lexicographic order is
  shard order.
"""

import json

import pytest

from repro.obs.export import read_trace
from repro.obs.federate import (
    federate_registries,
    merge_trace_files,
    shard_segment_path,
)


def _write_segment(path, records):
    """One per-shard JSONL segment from (seq, t, type, extra) tuples."""
    lines = []
    for seq, t, type_, extra in records:
        record = {"seq": seq, "t": t, "type": type_}
        record.update(extra)
        lines.append(json.dumps(record, separators=(",", ":")))
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


class TestShardSegmentPath:
    def test_naming_convention(self):
        assert shard_segment_path("out/trace.jsonl", 7).name \
            == "trace.shard0007.jsonl"

    def test_lexicographic_order_is_shard_order(self):
        names = [shard_segment_path("t.jsonl", i).name for i in range(12)]
        assert names == sorted(names)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            shard_segment_path("t.jsonl", -1)


class TestMergeTraceFiles:
    def test_orders_by_time_then_shard_then_seq(self, tmp_path):
        s0 = _write_segment(tmp_path / "s0.jsonl", [
            (0, 1.0, "request.submit", {"shard": 0, "disk": 0}),
            (1, 3.0, "request.complete", {"shard": 0, "disk": 0}),
        ])
        s1 = _write_segment(tmp_path / "s1.jsonl", [
            (0, 1.0, "request.submit", {"shard": 1, "disk": 4}),
            (1, 2.0, "request.complete", {"shard": 1, "disk": 4}),
        ])
        out = tmp_path / "merged.jsonl"
        merged = merge_trace_files([s0, s1], out)
        assert merged == 4
        records = list(read_trace(out))
        # t=1.0 ties break by shard; shard tag stripped; seq renumbered.
        assert [(r["t"], r["disk"]) for r in records] \
            == [(1.0, 0), (1.0, 4), (2.0, 4), (3.0, 0)]
        assert [r["seq"] for r in records] == [0, 1, 2, 3]
        assert all("shard" not in r for r in records)

    def test_lead_and_tail_share_the_seq_space(self, tmp_path):
        seg = _write_segment(tmp_path / "s0.jsonl", [
            (0, 0.5, "request.submit", {"shard": 0})])
        out = tmp_path / "merged.jsonl"
        merged = merge_trace_files(
            [seg], out,
            lead=[("engine.start", 0.0, {"policy": "x", "n_disks": 4})],
            tail=[("engine.stop", 9.0, {"duration_s": 9.0, "events": 1})])
        assert merged == 1  # data records only
        records = list(read_trace(out))
        assert [r["type"] for r in records] \
            == ["engine.start", "request.submit", "engine.stop"]
        assert [r["seq"] for r in records] == [0, 1, 2]

    def test_empty_segment_is_fine(self, tmp_path):
        s0 = _write_segment(tmp_path / "s0.jsonl", [
            (0, 1.0, "request.submit", {"shard": 0})])
        s1 = tmp_path / "s1.jsonl"
        s1.write_text("", encoding="utf-8")
        out = tmp_path / "merged.jsonl"
        assert merge_trace_files([s0, s1], out) == 1

    def test_corrupt_segment_leaves_no_output(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{not json\n", encoding="utf-8")
        out = tmp_path / "merged.jsonl"
        with pytest.raises(ValueError, match="not a JSON trace record"):
            merge_trace_files([bad], out)
        assert not out.exists()
        assert list(tmp_path.glob("*.tmp")) == []

    def test_record_without_type_rejected(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"seq":0,"t":1.0}\n', encoding="utf-8")
        with pytest.raises(ValueError, match="missing 'type'"):
            merge_trace_files([bad], tmp_path / "merged.jsonl")

    def test_merge_independent_of_segment_groupings(self, tmp_path):
        """The merged bytes depend on the records, not their split."""
        records = [(i, float(t), "request.submit", {"shard": s, "disk": s})
                   for i, (t, s) in enumerate([(1, 0), (2, 0), (3, 0)])]
        other = [(i, float(t), "request.submit", {"shard": s, "disk": s})
                 for i, (t, s) in enumerate([(1, 1), (4, 1)])]
        a0 = _write_segment(tmp_path / "a0.jsonl", records)
        a1 = _write_segment(tmp_path / "a1.jsonl", other)
        both = _write_segment(
            tmp_path / "b0.jsonl",
            # same records re-split: one segment per (shard, parity) — the
            # shard keys inside the records drive ordering, not the files
            [r for r in records if r[0] % 2 == 0])
        rest = _write_segment(
            tmp_path / "b1.jsonl",
            [r for r in records if r[0] % 2 == 1])
        out_a = tmp_path / "out_a.jsonl"
        out_b = tmp_path / "out_b.jsonl"
        merge_trace_files([a0], out_a)
        merge_trace_files([both, rest], out_b)
        # a0 split across two files with interleaved seqs merges back to
        # the identical byte stream
        assert out_a.read_bytes() == out_b.read_bytes()
        assert merge_trace_files([a0, a1], tmp_path / "c.jsonl") == 5


class TestFederateRegistries:
    def test_counters_sum(self):
        snaps = [{"req": {"type": "counter", "value": 3.0}},
                 {"req": {"type": "counter", "value": 4.0}}]
        assert federate_registries(snaps)["req"]["value"] == 7.0

    def test_disjoint_label_sets_union(self):
        snaps = [{"disk0.util": {"type": "gauge", "value": 10.0}},
                 {"disk4.util": {"type": "gauge", "value": 20.0}}]
        out = federate_registries(snaps)
        assert sorted(out) == ["disk0.util", "disk4.util"]
        assert out["disk0.util"]["value"] == 10.0
        assert out["disk4.util"]["value"] == 20.0

    def test_gauge_takes_latest_capture_time(self):
        snaps = [{"g": {"type": "gauge", "value": 1.0}},
                 {"g": {"type": "gauge", "value": 2.0}}]
        out = federate_registries(snaps, at=[100.0, 50.0])
        assert out["g"]["value"] == 1.0

    def test_gauge_tie_breaks_toward_highest_shard(self):
        snaps = [{"g": {"type": "gauge", "value": 1.0}},
                 {"g": {"type": "gauge", "value": 2.0}}]
        assert federate_registries(snaps, at=[50.0, 50.0])["g"]["value"] == 2.0
        assert federate_registries(snaps)["g"]["value"] == 2.0

    def test_histograms_merge_bin_exactly(self):
        h0 = {"type": "histogram", "count": 3, "sum": 6.0, "min": 1.0,
              "max": 3.0, "bounds": [1.0, 10.0], "bucket_counts": [3, 0, 0]}
        h1 = {"type": "histogram", "count": 2, "sum": 30.0, "min": 5.0,
              "max": 25.0, "bounds": [1.0, 10.0], "bucket_counts": [0, 1, 1]}
        out = federate_registries([{"h": h0}, {"h": h1}])["h"]
        assert out["count"] == 5
        assert out["sum"] == 36.0
        assert out["min"] == 1.0
        assert out["max"] == 25.0
        assert out["bucket_counts"] == [3, 1, 1]

    def test_empty_histogram_contributes_nothing(self):
        h0 = {"type": "histogram", "count": 0, "sum": 0.0, "min": None,
              "max": None, "bounds": [1.0], "bucket_counts": [0, 0]}
        h1 = {"type": "histogram", "count": 1, "sum": 2.0, "min": 2.0,
              "max": 2.0, "bounds": [1.0], "bucket_counts": [0, 1]}
        out = federate_registries([{"h": h0}, {"h": h1}])["h"]
        assert out["min"] == 2.0 and out["max"] == 2.0

    def test_mismatched_histogram_bounds_rejected(self):
        h0 = {"type": "histogram", "count": 0, "sum": 0.0, "min": None,
              "max": None, "bounds": [1.0], "bucket_counts": [0, 0]}
        h1 = dict(h0, bounds=[2.0])
        with pytest.raises(ValueError, match="bounds differ"):
            federate_registries([{"h": h0}, {"h": h1}])

    def test_conflicting_types_rejected(self):
        snaps = [{"m": {"type": "counter", "value": 1.0}},
                 {"m": {"type": "gauge", "value": 1.0}}]
        with pytest.raises(ValueError, match="conflicting types"):
            federate_registries(snaps)

    def test_empty_shard_snapshot_is_fine(self):
        out = federate_registries([{"c": {"type": "counter", "value": 2.0}}, {}])
        assert out["c"]["value"] == 2.0

    def test_needs_at_least_one_snapshot(self):
        with pytest.raises(ValueError):
            federate_registries([])

    def test_at_length_must_match(self):
        with pytest.raises(ValueError):
            federate_registries([{}, {}], at=[1.0])

    def test_output_sorted_by_name(self):
        snaps = [{"z": {"type": "counter", "value": 1.0}},
                 {"a": {"type": "counter", "value": 1.0}}]
        assert list(federate_registries(snaps)) == ["a", "z"]
