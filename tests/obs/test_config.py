"""ObsConfig semantics: what each combination of fields turns on."""

import pytest

from repro.obs.config import ObsConfig


class TestObsConfig:
    def test_default_is_all_off(self):
        cfg = ObsConfig()
        assert not cfg.enabled
        assert not cfg.wants_sampler

    def test_trace_only(self):
        cfg = ObsConfig(trace_path="t.jsonl")
        assert cfg.enabled
        assert not cfg.wants_sampler

    def test_metrics_path_implies_sampler_at_default_cadence(self):
        cfg = ObsConfig(metrics_path="ts.csv")
        assert cfg.enabled
        assert cfg.wants_sampler
        assert cfg.effective_sample_interval_s == ObsConfig.DEFAULT_SAMPLE_INTERVAL_S

    def test_explicit_interval_wins(self):
        cfg = ObsConfig(metrics_path="ts.csv", sample_interval_s=5.0)
        assert cfg.effective_sample_interval_s == 5.0

    def test_interval_without_path_still_samples(self):
        cfg = ObsConfig(sample_interval_s=2.0)
        assert cfg.wants_sampler
        assert cfg.enabled

    def test_profile_only(self):
        cfg = ObsConfig(profile=True)
        assert cfg.enabled
        assert not cfg.wants_sampler

    def test_non_positive_interval_rejected(self):
        with pytest.raises(ValueError):
            ObsConfig(sample_interval_s=0.0)
        with pytest.raises(ValueError):
            ObsConfig(sample_interval_s=-1.0)

    def test_frozen_and_hashable(self):
        cfg = ObsConfig(trace_path="t.jsonl")
        with pytest.raises(AttributeError):
            cfg.trace_path = "other"
        assert cfg == ObsConfig(trace_path="t.jsonl")
        assert hash(cfg) == hash(ObsConfig(trace_path="t.jsonl"))
