"""Kernel profiler: accumulation, summary, and engine integration."""

import pytest

from repro.obs.profiler import (DEFAULT_HANDLER_BUCKETS_S, HandlerProfile,
                                KernelProfiler, ProfileSummary)
from repro.sim.engine import Simulator


class TestKernelProfiler:
    def test_record_accumulates_per_handler(self):
        p = KernelProfiler()
        p.record("Drive._complete", 1e-5)
        p.record("Drive._complete", 3e-5)
        p.record("PeriodicTask._fire", 2e-4)
        assert p.events_recorded == 3
        assert p.handler_names == ["Drive._complete", "PeriodicTask._fire"]

    def test_summary_sorted_by_total_time_desc(self):
        p = KernelProfiler()
        p.record("cheap", 1e-6)
        p.record("heavy", 1e-2)
        summary = p.summary()
        assert [h.handler for h in summary.handlers] == ["cheap", "heavy"][::-1]
        heavy = summary.handlers[0]
        assert heavy.calls == 1
        assert heavy.total_s == pytest.approx(1e-2)
        assert heavy.max_s == pytest.approx(1e-2)

    def test_bucket_counts_sum_to_calls(self):
        p = KernelProfiler()
        for elapsed in (1e-7, 1e-5, 1e-3, 0.5, 10.0):
            p.record("h", elapsed)
        (profile,) = p.summary().handlers
        assert sum(profile.bucket_counts) == profile.calls == 5
        assert len(profile.bucket_counts) == len(DEFAULT_HANDLER_BUCKETS_S) + 1

    def test_summary_wall_clock_override(self):
        p = KernelProfiler()
        p.record("h", 0.25)
        assert p.summary().wall_clock_s == pytest.approx(0.25)
        s = p.summary(wall_clock_s=2.0)
        assert s.wall_clock_s == 2.0
        assert s.events_per_sec == pytest.approx(0.5)

    def test_empty_summary(self):
        s = KernelProfiler().summary()
        assert s.events_executed == 0
        assert s.handlers == ()
        assert s.events_per_sec == 0.0

    def test_as_dict_round_trips_plain_data(self):
        p = KernelProfiler()
        p.record("h", 1e-4)
        d = p.summary(wall_clock_s=1.0).as_dict()
        assert d["events_executed"] == 1
        assert d["handlers"][0]["handler"] == "h"
        assert isinstance(d["bucket_bounds_s"], list)

    def test_handler_profile_row(self):
        h = HandlerProfile(handler="h", calls=2, total_s=2e-3, max_s=1.5e-3,
                           bucket_counts=(0, 0, 0, 2, 0, 0, 0, 0))
        row = h.summary_row()
        assert row["handler"] == "h"
        assert row["total_ms"] == 2.0
        assert row["mean_us"] == 1000.0


class TestEngineIntegration:
    def test_profiled_drain_times_every_event(self, sim):
        profiler = KernelProfiler()
        sim.set_profiler(profiler)
        fired = []

        def tick():
            fired.append(sim.now)
            if len(fired) < 5:
                sim.schedule(1.0, tick)

        sim.schedule(0.0, tick)
        sim.run_until_drained()
        assert len(fired) == 5
        assert profiler.events_recorded == sim.events_executed == 5
        # the handler key is the action's qualified name
        assert any("tick" in name for name in profiler.handler_names)

    def test_profiled_results_match_unprofiled(self):
        def build_and_run(profiler):
            sim = Simulator()
            if profiler is not None:
                sim.set_profiler(profiler)
            out = []

            def tick():
                out.append(sim.now)
                if len(out) < 50:
                    sim.schedule(0.5, tick)

            sim.schedule(0.0, tick)
            sim.run_until_drained()
            return out, sim.events_executed

        plain, n_plain = build_and_run(None)
        profiled, n_profiled = build_and_run(KernelProfiler())
        assert plain == profiled
        assert n_plain == n_profiled

    def test_set_profiler_validates_interface(self, sim):
        from repro.sim.engine import SimulationError
        with pytest.raises(SimulationError, match="record"):
            sim.set_profiler(object())

    def test_profiler_property_and_detach(self, sim):
        assert sim.profiler is None
        p = KernelProfiler()
        sim.set_profiler(p)
        assert sim.profiler is p
        sim.set_profiler(None)
        assert sim.profiler is None
