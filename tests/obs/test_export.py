"""Exporters: canonical JSON, JSONL round-trips, byte determinism."""

import json

import pytest

from repro.experiments.runner import make_policy, run_simulation
from repro.obs import events as ev
from repro.obs.bus import TraceBus
from repro.obs.config import ObsConfig
from repro.obs.events import TraceEvent
from repro.obs.export import (JsonlTraceWriter, event_to_json, read_trace,
                              timeseries_to_csv_text, write_metrics_json,
                              write_timeseries)
from repro.obs.metrics import MetricsRegistry
from repro.obs.sampler import SAMPLE_COLUMNS, TimeSeries


class TestEventToJson:
    def test_canonical_layout(self):
        event = TraceEvent(7, 1.5, ev.REQUEST_SUBMIT,
                           {"size_mb": 2.0, "disk": 3, "internal": False})
        line = event_to_json(event)
        # seq/t/type lead; payload keys sorted; compact separators
        assert line == ('{"seq":7,"t":1.5,"type":"request.submit",'
                        '"disk":3,"internal":false,"size_mb":2.0}')

    def test_stable_under_payload_insertion_order(self):
        a = event_to_json(TraceEvent(0, 0.0, "x", {"b": 1, "a": 2}))
        b = event_to_json(TraceEvent(0, 0.0, "x", {"a": 2, "b": 1}))
        assert a == b


class TestJsonlTraceWriter:
    def test_round_trip_through_bus(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        bus = TraceBus()
        with JsonlTraceWriter(path) as writer:
            bus.subscribe(writer)
            bus.emit(ev.ENGINE_START, 0.0, policy="read")
            bus.emit(ev.REQUEST_SUBMIT, 0.5, disk=0, size_mb=1.0)
        assert writer.events_written == 2
        records = read_trace(path)
        assert [r["type"] for r in records] == [ev.ENGINE_START,
                                                ev.REQUEST_SUBMIT]
        assert records[0]["policy"] == "read"
        assert records[1]["seq"] == 1

    def test_write_after_close_raises(self, tmp_path):
        writer = JsonlTraceWriter(tmp_path / "t.jsonl")
        writer.close()
        writer.close()  # idempotent
        with pytest.raises(ValueError, match="closed"):
            writer(TraceEvent(0, 0.0, "x", {}))

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "t.jsonl"
        with JsonlTraceWriter(path):
            pass
        assert path.exists()


class TestCrashSafety:
    def test_trace_invisible_until_close(self, tmp_path):
        path = tmp_path / "t.jsonl"
        writer = JsonlTraceWriter(path)
        writer(TraceEvent(0, 0.0, "x", {}))
        assert not path.exists()  # still streaming into the tmp file
        writer.close()
        assert path.exists()
        assert [p.name for p in tmp_path.iterdir()] == ["t.jsonl"]

    def test_abort_quarantines_partial_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        writer = JsonlTraceWriter(path)
        writer(TraceEvent(0, 0.0, "x", {}))
        writer.abort()
        writer.abort()  # idempotent
        assert not path.exists()
        partial = tmp_path / "t.jsonl.partial"
        assert partial.exists()
        assert json.loads(partial.read_text())["type"] == "x"

    def test_abort_after_close_keeps_published_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        writer = JsonlTraceWriter(path)
        writer(TraceEvent(0, 0.0, "x", {}))
        writer.close()
        writer.abort()  # must not disturb a complete trace
        assert path.exists()
        assert not (tmp_path / "t.jsonl.partial").exists()

    def test_context_exit_on_exception_aborts(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with pytest.raises(RuntimeError):
            with JsonlTraceWriter(path) as writer:
                writer(TraceEvent(0, 0.0, "x", {}))
                raise RuntimeError("simulated crash mid-run")
        assert not path.exists()
        assert (tmp_path / "t.jsonl.partial").exists()

    def test_dying_simulation_quarantines_its_trace(self, tmp_path, small_workload,
                                                    params):
        """run_simulation aborts the writer when the run blows up."""
        fileset, trace = small_workload
        path = tmp_path / "run.jsonl"
        obs = ObsConfig(trace_path=path)

        import repro.obs.bus as bus_mod
        original = bus_mod.TraceBus.emit

        def exploding_emit(self, type_, t, **data):
            if type_ == ev.REQUEST_SUBMIT:
                raise RuntimeError("simulated mid-run crash")
            return original(self, type_, t, **data)

        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(bus_mod.TraceBus, "emit", exploding_emit)
            with pytest.raises(RuntimeError, match="mid-run"):
                run_simulation(make_policy("static-high"), fileset, trace,
                               n_disks=4, disk_params=params, obs=obs)
        assert not path.exists()
        assert (tmp_path / "run.jsonl.partial").exists()


class TestReadTrace:
    def test_skips_blank_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"seq":0,"t":0.0,"type":"engine.start"}\n\n')
        assert len(read_trace(path)) == 1

    def test_corrupt_line_reports_line_number(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"seq":0,"t":0.0,"type":"engine.start"}\nnot json\n')
        with pytest.raises(ValueError, match=":2:"):
            read_trace(path)

    def test_record_without_type_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"seq":0}\n')
        with pytest.raises(ValueError, match="missing 'type'"):
            read_trace(path)


class TestByteDeterminism:
    def test_same_seed_traces_are_byte_identical(self, small_workload, params,
                                                 tmp_path):
        fileset, trace = small_workload
        paths = []
        for i in range(2):
            path = tmp_path / f"run{i}.jsonl"
            run_simulation(make_policy("maid"), fileset, trace.head(800),
                           n_disks=4, disk_params=params,
                           obs=ObsConfig(trace_path=str(path)))
            paths.append(path)
        first, second = (p.read_bytes() for p in paths)
        assert len(first) > 0
        assert first == second


class TestTimeseriesExport:
    SERIES = TimeSeries(interval_s=5.0, rows=(
        (0.0, 0, 10.0, 38.0, "high", "active", 2, 100.0),
        (5.0, 0, 12.5, 38.25, "high", "active", 1, 180.5),
    ))

    def test_csv_text_header_and_float_repr(self):
        text = timeseries_to_csv_text(self.SERIES)
        lines = text.splitlines()
        assert lines[0] == ",".join(SAMPLE_COLUMNS)
        assert lines[1].startswith("0.0,0,10.0,38.0,high,active,2,100.0")
        assert len(lines) == 3

    def test_write_csv(self, tmp_path):
        target = write_timeseries(self.SERIES, tmp_path / "ts.csv")
        assert target.read_text() == timeseries_to_csv_text(self.SERIES)

    def test_write_json_document(self, tmp_path):
        target = write_timeseries(self.SERIES, tmp_path / "ts.json")
        doc = json.loads(target.read_text())
        assert doc["interval_s"] == 5.0
        assert doc["columns"] == list(SAMPLE_COLUMNS)
        assert doc["rows"][1][7] == 180.5

    def test_csv_writes_are_deterministic(self, tmp_path):
        a = write_timeseries(self.SERIES, tmp_path / "a.csv").read_bytes()
        b = write_timeseries(self.SERIES, tmp_path / "b.csv").read_bytes()
        assert a == b


class TestMetricsExport:
    def test_write_metrics_json_sorted_and_loadable(self, tmp_path):
        reg = MetricsRegistry()
        reg.gauge("disk0.utilization_pct").set(42.0)
        reg.counter("sampler.ticks").inc(3)
        target = write_metrics_json(reg, tmp_path / "metrics.json")
        doc = json.loads(target.read_text())
        assert list(doc) == sorted(doc)
        assert doc["sampler.ticks"]["value"] == 3.0
