"""Live sweep status feed: event folding, schema, atomic publish, reader.

:class:`~repro.obs.status.SweepStatusWriter` subscribes to the harness
bus and folds ``harness.*`` spans into a crash-safe JSON document; the
reader side (:func:`read_status` / :func:`format_status`) backs
``repro obs status``.
"""

import json

import pytest

from repro.obs import events as ev
from repro.obs.bus import TraceBus
from repro.obs.status import (
    STATUS_VERSION,
    SweepStatusWriter,
    format_status,
    read_status,
)


def _wired(tmp_path, **kwargs):
    kwargs.setdefault("min_interval_s", 0.0)
    bus = TraceBus()
    writer = SweepStatusWriter(tmp_path / "status.json", **kwargs)
    bus.subscribe(writer)
    return bus, writer


class TestEventFolding:
    def test_full_sweep_lifecycle(self, tmp_path):
        bus, writer = _wired(tmp_path)
        bus.emit(ev.HARNESS_SWEEP_START, 0.0, cells=3, jobs=2)
        bus.emit(ev.HARNESS_CHECKPOINT_HIT, 0.0, cell="read-6")
        bus.emit(ev.HARNESS_CELL_START, 0.0, cell="read-10", index=1,
                 total=3, attempt=1)
        bus.emit(ev.HARNESS_CELL_START, 0.0, cell="read-16", index=2,
                 total=3, attempt=1)
        bus.emit(ev.HARNESS_CELL_FINISH, 0.0, cell="read-10", index=1,
                 events=5000, wall_s=2.0)
        doc = writer.snapshot()
        assert doc["version"] == STATUS_VERSION
        assert doc["state"] == "running"
        assert doc["jobs"] == 2
        assert doc["cells_total"] == 3
        assert doc["cells_done"] == 2  # one finished + one restored
        assert doc["cells_running"] == ["read-16"]
        assert doc["events_executed"] == 5000
        assert doc["events_per_sec"] == pytest.approx(2500.0)
        assert doc["checkpoint_hits"] == 1
        assert doc["cells"]["read-10"]["state"] == "done"
        assert doc["cells"]["read-6"]["state"] == "restored"

    def test_sweep_finish_flips_state_and_publishes(self, tmp_path):
        bus, writer = _wired(tmp_path, min_interval_s=3600.0)
        bus.emit(ev.HARNESS_SWEEP_START, 0.0, cells=1, jobs=1)
        bus.emit(ev.HARNESS_SWEEP_FINISH, 0.0, cells=1, cells_run=1)
        doc = read_status(writer.path)  # forced publish despite throttle
        assert doc["state"] == "done"

    def test_retry_and_fault_counters(self, tmp_path):
        bus, writer = _wired(tmp_path)
        bus.emit(ev.HARNESS_CELL_RETRY, 0.0, cell="maid-8", attempt=2,
                 reason="ValueError")
        bus.emit(ev.HARNESS_CELL_TIMEOUT, 0.0, cell="maid-8", timeout_s=1.0)
        bus.emit(ev.HARNESS_CELL_SALVAGE, 0.0, cell="pdc-8")
        bus.emit(ev.HARNESS_POOL_RESPAWN, 0.0, respawn=1, requeued=1)
        bus.emit(ev.HARNESS_CHECKPOINT_PUBLISH, 0.0, cells=2)
        bus.emit(ev.HARNESS_SHARD_MERGE, 0.0, policy="read", n_disks=8,
                 shards=2, wall_s=0.01)
        doc = writer.snapshot()
        assert doc["retries"] == 1
        assert doc["timeouts"] == 1
        assert doc["salvaged"] == 1
        assert doc["pool_respawns"] == 1
        assert doc["checkpoint_publishes"] == 1
        assert doc["merges"] == 1
        assert doc["cells"]["maid-8"]["state"] == "retrying"
        assert doc["cells"]["maid-8"]["attempt"] == 2

    def test_non_harness_events_ignored(self, tmp_path):
        bus, writer = _wired(tmp_path)
        bus.emit(ev.REQUEST_SUBMIT, 1.0, disk=0)
        assert writer.publishes == 0
        assert writer.snapshot()["cells"] == {}

    def test_throttle_bounds_write_amplification(self, tmp_path):
        bus, writer = _wired(tmp_path, min_interval_s=3600.0)
        for i in range(50):
            bus.emit(ev.HARNESS_CELL_START, 0.0, cell=f"c{i}", index=i,
                     total=50, attempt=1)
        assert writer.publishes == 1  # first write, then throttled
        writer.finish()
        assert writer.publishes == 2

    def test_finish_supports_failure_state(self, tmp_path):
        _bus, writer = _wired(tmp_path)
        writer.finish(state="failed")
        assert read_status(writer.path)["state"] == "failed"

    def test_published_file_is_valid_json_with_newline(self, tmp_path):
        _bus, writer = _wired(tmp_path)
        writer.publish(force=True)
        text = writer.path.read_text(encoding="utf-8")
        assert text.endswith("\n")
        assert json.loads(text)["version"] == STATUS_VERSION

    def test_negative_interval_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            SweepStatusWriter(tmp_path / "s.json", min_interval_s=-1.0)


class TestReader:
    def test_read_rejects_non_json(self, tmp_path):
        p = tmp_path / "s.json"
        p.write_text("{torn", encoding="utf-8")
        with pytest.raises(ValueError, match="not a JSON status document"):
            read_status(p)

    def test_read_rejects_wrong_schema(self, tmp_path):
        p = tmp_path / "s.json"
        p.write_text('{"other": 1}', encoding="utf-8")
        with pytest.raises(ValueError, match="not a sweep status document"):
            read_status(p)

    def test_format_renders_progress_and_ledger(self, tmp_path):
        bus, writer = _wired(tmp_path)
        bus.emit(ev.HARNESS_SWEEP_START, 0.0, cells=2, jobs=4)
        bus.emit(ev.HARNESS_CELL_START, 0.0, cell="read-6", index=0,
                 total=2, attempt=1)
        bus.emit(ev.HARNESS_CELL_RETRY, 0.0, cell="read-16", attempt=2,
                 reason="ValueError")
        text = format_status(writer.snapshot())
        assert "sweep running: 0/2 cells, jobs=4" in text
        assert "retries=1" in text
        assert "read-6" in text
        assert "read-16 (attempt 2)" in text

    def test_format_handles_minimal_document(self):
        text = format_status({"state": "done", "cells": {}})
        assert "sweep done" in text
