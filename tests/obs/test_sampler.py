"""Per-disk time-series sampling: TimeSeries shape and DiskSampler runs."""

import pytest

from repro.experiments.runner import make_policy, run_simulation
from repro.obs.config import ObsConfig
from repro.obs.sampler import SAMPLE_COLUMNS, TimeSeries


@pytest.fixture(scope="module")
def sampled_result(small_workload, params):
    fileset, trace = small_workload
    return run_simulation(make_policy("read"), fileset, trace.head(1_000),
                          n_disks=4, disk_params=params,
                          obs=ObsConfig(sample_interval_s=3.0))


class TestTimeSeries:
    ROWS = ((0.0, 0, 10.0, 38.0, "high", "active", 2, 100.0),
            (0.0, 1, 0.0, 35.0, "low", "standby", 0, 50.0),
            (5.0, 0, 12.0, 38.5, "high", "active", 1, 180.0),
            (5.0, 1, 0.0, 34.5, "low", "standby", 0, 60.0))

    def test_len_and_n_samples(self):
        series = TimeSeries(interval_s=5.0, rows=self.ROWS)
        assert len(series) == 4
        assert series.n_samples == 2

    def test_column_extraction(self):
        series = TimeSeries(interval_s=5.0, rows=self.ROWS)
        assert series.column("energy_j") == [100.0, 50.0, 180.0, 60.0]
        assert series.column("energy_j", disk=1) == [50.0, 60.0]
        assert series.column("speed", disk=0) == ["high", "high"]

    def test_unknown_column_raises(self):
        with pytest.raises(ValueError):
            TimeSeries(interval_s=5.0, rows=self.ROWS).column("nope")

    def test_per_disk_grouping(self):
        grouped = TimeSeries(interval_s=5.0, rows=self.ROWS).per_disk()
        assert set(grouped) == {0, 1}
        assert [r[0] for r in grouped[0]] == [0.0, 5.0]

    def test_as_records(self):
        records = TimeSeries(interval_s=5.0, rows=self.ROWS[:1]).as_records()
        assert records == [dict(zip(SAMPLE_COLUMNS, self.ROWS[0]))]

    def test_empty_series(self):
        series = TimeSeries(interval_s=1.0)
        assert len(series) == 0
        assert series.n_samples == 0
        assert series.per_disk() == {}


class TestDiskSamplerInRun:
    def test_series_attached_with_expected_shape(self, sampled_result):
        series = sampled_result.timeseries
        assert series is not None
        assert series.columns == SAMPLE_COLUMNS
        assert series.interval_s == 3.0
        # one row per disk per tick, plus the end-of-run closing sample
        assert len(series) % 4 == 0
        assert series.n_samples >= 2

    def test_rows_ordered_by_time_then_disk(self, sampled_result):
        rows = sampled_result.timeseries.rows
        assert list(rows) == sorted(rows, key=lambda r: (r[0], r[1]))

    def test_sampled_quantities_in_range(self, sampled_result):
        series = sampled_result.timeseries
        for util in series.column("utilization_pct"):
            assert 0.0 <= util <= 100.0
        for temp in series.column("temperature_c"):
            assert 20.0 <= temp <= 80.0
        for speed in series.column("speed"):
            assert speed in ("high", "low")
        for depth in series.column("queue_depth"):
            assert depth >= 0

    def test_energy_is_cumulative_per_disk(self, sampled_result):
        series = sampled_result.timeseries
        for disk in range(4):
            energy = series.column("energy_j", disk=disk)
            assert energy == sorted(energy)
            assert energy[-1] > 0.0

    def test_final_sample_matches_result_energy(self, sampled_result):
        series = sampled_result.timeseries
        last_time = series.rows[-1][0]
        final_total = sum(r[7] for r in series.rows if r[0] == last_time)
        assert final_total == pytest.approx(sampled_result.total_energy_j)

    def test_sampling_leaves_headline_metrics_close(self, small_workload,
                                                    params):
        # closed-form ledgers split exactly at sample instants; only
        # float-summation ulp drift is tolerated
        fileset, trace = small_workload
        plain = run_simulation(make_policy("read"), fileset, trace.head(1_000),
                               n_disks=4, disk_params=params)
        sampled = run_simulation(make_policy("read"), fileset,
                                 trace.head(1_000), n_disks=4,
                                 disk_params=params,
                                 obs=ObsConfig(sample_interval_s=3.0))
        assert sampled.mean_response_s == plain.mean_response_s
        assert sampled.total_energy_j == pytest.approx(plain.total_energy_j,
                                                       rel=1e-9)
        assert sampled.array_afr_percent == pytest.approx(
            plain.array_afr_percent, rel=1e-9)

    def test_interval_validation(self):
        from repro.obs.sampler import DiskSampler
        with pytest.raises(ValueError):
            DiskSampler(None, None, 0.0)
