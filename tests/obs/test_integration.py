"""End-to-end telemetry: off-switch identity, full-stack runs, pickling."""

import pickle

import pytest

from repro.experiments.runner import make_policy, run_simulation
from repro.obs import events as ev
from repro.obs.config import ObsConfig
from repro.obs.export import read_trace


class TestOffSwitchIdentity:
    def test_no_obs_and_empty_obs_results_are_equal(self, small_workload,
                                                    params):
        fileset, trace = small_workload
        sub = trace.head(800)
        r_none = run_simulation(make_policy("read"), fileset, sub, n_disks=4,
                                disk_params=params)
        r_empty = run_simulation(make_policy("read"), fileset, sub, n_disks=4,
                                 disk_params=params, obs=ObsConfig())
        # wall_clock_s/profile are compare=False; everything else must match
        assert r_none == r_empty

    def test_tracing_does_not_change_results(self, small_workload, params,
                                             tmp_path):
        fileset, trace = small_workload
        sub = trace.head(800)
        plain = run_simulation(make_policy("maid"), fileset, sub, n_disks=4,
                               disk_params=params)
        traced = run_simulation(make_policy("maid"), fileset, sub, n_disks=4,
                                disk_params=params,
                                obs=ObsConfig(trace_path=str(tmp_path / "t.jsonl")))
        assert traced == plain
        assert traced.events_executed == plain.events_executed

    def test_profiling_does_not_change_results(self, small_workload, params):
        fileset, trace = small_workload
        sub = trace.head(800)
        plain = run_simulation(make_policy("read"), fileset, sub, n_disks=4,
                               disk_params=params)
        profiled = run_simulation(make_policy("read"), fileset, sub, n_disks=4,
                                  disk_params=params,
                                  obs=ObsConfig(profile=True))
        assert profiled == plain  # profile field is compare=False
        assert profiled.profile is not None
        assert plain.profile is None


class TestFullStackRun:
    @pytest.fixture(scope="class")
    def everything_on(self, small_workload, params, tmp_path_factory):
        fileset, trace = small_workload
        out = tmp_path_factory.mktemp("obs")
        obs = ObsConfig(trace_path=str(out / "trace.jsonl"),
                        metrics_path=str(out / "ts.csv"),
                        sample_interval_s=3.0, profile=True)
        result = run_simulation(make_policy("maid"), fileset, trace.head(800),
                                n_disks=4, disk_params=params, obs=obs)
        return result, out

    def test_all_outputs_produced(self, everything_on):
        result, out = everything_on
        assert (out / "trace.jsonl").stat().st_size > 0
        assert (out / "ts.csv").read_text().startswith("time_s,disk,")
        assert result.timeseries is not None
        assert result.profile is not None

    def test_trace_brackets_the_run(self, everything_on):
        _result, out = everything_on
        records = read_trace(out / "trace.jsonl")
        assert records[0]["type"] == ev.ENGINE_START
        assert records[-1]["type"] == ev.ENGINE_STOP
        seqs = [r["seq"] for r in records]
        assert seqs == list(range(len(records)))

    def test_trace_times_are_monotone(self, everything_on):
        _result, out = everything_on
        times = [r["t"] for r in read_trace(out / "trace.jsonl")]
        assert all(t1 <= t2 for t1, t2 in zip(times, times[1:]))

    def test_maid_cache_activity_traced(self, everything_on):
        _result, out = everything_on
        types = {r["type"] for r in read_trace(out / "trace.jsonl")}
        assert ev.POLICY_CACHE_MISS in types
        assert ev.REQUEST_SUBMIT in types
        assert ev.REQUEST_COMPLETE in types

    def test_profile_accounts_for_every_event(self, everything_on):
        result, _out = everything_on
        assert result.profile.events_executed == result.events_executed
        assert sum(h.calls for h in result.profile.handlers) == result.events_executed
        assert result.profile.handlers[0].total_s > 0.0

    def test_result_pickles_with_telemetry_attached(self, everything_on):
        result, _out = everything_on
        clone = pickle.loads(pickle.dumps(result))
        assert clone == result
        assert clone.timeseries.rows == result.timeseries.rows
        assert clone.profile.events_executed == result.profile.events_executed

    def test_events_per_sec_positive(self, everything_on):
        result, _out = everything_on
        assert result.wall_clock_s > 0.0
        assert result.events_per_sec > 0.0
        assert "events_per_s" in result.summary_row()


class TestFaultTracing:
    def test_fault_lifecycle_events_present(self, small_workload, params,
                                            tmp_path):
        from repro.faults import FaultConfig
        fileset, trace = small_workload
        path = tmp_path / "faulted.jsonl"
        result = run_simulation(
            make_policy("read"), fileset, trace.head(3_000), n_disks=4,
            disk_params=params,
            faults=FaultConfig(seed=3, accel=2e6, hazard_refresh_s=5.0,
                               repair_delay_s=10.0),
            obs=ObsConfig(trace_path=str(path)))
        assert result.faults is not None and result.faults.disk_failures > 0
        counts = {}
        for record in read_trace(path):
            counts[record["type"]] = counts.get(record["type"], 0) + 1
        assert counts.get(ev.FAULT_INJECT, 0) == result.faults.disk_failures
        assert counts.get(ev.FAULT_REBUILD_START, 0) >= 1
        assert ev.REQUEST_REDIRECT in counts or ev.REQUEST_RETRY in counts
