"""Trace rollups and the full write -> summarize round-trip."""

import pytest

from repro.experiments.runner import make_policy, run_simulation
from repro.obs import events as ev
from repro.obs.config import ObsConfig
from repro.obs.summarize import (format_summary, summarize_records,
                                 summarize_trace)


class TestSummarizeRecords:
    RECORDS = [
        {"seq": 0, "t": 0.0, "type": ev.ENGINE_START, "policy": "read"},
        {"seq": 1, "t": 0.5, "type": ev.REQUEST_SUBMIT, "disk": 0,
         "size_mb": 2.0},
        {"seq": 2, "t": 0.5, "type": ev.REQUEST_DISPATCH, "disk": 0,
         "wait_s": 0.25},
        {"seq": 3, "t": 1.0, "type": ev.REQUEST_COMPLETE, "disk": 0,
         "size_mb": 2.0},
        {"seq": 4, "t": 2.0, "type": ev.REQUEST_FAIL, "disk": 1,
         "reason": "disk_failed"},
        {"seq": 5, "t": 3.0, "type": ev.DISK_TRANSITION_BEGIN, "disk": 1,
         "from": "high", "to": "low"},
        {"seq": 6, "t": 9.0, "type": ev.ENGINE_STOP, "events": 7},
    ]

    def test_totals_and_duration(self):
        summary = summarize_records(self.RECORDS)
        assert summary.total_events == 7
        assert summary.duration_s == 9.0
        assert summary.unknown_types == set()

    def test_by_type_counts_and_time_span(self):
        summary = summarize_records(self.RECORDS)
        count, first, last = summary.by_type[ev.REQUEST_SUBMIT]
        assert (count, first, last) == (1, 0.5, 0.5)
        assert ev.ENGINE_STOP in summary.by_type

    def test_per_disk_rollup(self):
        summary = summarize_records(self.RECORDS)
        d0 = summary.by_disk[0]
        assert (d0.submits, d0.dispatches, d0.completions) == (1, 1, 1)
        assert d0.mb_served == 2.0
        assert d0.total_wait_s == 0.25
        assert d0.mean_wait_ms == pytest.approx(250.0)
        d1 = summary.by_disk[1]
        assert d1.failures == 1
        assert d1.transitions == 1

    def test_diskless_events_not_charged(self):
        summary = summarize_records(self.RECORDS)
        assert sum(r.events for r in summary.by_disk.values()) == 5

    def test_unknown_types_flagged(self):
        summary = summarize_records([{"t": 0.0, "type": "totally.new"}])
        assert summary.unknown_types == {"totally.new"}

    def test_empty_input(self):
        summary = summarize_records([])
        assert summary.total_events == 0
        assert summary.by_type == {}
        assert summary.by_disk == {}


class TestRoundTrip:
    @pytest.fixture(scope="class")
    def traced(self, small_workload, params, tmp_path_factory):
        fileset, trace = small_workload
        path = tmp_path_factory.mktemp("trace") / "run.jsonl"
        result = run_simulation(make_policy("read"), fileset, trace.head(800),
                                n_disks=4, disk_params=params,
                                obs=ObsConfig(trace_path=str(path)))
        return result, path

    def test_summary_matches_run_metrics(self, traced):
        result, path = traced
        summary = summarize_trace(path)
        completions = sum(r.completions for r in summary.by_disk.values())
        # completions cover user requests and internal jobs alike
        assert completions == result.n_requests + result.internal_jobs
        transitions = sum(r.transitions for r in summary.by_disk.values())
        assert transitions == result.total_transitions
        assert summary.by_type[ev.ENGINE_START][0] == 1
        assert summary.by_type[ev.ENGINE_STOP][0] == 1
        assert summary.unknown_types == set()

    def test_engine_stop_carries_the_event_count(self, traced):
        result, path = traced
        from repro.obs.export import read_trace
        stop = [r for r in read_trace(path) if r["type"] == ev.ENGINE_STOP]
        assert len(stop) == 1
        assert stop[0]["events"] == result.events_executed
        assert stop[0]["duration_s"] == result.duration_s

    def test_every_disk_served_something(self, traced):
        _result, path = traced
        summary = summarize_trace(path)
        assert set(summary.by_disk) == {0, 1, 2, 3}
        assert all(r.submits > 0 for r in summary.by_disk.values())

    def test_format_summary_renders_tables(self, traced):
        _result, path = traced
        text = format_summary(summarize_trace(path), source=path.name)
        assert path.name in text
        assert "per event type" in text
        assert "per disk" in text
        assert ev.REQUEST_COMPLETE in text
        assert "unknown event types" not in text

    def test_format_summary_flags_unknown_types(self):
        summary = summarize_records([{"t": 0.0, "type": "custom.thing"}])
        assert "custom.thing" in format_summary(summary)
