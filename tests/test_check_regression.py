"""The throughput regression gate (benchmarks/check_regression.py).

``compare()`` is pure, so tier-1 can exercise the gate logic — and
validate the committed baseline file — without measuring anything.
"""

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "check_regression", REPO_ROOT / "benchmarks" / "check_regression.py")
check_regression = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_regression)

BASELINE = {"kernel_events_per_sec": 1_000_000.0,
            "sweep8_serial_s": 4.0, "sweep8_jobs4_s": 2.0}


class TestCompare:
    def test_identical_results_pass(self):
        assert check_regression.compare(dict(BASELINE), BASELINE) == []

    def test_improvements_pass(self):
        current = {"kernel_events_per_sec": 2_000_000.0,
                   "sweep8_serial_s": 1.0, "sweep8_jobs4_s": 0.5}
        assert check_regression.compare(current, BASELINE) == []

    def test_small_regression_within_threshold_passes(self):
        current = dict(BASELINE, kernel_events_per_sec=850_000.0)  # -15%
        assert check_regression.compare(current, BASELINE) == []

    def test_events_per_sec_drop_beyond_threshold_fails(self):
        current = dict(BASELINE, kernel_events_per_sec=700_000.0)  # -30%
        problems = check_regression.compare(current, BASELINE)
        assert len(problems) == 1
        assert "kernel_events_per_sec" in problems[0]

    def test_wall_clock_increase_beyond_threshold_fails(self):
        current = dict(BASELINE, sweep8_serial_s=5.0)  # +25%
        problems = check_regression.compare(current, BASELINE)
        assert len(problems) == 1
        assert "sweep8_serial_s" in problems[0]

    def test_missing_metrics_are_skipped(self):
        assert check_regression.compare({}, BASELINE) == []
        assert check_regression.compare(dict(BASELINE), {}) == []

    def test_custom_threshold(self):
        current = dict(BASELINE, kernel_events_per_sec=850_000.0)  # -15%
        problems = check_regression.compare(current, BASELINE, threshold=0.10)
        assert len(problems) == 1

    def test_rejects_nonsense_threshold(self):
        with pytest.raises(ValueError, match="threshold"):
            check_regression.compare(dict(BASELINE), BASELINE, threshold=0.0)

    def test_obs_disabled_cell_is_gated(self):
        base = dict(BASELINE, cell_obs_off_s=0.4)
        current = dict(base, cell_obs_off_s=0.6)  # +50%
        problems = check_regression.compare(current, base)
        assert len(problems) == 1
        assert "cell_obs_off_s" in problems[0]

    def test_traced_cell_is_gated(self):
        base = dict(BASELINE, cell_traced_s=1.5)
        current = dict(base, cell_traced_s=2.5)  # +67%
        problems = check_regression.compare(current, base)
        assert len(problems) == 1
        assert "cell_traced_s" in problems[0]


class TestTracingOverhead:
    def test_ratio_within_limit_passes(self):
        current = {"cell_obs_off_s": 0.4, "cell_traced_s": 1.6}  # 4x < 5x
        assert check_regression.tracing_overhead(current) == []

    def test_ratio_beyond_limit_fails(self):
        current = {"cell_obs_off_s": 0.4, "cell_traced_s": 2.4}  # 6x
        problems = check_regression.tracing_overhead(current)
        assert len(problems) == 1
        assert "tracing overhead" in problems[0]

    def test_custom_ratio(self):
        current = {"cell_obs_off_s": 1.0, "cell_traced_s": 2.5}
        assert check_regression.tracing_overhead(current, max_ratio=2.0)
        assert not check_regression.tracing_overhead(current, max_ratio=3.0)

    def test_missing_measurements_skip_the_check(self):
        assert check_regression.tracing_overhead({}) == []
        assert check_regression.tracing_overhead({"cell_obs_off_s": 0.4}) == []
        assert check_regression.tracing_overhead(
            {"cell_obs_off_s": 0.0, "cell_traced_s": 1.0}) == []

    def test_rejects_nonsense_ratio(self):
        with pytest.raises(ValueError, match="max_ratio"):
            check_regression.tracing_overhead({}, max_ratio=1.0)
        with pytest.raises(ValueError, match="max_shard_ratio"):
            check_regression.tracing_overhead({}, max_shard_ratio=1.0)

    def test_shard_ratio_within_limit_passes(self):
        current = {"shard_obs_off_s": 1.5, "shard_traced_s": 15.0}  # 10x < 14x
        assert check_regression.tracing_overhead(current) == []

    def test_shard_ratio_beyond_limit_fails(self):
        current = {"shard_obs_off_s": 1.0, "shard_traced_s": 20.0}  # 20x
        problems = check_regression.tracing_overhead(current)
        assert len(problems) == 1
        assert "shard tracing overhead" in problems[0]

    def test_both_pairs_checked_independently(self):
        current = {"cell_obs_off_s": 0.4, "cell_traced_s": 2.4,      # 6x > 5x
                   "shard_obs_off_s": 1.0, "shard_traced_s": 20.0}   # 20x > 14x
        problems = check_regression.tracing_overhead(current)
        assert len(problems) == 2


class TestKernelFloor:
    """The absolute floor on the batched SoA kernel rate."""

    def test_rate_above_floor_passes(self):
        current = {"kernel_events_per_sec": 4_000_000.0}
        assert check_regression.kernel_floor(current, floor=3_220_000) == []

    def test_rate_below_floor_fails(self):
        current = {"kernel_events_per_sec": 3_000_000.0}
        problems = check_regression.kernel_floor(current, floor=3_220_000)
        assert len(problems) == 1
        assert "floor" in problems[0]

    def test_missing_metric_skips_the_check(self):
        assert check_regression.kernel_floor({}) == []

    def test_default_floor_is_3x_the_object_seed_class(self):
        # the ISSUE gate: >= 3x the pre-SoA ~1.07M events/sec ceiling
        assert check_regression.FLOOR_KERNEL_EVENTS_PER_SEC >= 3_210_000


class TestCommittedBaseline:
    def test_baseline_file_is_well_formed(self):
        data = json.loads(check_regression.BASELINE_PATH.read_text())
        assert data["kernel_events_per_sec"] > 0
        assert data["sweep8_serial_s"] > 0
        assert data["sweep8_jobs4_s"] > 0
        # the seed snapshot documents what the perf work bought; the
        # sweep margin uses the same 1.5x floor as bench_throughput.py
        # (single-core host, ~20-40% session-to-session variance)
        seed = data["seed"]
        assert (data["kernel_events_per_sec_object"]
                >= seed["kernel_events_per_sec_object"] / 2.0)
        assert data["sweep8_serial_s"] <= seed["sweep8_serial_s"] / 1.5
        # the batched SoA kernel must clear the absolute floor with room
        assert data["kernel_events_per_sec"] >= (
            check_regression.FLOOR_KERNEL_EVENTS_PER_SEC)
        assert check_regression.kernel_floor(data) == []
        # the telemetry reference cells (unsharded and sharded) must
        # themselves satisfy their overhead caps
        assert data["cell_obs_off_s"] > 0
        assert data["cell_traced_s"] > 0
        assert data["shard_obs_off_s"] > 0
        assert data["shard_traced_s"] > 0
        assert check_regression.tracing_overhead(data) == []

    def test_baseline_passes_against_itself(self):
        data = json.loads(check_regression.BASELINE_PATH.read_text())
        assert check_regression.compare(data, data) == []

    def test_main_reports_missing_results(self, tmp_path):
        assert check_regression.main([str(tmp_path / "nope.json")]) == 2

    def test_main_flags_regression(self, tmp_path, capsys):
        bad = dict(json.loads(check_regression.BASELINE_PATH.read_text()))
        bad["kernel_events_per_sec"] = bad["kernel_events_per_sec"] * 0.5
        path = tmp_path / "throughput.json"
        path.write_text(json.dumps(bad))
        assert check_regression.main([str(path)]) == 1
        assert "REGRESSION" in capsys.readouterr().out


class TestCiGate:
    """The combined gate script: importable helpers, graceful skips."""

    @pytest.fixture(scope="class")
    def ci_gate(self):
        import sys
        sys.modules.setdefault("check_regression", check_regression)
        spec = importlib.util.spec_from_file_location(
            "ci_gate", REPO_ROOT / "benchmarks" / "ci_gate.py")
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_has_pytest_cov_is_boolean(self, ci_gate):
        assert isinstance(ci_gate.has_pytest_cov(), bool)

    def test_regression_check_skips_without_results(self, ci_gate, tmp_path,
                                                    monkeypatch, capsys):
        monkeypatch.setattr(ci_gate, "RESULTS_PATH", tmp_path / "missing.json")
        assert ci_gate.run_regression_check() == 0
        assert "perf gate skipped" in capsys.readouterr().out

    def test_regression_check_runs_on_fresh_results(self, ci_gate, tmp_path,
                                                    monkeypatch, capsys):
        results = tmp_path / "throughput.json"
        # numbers far better than any plausible baseline: gate must pass
        results.write_text(json.dumps({"kernel_events_per_sec": 1e12,
                                       "sweep8_serial_s": 1e-6,
                                       "sweep8_jobs4_s": 1e-6}))
        monkeypatch.setattr(ci_gate, "RESULTS_PATH", results)
        assert ci_gate.run_regression_check() == 0
        assert "ok:" in capsys.readouterr().out
