"""FaultConfig validation and the --faults spec parser."""

import pytest

from repro.faults import FaultConfig, parse_faults_spec


class TestFaultConfig:
    def test_defaults_are_valid(self):
        cfg = FaultConfig()
        assert cfg.seed == 0
        assert cfg.accel > 1.0
        assert cfg.max_retries >= 0

    @pytest.mark.parametrize("kwargs", [
        {"seed": -1},
        {"accel": 0.0},
        {"accel": -10.0},
        {"hazard_refresh_s": 0.0},
        {"repair_delay_s": -1.0},
        {"max_retries": -1},
        {"retry_backoff_s": 0.0},
        {"retry_timeout_s": 0.0},
    ])
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultConfig(**kwargs)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            FaultConfig().seed = 5


class TestParseFaultsSpec:
    def test_on_gives_defaults(self):
        assert parse_faults_spec("on") == FaultConfig()
        assert parse_faults_spec("ON") == FaultConfig()

    def test_key_value_list(self):
        cfg = parse_faults_spec("seed=7,accel=10000,repair_delay_s=300")
        assert cfg == FaultConfig(seed=7, accel=10_000.0, repair_delay_s=300.0)

    def test_int_fields_parse_as_int(self):
        cfg = parse_faults_spec("max_retries=4")
        assert cfg.max_retries == 4
        assert isinstance(cfg.max_retries, int)

    def test_whitespace_tolerated(self):
        assert parse_faults_spec(" seed = 3 ").seed == 3

    @pytest.mark.parametrize("spec, fragment", [
        ("", "must not be empty"),
        ("   ", "must not be empty"),
        ("seed", "expected key=value"),
        ("bogus=1", "unknown --faults key"),
        ("accel=banana", "bad --faults value"),
        ("seed=1.5", "bad --faults value"),
        ("accel=-5", "accel"),
    ])
    def test_bad_specs_raise(self, spec, fragment):
        with pytest.raises(ValueError, match=fragment):
            parse_faults_spec(spec)
