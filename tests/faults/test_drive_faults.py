"""Drive/array fault mechanics: fail, fast-fail serving, replacement."""

import numpy as np
import pytest

from repro.disk.array import DiskArray
from repro.disk.drive import DrivePhase, Job, TwoSpeedDrive
from repro.disk.parameters import DiskSpeed
from repro.workload.request import Request


def user_job(done, size_mb=8.0, t=0.0):
    req = Request(arrival_time=t, file_id=0, size_mb=size_mb)
    return Job.for_request(req, on_complete=done.append)


class TestDriveFail:
    def test_fail_drops_in_flight_and_queued_jobs(self, sim, params):
        drive = TwoSpeedDrive(sim, params, 0)
        done = []
        for _ in range(3):
            drive.submit(user_job(done))
        sim.schedule(0.001, lambda: drive.fail())
        sim.run_until_drained()
        assert len(done) == 3
        assert all(job.failed for job in done)
        assert drive.is_failed
        assert drive.phase is DrivePhase.FAILED

    def test_fail_returns_dropped_jobs_served_first(self, sim, params):
        drive = TwoSpeedDrive(sim, params, 0)
        done = []
        jobs = [user_job(done) for _ in range(2)]
        for job in jobs:
            drive.submit(job)
        dropped = drive.fail()
        assert dropped == jobs

    def test_fail_is_idempotent(self, sim, params):
        drive = TwoSpeedDrive(sim, params, 0)
        done = []
        drive.submit(user_job(done))
        assert len(drive.fail()) == 1
        assert drive.fail() == []  # second call is a no-op

    def test_submit_to_failed_drive_fails_fast(self, sim, params):
        drive = TwoSpeedDrive(sim, params, 0)
        drive.fail()
        done = []
        job = user_job(done)
        drive.submit(job)
        assert job.failed
        assert done == [job]

    def test_failed_drive_refuses_speed_requests(self, sim, params):
        drive = TwoSpeedDrive(sim, params, 0)
        drive.fail()
        assert drive.request_speed(DiskSpeed.LOW) is False

    def test_no_energy_accrues_while_failed(self, sim, params):
        drive = TwoSpeedDrive(sim, params, 0)
        snapshots = []
        sim.schedule(1.0, drive.fail)
        sim.schedule(1.0, lambda: snapshots.append(drive.energy.total_energy_j),
                     priority=1)
        sim.schedule(101.0, drive.finalize)
        sim.schedule(101.0, lambda: snapshots.append(drive.energy.total_energy_j),
                     priority=1)
        sim.run_until_drained()
        at_failure, much_later = snapshots
        assert at_failure > 0.0  # idle energy up to the failure
        assert much_later == at_failure  # a dead spindle draws nothing


class TestReplacement:
    def test_replace_requires_failed(self, sim, params):
        drive = TwoSpeedDrive(sim, params, 0)
        with pytest.raises(RuntimeError, match="requires a failed drive"):
            drive.replace_with_new_spindle()

    def test_replacement_boots_idle_at_requested_speed(self, sim, params):
        drive = TwoSpeedDrive(sim, params, 0)
        drive.fail()
        transitions_before = drive.stats.speed_transitions_total
        drive.replace_with_new_spindle(speed=DiskSpeed.LOW)
        assert not drive.is_failed
        assert drive.phase is DrivePhase.IDLE
        assert drive.speed is DiskSpeed.LOW
        # booting outside the array charges no transition
        assert drive.stats.speed_transitions_total == transitions_before

    def test_replacement_serves_again(self, sim, params):
        drive = TwoSpeedDrive(sim, params, 0)
        drive.fail()
        drive.replace_with_new_spindle()
        done = []
        drive.submit(user_job(done))
        sim.run_until_drained()
        assert len(done) == 1
        assert not done[0].failed


class TestArrayFaultSurface:
    @pytest.fixture
    def array(self, sim, params, tiny_fileset):
        arr = DiskArray(sim, params, 3, tiny_fileset)
        arr.place_all(np.array([0, 1, 2, 0, 1, 2, 0, 1]))
        return arr

    def test_disk_is_up_tracks_failures(self, array):
        assert all(array.disk_is_up(d) for d in range(3))
        array.fail_disk(1)
        assert array.disk_is_up(0)
        assert not array.disk_is_up(1)
        array.replace_disk(1)
        assert array.disk_is_up(1)

    def test_placement_survives_failure(self, array):
        before = list(array.files_on(2))
        array.fail_disk(2)
        assert list(array.files_on(2)) == before
        assert array.location_of(2) == 2

    def test_submit_request_to_failed_primary_fails(self, sim, array):
        array.fail_disk(0)
        done = []
        req = Request(arrival_time=0.0, file_id=0, size_mb=1.0)
        job = array.submit_request(req, on_complete=done.append)
        assert job.failed
        assert done == [job]
