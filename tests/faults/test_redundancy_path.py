"""Fault path under a redundancy-group layout: reconstruction fan-in,
rebuild fan-out, group health, the loss census, and domain outages."""

import numpy as np
import pytest

from repro.disk.array import DiskArray
from repro.faults import DiskLifecycle, FaultConfig, FaultInjector
from repro.policies.base import Policy
from repro.redundancy import GroupHealth, RedundancyGroups, SCHEME_PRESETS
from repro.redundancy.scheme import mirror_scheme
from repro.workload.request import Request


class StubPolicy(Policy):
    name = "stub"

    def initial_layout(self):
        pass

    def route(self, request):
        self.submit(request)

    def alternate_targets(self, file_id):
        return ()


@pytest.fixture
def harness(sim, params, press, tiny_fileset):
    """Array + injector with a redundancy layout attached."""
    def build(scheme, n_disks, config=None):
        array = DiskArray(sim, params, n_disks, tiny_fileset)
        array.place_all(np.arange(len(tiny_fileset)) % n_disks)
        policy = StubPolicy()
        policy.bind(sim, array, tiny_fileset)
        ok, dead = [], []
        injector = FaultInjector(
            sim, array, policy, press, config or FaultConfig(),
            on_success=ok.append, on_permanent_failure=dead.append,
            redundancy=RedundancyGroups(scheme, n_disks))
        injector.install()
        policy.completion_callback = injector.on_user_job_complete
        return sim, array, policy, injector, ok, dead
    return build


def make_request(t, file_id, fileset):
    return Request(arrival_time=t, file_id=file_id,
                   size_mb=fileset.size_of(file_id))


class TestReconstructFanIn:
    def test_parity_read_fans_k_legs_across_survivors(self, harness, tiny_fileset):
        sim, array, policy, injector, ok, dead = harness(
            SCHEME_PRESETS["block4-2"], 8)
        injector._fail(0)
        req = make_request(sim.now, 0, tiny_fileset)  # file 0 lives on disk 0
        policy.route(req)
        injector.shutdown()
        sim.run_until_drained()
        assert len(ok) == 1 and not dead
        assert req.completion_time > req.arrival_time
        assert injector.rtracker.reconstruct_reads == 1
        assert injector.rtracker.reconstruct_legs == 6
        assert injector.tracker.requests_redirected == 1
        # each leg is a shard-sized internal read on one survivor
        served = [d.stats.internal_jobs_served for d in array.drives]
        assert served == [0, 1, 1, 1, 1, 1, 1, 0]

    def test_mirror_read_redirects_to_live_copy(self, harness, tiny_fileset):
        sim, array, policy, injector, ok, dead = harness(mirror_scheme(2), 2)
        injector._fail(0)
        req = make_request(sim.now, 0, tiny_fileset)
        policy.route(req)
        injector.shutdown()
        sim.run_until_drained()
        assert len(ok) == 1 and not dead
        assert injector.rtracker.reconstruct_reads == 1
        assert injector.rtracker.reconstruct_legs == 1
        assert req.served_by == 1  # the mirror copy served it

    def test_pierced_group_fails_requests_fast(self, harness, tiny_fileset):
        cfg = FaultConfig(max_retries=0, repair_delay_s=1e6)
        sim, array, policy, injector, ok, dead = harness(
            SCHEME_PRESETS["block4-2"], 8, cfg)
        for d in (0, 1, 2):  # three down: fewer than k=6 survivors
            injector._fail(d)
        req = make_request(sim.now, 0, tiny_fileset)
        policy.route(req)
        injector.shutdown()
        sim.run_until_drained()
        assert not ok and len(dead) == 1
        assert injector.rtracker.reconstruct_reads == 0
        assert injector.tracker.requests_failed == 1

    def test_up_target_serves_normally(self, harness, tiny_fileset):
        sim, array, policy, injector, ok, dead = harness(
            SCHEME_PRESETS["block4-2"], 8)
        policy.route(make_request(sim.now, 3, tiny_fileset))
        injector.shutdown()
        sim.run_until_drained()
        assert len(ok) == 1
        assert injector.rtracker.reconstruct_reads == 0
        assert sum(d.stats.internal_jobs_served for d in array.drives) == 0


class TestRebuildFanOut:
    def test_parity_rebuild_reads_k_sources(self, harness):
        cfg = FaultConfig(repair_delay_s=5.0)
        sim, array, policy, injector, ok, dead = harness(
            SCHEME_PRESETS["block4-2"], 8, cfg)
        injector._fail(0)
        sim.run(until=6.0)  # repair delay elapsed, rebuild streaming
        assert injector.rtracker.rebuild_read_legs == 6
        injector.shutdown()
        sim.run_until_drained()
        assert injector.lifecycle_of(0) is DiskLifecycle.UP
        assert injector.rtracker.mean_rebuild_s() > 5.0  # includes the delay

    def test_mirror_rebuild_streams_from_the_copy(self, harness):
        cfg = FaultConfig(repair_delay_s=5.0)
        sim, array, policy, injector, ok, dead = harness(mirror_scheme(2), 2, cfg)
        injector._fail(0)
        sim.run(until=6.0)  # repair delay elapsed, copy stream running
        injector.shutdown()
        sim.run_until_drained()
        assert injector.rtracker.rebuild_read_legs == 1

    def test_lost_group_rebuild_is_a_cold_restore(self, harness):
        cfg = FaultConfig(repair_delay_s=5.0)
        sim, array, policy, injector, ok, dead = harness(mirror_scheme(2), 2, cfg)
        injector._fail(0)
        injector._fail(1)  # both copies down: the group is lost
        sim.run(until=6.0)  # repair delay elapsed for both
        injector.shutdown()
        sim.run_until_drained()
        # the first restoration has no surviving source (cold restore
        # from backup, 0 legs); the second reads its single leg from the
        # first replacement — queued behind that disk's own restore
        # stream, so the copy chain serializes correctly
        assert injector.rtracker.rebuild_read_legs == 1
        assert injector.tracker.rebuilds_completed == 2
        assert injector.rtracker.groups_lost_events == 1


class TestGroupHealthAndCensus:
    def test_health_ladder_is_recorded(self, harness):
        cfg = FaultConfig(repair_delay_s=2.0)
        sim, array, policy, injector, ok, dead = harness(
            SCHEME_PRESETS["block4-2"], 8, cfg)
        injector._fail(0)
        assert injector._group_health[0] is GroupHealth.DEGRADED
        injector._fail(1)
        assert injector._group_health[0] is GroupHealth.CRITICAL
        sim.run(until=3.0)  # repair delay elapsed, restore streams running
        injector.shutdown()
        sim.run_until_drained()
        assert injector._group_health[0] is GroupHealth.HEALTHY
        transitions = [(old, new) for _, _, old, new
                       in injector.rtracker.state_changes]
        assert transitions == [("healthy", "degraded"),
                               ("degraded", "critical"),
                               ("critical", "degraded"),
                               ("degraded", "healthy")]

    def test_no_data_loss_while_group_survives(self, harness):
        sim, array, policy, injector, ok, dead = harness(
            SCHEME_PRESETS["block4-2"], 8, FaultConfig(repair_delay_s=1e6))
        injector._fail(0)
        injector._fail(1)
        assert injector.tracker.data_loss_events == 0
        assert injector.tracker.files_lost == 0

    def test_census_charges_loss_when_group_pierced(self, harness, tiny_fileset):
        sim, array, policy, injector, ok, dead = harness(
            SCHEME_PRESETS["block4-2"], 8, FaultConfig(repair_delay_s=1e6))
        for d in (0, 1, 2):
            injector._fail(d)
        # the third failure had < k survivors: its files are lost
        assert injector.tracker.data_loss_events == 1
        assert injector.tracker.files_lost == len(array.files_on(2))
        assert injector.rtracker.groups_lost_events == 1


class TestDomainOutages:
    def test_outage_fails_the_whole_domain_at_once(self, harness):
        # mirror2 on 4 disks: domains {0, 2} and {1, 3}; a hot outage
        # rate guarantees a hit well inside the observation window
        cfg = FaultConfig(seed=11, accel=1.0, repair_delay_s=1e9,
                          domain_outage_per_year=2e8)
        sim, array, policy, injector, ok, dead = harness(mirror_scheme(2), 4, cfg)
        sim.run(until=100.0)
        injector.shutdown()
        assert injector.rtracker.domain_outages >= 1
        by_time = {}
        for disk, t in injector.tracker.failure_schedule:
            by_time.setdefault(t, []).append(disk)
        groups = injector._groups
        correlated = [sorted(disks) for disks in by_time.values()
                      if len(disks) > 1]
        assert correlated, "expected at least one multi-disk instant"
        for disks in correlated:
            domains = {groups.domain_of(d) for d in disks}
            assert len(domains) == 1  # all victims share one domain

    def test_outages_are_deterministic(self, sim, params, press, tiny_fileset):
        def run_once():
            from repro.sim.engine import Simulator

            local = Simulator()
            array = DiskArray(local, params, 4, tiny_fileset)
            array.place_all(np.arange(len(tiny_fileset)) % 4)
            policy = StubPolicy()
            policy.bind(local, array, tiny_fileset)
            injector = FaultInjector(
                local, array, policy, press,
                FaultConfig(seed=11, accel=1.0, repair_delay_s=1e9,
                            domain_outage_per_year=2e8),
                on_success=lambda job: None,
                on_permanent_failure=lambda job: None,
                redundancy=RedundancyGroups(mirror_scheme(2), 4))
            injector.install()
            policy.completion_callback = injector.on_user_job_complete
            local.run(until=100.0)
            injector.shutdown()
            return (injector.tracker.failure_schedule,
                    tuple(injector.rtracker.state_changes))
        assert run_once() == run_once()

    def test_budgets_unperturbed_by_redundancy(self, params, press, tiny_fileset):
        """Attaching a layout must not move the per-disk failure draws:
        the domain streams come from their own label family."""
        from repro.sim.engine import Simulator

        def budgets(redundancy, config):
            local = Simulator()
            array = DiskArray(local, params, 4, tiny_fileset)
            array.place_all(np.arange(len(tiny_fileset)) % 4)
            policy = StubPolicy()
            policy.bind(local, array, tiny_fileset)
            injector = FaultInjector(
                local, array, policy, press, config,
                on_success=lambda job: None,
                on_permanent_failure=lambda job: None,
                redundancy=redundancy)
            return list(injector._budget)

        plain = budgets(None, FaultConfig(seed=5))
        with_groups = budgets(RedundancyGroups(mirror_scheme(2), 4),
                              FaultConfig(seed=5, domain_outage_per_year=1e8))
        assert plain == with_groups
