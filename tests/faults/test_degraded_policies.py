"""Degraded-mode serving through the real policies.

The injector unit tests use a scripted stub; these check that the
shipping policies' redundancy actually carries traffic around failures —
READ-replicate's replicas, MAID's cache copies — and that every policy
survives an accelerated-failure run deterministically.
"""

import pytest

from repro.experiments.runner import make_policy, run_simulation
from repro.faults import FaultConfig, FaultInjector
from repro.policies.maid import MAIDPolicy
from repro.workload.request import Request
from repro.workload.synthetic import SyntheticWorkloadConfig, WorldCupLikeWorkload

#: Aggressive acceleration sized so a ~100 s, 4-disk run sees failures.
FAULTS = FaultConfig(seed=3, accel=2e6, hazard_refresh_s=5.0,
                     repair_delay_s=20.0)


@pytest.fixture(scope="module")
def workload():
    cfg = SyntheticWorkloadConfig(n_files=120, n_requests=5_000, seed=42,
                                  mean_interarrival_s=0.02)
    return WorldCupLikeWorkload(cfg).generate()


class TestCrossPolicySurvival:
    @pytest.mark.parametrize("name", ["read", "maid", "pdc", "static-high",
                                      "striped-static", "read-replicate"])
    def test_policy_survives_accelerated_failures(self, workload, name):
        fileset, trace = workload
        result = run_simulation(make_policy(name), fileset, trace,
                                n_disks=4, faults=FAULTS)
        f = result.faults
        assert f is not None
        assert f.disk_failures >= 1  # the acceleration actually bites
        assert 0.0 < f.availability < 1.0
        assert f.requests_failed + f.requests_retried > 0
        assert result.total_energy_j > 0.0

    def test_same_seed_same_outcome(self, workload):
        fileset, trace = workload
        runs = [run_simulation(make_policy("pdc"), fileset, trace,
                               n_disks=4, faults=FAULTS) for _ in range(2)]
        assert runs[0].faults == runs[1].faults
        assert runs[0].total_energy_j == runs[1].total_energy_j
        assert runs[0].mean_response_s == runs[1].mean_response_s

    def test_different_seed_different_schedule(self, workload):
        fileset, trace = workload
        a = run_simulation(make_policy("pdc"), fileset, trace, n_disks=4,
                           faults=FAULTS)
        b = run_simulation(make_policy("pdc"), fileset, trace, n_disks=4,
                           faults=FaultConfig(seed=99, accel=2e6,
                                              hazard_refresh_s=5.0,
                                              repair_delay_s=20.0))
        assert a.faults.failure_schedule != b.faults.failure_schedule


class TestReplicaRedirect:
    def test_replicas_carry_reads_around_failures(self, workload):
        # a short epoch lets replicas materialize inside the run
        fileset, trace = workload
        policy = make_policy("read-replicate", epoch_s=10.0)
        result = run_simulation(policy, fileset, trace, n_disks=4,
                                faults=FAULTS)
        assert policy.replicas_created > 0
        assert result.faults.requests_redirected > 0


class TestMaidCacheServing:
    def test_cached_file_served_after_primary_fails(self, sim, params, press,
                                                    tiny_fileset):
        from repro.disk.array import DiskArray

        array = DiskArray(sim, params, 3, tiny_fileset)
        policy = MAIDPolicy()
        policy.bind(sim, array, tiny_fileset)
        policy.initial_layout()  # disk 0 = cache, 1..2 = passive
        ok, dead = [], []
        injector = FaultInjector(sim, array, policy, press, FaultConfig(),
                                 on_success=ok.append,
                                 on_permanent_failure=dead.append)
        injector.install()
        policy.completion_callback = injector.on_user_job_complete

        fid = int(array.files_on(1)[0])

        def first_request():
            policy.route(Request(arrival_time=sim.now, file_id=fid,
                                 size_mb=tiny_fileset.size_of(fid)))

        def after_warmup():
            # miss served from the primary; the cache copy completed
            assert policy._cache.get(fid) == 0
            injector._fail(1)
            policy.route(Request(arrival_time=sim.now, file_id=fid,
                                 size_mb=tiny_fileset.size_of(fid)))

        sim.schedule(0.0, first_request)
        sim.schedule(30.0, after_warmup)
        sim.schedule(31.0, injector.shutdown)
        sim.run_until_drained()
        # both requests served, the second one from the cache disk while
        # the primary was down
        assert len(ok) == 2 and not dead
        assert ok[1].request.served_by == 0
