"""FaultInjector: lifecycle, degraded serving, retries, determinism."""

import numpy as np
import pytest

from repro.disk.array import DiskArray
from repro.faults import DiskLifecycle, FaultConfig, FaultInjector
from repro.policies.base import Policy
from repro.workload.request import Request


class StubPolicy(Policy):
    """Minimal policy: direct placement routing plus scriptable alternates."""

    name = "stub"

    def __init__(self, alternates=None):
        super().__init__()
        self.alternates = dict(alternates or {})
        self.failed_disks = []
        self.restored_disks = []

    def initial_layout(self):
        pass

    def route(self, request):
        self.submit(request)

    def alternate_targets(self, file_id):
        return self.alternates.get(file_id, ())

    def on_disk_failed(self, disk_id):
        self.failed_disks.append(disk_id)

    def on_disk_restored(self, disk_id):
        self.restored_disks.append(disk_id)


@pytest.fixture
def harness(sim, params, press, tiny_fileset):
    """Array + stub policy + installed injector, with result collectors."""
    def build(config=None, alternates=None, n_disks=3):
        array = DiskArray(sim, params, n_disks, tiny_fileset)
        array.place_all(np.array([0, 1, 2, 0, 1, 2, 0, 1]) % n_disks)
        policy = StubPolicy(alternates)
        policy.bind(sim, array, tiny_fileset)
        ok, dead = [], []
        injector = FaultInjector(sim, array, policy, press,
                                 config or FaultConfig(),
                                 on_success=ok.append,
                                 on_permanent_failure=dead.append)
        injector.install()
        policy.completion_callback = injector.on_user_job_complete
        return sim, array, policy, injector, ok, dead
    return build


def make_request(t, file_id, fileset):
    return Request(arrival_time=t, file_id=file_id,
                   size_mb=fileset.size_of(file_id))


class TestLifecycle:
    def test_fail_then_rebuild_returns_to_up(self, harness, tiny_fileset):
        cfg = FaultConfig(repair_delay_s=10.0)
        sim, array, policy, injector, ok, dead = harness(cfg)
        sim.schedule(5.0, lambda: injector._fail(0))
        sim.run(until=5.1)
        assert injector.lifecycle_of(0) is DiskLifecycle.FAILED
        assert not array.disk_is_up(0)
        assert policy.failed_disks == [0]
        sim.run(until=16.0)
        # repair delay elapsed: replacement installed, rebuild job running
        assert array.disk_is_up(0)
        injector.shutdown()
        sim.run_until_drained()
        assert injector.lifecycle_of(0) is DiskLifecycle.UP
        assert policy.restored_disks == [0]
        assert injector.tracker.rebuilds_completed == 1
        assert injector.tracker.rebuild_energy_j > 0.0

    def test_downtime_measures_failure_to_rebuild_complete(self, harness):
        cfg = FaultConfig(repair_delay_s=10.0)
        sim, array, policy, injector, ok, dead = harness(cfg)
        sim.schedule(5.0, lambda: injector._fail(1))
        sim.run(until=40.0)
        injector.shutdown()
        sim.run_until_drained()
        summary = injector.tracker.summarize(n_disks=3, duration_s=sim.now)
        assert summary.disk_failures == 1
        # downtime covers at least the repair delay, and availability
        # accounts it against 3 disk-lifetimes
        assert summary.downtime_s >= 10.0
        assert 0.0 < summary.availability < 1.0
        expected = 1.0 - summary.downtime_s / (3 * sim.now)
        assert summary.availability == pytest.approx(expected)

    def test_data_loss_census_counts_unprotected_files(self, harness, tiny_fileset):
        sim, array, policy, injector, ok, dead = harness()
        n_on_disk0 = len(array.files_on(0))
        sim.schedule(1.0, lambda: injector._fail(0))
        sim.run(until=2.0)
        assert injector.tracker.data_loss_events == 1
        assert injector.tracker.files_lost == n_on_disk0
        injector.shutdown()

    def test_no_data_loss_when_alternates_cover(self, harness, tiny_fileset):
        # every file on disk 0 has a live copy on disk 1
        alternates = {fid: (1,) for fid in range(len(tiny_fileset))}
        sim, array, policy, injector, ok, dead = harness(alternates=alternates)
        sim.schedule(1.0, lambda: injector._fail(0))
        sim.run(until=2.0)
        assert injector.tracker.data_loss_events == 0
        assert injector.tracker.files_lost == 0
        injector.shutdown()


class TestDegradedServing:
    def test_up_primary_serves_directly(self, harness, tiny_fileset):
        sim, array, policy, injector, ok, dead = harness()
        sim.schedule(0.0, lambda: policy.route(make_request(0.0, 0, tiny_fileset)))
        injector.shutdown()
        sim.run_until_drained()
        assert len(ok) == 1 and not dead
        assert injector.tracker.requests_redirected == 0

    def test_redirect_to_alternate_when_primary_down(self, harness, tiny_fileset):
        # file 0 lives on disk 0, replica on disk 1
        sim, array, policy, injector, ok, dead = harness(alternates={0: (1,)})
        sim.schedule(1.0, lambda: injector._fail(0))
        sim.schedule(2.0, lambda: policy.route(make_request(2.0, 0, tiny_fileset)))
        sim.schedule(3.0, injector.shutdown)
        sim.run_until_drained()
        assert len(ok) == 1 and not dead
        assert ok[0].request.served_by == 1
        assert injector.tracker.requests_redirected == 1

    def test_dead_alternate_falls_back_to_primary(self, harness, tiny_fileset):
        sim, array, policy, injector, ok, dead = harness()
        # explicit submit to a failed non-primary target (a cache disk)
        sim.schedule(1.0, lambda: injector._fail(1))
        sim.schedule(2.0, lambda: injector.submit_user_request(
            make_request(2.0, 0, tiny_fileset), 1))
        sim.schedule(3.0, injector.shutdown)
        sim.run_until_drained()
        assert len(ok) == 1 and not dead
        assert ok[0].request.served_by == 0  # primary of file 0
        assert injector.tracker.requests_redirected == 1

    def test_no_live_copy_enters_retry_then_fails(self, harness, tiny_fileset):
        cfg = FaultConfig(repair_delay_s=1e6, max_retries=2,
                          retry_backoff_s=0.5, retry_timeout_s=100.0)
        sim, array, policy, injector, ok, dead = harness(cfg)
        sim.schedule(1.0, lambda: injector._fail(0))
        sim.schedule(2.0, lambda: policy.route(make_request(2.0, 0, tiny_fileset)))
        sim.run(until=50.0)
        injector.shutdown()
        sim.run_until_drained()
        assert not ok
        assert len(dead) == 1
        assert injector.tracker.requests_retried == 2
        assert injector.tracker.requests_failed == 1
        assert dead[0].request.retries == 2

    def test_retry_succeeds_after_rebuild(self, harness, tiny_fileset):
        # disk comes back inside the retry window: the request survives
        cfg = FaultConfig(repair_delay_s=2.0, max_retries=5,
                          retry_backoff_s=5.0, retry_timeout_s=1000.0)
        sim, array, policy, injector, ok, dead = harness(cfg)
        sim.schedule(1.0, lambda: injector._fail(0))
        sim.schedule(2.0, lambda: policy.route(make_request(2.0, 0, tiny_fileset)))
        sim.run(until=60.0)
        injector.shutdown()
        sim.run_until_drained()
        assert len(ok) == 1 and not dead
        assert ok[0].request.retries >= 1
        assert injector.tracker.requests_failed == 0

    def test_zero_retries_fails_immediately(self, harness, tiny_fileset):
        cfg = FaultConfig(repair_delay_s=1e6, max_retries=0)
        sim, array, policy, injector, ok, dead = harness(cfg)
        sim.schedule(1.0, lambda: injector._fail(0))
        sim.schedule(2.0, lambda: policy.route(make_request(2.0, 0, tiny_fileset)))
        sim.run(until=5.0)
        injector.shutdown()
        sim.run_until_drained()
        assert len(dead) == 1
        assert injector.tracker.requests_retried == 0
