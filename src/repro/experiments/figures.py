"""Per-figure reproduction functions (the experiment index of DESIGN.md).

Each ``figureNN_*`` function returns the data series of the matching
paper figure; the benchmark files under ``benchmarks/`` call these and
print the rows.  Figures 2-5 are model curves (fast, deterministic);
Figure 7 is the trace-driven policy comparison (the expensive sweep).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from repro.experiments.metrics import SimulationResult
from repro.experiments.parallel import RunSpec, run_cells
from repro.experiments.resilience import ResilienceConfig, ResilienceSummary
from repro.experiments.runner import ExperimentConfig
from repro.faults import FaultConfig
from repro.redundancy.scheme import GroupScheme
from repro.obs import ObsConfig
from repro.press.frequency import FrequencyReliability
from repro.press.model import PRESSModel
from repro.press.temperature import TemperatureReliability
from repro.press.utilization import UtilizationReliability
from repro.util.validation import require

__all__ = [
    "figure2b_series",
    "figure3b_series",
    "figure4a_series",
    "figure4b_series",
    "figure5_surface",
    "Figure7Results",
    "figure7_comparison",
    "headline_summary",
]

#: The array sizes of the paper's sweep (Sec. 5.1: "from 6 to 16").
PAPER_DISK_COUNTS: tuple[int, ...] = (6, 8, 10, 12, 14, 16)
#: The three compared algorithms (Sec. 5).
PAPER_POLICIES: tuple[str, ...] = ("read", "maid", "pdc")


def figure2b_series(n_points: int = 26) -> tuple[np.ndarray, np.ndarray]:
    """Fig. 2b: temperature-reliability function (AFR % vs degC)."""
    return TemperatureReliability().curve(n_points)


def figure3b_series(n_points: int = 16) -> tuple[np.ndarray, np.ndarray]:
    """Fig. 3b: utilization-reliability function (AFR % vs util %)."""
    return UtilizationReliability().curve(n_points)


def figure4a_series(n_points: int = 17) -> tuple[np.ndarray, np.ndarray]:
    """Fig. 4a: extended IDEMA start/stop adder (AFR % vs events/day)."""
    return FrequencyReliability().idema_curve(n_points)


def figure4b_series(n_points: int = 17) -> tuple[np.ndarray, np.ndarray]:
    """Fig. 4b: frequency-reliability function, Eq. 3 (AFR % vs /day)."""
    return FrequencyReliability().curve(n_points)


def figure5_surface(temp_c: float, *, n_util: int = 16, n_freq: int = 17,
                    press: PRESSModel | None = None
                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fig. 5a/5b: the PRESS AFR surface at a fixed temperature.

    Returns (utilization % grid, frequency/day grid, AFR % surface of
    shape ``(n_util, n_freq)``).  The paper shows 40 degC (5a, low
    speed) and 50 degC (5b, high speed).
    """
    model = press or PRESSModel()
    utils = np.linspace(25.0, 100.0, n_util)
    freqs = np.linspace(0.0, 1600.0, n_freq)
    return utils, freqs, model.afr_surface(temp_c, utils, freqs)


# ----------------------------------------------------------------------
# Figure 7: the policy comparison sweep
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class Figure7Results:
    """All three Fig. 7 panels for one workload condition."""

    disk_counts: tuple[int, ...]
    #: policy name -> one SimulationResult per disk count.
    results: dict[str, tuple[SimulationResult, ...]] = field(default_factory=dict)
    #: Harness fault ledger; ``None`` when the sweep ran without the
    #: resilience engine (see :mod:`repro.experiments.resilience`).
    resilience: "ResilienceSummary | None" = None

    def series(self, metric: str) -> dict[str, np.ndarray]:
        """Extract one panel: metric in {'afr', 'energy', 'response'}."""
        getters = {
            "afr": lambda r: r.array_afr_percent,
            "energy": lambda r: r.total_energy_j,
            "response": lambda r: r.mean_response_s,
        }
        require(metric in getters, f"metric must be one of {sorted(getters)}")
        get = getters[metric]
        return {name: np.array([get(r) for r in runs], dtype=np.float64)
                for name, runs in self.results.items()}


def _cell_obs(base: Optional[ObsConfig], policy: str, n_disks: int) -> Optional[ObsConfig]:
    """Derive one cell's telemetry config from the sweep-wide one.

    Output paths gain a ``-<policy>-<disks>`` stem suffix so every cell
    writes its own trace/metrics file.
    """
    if base is None:
        return None

    def _suffixed(p: Optional[str]) -> Optional[str]:
        if p is None:
            return None
        path = Path(p)
        return str(path.with_name(f"{path.stem}-{policy}-{n_disks}{path.suffix}"))

    if base.trace_path is None and base.metrics_path is None:
        return base
    return replace(base, trace_path=_suffixed(base.trace_path),
                   metrics_path=_suffixed(base.metrics_path))


def figure7_comparison(config: ExperimentConfig | None = None, *,
                       disk_counts: Sequence[int] = PAPER_DISK_COUNTS,
                       policies: Sequence[str] = PAPER_POLICIES,
                       press: PRESSModel | None = None,
                       policy_kwargs: dict[str, dict] | None = None,
                       faults: FaultConfig | None = None,
                       obs: ObsConfig | None = None,
                       redundancy: GroupScheme | None = None,
                       jobs: int = 1,
                       resilience: ResilienceConfig | None = None,
                       checkpoint=None,
                       shards: int | None = None,
                       shard_assignment: str = "affinity",
                       stream_chunk: int | None = None,
                       bus=None) -> Figure7Results:
    """Run the Fig. 7 sweep: every policy at every array size, same trace.

    ``policy_kwargs`` maps policy name -> config overrides (used by the
    ablation benches).  The workload is materialized once (via the
    content-keyed cache) and shared by every cell.  ``jobs`` fans the
    cells over a process pool; results are identical for any value.
    ``faults`` turns on in-run fault injection for every cell, adding
    realized-reliability metrics next to the paper's three.
    ``redundancy`` attaches a group scheme to every cell (array sizes
    must be multiples of its group size); incompatible with ``shards``
    like ``faults``.
    ``obs`` enables telemetry per cell; any output paths it names are
    suffixed with the cell's ``<policy>-<disks>`` so parallel cells
    never write to the same file.

    ``resilience`` and/or ``checkpoint`` (path or
    :class:`~repro.experiments.resilience.SweepCheckpoint`) run the
    sweep under the fault-domain engine; cells already journaled in the
    checkpoint are restored instead of re-run and the harness fault
    ledger lands in :attr:`Figure7Results.resilience`.  Results are
    identical with or without the engine.

    ``shards`` switches every cell to sharded streamed execution (see
    :mod:`repro.experiments.shard`): each array is split into ``shards``
    disk groups simulated independently (one shard sub-cell each, so the
    pool/checkpoint machinery applies per *shard*, not per cell) and
    merged in fixed reduction order.  ``shards`` must divide every entry
    of ``disk_counts``; incompatible with ``faults``.  ``obs`` composes
    with ``shards``: each shard sub-cell runs its own telemetry stack
    (shard-tagged events under global disk ids) and the merge federates
    the segments into the cell's named trace/metrics artifacts (see
    :mod:`repro.obs.federate`) — kernel profiling is the one obs feature
    sharding rejects.  ``stream_chunk`` bounds streamed-generation
    memory (requests per chunk; ``None`` = the stream layer's default).

    ``bus`` is the harness trace bus: sweep/cell span events (and, when
    sharding, the merge spans) land on it, feeding ``repro sweep
    --status-out``'s live status file.
    """
    cfg = config or ExperimentConfig()
    kwargs = policy_kwargs or {}
    if shards is not None:
        return _figure7_sharded(cfg, disk_counts=disk_counts,
                                policies=policies, press=press,
                                policy_kwargs=kwargs, faults=faults, obs=obs,
                                redundancy=redundancy,
                                jobs=jobs, resilience=resilience,
                                checkpoint=checkpoint, shards=shards,
                                assignment=shard_assignment,
                                stream_chunk=stream_chunk, bus=bus)
    specs = [
        RunSpec(policy=name, n_disks=n, workload=cfg.workload,
                policy_kwargs=kwargs.get(name, {}),
                disk_params=cfg.disk_params, press=press, faults=faults,
                obs=_cell_obs(obs, name, n), redundancy=redundancy)
        for name in policies for n in disk_counts
    ]
    summary: ResilienceSummary | None = None
    if resilience is not None or checkpoint is not None:
        from repro.experiments.resilience import run_cells_resilient

        cells, summary = run_cells_resilient(
            specs, jobs=jobs, config=resilience, checkpoint=checkpoint,
            bus=bus)
    else:
        cells = run_cells(specs, jobs=jobs, bus=bus)
    results: dict[str, tuple[SimulationResult, ...]] = {}
    per_policy = len(disk_counts)
    for i, name in enumerate(policies):
        results[name] = tuple(cells[i * per_policy:(i + 1) * per_policy])
    return Figure7Results(disk_counts=tuple(disk_counts), results=results,
                          resilience=summary)


def _figure7_sharded(cfg: ExperimentConfig, *, disk_counts: Sequence[int],
                     policies: Sequence[str], press: PRESSModel | None,
                     policy_kwargs: dict[str, dict], faults, obs,
                     redundancy, jobs: int,
                     resilience: ResilienceConfig | None,
                     checkpoint, shards: int, assignment: str,
                     stream_chunk: int | None, bus=None) -> Figure7Results:
    """The sharded arm of :func:`figure7_comparison`.

    Every (policy, disk count) cell fans out into ``shards`` streamed
    sub-cells; ALL sub-cells of ALL cells go through one
    ``run_cells``/``run_cells_resilient`` batch, so a single checkpoint
    file and a single harness fault ledger cover the whole sweep, and
    resume granularity is one shard.  The sub-cell results are then
    grouped back per cell and merged in fixed reduction order.

    With ``obs`` set, every sub-cell runs the per-shard telemetry stack
    of :func:`~repro.experiments.shard.run_shard_cell` against its
    cell's ``<policy>-<disks>``-suffixed paths, and each cell's merge
    federates the segments/registries into the single-run artifact
    shapes.  Each merge emits a ``harness.shard.merge`` span on ``bus``.
    """
    from time import perf_counter

    from repro.experiments.shard import (
        ShardCellSpec,
        ShardPlan,
        merge_shard_results,
    )
    from repro.obs import events as obs_events
    from repro.workload.stream import DEFAULT_CHUNK_SIZE

    require(faults is None,
            "fault injection is not supported under sharding "
            "(the failure schedule is array-global; drop --shards to "
            "combine --faults with this sweep)")
    require(redundancy is None,
            "redundancy groups are not supported under sharding "
            "(group geometry spans shard boundaries; drop --shards to "
            "combine --redundancy with this sweep)")
    require(obs is None or not obs.profile,
            "kernel profiling is not supported under sharding "
            "(profiles are per-kernel wall timings; profile the "
            "unsharded run instead)")
    for n in disk_counts:
        require(n % shards == 0,
                f"shards ({shards}) must divide every disk count (got {n})")
    chunk = stream_chunk if stream_chunk is not None else DEFAULT_CHUNK_SIZE
    plans = {n: ShardPlan(n_disks=n, n_shards=shards, assignment=assignment)
             for n in disk_counts}
    cell_obs = {(name, n): _cell_obs(obs, name, n)
                for name in policies for n in disk_counts}
    specs = [
        RunSpec(policy=name, n_disks=n, workload=cfg.workload,
                policy_kwargs=policy_kwargs.get(name, {}),
                disk_params=cfg.disk_params, press=press,
                obs=cell_obs[(name, n)],
                shard=ShardCellSpec(plans[n], s, chunk))
        for name in policies for n in disk_counts for s in range(shards)
    ]
    summary: ResilienceSummary | None = None
    if resilience is not None or checkpoint is not None:
        from repro.experiments.resilience import run_cells_resilient

        raw, summary = run_cells_resilient(
            specs, jobs=jobs, config=resilience, checkpoint=checkpoint,
            bus=bus)
    else:
        raw = run_cells(specs, jobs=jobs, bus=bus)
    results: dict[str, tuple[SimulationResult, ...]] = {}
    per_policy = len(disk_counts) * shards
    for i, name in enumerate(policies):
        merged = []
        for j, n in enumerate(disk_counts):
            lo = i * per_policy + j * shards
            group = raw[lo:lo + shards]
            merge_start = perf_counter()
            cell = merge_shard_results(group, press=press,  # type: ignore[arg-type]
                                       obs=cell_obs[(name, n)])
            if bus is not None:
                bus.emit(obs_events.HARNESS_SHARD_MERGE, 0.0,
                         policy=cell.policy_name, n_disks=n, shards=shards,
                         wall_s=perf_counter() - merge_start)
            merged.append(cell)
        results[name] = tuple(merged)
    return Figure7Results(disk_counts=tuple(disk_counts), results=results,
                          resilience=summary)


def headline_summary(fig7: Figure7Results, *, baseline: str = "read") -> dict[str, dict[str, float]]:
    """The Sec. 5.2 headline numbers: baseline's mean/max improvement per
    metric against each competitor.

    Positive percentages = baseline is lower (better) on that metric,
    matching the paper's phrasing ("24.9% and 50.8% reliability
    improvement compared with MAID and PDC").
    """
    require(baseline in fig7.results, f"baseline {baseline!r} not in results")
    out: dict[str, dict[str, float]] = {}
    for metric in ("afr", "energy", "response"):
        series = fig7.series(metric)
        base = series[baseline]
        for other, vals in series.items():
            if other == baseline:
                continue
            rel = (vals - base) / vals * 100.0
            out.setdefault(metric, {})[f"vs_{other}_mean_%"] = float(rel.mean())
            out[metric][f"vs_{other}_max_%"] = float(rel.max())
    return out
