"""Markdown report generation for a policy comparison.

Renders one :class:`~repro.experiments.figures.Figure7Results` (plus
optional worthwhileness verdicts) into a self-contained markdown
document — the artifact an operator would attach to a capacity-planning
decision.  Used by the CLI's ``report`` command and directly from
notebooks/scripts.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.experiments.costmodel import CostAssumptions, evaluate_worthwhileness
from repro.experiments.figures import Figure7Results, headline_summary
from repro.util.atomicio import atomic_write_text
from repro.util.validation import require

__all__ = ["render_markdown_report", "write_markdown_report"]


def _md_table(header: list[str], rows: list[list[str]]) -> str:
    out = ["| " + " | ".join(header) + " |",
           "|" + "|".join("---" for _ in header) + "|"]
    out += ["| " + " | ".join(row) + " |" for row in rows]
    return "\n".join(out)


def _metric_section(fig7: Figure7Results, metric: str, title: str,
                    transform, unit: str) -> str:
    series = fig7.series(metric)
    header = ["disks"] + list(series)
    rows = []
    for i, n in enumerate(fig7.disk_counts):
        rows.append([str(n)] + [f"{transform(series[p][i]):.3g}" for p in series])
    return f"### {title} [{unit}]\n\n" + _md_table(header, rows)


def _faults_section(fig7: Figure7Results) -> str:
    """Realized-reliability table, present only for fault-injected runs."""
    if not any(r.faults is not None
               for runs in fig7.results.values() for r in runs):
        return ""
    header = ["policy", "disks", "failures", "availability %", "req failed",
              "req retried", "redirected", "data-loss events", "rebuild kJ"]
    rows = []
    for policy, runs in fig7.results.items():
        for n, result in zip(fig7.disk_counts, runs):
            f = result.faults
            if f is None:
                continue
            rows.append([policy, str(n), str(f.disk_failures),
                         f"{100.0 * f.availability:.4f}",
                         str(f.requests_failed), str(f.requests_retried),
                         str(f.requests_redirected), str(f.data_loss_events),
                         f"{f.rebuild_energy_j / 1e3:.1f}"])
    return ("### Realized reliability (fault injection)\n\n"
            + _md_table(header, rows))


def _redundancy_section(fig7: Figure7Results) -> str:
    """Group states + CTMC reliability, present only for redundant runs."""
    if not any(r.redundancy is not None
               for runs in fig7.results.values() for r in runs):
        return ""
    header = ["policy", "disks", "scheme", "groups", "degraded", "critical",
              "lost", "reconstruct reads", "rebuild read legs",
              "domain outages", "MTTDL yr", "P(loss, mission)"]
    rows = []
    for policy, runs in fig7.results.items():
        for n, result in zip(fig7.disk_counts, runs):
            red = result.redundancy
            if red is None:
                continue
            counts = red.state_counts()
            mttdl = "inf"
            p_loss = "0"
            if red.ctmc is not None:
                mttdl = f"{red.ctmc.mttdl_array_years:.3g}"
                p_loss = f"{red.ctmc.p_loss_array:.3g}"
            rows.append([policy, str(n), red.scheme, str(red.n_groups),
                         str(counts["degraded"]), str(counts["critical"]),
                         str(counts["lost"]), str(red.reconstruct_reads),
                         str(red.rebuild_read_legs),
                         str(red.domain_outages), mttdl, p_loss])
    note = ("MTTDL and P(loss) come from the redundancy CTMC "
            "(birth-death chain per loss unit at PRESS-derived rates), "
            "not from the max-AFR column above: max-AFR is scheme-blind, "
            "the CTMC charges data loss only when the redundancy is "
            "pierced.")
    return ("### Redundancy groups (CTMC reliability)\n\n"
            + _md_table(header, rows) + "\n\n" + note)


def _resilience_section(fig7: Figure7Results) -> str:
    """Harness fault ledger, present only for resilience-engine sweeps.

    Reports what the *runner* absorbed (retries, timeouts, pool
    respawns, checkpoint restores) — harness-level faults, as distinct
    from the simulated faults of the realized-reliability section.
    """
    summary = fig7.resilience
    if summary is None:
        return ""
    header = ["cells", "run", "from checkpoint", "retries", "timeouts",
              "pool respawns", "salvaged"]
    row = [str(summary.cells_total), str(summary.cells_run),
           str(summary.checkpoint_hits), str(summary.retries),
           str(summary.timeouts), str(summary.pool_respawns),
           str(summary.cells_salvaged)]
    note = ("The harness absorbed faults while producing these results; "
            "every retried or resumed cell re-ran from its spec seed, so "
            "the numbers above are identical to an uninterrupted sweep."
            if summary.eventful else
            "The sweep completed without the harness absorbing any fault.")
    return ("### Harness resilience\n\n" + _md_table(header, [row])
            + "\n\n" + note)


def _runtime_section(fig7: Figure7Results) -> str:
    """Simulation runtime table (events, wall clock, throughput).

    Skipped entirely for result sets predating the telemetry fields
    (``events_executed == 0`` everywhere).
    """
    if not any(r.events_executed
               for runs in fig7.results.values() for r in runs):
        return ""
    all_results = [r for runs in fig7.results.values() for r in runs]
    # Telemetry columns appear only when some cell captured telemetry
    # (sampled timeseries and/or a metrics registry snapshot).
    telemetry = any(r.timeseries is not None or r.metrics is not None
                    for r in all_results)
    header = ["policy", "disks", "backend", "events", "wall s", "events/s"]
    if telemetry:
        header += ["samples", "metrics"]
    rows = []
    for policy, runs in fig7.results.items():
        for n, result in zip(fig7.disk_counts, runs):
            row = [policy, str(n), result.kernel_backend,
                   str(result.events_executed),
                   f"{result.wall_clock_s:.2f}",
                   f"{result.events_per_sec:.3g}"]
            if telemetry:
                row.append(str(len(result.timeseries.rows))
                           if result.timeseries is not None else "-")
                row.append(str(len(result.metrics))
                           if result.metrics is not None else "-")
            rows.append(row)
    return "### Simulation runtime\n\n" + _md_table(header, rows)


def render_markdown_report(fig7: Figure7Results, *, title: str = "Policy comparison",
                           baseline: str | None = "read",
                           assumptions: CostAssumptions | None = None) -> str:
    """Render the comparison as a markdown document.

    ``baseline`` adds the headline-improvement section and — when the
    static-high reference is part of the sweep — a worthwhileness
    section under ``assumptions`` (defaults per
    :class:`~repro.experiments.costmodel.CostAssumptions`).
    """
    require(len(fig7.results) >= 1, "empty comparison")
    parts: list[str] = [f"# {title}", ""]
    policies = list(fig7.results)
    parts.append(f"Policies: {', '.join(policies)}; array sizes: "
                 f"{', '.join(str(d) for d in fig7.disk_counts)}.")
    parts.append("")

    parts.append(_metric_section(fig7, "afr", "Array AFR (PRESS, max over disks)", lambda v: v, "%"))
    parts.append("")
    parts.append(_metric_section(fig7, "energy", "Energy", lambda v: v / 1e3, "kJ"))
    parts.append("")
    parts.append(_metric_section(fig7, "response", "Mean response time", lambda v: v * 1e3, "ms"))
    parts.append("")

    fault_section = _faults_section(fig7)
    if fault_section:
        parts.append(fault_section)
        parts.append("")

    redundancy_section = _redundancy_section(fig7)
    if redundancy_section:
        parts.append(redundancy_section)
        parts.append("")

    runtime_section = _runtime_section(fig7)
    if runtime_section:
        parts.append(runtime_section)
        parts.append("")

    resilience_section = _resilience_section(fig7)
    if resilience_section:
        parts.append(resilience_section)
        parts.append("")

    if baseline and baseline in fig7.results and len(policies) > 1:
        parts.append(f"## {baseline} improvements\n")
        summary = headline_summary(fig7, baseline=baseline)
        header = ["metric"] + [k for k in next(iter(summary.values()))]
        rows = [[metric] + [f"{v:+.1f}%" for v in stats.values()]
                for metric, stats in summary.items()]
        parts.append(_md_table(header, rows))
        parts.append("")

    reference_name = "static-high"
    if reference_name in fig7.results and len(policies) > 1:
        a = assumptions or CostAssumptions()
        parts.append("## Worthwhileness vs the always-on array\n")
        parts.append(f"Assumptions: ${a.electricity_usd_per_kwh:.2f}/kWh x "
                     f"{a.power_overhead_factor:.1f} overhead, disk "
                     f"${a.disk_replacement_usd:.0f}, data loss "
                     f"${a.data_loss_cost_usd:.0f}.\n")
        header = ["scheme", "disks", "energy $/yr", "failure $/yr",
                  "net $/yr", "loss model", "verdict"]
        rows = []
        for policy in policies:
            if policy == reference_name:
                continue
            for i, n in enumerate(fig7.disk_counts):
                verdict = evaluate_worthwhileness(
                    fig7.results[policy][i], fig7.results[reference_name][i], a)
                rows.append([policy, str(n),
                             f"{verdict.energy_saving_usd_per_year:+.0f}",
                             f"{verdict.extra_failure_cost_usd_per_year:+.0f}",
                             f"{verdict.net_benefit_usd_per_year:+.0f}",
                             verdict.loss_model,
                             "worthwhile" if verdict.worthwhile else "not worthwhile"])
        parts.append(_md_table(header, rows))
        parts.append("")

    parts.append("---")
    parts.append("*Generated by `repro` — reproduction of Xie & Sun, "
                 "\"Sacrificing Reliability for Energy Saving\", IPPS 2008.*")
    return "\n".join(parts) + "\n"


def write_markdown_report(fig7: Figure7Results, path: Union[str, Path],
                          **kwargs) -> Path:
    """Render and write the report; returns the path.

    The write is atomic (tmp file + ``os.replace``): a crash mid-write
    leaves the previous report intact instead of a truncated one.
    """
    return atomic_write_text(path, render_markdown_report(fig7, **kwargs))
