"""Sharded array execution: split, stream, simulate, merge — bit-identically.

A 256-disk, ten-million-request cell is too big for one event loop to
turn around quickly, but the workload-skew policies this repo studies
are *disk-local*: once data is laid out, a drive's event sequence is
driven solely by the requests routed to it.  This module exploits that
by splitting an N-disk array into ``n_shards`` independent groups, each
simulated by its own kernel (one SoA batch kernel per shard) over the
*streamed* workload (:mod:`repro.workload.stream` — no shard ever holds
the full request list), and then merging the per-shard partial results
into one :class:`~repro.experiments.metrics.SimulationResult`.

Determinism contract (DESIGN.md Sec. 12)
----------------------------------------
The merge reduces in a *fixed order* — shards by index, disks by global
id, power states by definition order — and closes every disk's open
ledgers (:mod:`repro.disk.ledger`) at the **global** end time in a
single accounting step.  Consequences, all enforced by the test suite:

* merged results are bit-identical across ``--jobs`` values (the shard
  fan-out order never enters the reduction);
* for shard-decomposable policies (the static family, whose round-robin
  size-ordered placement the ``"affinity"`` assignment reproduces
  shard-locally) a sharded run equals the ``n_shards=1`` run — and
  thereby the unsharded streamed run — bit-for-bit on every energy,
  thermal, PRESS, and counter field;
* response-time *sums* (hence the mean) reduce per-disk in global disk
  order, exactly associatively for the integer counters; the p95/p99
  come from a fixed log-spaced histogram (exact integer merge,
  quantized to ~0.9 % bin resolution — documented, deterministic).

Policies with cross-disk coupling (MAID's cache zone, READ/PDC
migration) still *run* sharded — each shard gets its own policy
instance over its disk group — but that changes semantics (a per-shard
cache zone is not a per-array cache zone), so sharding them is a
modeling choice, not a transparent optimization.  Fault injection is
not supported under sharding (the fault schedule is array-global).

Telemetry under sharding (DESIGN.md Sec. 13)
--------------------------------------------
A sharded cell with an :class:`~repro.obs.ObsConfig` runs one full
telemetry stack *per shard*: a :class:`~repro.obs.TraceBus` whose
``id_maps`` remap local disk/file ids to global ones at emission (and
whose ``tags`` stamp the shard index), streaming into an atomic
per-shard JSONL segment (:func:`~repro.obs.shard_segment_path`); a
:class:`~repro.obs.DiskSampler` writing rows and registry gauges under
global disk ids.  The merge then federates: a deterministic k-way trace
merge ordered by ``(time, shard, seq)`` with one synthesized global
``engine.start``/``engine.stop`` pair
(:func:`~repro.obs.merge_trace_files`), a typed registry merge
(:func:`~repro.obs.federate_registries`), and a sampler-tick *replay* —
each shard's open ledgers are advanced through the global tick instants
it drained before (:meth:`~repro.disk.ledger.OpenDiskLedger.advance`)
so the merged time-series and federated registry equal the unsharded
*sampled* run bit-for-bit for shard-decomposable policies.  Kernel
profiling stays per-kernel wall timing and is not supported under
sharding.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from time import perf_counter
from typing import (
    TYPE_CHECKING,
    Callable,
    Iterator,
    Mapping,
    Optional,
    Sequence,
    Union,
    cast,
)

import numpy as np

from repro.disk.array import DiskArray
from repro.disk.drive import Job, QueueDiscipline
from repro.disk.ledger import ClosedDiskLedger, OpenDiskLedger
from repro.disk.parameters import DiskSpeed, TwoSpeedDiskParams
from repro.experiments.metrics import SimulationResult
from repro.experiments.parallel import RunSpec, run_cells
from repro.experiments.runner import (
    _default_disk_params,
    _default_press,
    make_policy,
    resolve_kernel_backend,
)
from repro.obs import (
    DiskSampler,
    JsonlTraceWriter,
    MetricsRegistry,
    ObsConfig,
    TimeSeries,
    TraceBus,
    federate_registries,
    merge_trace_files,
    shard_segment_path,
    write_timeseries,
)
from repro.obs import events as obs_events
from repro.press.model import DiskFactors, PRESSModel
from repro.sim.engine import Simulator
from repro.util.units import SECONDS_PER_DAY
from repro.util.validation import require
from repro.workload.files import FileSet
from repro.workload.request import Request
from repro.workload.stream import DEFAULT_CHUNK_SIZE, WorkloadLike, open_stream

if TYPE_CHECKING:
    from repro.experiments.resilience import (
        ResilienceConfig,
        ResilienceSummary,
        SweepCheckpoint,
    )

__all__ = [
    "ShardPlan",
    "ShardCellSpec",
    "ShardCellResult",
    "run_shard_cell",
    "merge_shard_results",
    "run_sharded",
    "N_RESPONSE_BINS",
    "response_bin",
    "response_bin_upper_s",
    "histogram_percentile_s",
]


# ----------------------------------------------------------------------
# response-time histogram (fixed bins => exactly associative merges)
# ----------------------------------------------------------------------
#: Log-spaced response-time bins covering 1 microsecond .. 100 seconds.
#: 256 bins/decade over 8 decades: adjacent bin edges differ by ~0.9 %,
#: which bounds the quantization of streamed percentiles.
N_RESPONSE_BINS = 2048
_LOG10_LO = -6.0
_LOG10_HI = 2.0
_BINS_PER_DECADE = N_RESPONSE_BINS / (_LOG10_HI - _LOG10_LO)


def response_bin(response_s: float) -> int:
    """Histogram bin of one response time (under/overflow clamp to the ends)."""
    if response_s <= 1e-6:
        return 0
    if response_s >= 1e2:
        return N_RESPONSE_BINS - 1
    idx = int((math.log10(response_s) - _LOG10_LO) * _BINS_PER_DECADE)
    # float round-off at an exact edge can land one past the end
    return min(idx, N_RESPONSE_BINS - 1)


def response_bin_upper_s(index: int) -> float:
    """Upper edge of one histogram bin, seconds."""
    return 10.0 ** (_LOG10_LO + (index + 1) / _BINS_PER_DECADE)


def histogram_percentile_s(counts: np.ndarray, q: float) -> float:
    """Percentile from a response histogram: upper edge of the covering bin.

    Deterministic and merge-order independent (the histogram is integer
    data); quantized to the bin resolution rather than interpolated.
    """
    require(0.0 <= q <= 100.0, f"q must be in [0, 100], got {q}")
    total = int(counts.sum())
    require(total > 0, "empty response histogram")
    target = math.ceil(q / 100.0 * total)
    target = max(target, 1)
    cum = np.cumsum(counts)
    index = int(np.searchsorted(cum, target))
    return response_bin_upper_s(index)


# ----------------------------------------------------------------------
# the plan: who owns which disks and which files
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class ShardPlan:
    """Partition of an N-disk array into independent contiguous groups.

    Shard ``s`` owns global disks ``[s*D, (s+1)*D)`` with
    ``D = n_disks // n_shards``.  File assignment decides which shard
    *serves* each file:

    ``"affinity"``
        Files in size-rank order are dealt round-robin across the
        *global* disks, and each file follows its disk's shard.  This
        reproduces the static policies' ``placement[order] = rank %
        n_disks`` layout shard-locally: the k-th file (by size) of a
        shard lands on local disk ``k % D`` — the same physical disk the
        unsharded layout picks — which is what makes sharded static runs
        bit-identical to unsharded ones.

    ``"round-robin"``
        File id modulo ``n_shards``; ignores sizes.  A plain spreading
        rule for policies whose placement is not size-ranked (no
        unsharded-equality guarantee).
    """

    n_disks: int
    n_shards: int
    assignment: str = "affinity"

    def __post_init__(self) -> None:
        require(self.n_disks >= 1, f"n_disks must be >= 1, got {self.n_disks}")
        require(self.n_shards >= 1, f"n_shards must be >= 1, got {self.n_shards}")
        require(self.n_disks % self.n_shards == 0,
                f"n_shards ({self.n_shards}) must divide n_disks "
                f"({self.n_disks}) so every shard gets equal disks")
        require(self.assignment in ("affinity", "round-robin"),
                f"assignment must be 'affinity' or 'round-robin', "
                f"got {self.assignment!r}")

    @property
    def disks_per_shard(self) -> int:
        """Disks owned by each shard."""
        return self.n_disks // self.n_shards

    def disk_offset(self, shard_index: int) -> int:
        """First global disk id of one shard's contiguous group."""
        require(0 <= shard_index < self.n_shards,
                f"shard_index out of range: {shard_index}")
        return shard_index * self.disks_per_shard

    def shard_of_files(self, fileset: FileSet) -> np.ndarray:
        """Owning shard per file id (int64, aligned with the fileset)."""
        n_files = len(fileset)
        if self.assignment == "round-robin":
            return np.arange(n_files, dtype=np.int64) % self.n_shards
        # affinity: k-th file by size -> global disk k % n_disks -> its shard
        order = fileset.ids_sorted_by_size()
        shard_of = np.empty(n_files, dtype=np.int64)
        shard_of[order] = (np.arange(n_files, dtype=np.int64)
                           % self.n_disks) // self.disks_per_shard
        return shard_of


@dataclass(frozen=True, slots=True)
class ShardCellSpec:
    """The shard-specific half of a fan-out :class:`RunSpec`."""

    plan: ShardPlan
    index: int
    chunk_size: int = DEFAULT_CHUNK_SIZE

    def __post_init__(self) -> None:
        require(0 <= self.index < self.plan.n_shards,
                f"shard index out of range: {self.index}")
        require(self.chunk_size >= 1,
                f"chunk_size must be >= 1, got {self.chunk_size}")


# ----------------------------------------------------------------------
# per-shard partial result
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class ShardCellResult:
    """One shard's open partial result (picklable, checkpointable).

    Ledgers are *open* — accounted to each disk's last event, not to the
    shard's end — because the merge must perform the single final
    accounting step at the global end time (see :mod:`repro.disk.ledger`).
    Response sums are per *local* disk (completion order within a disk
    is shard-invariant); the histogram is shard-wide integer data.
    """

    shard_index: int
    plan: ShardPlan
    policy_name: str
    duration_s: float
    n_requests: int
    #: Per local disk, in local (== global, contiguous groups) order.
    ledgers: tuple[OpenDiskLedger, ...]
    response_sum_s: tuple[float, ...]
    wait_sum_s: tuple[float, ...]
    response_count: tuple[int, ...]
    #: Fixed-bin response histogram counts (length N_RESPONSE_BINS).
    response_hist: tuple[int, ...]
    events_executed: int
    wall_clock_s: float = field(compare=False, default=0.0)
    kernel_backend: str = field(compare=False, default="object")
    policy_detail: dict[str, object] = field(default_factory=dict)
    #: Per-shard JSONL trace segment (``None`` when tracing was off).
    #: Events inside carry global disk/file ids and a ``shard`` tag.
    trace_segment: Optional[str] = None
    #: Data events written to the segment — the merge's expected count.
    trace_events: int = 0
    #: Sampler rows captured at the shard's local ticks, already under
    #: global disk ids (``()`` when sampling was off).  The merge
    #: synthesizes the rows for ticks past this shard's local end.
    sample_rows: tuple[tuple, ...] = ()
    #: The sampler cadence this shard ran with (``None`` = sampling off;
    #: the merge requires it to agree across shards).
    sample_interval_s: Optional[float] = None
    #: Registry snapshot at shard end (``None`` when sampling was off).
    metrics: Optional[dict[str, dict[str, object]]] = None
    #: ``(speed, phase, queue_depth)`` per local disk, frozen at the
    #: shard's end.  For shard-decomposable policies nothing moves a
    #: disk after its shard drains, so these are the values every
    #: synthesized post-end sample row reports.
    final_disk_state: tuple[tuple[str, str, int], ...] = ()


class _ShardMetrics:
    """Constant-memory response metrics for one shard's streamed dispatch.

    Replaces :class:`~repro.experiments.metrics.RequestMetrics` (which
    preallocates O(n) arrays) with per-disk float sums plus a fixed
    integer histogram, and owns the stream-aware stop condition: the
    run ends when dispatch has exhausted the stream *and* every
    dispatched request has completed.
    """

    def __init__(self, n_disks_local: int,
                 on_all_done: Callable[[], None]) -> None:
        self._resp_sum = [0.0] * n_disks_local
        self._wait_sum = [0.0] * n_disks_local
        self._count = [0] * n_disks_local
        self._hist = np.zeros(N_RESPONSE_BINS, dtype=np.int64)
        self.completed = 0
        self.dispatched = 0
        self.dispatch_done = False
        self._on_all_done = on_all_done

    def on_complete(self, job: Job) -> None:
        req = job.request
        if req is None:
            return
        disk = req.served_by
        response = req.completion_time - req.arrival_time
        self._resp_sum[disk] += response
        self._wait_sum[disk] += req.service_start - req.arrival_time
        self._count[disk] += 1
        self._hist[response_bin(response)] += 1
        self.completed += 1
        if self.dispatch_done and self.completed >= self.dispatched:
            self._on_all_done()

    @property
    def all_done(self) -> bool:
        return self.dispatch_done and self.completed >= self.dispatched

    def snapshot(self) -> tuple[tuple[float, ...], tuple[float, ...],
                                tuple[int, ...], tuple[int, ...]]:
        return (tuple(self._resp_sum), tuple(self._wait_sum),
                tuple(self._count), tuple(int(c) for c in self._hist.tolist()))


# ----------------------------------------------------------------------
# the shard worker
# ----------------------------------------------------------------------
def run_shard_cell(spec: RunSpec) -> ShardCellResult:
    """Simulate one shard of one cell over the streamed workload.

    Mirrors :func:`repro.experiments.runner.run_simulation` — same array
    construction, same arrival-chained dispatch, same shutdown sequence
    — except that (a) requests come from filtered stream chunks instead
    of a materialized trace, (b) metrics are constant-memory, and (c)
    the drives' ledgers are captured *open* instead of finalized, so the
    merge can close them at the global end time.
    """
    shard = spec.shard
    require(shard is not None, "run_shard_cell needs a spec with shard set")
    assert shard is not None  # for the type checker
    require(spec.faults is None,
            "fault injection is not supported under sharding "
            "(the failure schedule is array-global: hazard budgets, "
            "degraded-mode redirects, and rebuild traffic couple disks "
            "across shard boundaries, so no shard can reproduce its "
            "slice independently; run the cell unsharded — drop "
            "--shards — to combine --faults with this workload)")
    require(spec.redundancy is None,
            "redundancy groups are not supported under sharding "
            "(group geometry spans shard boundaries: reconstruct reads "
            "and rebuild fan-out touch disks in other shards; run the "
            "cell unsharded — drop --shards — to combine --redundancy "
            "with this workload)")
    obs = spec.obs
    require(obs is None or not obs.profile,
            "kernel profiling is not supported under sharding "
            "(profiles are per-kernel wall timings; profile the "
            "unsharded run instead)")
    plan = shard.plan
    require(spec.n_disks == plan.n_disks,
            f"spec.n_disks ({spec.n_disks}) != plan.n_disks ({plan.n_disks})")

    wall_start = perf_counter()
    stream = open_stream(spec.workload)
    fileset = stream.fileset
    shard_of = plan.shard_of_files(fileset)
    mine = shard_of == shard.index
    my_files = np.flatnonzero(mine)
    # A file-less shard can't even build its array (and policies act on
    # drives their fileset implies), so degenerate splits are rejected
    # rather than approximated.  Affinity assignment guarantees every
    # shard owns files whenever n_files >= n_disks.
    require(my_files.size > 0,
            f"shard {shard.index} owns no files "
            f"({len(fileset)} files across {plan.n_shards} shards); "
            f"use fewer shards or more files")
    # local file ids preserve global id order, so a shard-local stable
    # size sort equals the global sort restricted to this shard — the
    # keystone of the affinity assignment's unsharded-equality proof
    local_id = np.full(len(fileset), -1, dtype=np.int64)
    local_id[my_files] = np.arange(my_files.size, dtype=np.int64)
    local_fileset = FileSet(fileset.sizes_mb[my_files])

    params = spec.disk_params if spec.disk_params is not None else _default_disk_params()
    tracing_on = obs is not None and obs.trace_path is not None
    backend = resolve_kernel_backend("auto", faults_on=False,
                                     tracing_on=tracing_on)
    offset = plan.disk_offset(shard.index)
    sim = Simulator()
    # Telemetry attaches before the array is built (drives cache the bus
    # at construction).  The bus remaps local ids to global at emission
    # — disk-carrying fields shift by the shard's disk offset, file ids
    # go through the shard's local->global file table — and tags every
    # event with the shard index, so the segment needs no rewrite pass.
    bus: Optional[TraceBus] = None
    writer: Optional[JsonlTraceWriter] = None
    segment: Optional[str] = None
    if tracing_on:
        assert obs is not None and obs.trace_path is not None
        my_files_py = my_files.tolist()
        shift: Callable[[int], int] = lambda v, _o=offset: v + _o  # noqa: E731
        bus = TraceBus(
            tags={"shard": shard.index},
            id_maps={"disk": shift, "src": shift, "dst": shift,
                     "file": lambda v, _f=my_files_py: _f[v]})
        segment = str(shard_segment_path(obs.trace_path, shard.index))
        writer = JsonlTraceWriter(segment)
        bus.subscribe(writer)
        sim.trace = bus
    array = DiskArray(sim, params, plan.disks_per_shard, local_fileset,
                      initial_speed=spec.initial_speed,
                      queue_discipline=spec.queue_discipline,
                      kernel_backend=backend)
    registry: Optional[MetricsRegistry] = None
    sampler: Optional[DiskSampler] = None
    sample_interval: Optional[float] = None
    if obs is not None and obs.wants_sampler:
        sample_interval = obs.effective_sample_interval_s
        registry = MetricsRegistry()
        sampler = DiskSampler(sim, array, sample_interval,
                              registry=registry, disk_offset=offset)
        sampler.install()
    policy = make_policy(spec.policy, **dict(spec.policy_kwargs))
    metrics = _ShardMetrics(plan.disks_per_shard, on_all_done=sim.request_stop)
    policy.bind(sim, array, local_fileset)
    policy.completion_callback = metrics.on_complete
    policy.initial_layout()

    # ---- streamed dispatch: hold one filtered chunk at a time --------
    def filtered_chunks() -> Iterator[tuple[list[float], list[int]]]:
        for chunk in stream.chunks(shard.chunk_size):
            keep = mine[chunk.file_ids]
            if not keep.any():
                continue
            yield (chunk.times_s[keep].tolist(),
                   local_id[chunk.file_ids[keep]].tolist())

    chunk_iter = filtered_chunks()
    sizes = local_fileset.sizes_mb.tolist()
    route = policy.route
    schedule_at = sim.schedule_at
    new_request = Request.from_validated
    times: list[float] = []
    ids: list[int] = []
    i = 0

    def load_next() -> bool:
        nonlocal times, ids, i
        nxt = next(chunk_iter, None)
        if nxt is None:
            return False
        times, ids = nxt
        i = 0
        return True

    def dispatch_next() -> None:
        nonlocal i
        fid = ids[i]
        metrics.dispatched += 1
        route(new_request(sim.now, fid, sizes[fid]))
        i += 1
        if i >= len(times) and not load_next():
            metrics.dispatch_done = True
            return
        schedule_at(times[i], dispatch_next, priority=-1)

    try:
        if load_next():
            schedule_at(times[0], dispatch_next, priority=-1)
            sim.run_until_drained()
            if not metrics.all_done:
                raise RuntimeError(
                    f"shard {shard.index}: event queue drained with "
                    f"{metrics.completed}/{metrics.dispatched} requests done")
        else:
            # a shard no request ever targets: its disks idle from t=0 to
            # the global end; the merge's ledger close accounts all of it
            metrics.dispatch_done = True
    except BaseException:
        # never leave a torn segment where the merge expects a whole one
        if writer is not None:
            writer.abort()
        raise

    duration = sim.now
    policy.shutdown()
    if sampler is not None:
        # stop the periodic tick; deliberately NO final sample_now():
        # the merge replays the global ticks this shard drained before
        # and closes the series at the *global* end time
        sampler.shutdown()
    if writer is not None:
        writer.close()
    # capture the ledgers OPEN (no array.finalize()): the final
    # accounting step belongs to the merge, at the global end time
    ledgers = tuple(drive.open_ledger() for drive in array.drives)
    final_state: tuple[tuple[str, str, int], ...] = ()
    if sampler is not None:
        final_state = tuple(
            (drive.speed.name.lower(), drive.phase.value, drive.queue_length)
            for drive in array.drives)
    resp_sum, wait_sum, counts, hist = metrics.snapshot()
    return ShardCellResult(
        shard_index=shard.index,
        plan=plan,
        policy_name=policy.name,
        duration_s=duration,
        n_requests=metrics.completed,
        ledgers=ledgers,
        response_sum_s=resp_sum,
        wait_sum_s=wait_sum,
        response_count=counts,
        response_hist=hist,
        events_executed=sim.events_executed,
        wall_clock_s=perf_counter() - wall_start,
        kernel_backend=backend,
        policy_detail=policy.describe(),
        trace_segment=segment,
        trace_events=writer.events_written if writer is not None else 0,
        sample_rows=sampler.series().rows if sampler is not None else (),
        sample_interval_s=sample_interval,
        metrics=registry.as_dict() if registry is not None else None,
        final_disk_state=final_state,
    )


# ----------------------------------------------------------------------
# the merge: fixed reduction order => bit-identical across --jobs
# ----------------------------------------------------------------------
def _sampler_ticks(interval_s: float, end_s: float) -> list[float]:
    """Global sampler tick instants strictly before ``end_s``.

    Reproduces :class:`~repro.sim.timers.PeriodicTask`'s cumulative
    schedule arithmetic (each tick schedules the next at ``now +
    period``) rather than ``k * period`` — the two differ in float
    round-off, and the replayed accounting edges must land on exactly
    the instants the unsharded sampler fired at.  A tick at exactly
    ``end_s`` never fires: the final completion (priority 0) stops the
    kernel before that instant's priority-90 sample dispatches.
    """
    ticks: list[float] = []
    t = 0.0
    while True:
        t = t + interval_s
        if t >= end_s:
            return ticks
        ticks.append(t)


def merge_shard_results(results: Sequence[ShardCellResult],
                        *, press: PRESSModel | None = None,
                        obs: Optional[ObsConfig] = None) -> SimulationResult:
    """Reduce per-shard partial results into one :class:`SimulationResult`.

    Reduction order is fixed — shards by index, disks by global id,
    power states by definition order — and every floating-point
    reduction mirrors the unsharded runner's expression shape, so the
    merged result is independent of how (and how parallel) the shards
    were executed, and equals the ``n_shards=1`` reduction of the same
    stream exactly.

    Telemetry federates here too (``obs`` names the merged artifact
    paths): per-shard trace segments k-way merge into ``obs.trace_path``
    with one synthesized global ``engine.start``/``engine.stop`` pair;
    when sampling was on, the shards' open ledgers are *replayed*
    through the global tick instants each shard drained before
    (:meth:`~repro.disk.ledger.OpenDiskLedger.advance`), synthesizing
    the sample rows the unsharded sampler would have written, and the
    registry snapshots federate typed (counters sum, gauges
    last-at-max-time, histograms bin-exact) with the sampler-owned
    entries rebuilt from the global final sample.  For
    shard-decomposable policies the merged time-series and registry
    equal the unsharded *sampled* run bit-for-bit.
    """
    require(len(results) >= 1, "need at least one shard result")
    plan = results[0].plan
    ordered = sorted(results, key=lambda r: r.shard_index)
    require(tuple(r.shard_index for r in ordered) == tuple(range(plan.n_shards)),
            f"need exactly one result per shard 0..{plan.n_shards - 1}, got "
            f"{sorted(r.shard_index for r in results)}")
    for r in ordered:
        require(r.plan == plan, "shard results were produced under different plans")
    model = press if press is not None else _default_press()

    completed = sum(r.n_requests for r in ordered)
    require(completed >= 1, "merged run served no requests (empty stream?)")

    # the global horizon: the completion time of the last request in any
    # shard — exactly sim.now of the equivalent unsharded run
    duration = max(r.duration_s for r in ordered)
    require(duration > 0.0, "merged duration must be positive")

    interval = ordered[0].sample_interval_s
    for r in ordered:
        require(r.sample_interval_s == interval,
                "shard results carry mixed sampler cadences")

    # close every disk's open ledgers at the global end, global disk order
    closed: list[ClosedDiskLedger] = []
    merged_series: Optional[TimeSeries] = None
    federated: Optional[dict[str, dict[str, object]]] = None
    if interval is None:
        for r in ordered:
            for ledger in r.ledgers:
                closed.append(ledger.close(duration))
    else:
        # Sampling splits the ledger accounting at every tick (the
        # sampler's documented last-ulp semantics), so to equal the
        # unsharded *sampled* run the merge replays the global ticks
        # each shard drained before: advance the open ledgers edge by
        # edge through the missed instants — synthesizing the rows the
        # unsharded sampler would have written, with speed/phase/queue
        # frozen at the shard's end (nothing moves a disk after its
        # shard drains under a shard-decomposable policy) — then close
        # at the global end for the final end-of-run sample row.
        ticks = _sampler_ticks(interval, duration)
        rows: list[tuple] = []
        final_gauges: list[tuple[int, float, float, int, float]] = []
        for r in ordered:
            rows.extend(r.sample_rows)
            base = plan.disk_offset(r.shard_index)
            require(len(r.final_disk_state) == len(r.ledgers),
                    f"shard {r.shard_index} result lacks its final disk state")
            for local, ledger in enumerate(r.ledgers):
                g = base + local
                speed, phase, queue = r.final_disk_state[local]
                for t in ticks:
                    if t < r.duration_s:
                        continue  # the shard itself sampled this tick
                    ledger = ledger.advance(t)
                    rows.append((t, g,
                                 min(ledger.active_time_s / t, 1.0) * 100.0,
                                 ledger.temp_c, speed, phase, queue,
                                 ledger.total_energy_j))
                c = ledger.close(duration)
                util = min(c.active_time_s / duration, 1.0) * 100.0
                # the unsharded runner's end-of-run sample_now() row
                rows.append((duration, g, util, c.temperature_c, speed,
                             phase, queue, c.total_energy_j))
                final_gauges.append((g, util, c.temperature_c, queue,
                                     c.total_energy_j))
                closed.append(c)
        rows.sort(key=lambda row: (row[0], row[1]))
        merged_series = TimeSeries(interval_s=interval, rows=tuple(rows))

        snapshots = [r.metrics if r.metrics is not None else {}
                     for r in ordered]
        federated = federate_registries(
            snapshots, at=[r.duration_s for r in ordered])
        # Sampler-owned entries must reflect the *global* final sample,
        # not any shard's local last tick: rebuild them exactly as the
        # unsharded sample_now() would have written them.
        for g, util, temp, queue, energy in sorted(final_gauges):
            federated[f"disk{g}.utilization_pct"] = {"type": "gauge",
                                                     "value": util}
            federated[f"disk{g}.temperature_c"] = {"type": "gauge",
                                                   "value": temp}
            federated[f"disk{g}.queue_depth"] = {"type": "gauge",
                                                 "value": float(queue)}
            federated[f"disk{g}.energy_j"] = {"type": "gauge",
                                              "value": energy}
        federated["array.energy_j"] = {
            "type": "gauge",
            "value": float(sum(c.total_energy_j for c in closed))}
        federated["sampler.ticks"] = {"type": "counter",
                                      "value": float(len(ticks) + 1)}
        federated = {name: federated[name] for name in sorted(federated)}

    if obs is not None and obs.metrics_path is not None:
        require(merged_series is not None,
                "obs.metrics_path set but shard results carry no samples")
        assert merged_series is not None
        write_timeseries(merged_series, obs.metrics_path)
    if obs is not None and obs.trace_path is not None:
        segments: list[str] = []
        for r in ordered:
            require(r.trace_segment is not None,
                    f"obs.trace_path set but shard {r.shard_index} "
                    f"carries no trace segment")
            segments.append(cast(str, r.trace_segment))
        data_events = sum(r.trace_events for r in ordered)
        lead = [(obs_events.ENGINE_START, 0.0,
                 {"policy": ordered[0].policy_name, "n_disks": plan.n_disks,
                  "n_requests": completed})]
        tail = [(obs_events.ENGINE_STOP, duration,
                 {"duration_s": duration, "events": data_events})]
        merged_count = merge_trace_files(segments, obs.trace_path,
                                         lead=lead, tail=tail)
        require(merged_count == data_events,
                f"trace merge saw {merged_count} data events but the "
                f"shards reported writing {data_events}")

    # ---- PRESS: same factor arithmetic as factors_of/factors_of_state
    temps = [c.mean_temperature_c() for c in closed]
    utils = [100.0 * min(c.active_time_s / duration, 1.0) for c in closed]
    freqs = [c.transitions_total * SECONDS_PER_DAY / duration for c in closed]
    afrs = model.disk_afr_batch(temps, utils, freqs)
    factors = tuple(
        DiskFactors(disk_id=i, mean_temperature_c=t, utilization_percent=u,
                    transitions_per_day=f, afr_percent=a)
        for i, (t, u, f, a) in enumerate(zip(temps, utils, freqs, afrs.tolist()))
    )
    array_afr = model.integrator.array_afr(f.afr_percent for f in factors)

    # ---- energy: per-disk state sums first (as EnergyMeter does), then
    # across disks in global order (as DiskArray.total_energy_j does)
    total_energy = sum(c.total_energy_j for c in closed)
    breakdown: dict[str, float] = {}
    for c in closed:
        for state, joules in c.breakdown().items():
            breakdown[state] = breakdown.get(state, 0.0) + joules

    # ---- response: per-disk sums in global disk order; exact-integer
    # histogram merge for the percentiles
    resp_total = 0.0
    for r in ordered:
        for disk_sum in r.response_sum_s:
            resp_total += disk_sum
    hist = np.zeros(N_RESPONSE_BINS, dtype=np.int64)
    for r in ordered:
        hist += np.asarray(r.response_hist, dtype=np.int64)
    mean_response = resp_total / completed
    p95 = histogram_percentile_s(hist, 95.0)
    p99 = histogram_percentile_s(hist, 99.0)

    detail: dict[str, object] = dict(ordered[0].policy_detail)
    detail["sharding"] = {
        "n_shards": plan.n_shards,
        "assignment": plan.assignment,
        "disks_per_shard": plan.disks_per_shard,
        "shard_durations_s": [r.duration_s for r in ordered],
        "shard_requests": [r.n_requests for r in ordered],
        "percentiles": "histogram",
    }

    return SimulationResult(
        policy_name=ordered[0].policy_name,
        n_disks=plan.n_disks,
        n_requests=completed,
        duration_s=duration,
        mean_response_s=mean_response,
        p95_response_s=p95,
        p99_response_s=p99,
        total_energy_j=total_energy,
        array_afr_percent=array_afr,
        per_disk=factors,
        total_transitions=sum(c.transitions_total for c in closed),
        internal_jobs=sum(c.internal_jobs_served for c in closed),
        energy_breakdown_j=breakdown,
        policy_detail=detail,
        faults=None,
        events_executed=sum(r.events_executed for r in ordered),
        wall_clock_s=sum(r.wall_clock_s for r in ordered),
        kernel_backend=ordered[0].kernel_backend,
        timeseries=merged_series,
        metrics=federated,
    )


# ----------------------------------------------------------------------
# the front door
# ----------------------------------------------------------------------
def run_sharded(policy: str, workload: WorkloadLike, *,
                n_disks: int, n_shards: int,
                assignment: str = "affinity",
                chunk_size: int = DEFAULT_CHUNK_SIZE,
                policy_kwargs: Optional[Mapping[str, object]] = None,
                disk_params: Optional[TwoSpeedDiskParams] = None,
                press: Optional[PRESSModel] = None,
                initial_speed: Optional[DiskSpeed] = None,
                queue_discipline: Optional[QueueDiscipline] = None,
                jobs: int = 1,
                resilience: "Optional[ResilienceConfig]" = None,
                checkpoint: "Union[SweepCheckpoint, str, None]" = None,
                bus: "Optional[TraceBus]" = None,
                obs: Optional[ObsConfig] = None,
                ) -> tuple[SimulationResult, "Optional[ResilienceSummary]"]:
    """Run one (policy, workload) cell sharded, returning the merged result.

    Fans one :class:`RunSpec` per shard over the standard cell machinery
    — :func:`~repro.experiments.parallel.run_cells` (so ``jobs`` workers,
    checkpointing, retries/timeouts via ``resilience`` all apply
    per-shard) — and merges.  Returns ``(SimulationResult,
    ResilienceSummary | None)``; the summary is ``None`` when neither
    ``resilience`` nor ``checkpoint`` was given.

    ``obs`` rides into every shard sub-cell (per-shard trace segments,
    samplers, registries — see the module docstring) and names the
    merged artifact paths; ``bus`` is the *harness* bus, which receives
    a ``harness.shard.merge`` span when the partials are reduced.
    """
    plan = ShardPlan(n_disks=n_disks, n_shards=n_shards, assignment=assignment)
    require(obs is None or not obs.profile,
            "kernel profiling is not supported under sharding "
            "(profiles are per-kernel wall timings; profile the "
            "unsharded run instead)")
    base_kwargs: dict[str, object] = dict(policy_kwargs) if policy_kwargs else {}
    speed = initial_speed if initial_speed is not None else DiskSpeed.HIGH
    discipline = (queue_discipline if queue_discipline is not None
                  else QueueDiscipline.FCFS)
    specs = [
        RunSpec(policy=policy, n_disks=n_disks, workload=workload,
                policy_kwargs=base_kwargs, disk_params=disk_params,
                press=press, initial_speed=speed, queue_discipline=discipline,
                obs=obs, shard=ShardCellSpec(plan, s, chunk_size))
        for s in range(plan.n_shards)
    ]
    summary: "Optional[ResilienceSummary]" = None
    if resilience is not None or checkpoint is not None:
        from repro.experiments.resilience import run_cells_resilient

        raw, summary = run_cells_resilient(specs, jobs=jobs, config=resilience,
                                           checkpoint=checkpoint, bus=bus)
    else:
        raw = run_cells(specs, jobs=jobs)
    shard_results = cast("list[ShardCellResult]", raw)
    merge_start = perf_counter()
    merged = merge_shard_results(shard_results, press=press, obs=obs)
    if bus is not None:
        # outside simulated time, like every harness event: t=0.0
        bus.emit(obs_events.HARNESS_SHARD_MERGE, 0.0,
                 policy=merged.policy_name, n_disks=n_disks, shards=n_shards,
                 wall_s=perf_counter() - merge_start)
    return merged, summary
