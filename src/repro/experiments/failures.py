"""Monte Carlo failure analysis: from AFR to data-loss probability.

PRESS ends at an Annualized Failure Rate; this module carries the
analysis one step further — the step the paper's title question implies:
given per-disk AFRs, how many failures should an operator actually
expect, and what is the probability of *data loss* once redundancy is in
the picture?  (The paper notes RAID-style redundancy as the standard
mitigation in Sec. 1; loss requires a second failure inside the repair
window.)

Model
-----
* Each disk fails as a Poisson process with rate
  ``lambda = -ln(1 - AFR)`` per year (the exact rate whose one-year
  failure probability equals the AFR); failed disks are replaced
  immediately, so failures keep arriving at the same rate.
* ``none`` redundancy: any failure loses data.
* ``parity`` (RAID-5-like, one disk of redundancy): data loss when a
  second disk fails while a prior failure is still rebuilding
  (``repair_hours``).
* ``mirror_pairs``: disks are paired; loss when a disk's partner fails
  during its rebuild.

All trials are vectorized with numpy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Literal

import numpy as np

from repro.press.hazard import annual_failure_rate_to_rate
from repro.util.rngtools import SeedLike, rng_from
from repro.util.validation import require, require_positive

__all__ = ["FailureAnalysis", "annual_failure_rate_to_rate", "simulate_failures"]

Redundancy = Literal["none", "parity", "mirror_pairs"]

HOURS_PER_YEAR = 8766.0




@dataclass(frozen=True, slots=True)
class FailureAnalysis:
    """Aggregate of one Monte Carlo failure study."""

    years: float
    n_trials: int
    redundancy: Redundancy
    expected_failures: float
    #: probability at least one *data loss* event occurred in the horizon
    p_data_loss: float
    #: mean number of data-loss events per trial
    mean_loss_events: float


def _failure_times(rates: np.ndarray, years: float, n_trials: int,
                   rng: np.random.Generator) -> list[np.ndarray]:
    """Per (trial, disk) arrays of failure times within the horizon.

    Returns a flat list of length ``n_trials * n_disks``; entry
    ``t * n_disks + d`` holds disk d's failure times in trial t.
    Memory-bounded: expected counts are tiny (AFR fractions of 1/year).
    """
    out: list[np.ndarray] = []
    expected = rates * years
    for _trial in range(n_trials):
        counts = rng.poisson(expected)
        for _d, k in enumerate(counts):
            times = np.sort(rng.uniform(0.0, years, int(k))) if k else np.empty(0)
            out.append(times)
    return out


def simulate_failures(afr_percent: Iterable[float], *, years: float = 5.0,
                      n_trials: int = 2_000, redundancy: Redundancy = "none",
                      repair_hours: float = 24.0,
                      seed: SeedLike = 0) -> FailureAnalysis:
    """Monte Carlo the failure process of an array with per-disk AFRs.

    ``afr_percent`` is one AFR per disk (e.g. from
    :meth:`PRESSModel.evaluate_array`'s per-disk factors).  For
    ``mirror_pairs`` the disk count must be even; pairs are (0,1),
    (2,3), ...
    """
    afrs = np.asarray(list(afr_percent), dtype=np.float64)
    require(afrs.size >= 1, "need at least one disk AFR")
    require(bool(np.all((afrs >= 0) & (afrs < 100))), "AFRs must be in [0, 100)")
    require_positive(years, "years")
    require(n_trials >= 1, f"n_trials must be >= 1, got {n_trials}")
    require_positive(repair_hours, "repair_hours")
    if redundancy == "mirror_pairs":
        require(afrs.size % 2 == 0, "mirror_pairs needs an even disk count")

    rng = rng_from(seed)
    rates = np.array([annual_failure_rate_to_rate(a) for a in afrs])
    n_disks = afrs.size
    repair_years = repair_hours / HOURS_PER_YEAR

    per_disk_times = _failure_times(rates, years, n_trials, rng)

    total_failures = 0
    loss_events = np.zeros(n_trials, dtype=np.int64)
    for t in range(n_trials):
        disks = per_disk_times[t * n_disks:(t + 1) * n_disks]
        counts = sum(arr.size for arr in disks)
        total_failures += counts
        if redundancy == "none":
            loss_events[t] = counts
            continue
        if redundancy == "mirror_pairs":
            for pair in range(0, n_disks, 2):
                loss_events[t] += _window_overlaps(disks[pair], disks[pair + 1],
                                                   repair_years)
            continue
        # parity: merge all failures; a loss each time two fall within
        # one repair window
        merged = np.sort(np.concatenate([arr for arr in disks]) if counts else
                         np.empty(0))
        if merged.size >= 2:
            loss_events[t] = int(np.sum(np.diff(merged) < repair_years))

    return FailureAnalysis(
        years=years,
        n_trials=n_trials,
        redundancy=redundancy,
        expected_failures=total_failures / n_trials,
        p_data_loss=float(np.mean(loss_events > 0)),
        mean_loss_events=float(loss_events.mean()),
    )


def _window_overlaps(a: np.ndarray, b: np.ndarray, window: float) -> int:
    """Events in ``b`` landing within ``window`` after an event in ``a``,
    or vice versa (mirror-rebuild overlap count)."""
    count = 0
    for t in a:
        count += int(np.sum((b >= t) & (b < t + window)))
    for t in b:
        count += int(np.sum((a >= t) & (a < t + window)))
    return count
