"""Analytic cross-checks of the simulator against queueing theory.

A trace-driven simulator is only as trustworthy as its agreement with
closed-form results where those exist.  For a single drive at fixed
speed under Poisson arrivals, the system is an M/G/1 queue whose mean
waiting time is the Pollaczek-Khinchine formula

    W = lambda * E[S^2] / (2 * (1 - rho)),      rho = lambda * E[S]

with S the service time (positioning + size/rate).  The functions here
compute the analytic values for a given file population so the test
suite (and anyone auditing the simulator) can compare them against
simulated means.  Agreement within Monte Carlo error on this path
validates the entire arrival->queue->service->completion pipeline that
every policy result rests on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.disk.parameters import DiskSpeed, SpeedModeParams, TwoSpeedDiskParams
from repro.util.validation import require, require_positive
from repro.workload.files import FileSet

__all__ = ["MG1Prediction", "mg1_prediction", "service_moments"]


def service_moments(fileset: FileSet, mode: SpeedModeParams,
                    weights: np.ndarray | None = None) -> tuple[float, float]:
    """First two moments of the whole-file service time distribution.

    ``weights`` are per-file access probabilities (uniform when omitted)
    — the service distribution an arriving request samples from.
    """
    sizes = fileset.sizes_mb
    service = mode.positioning_s + sizes / mode.transfer_mb_s
    if weights is None:
        w = np.full(sizes.size, 1.0 / sizes.size)
    else:
        w = np.asarray(weights, dtype=np.float64)
        require(w.shape == sizes.shape, "weights must match the file population")
        require(bool(np.all(w >= 0)) and w.sum() > 0, "weights must be a distribution")
        w = w / w.sum()
    first = float(np.sum(w * service))
    second = float(np.sum(w * service**2))
    return first, second


@dataclass(frozen=True, slots=True)
class MG1Prediction:
    """Closed-form M/G/1 quantities for one drive."""

    arrival_rate: float
    mean_service_s: float
    second_moment_service: float
    utilization: float
    mean_wait_s: float

    @property
    def mean_response_s(self) -> float:
        """Mean response = wait + service."""
        return self.mean_wait_s + self.mean_service_s


def mg1_prediction(fileset: FileSet, params: TwoSpeedDiskParams, *,
                   speed: DiskSpeed = DiskSpeed.HIGH,
                   mean_interarrival_s: float,
                   weights: np.ndarray | None = None) -> MG1Prediction:
    """Pollaczek-Khinchine prediction for a single drive serving the
    whole ``fileset`` under Poisson arrivals.

    Raises for an unstable queue (rho >= 1): the simulator would never
    drain, and the formula is meaningless there.
    """
    require_positive(mean_interarrival_s, "mean_interarrival_s")
    lam = 1.0 / mean_interarrival_s
    es, es2 = service_moments(fileset, params.mode(speed), weights)
    rho = lam * es
    require(rho < 1.0, f"unstable queue: rho = {rho:.3f} >= 1")
    wait = lam * es2 / (2.0 * (1.0 - rho))
    return MG1Prediction(
        arrival_rate=lam,
        mean_service_s=es,
        second_moment_service=es2,
        utilization=rho,
        mean_wait_s=wait,
    )
