"""Parallel sweep execution: picklable cell specs + a process-pool runner.

A *cell* is one (policy, configuration, array size, workload) simulation
— the unit the figures and sweeps iterate over.  :class:`RunSpec` captures
everything a cell needs as plain picklable data, and :func:`run_cells`
fans a batch of cells over a :class:`~concurrent.futures.ProcessPoolExecutor`.

Design notes
------------
* ``jobs=1`` runs in-process with no executor, so the serial path stays
  trivially debuggable (breakpoints, profilers, exception locals).
* Results are returned in input order regardless of completion order,
  and every cell is seeded solely by its spec — parallel and serial
  execution are bit-identical (asserted by the test suite).
* Workloads are materialized in the parent *before* the pool forks, so
  workers inherit the cached arrays copy-on-write instead of each
  regenerating them (on spawn platforms they fall back to their own
  on-disk/in-process cache).
* A worker failure is re-raised in the parent as
  :class:`CellExecutionError` carrying the failing spec, so a sweep
  error message names the exact cell instead of a bare traceback from
  an anonymous subprocess.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping, Optional, cast

from repro.disk.drive import QueueDiscipline
from repro.disk.parameters import DiskSpeed, TwoSpeedDiskParams
from repro.experiments.metrics import SimulationResult
from repro.experiments.runner import make_policy, run_simulation
from repro.faults import FaultConfig
from repro.obs import ObsConfig
from repro.obs.log import get_logger
from repro.press.model import PRESSModel
from repro.redundancy.scheme import GroupScheme
from repro.util.validation import require
from repro.workload.cache import cached_generate, workload_key
from repro.workload.stream import WorkloadLike

if TYPE_CHECKING:
    from repro.experiments.shard import ShardCellSpec

__all__ = ["CellExecutionError", "RunSpec", "run_cell", "run_cells"]

#: Sweep progress channel; silent unless the embedding application (or
#: the CLI via ``setup_logging``) installs a handler on ``repro``.
_log = get_logger("sweep")


@dataclass(frozen=True)
class RunSpec:
    """One simulation cell as pure, picklable data.

    Attributes
    ----------
    policy:
        Registry name understood by
        :func:`repro.experiments.runner.make_policy` (e.g. ``"read"``).
    policy_kwargs:
        Keyword arguments forwarded into the policy's config dataclass.
    n_disks:
        Array size for this cell.
    workload:
        Full workload description; materialized through the content-keyed
        cache, so identical configs across specs share one generation.
    disk_params / press:
        Device model and reliability model (``None`` = module defaults).
    initial_speed / queue_discipline:
        Forwarded to :func:`~repro.experiments.runner.run_simulation`.
    faults:
        Fault-injection configuration (``None`` = injection off).  The
        config is frozen plain data and the resulting
        :class:`~repro.faults.FaultSummary` is picklable, so fault cells
        fan out over the process pool like any other.
    obs:
        Telemetry configuration (``None`` = everything off).  Frozen
        plain data; the cell materializes its own bus/sampler/profiler,
        and the resulting time-series/profile summaries are picklable
        tuples, so telemetry survives the pool boundary.  File-writing
        options (``trace_path``/``metrics_path``) make sense only on
        single-cell specs — parallel cells would race on one path.
    """

    policy: str
    n_disks: int
    workload: WorkloadLike
    policy_kwargs: Mapping[str, object] = field(default_factory=dict)
    disk_params: Optional[TwoSpeedDiskParams] = None
    press: Optional[PRESSModel] = None
    initial_speed: DiskSpeed = DiskSpeed.HIGH
    queue_discipline: QueueDiscipline = QueueDiscipline.FCFS
    faults: Optional[FaultConfig] = None
    obs: Optional[ObsConfig] = None
    #: Set on the sub-cells a sharded run fans out (see
    #: :mod:`repro.experiments.shard`): the cell then simulates one shard
    #: of the array over the *streamed* workload and returns a
    #: ``ShardCellResult`` (an open partial result the shard merger
    #: closes), not a ``SimulationResult``.  ``None`` = ordinary cell.
    shard: "Optional[ShardCellSpec]" = None
    #: Redundancy-group scheme (``None`` = no layout; see
    #: :mod:`repro.redundancy`).  Frozen plain data, pickles across the
    #: pool like the rest of the spec.
    redundancy: Optional[GroupScheme] = None

    def label(self) -> str:
        """Compact human-readable cell name for errors and progress."""
        kwargs = ", ".join(f"{k}={v!r}" for k, v in sorted(self.policy_kwargs.items()))
        suffix = f" [{kwargs}]" if kwargs else ""
        if self.shard is not None:
            suffix += (f" [shard {self.shard.index + 1}"
                       f"/{self.shard.plan.n_shards}]")
        return f"{self.policy} x {self.n_disks} disks{suffix}"


class CellExecutionError(RuntimeError):
    """A cell failed; carries the spec so sweeps can name the culprit."""

    def __init__(self, spec: RunSpec, cause: BaseException) -> None:
        super().__init__(f"cell {spec.label()} failed: {cause!r}")
        self.spec = spec
        self.cause = cause


def run_cell(spec: RunSpec) -> SimulationResult:
    """Execute one cell in the current process.

    Shard sub-cells (``spec.shard`` set) stream their workload and
    return a ``ShardCellResult`` — an open partial result only
    :func:`repro.experiments.shard.merge_shard_results` can consume.
    The cast below keeps the common signature; only the shard fan-out
    in :func:`~repro.experiments.shard.run_sharded` builds such specs,
    and it knows the real type of what comes back.
    """
    if spec.shard is not None:
        from repro.experiments.shard import run_shard_cell

        return cast(SimulationResult, run_shard_cell(spec))
    fileset, trace = cached_generate(spec.workload)
    policy = make_policy(spec.policy, **dict(spec.policy_kwargs))
    return run_simulation(policy, fileset, trace, n_disks=spec.n_disks,
                          disk_params=spec.disk_params, press=spec.press,
                          initial_speed=spec.initial_speed,
                          queue_discipline=spec.queue_discipline,
                          faults=spec.faults, obs=spec.obs,
                          redundancy=spec.redundancy)


def run_cells(specs: Iterable[RunSpec], *, jobs: int = 1,
              resilience=None, checkpoint=None,
              bus=None) -> list[SimulationResult]:
    """Execute cells, returning results in input order.

    ``jobs=1`` (default) runs serially in-process; ``jobs>1`` fans out
    over a process pool.  Both paths produce identical results — specs
    carry all the state a cell reads, so placement does not matter.

    ``resilience`` (a :class:`~repro.experiments.resilience
    .ResilienceConfig`) and/or ``checkpoint`` (a path or
    :class:`~repro.experiments.resilience.SweepCheckpoint`) switch to
    the fault-domain engine: per-cell retries/timeouts, pool respawn,
    checkpointed resume, SIGINT drain.  Results are identical either
    way; callers that also want the
    :class:`~repro.experiments.resilience.ResilienceSummary` should use
    :func:`~repro.experiments.resilience.run_cells_resilient` directly.
    ``bus`` (with ``resilience``/``checkpoint``) receives ``harness.*``
    trace events.  With all three unset this function is byte-for-byte
    the pre-resilience fast path.
    """
    if resilience is not None or checkpoint is not None:
        from repro.experiments.resilience import run_cells_resilient

        results, _summary = run_cells_resilient(
            specs, jobs=jobs, config=resilience, checkpoint=checkpoint,
            bus=bus)
        return results
    spec_list = list(specs)
    require(jobs >= 1, f"jobs must be >= 1, got {jobs}")
    for i, spec in enumerate(spec_list):
        require(isinstance(spec, RunSpec), f"specs[{i}] is not a RunSpec: {spec!r}")

    total = len(spec_list)
    if jobs == 1 or total <= 1:
        results = []
        for i, spec in enumerate(spec_list, start=1):
            _log.info("cell %d/%d started: %s", i, total, spec.label())
            try:
                results.append(run_cell(spec))
            except Exception as exc:
                raise CellExecutionError(spec, exc) from exc
            _log.info("cell %d/%d finished: %s (%.2fs)",
                      i, total, spec.label(), results[-1].wall_clock_s)
        return results

    # Materialize every distinct workload once in the parent: under the
    # fork start method the workers then share the arrays copy-on-write.
    # Shard sub-cells are excluded — they exist precisely to *stream*
    # their workload, and materializing it here would defeat the
    # constant-memory contract.
    distinct = {workload_key(s.workload): s.workload
                for s in spec_list if s.shard is None}
    for workload in distinct.values():
        cached_generate(workload)

    with ProcessPoolExecutor(max_workers=jobs,
                             mp_context=multiprocessing.get_context()) as pool:
        futures = []
        for i, spec in enumerate(spec_list, start=1):
            _log.info("cell %d/%d started: %s", i, total, spec.label())
            futures.append(pool.submit(run_cell, spec))
        results = []
        for i, (spec, future) in enumerate(zip(spec_list, futures), start=1):
            try:
                results.append(future.result())
            except Exception as exc:
                raise CellExecutionError(spec, exc) from exc
            _log.info("cell %d/%d finished: %s (%.2fs)",
                      i, total, spec.label(), results[-1].wall_clock_s)
    return results
