"""Resilient sweep execution: fault domains, checkpointing, graceful drain.

:func:`repro.experiments.parallel.run_cells` treats the harness as
infallible: one OOM-killed worker, one hung cell, or one Ctrl-C loses a
whole multi-hour paper-figure sweep.  This module wraps the same cell
abstraction in per-cell fault domains — the sweep-runner analogue of the
degraded-mode operation PR 3 gave the simulated array:

* **bounded retries** with exponential backoff and deterministic jitter
  (seeded from the *spec*, never from wall clock, so retry timing cannot
  leak into results and two hosts retry in the same pattern);
* **wall-clock timeouts** per cell (pool mode), optionally enforced
  inside the worker by a ``faulthandler`` watchdog that dumps every
  thread's stack before exiting — so a hung-cell report names the stuck
  frame instead of just the cell;
* **pool respawn**: a :class:`BrokenProcessPool` (worker SIGKILLed,
  OOM-killed, or watchdog-expired) recreates the pool and re-queues only
  the in-flight cells instead of aborting the sweep;
* **checkpointing**: every completed :class:`SimulationResult` is
  journaled to an on-disk :class:`SweepCheckpoint` (atomic tmp-file +
  ``os.replace``), content-keyed by :func:`spec_key` so a changed spec
  can never alias a stale result; a resumed sweep skips done cells;
* **graceful drain**: the first SIGINT/SIGTERM stops submitting and
  lets in-flight cells finish; the second kills them.  Either way the
  checkpoint is flushed and :class:`SweepInterrupted` carries a resume
  hint.

Determinism contract: a retried cell re-runs :func:`run_cell` on the
identical spec — the simulation RNG is seeded solely by the spec, so a
sweep that survived three worker crashes and a resume is bit-identical
to one that ran clean.  The test suite asserts this end to end.
"""

from __future__ import annotations

import faulthandler
import hashlib
import multiprocessing
import pickle
import signal
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass
from pathlib import Path
from random import Random
from typing import Iterable, Optional, Sequence, Union

from repro.experiments.metrics import SimulationResult
from repro.experiments.parallel import CellExecutionError, RunSpec, run_cell
from repro.obs import events as obs_events
from repro.obs.bus import TraceBus
from repro.obs.log import get_logger
from repro.util.atomicio import atomic_write_bytes, quarantine
from repro.util.validation import require
from repro.workload.cache import cached_generate, workload_key

__all__ = [
    "CellTimeoutError",
    "ResilienceConfig",
    "ResilienceSummary",
    "SweepCheckpoint",
    "SweepInterrupted",
    "run_cell_resilient",
    "run_cells_resilient",
    "spec_key",
]

_log = get_logger("sweep")

#: Seconds the pool loop blocks in ``wait`` before re-checking signals,
#: backoff eligibility, and timeout deadlines.
_POLL_INTERVAL_S = 0.05

#: On-disk checkpoint format version (bumped on incompatible layouts).
CHECKPOINT_VERSION = 1


# ----------------------------------------------------------------------
# spec identity
# ----------------------------------------------------------------------
def spec_key(spec: RunSpec) -> str:
    """Stable content digest of a :class:`RunSpec` (sha256 hex).

    Equal cell descriptions — not object identity — produce equal keys,
    so a checkpoint entry is valid exactly as long as the spec that
    produced it is unchanged.  ``policy_kwargs`` is normalized to sorted
    items so dict insertion order cannot split a key; the workload is
    folded in through its own content digest.
    """
    kwargs = tuple(sorted(dict(spec.policy_kwargs).items(),
                          key=lambda kv: str(kv[0])))
    payload: tuple = (
        spec.policy,
        spec.n_disks,
        kwargs,
        workload_key(spec.workload),
        spec.disk_params,
        spec.press,
        spec.initial_speed,
        spec.queue_discipline,
        spec.faults,
        spec.obs,
    )
    # Appended only when set so every pre-sharding checkpoint key is
    # unchanged.  A shard sub-cell keys on (plan, shard index) but *not*
    # on its chunk size: chunking changes iteration granularity, never
    # the produced result (same contract as the workload digest), so a
    # sweep resumed under a different --stream-chunk reuses its
    # checkpointed shards.
    if spec.shard is not None:
        payload = payload + (spec.shard.plan, spec.shard.index)
    # same append-only-when-set contract: redundancy-free specs keep
    # their pre-redundancy checkpoint keys
    if spec.redundancy is not None:
        payload = payload + (spec.redundancy,)
    return hashlib.sha256(pickle.dumps(payload, protocol=4)).hexdigest()


# ----------------------------------------------------------------------
# configuration and outcome records
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ResilienceConfig:
    """Per-cell fault-domain parameters for a resilient sweep.

    Attributes
    ----------
    max_retries:
        Re-queues allowed per cell beyond its first attempt (crashes,
        exceptions, and timeouts all consume the same budget).
    retry_backoff_s / retry_jitter:
        Backoff before attempt ``k`` retries is
        ``retry_backoff_s * 2**k * (1 + retry_jitter * u)`` with ``u``
        drawn from a :class:`random.Random` seeded by the spec key and
        attempt — deterministic, spec-local, and never touching the
        simulation RNG.
    cell_timeout_s:
        Wall-clock limit per cell attempt.  Enforced in pool mode (the
        serial path cannot preempt a running cell and ignores it).
    max_pool_respawns:
        Worker-pool recreations tolerated per sweep before giving up —
        the backstop against a cell that kills its worker every time.
    watchdog:
        Arm ``faulthandler.dump_traceback_later`` inside each worker for
        ``cell_timeout_s``: a hung cell dumps every thread's stack to
        stderr and exits, which the parent converts into a timeout +
        retry.  Off, the parent kills the pool at the deadline instead
        (no stacks, same recovery).
    """

    max_retries: int = 2
    retry_backoff_s: float = 0.25
    retry_jitter: float = 0.5
    cell_timeout_s: Optional[float] = None
    max_pool_respawns: int = 3
    watchdog: bool = False

    def __post_init__(self) -> None:
        require(self.max_retries >= 0,
                f"max_retries must be >= 0, got {self.max_retries}")
        require(self.retry_backoff_s >= 0.0,
                f"retry_backoff_s must be >= 0, got {self.retry_backoff_s}")
        require(0.0 <= self.retry_jitter <= 1.0,
                f"retry_jitter must be in [0, 1], got {self.retry_jitter}")
        require(self.cell_timeout_s is None or self.cell_timeout_s > 0.0,
                f"cell_timeout_s must be > 0, got {self.cell_timeout_s}")
        require(self.max_pool_respawns >= 0,
                f"max_pool_respawns must be >= 0, got {self.max_pool_respawns}")

    def backoff_s(self, key: str, attempt: int) -> float:
        """Deterministic backoff before re-queueing attempt ``attempt``."""
        base = self.retry_backoff_s * (2.0 ** attempt)
        jitter = self.retry_jitter * Random(f"{key}:{attempt}").random()
        return base * (1.0 + jitter)


@dataclass(frozen=True)
class ResilienceSummary:
    """What the harness survived while producing a sweep's results."""

    cells_total: int = 0
    #: Cells actually simulated in this invocation.
    cells_run: int = 0
    #: Cells restored from the checkpoint instead of re-run.
    checkpoint_hits: int = 0
    #: Re-queues after a failure/crash/timeout (attempts minus firsts).
    retries: int = 0
    #: Cell attempts killed for exceeding the wall-clock limit.
    timeouts: int = 0
    #: Worker-pool recreations after breakage or a timeout kill.
    pool_respawns: int = 0
    #: Innocent in-flight cells re-queued (at the same attempt) because
    #: the pool broke underneath them.
    cells_salvaged: int = 0

    @property
    def eventful(self) -> bool:
        """Whether the harness had to absorb any fault at all."""
        return bool(self.retries or self.timeouts or self.pool_respawns
                    or self.cells_salvaged or self.checkpoint_hits)

    def summary_row(self) -> dict[str, object]:
        """Flat dict for tabular reporting."""
        return dict(asdict(self))


class CellTimeoutError(CellExecutionError):
    """A cell exhausted its retry budget on wall-clock timeouts."""

    def __init__(self, spec: RunSpec, timeout_s: float) -> None:
        super().__init__(spec, TimeoutError(
            f"wall-clock limit {timeout_s:g}s exceeded"))
        self.timeout_s = timeout_s


class SweepInterrupted(RuntimeError):
    """The sweep was stopped by SIGINT/SIGTERM after a graceful drain.

    Carries enough context for the caller to print an actionable resume
    hint; completed cells are already flushed to the checkpoint (when
    one was configured) by the time this is raised.
    """

    def __init__(self, done: int, total: int,
                 checkpoint_path: Optional[Path]) -> None:
        self.done = done
        self.total = total
        self.checkpoint_path = checkpoint_path
        message = f"sweep interrupted with {done}/{total} cells completed"
        if checkpoint_path is not None:
            message += (f"; checkpoint flushed to {checkpoint_path} — "
                        f"resume with --resume {checkpoint_path}")
        else:
            message += " (no checkpoint configured; completed cells were lost)"
        super().__init__(message)

    @property
    def resume_hint(self) -> Optional[str]:
        """CLI flag that continues this sweep, or ``None``."""
        if self.checkpoint_path is None:
            return None
        return f"--resume {self.checkpoint_path}"


# ----------------------------------------------------------------------
# checkpoint journal
# ----------------------------------------------------------------------
class SweepCheckpoint:
    """On-disk journal of completed cells, keyed by :func:`spec_key`.

    The whole journal is one pickle ``{"version": 1, "cells": {key:
    SimulationResult}}`` republished atomically after every recorded
    cell, so a crash at any instant leaves either the previous or the
    new complete journal — never a torn file.  A journal that fails to
    unpickle (truncated by a dying filesystem, wrong version, foreign
    content) is quarantined aside as ``<name>.corrupt`` and the sweep
    starts fresh rather than aborting.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._cells: dict[str, SimulationResult] = {}
        #: Entries restored from disk at construction time.
        self.loaded = 0
        #: Quarantine path when the on-disk journal was damaged, else None.
        self.quarantined: Optional[Path] = None
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        try:
            with self.path.open("rb") as fh:
                doc = pickle.load(fh)
            if (not isinstance(doc, dict)
                    or doc.get("version") != CHECKPOINT_VERSION
                    or not isinstance(doc.get("cells"), dict)):
                raise ValueError(f"unrecognized checkpoint layout in {self.path}")
        except Exception as exc:  # unpickling garbage raises nearly anything
            self.quarantined = quarantine(self.path)
            _log.warning("checkpoint %s was corrupt (%r); quarantined to %s, "
                         "starting fresh", self.path, exc, self.quarantined)
            return
        self._cells = doc["cells"]
        self.loaded = len(self._cells)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._cells)

    def __contains__(self, key: str) -> bool:
        return key in self._cells

    def get(self, key: str) -> Optional[SimulationResult]:
        """The journaled result for ``key``, or ``None``."""
        return self._cells.get(key)

    def record(self, key: str, result: SimulationResult, *,
               flush: bool = True) -> None:
        """Journal one completed cell (atomically republished by default)."""
        self._cells[key] = result
        if flush:
            self.flush()

    def flush(self) -> None:
        """Atomically publish the current journal to :attr:`path`."""
        blob = pickle.dumps({"version": CHECKPOINT_VERSION,
                             "cells": self._cells}, protocol=4)
        atomic_write_bytes(self.path, blob)


# ----------------------------------------------------------------------
# serial helper (used by the ablation sweeps and the jobs=1 path)
# ----------------------------------------------------------------------
def run_cell_resilient(spec: RunSpec,
                       config: ResilienceConfig | None = None) -> SimulationResult:
    """Execute one cell in-process with the config's retry budget.

    Timeouts are not enforced here (an in-process cell cannot be
    preempted); crashes of the *host* process are the checkpoint's job.
    """
    cfg = config or ResilienceConfig()
    key = spec_key(spec)
    attempt = 0
    while True:
        try:
            return run_cell(spec)
        except KeyboardInterrupt:
            raise
        except Exception as exc:
            if attempt >= cfg.max_retries:
                raise CellExecutionError(spec, exc) from exc
            delay = cfg.backoff_s(key, attempt)
            _log.warning("cell %s failed (%r); retry %d/%d in %.2fs",
                         spec.label(), exc, attempt + 1, cfg.max_retries, delay)
            if delay > 0.0:
                time.sleep(delay)
            attempt += 1


# ----------------------------------------------------------------------
# worker shim (module-level so it pickles)
# ----------------------------------------------------------------------
def _pool_worker(spec: RunSpec, timeout_s: Optional[float],
                 watchdog: bool) -> SimulationResult:
    """Run one cell in a pool worker, optionally under a stack-dumping
    watchdog that turns a hang into an actionable crash."""
    armed = watchdog and timeout_s is not None
    if armed:
        # exit=True: after dumping every thread's stack to stderr the
        # worker dies, which the parent sees as BrokenProcessPool and
        # converts into a timeout + retry.
        faulthandler.dump_traceback_later(timeout_s, exit=True)
    try:
        return run_cell(spec)
    finally:
        if armed:
            faulthandler.cancel_dump_traceback_later()


# ----------------------------------------------------------------------
# signal plumbing
# ----------------------------------------------------------------------
class _InterruptFlag:
    """Set by the first SIGINT/SIGTERM; the second escalates."""

    def __init__(self) -> None:
        self.tripped = False

    def __call__(self, signum, frame) -> None:  # signal handler
        if self.tripped:
            raise KeyboardInterrupt  # second signal: stop waiting politely
        self.tripped = True
        _log.warning("interrupt received: draining in-flight cells "
                     "(interrupt again to kill them)")


def _install_handlers(flag: _InterruptFlag):
    """Install drain handlers; returns the originals (or None off-main)."""
    if threading.current_thread() is not threading.main_thread():
        return None
    previous = {}
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[sig] = signal.signal(sig, flag)
        except (ValueError, OSError):  # exotic embedding; stay uninstalled
            pass
    return previous


def _restore_handlers(previous) -> None:
    if not previous:
        return
    for sig, handler in previous.items():
        signal.signal(sig, handler)


# ----------------------------------------------------------------------
# the resilient sweep engine
# ----------------------------------------------------------------------
def _emit(bus: Optional[TraceBus], event_type: str, **data) -> None:
    if bus is not None:
        bus.emit(event_type, 0.0, **data)  # repro: allow[OBS001] forwarder: every caller passes a harness.* taxonomy constant


class _Sweep:
    """One resilient sweep invocation (parent-process state machine)."""

    def __init__(self, specs: Sequence[RunSpec], *, jobs: int,
                 config: ResilienceConfig,
                 checkpoint: Optional[SweepCheckpoint],
                 bus: Optional[TraceBus]) -> None:
        self.specs = specs
        self.jobs = jobs
        self.cfg = config
        self.ckpt = checkpoint
        self.bus = bus
        self.keys = [spec_key(s) for s in specs]
        self.results: list[Optional[SimulationResult]] = [None] * len(specs)
        #: (index, attempt, ready_at_monotonic) of cells awaiting a slot.
        self.pending: list[tuple[int, int, float]] = []
        self.flag = _InterruptFlag()
        self.cells_run = 0
        self.checkpoint_hits = 0
        self.retries = 0
        self.timeouts = 0
        self.pool_respawns = 0
        self.cells_salvaged = 0

    # -- shared bookkeeping -------------------------------------------
    def restore_from_checkpoint(self) -> None:
        total = len(self.specs)
        for i, (spec, key) in enumerate(zip(self.specs, self.keys)):
            hit = self.ckpt.get(key) if self.ckpt is not None else None
            if hit is not None:
                self.results[i] = hit
                self.checkpoint_hits += 1
                _emit(self.bus, obs_events.HARNESS_CHECKPOINT_HIT,
                      cell=spec.label())
                _log.info("cell %d/%d restored from checkpoint: %s",
                          i + 1, total, spec.label())
            else:
                self.pending.append((i, 0, 0.0))

    def record_success(self, index: int, result: SimulationResult) -> None:
        self.results[index] = result
        self.cells_run += 1
        _emit(self.bus, obs_events.HARNESS_CELL_FINISH,
              cell=self.specs[index].label(), index=index,
              events=result.events_executed, wall_s=result.wall_clock_s)
        if self.ckpt is not None:
            self.ckpt.record(self.keys[index], result)
            _emit(self.bus, obs_events.HARNESS_CHECKPOINT_PUBLISH,
                  cells=len(self.ckpt))
        _log.info("cell %d/%d finished: %s (%.2fs)", index + 1,
                  len(self.specs), self.specs[index].label(),
                  result.wall_clock_s)

    def requeue_or_raise(self, index: int, attempt: int,
                         exc: BaseException, *, timed_out: bool) -> None:
        """Charge one failed attempt; re-queue with backoff or give up."""
        spec = self.specs[index]
        if timed_out:
            self.timeouts += 1
            _emit(self.bus, obs_events.HARNESS_CELL_TIMEOUT,
                  cell=spec.label(), timeout_s=self.cfg.cell_timeout_s)
        if attempt >= self.cfg.max_retries:
            if timed_out:
                raise CellTimeoutError(spec, self.cfg.cell_timeout_s) from exc
            raise CellExecutionError(spec, exc) from exc
        self.retries += 1
        _emit(self.bus, obs_events.HARNESS_CELL_RETRY, cell=spec.label(),
              attempt=attempt + 1, reason=type(exc).__name__)
        delay = self.cfg.backoff_s(self.keys[index], attempt)
        _log.warning("cell %s %s (%r); retry %d/%d in %.2fs", spec.label(),
                     "timed out" if timed_out else "failed", exc,
                     attempt + 1, self.cfg.max_retries, delay)
        self.pending.append((index, attempt + 1, time.monotonic() + delay))

    def interrupt(self) -> None:
        """Flush the checkpoint and raise :class:`SweepInterrupted`."""
        path = None
        if self.ckpt is not None:
            self.ckpt.flush()  # even when empty: the resume hint must work
            path = self.ckpt.path
        done = sum(1 for r in self.results if r is not None)
        raise SweepInterrupted(done, len(self.specs), path)

    def summary(self) -> ResilienceSummary:
        return ResilienceSummary(
            cells_total=len(self.specs), cells_run=self.cells_run,
            checkpoint_hits=self.checkpoint_hits, retries=self.retries,
            timeouts=self.timeouts, pool_respawns=self.pool_respawns,
            cells_salvaged=self.cells_salvaged)

    # -- serial path ---------------------------------------------------
    def run_serial(self) -> None:
        total = len(self.specs)
        while self.pending:
            if self.flag.tripped:
                self.interrupt()
            self.pending.sort(key=lambda e: e[2])
            index, attempt, ready_at = self.pending.pop(0)
            delay = ready_at - time.monotonic()
            if delay > 0.0:
                time.sleep(delay)
            spec = self.specs[index]
            _emit(self.bus, obs_events.HARNESS_CELL_START, cell=spec.label(),
                  index=index, total=total, attempt=attempt + 1)
            _log.info("cell %d/%d started: %s", index + 1, total, spec.label())
            try:
                result = run_cell(spec)
            except KeyboardInterrupt:
                self.interrupt()
            except Exception as exc:
                self.requeue_or_raise(index, attempt, exc, timed_out=False)
                continue
            self.record_success(index, result)

    # -- pool path -----------------------------------------------------
    def run_pool(self) -> None:
        # Materialize every distinct workload once pre-fork (CoW share).
        # Shard sub-cells stream their workload; materializing it here
        # would defeat their constant-memory contract, so skip them.
        distinct = {workload_key(self.specs[i].workload): self.specs[i].workload
                    for i, _, _ in self.pending
                    if self.specs[i].shard is None}
        for workload in distinct.values():
            cached_generate(workload)

        pool: Optional[ProcessPoolExecutor] = None
        in_flight: dict[Future, tuple[int, int, float]] = {}

        def make_pool() -> ProcessPoolExecutor:
            return ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=multiprocessing.get_context())

        def kill_pool() -> None:
            nonlocal pool
            if pool is None:
                return
            # There is no public "kill one worker": terminate them all and
            # respawn.  _processes is CPython internals, hence the getattr.
            for proc in list(getattr(pool, "_processes", {}).values()):
                try:
                    proc.kill()
                except Exception:
                    pass
            pool.shutdown(wait=False, cancel_futures=True)
            pool = None

        def respawn(reason: str) -> None:
            """Tear the pool down and re-queue the in-flight cells."""
            nonlocal pool
            self.pool_respawns += 1
            if self.pool_respawns > self.cfg.max_pool_respawns:
                index = min(i for i, _, _ in in_flight.values()) \
                    if in_flight else 0
                raise CellExecutionError(self.specs[index], RuntimeError(
                    f"worker pool broke {self.pool_respawns} times "
                    f"(limit {self.cfg.max_pool_respawns}); last cause: {reason}"))
            salvaged = list(in_flight.values())
            in_flight.clear()
            for index, attempt, _submitted in salvaged:
                self.cells_salvaged += 1
                _emit(self.bus, obs_events.HARNESS_CELL_SALVAGE,
                      cell=self.specs[index].label())
                self.pending.append((index, attempt, 0.0))
            _emit(self.bus, obs_events.HARNESS_POOL_RESPAWN,
                  respawn=self.pool_respawns, requeued=len(salvaged))
            _log.warning("worker pool respawn %d/%d (%s); re-queued %d "
                         "in-flight cell(s)", self.pool_respawns,
                         self.cfg.max_pool_respawns, reason, len(salvaged))
            kill_pool()
            pool = make_pool()

        def elapsed_timeout(submitted: float) -> bool:
            return (self.cfg.cell_timeout_s is not None
                    and time.monotonic() - submitted >= self.cfg.cell_timeout_s)

        total = len(self.specs)
        pool = make_pool()
        try:
            while self.pending or in_flight:
                if self.flag.tripped:
                    # graceful drain: stop submitting, let in-flight finish
                    if not in_flight:
                        self.interrupt()
                else:
                    self.pending.sort(key=lambda e: e[2])
                    now = time.monotonic()
                    while (self.pending and self.pending[0][2] <= now
                           and len(in_flight) < 2 * self.jobs):
                        index, attempt, _ready = self.pending.pop(0)
                        spec = self.specs[index]
                        try:
                            future = pool.submit(_pool_worker, spec,
                                                 self.cfg.cell_timeout_s,
                                                 self.cfg.watchdog)
                        except (BrokenProcessPool, RuntimeError) as exc:
                            # pool broke between waits; put the cell back
                            # untouched and rebuild
                            self.pending.append((index, attempt, 0.0))
                            respawn(repr(exc))
                            break
                        in_flight[future] = (index, attempt, time.monotonic())
                        _emit(self.bus, obs_events.HARNESS_CELL_START,
                              cell=spec.label(), index=index, total=total,
                              attempt=attempt + 1)
                        _log.info("cell %d/%d started: %s%s", index + 1, total,
                                  spec.label(),
                                  f" (attempt {attempt + 1})" if attempt else "")

                if not in_flight:  # everything is backing off
                    time.sleep(_POLL_INTERVAL_S)
                    continue

                try:
                    done, _ = wait(set(in_flight), timeout=_POLL_INTERVAL_S,
                                   return_when=FIRST_COMPLETED)
                except KeyboardInterrupt:  # second signal while waiting
                    kill_pool()
                    self.interrupt()

                broken_reason: Optional[str] = None
                for future in done:
                    index, attempt, submitted = in_flight.pop(future)
                    try:
                        result = future.result()
                    except BrokenProcessPool as exc:
                        # the worker died under this cell (or a sibling);
                        # classify by elapsed wall clock, charge the attempt
                        broken_reason = repr(exc)
                        self.requeue_or_raise(index, attempt, exc,
                                              timed_out=elapsed_timeout(submitted))
                    except KeyboardInterrupt:
                        kill_pool()
                        self.interrupt()
                    except Exception as exc:
                        self.requeue_or_raise(index, attempt, exc,
                                              timed_out=False)
                    else:
                        self.record_success(index, result)
                if broken_reason is not None:
                    respawn(broken_reason)
                    continue

                # parent-side timeout backstop (the watchdog usually wins)
                if self.cfg.cell_timeout_s is not None:
                    grace = (0.5 * self.cfg.cell_timeout_s + 5.0
                             if self.cfg.watchdog else 0.0)
                    now = time.monotonic()
                    expired = [f for f, (_i, _a, sub) in in_flight.items()
                               if now - sub >= self.cfg.cell_timeout_s + grace]
                    if expired:
                        for future in expired:
                            index, attempt, _sub = in_flight.pop(future)
                            self.requeue_or_raise(
                                index, attempt,
                                TimeoutError(f"no result after "
                                             f"{self.cfg.cell_timeout_s:g}s"),
                                timed_out=True)
                        # running workers cannot be preempted individually:
                        # kill the pool, salvaging the innocents
                        respawn(f"{len(expired)} cell(s) timed out")
        finally:
            kill_pool()


def run_cells_resilient(
    specs: Iterable[RunSpec], *, jobs: int = 1,
    config: ResilienceConfig | None = None,
    checkpoint: Union[SweepCheckpoint, str, Path, None] = None,
    bus: Optional[TraceBus] = None,
) -> tuple[list[SimulationResult], ResilienceSummary]:
    """Execute cells under fault domains; results come back in input order.

    Drop-in superset of :func:`repro.experiments.parallel.run_cells`:
    identical results (the determinism contract survives retries,
    respawns, and resumes), plus a :class:`ResilienceSummary` describing
    what the harness absorbed along the way.

    ``checkpoint`` may be a path (opened/created as a
    :class:`SweepCheckpoint`) or an already-loaded instance; cells whose
    :func:`spec_key` is journaled are restored without re-running.
    ``bus`` receives ``harness.*`` trace events for each absorbed fault.

    Raises :class:`SweepInterrupted` on SIGINT/SIGTERM after draining
    and flushing, :class:`CellExecutionError`/:class:`CellTimeoutError`
    when a cell exhausts its retry budget.
    """
    spec_list = list(specs)
    require(jobs >= 1, f"jobs must be >= 1, got {jobs}")
    for i, spec in enumerate(spec_list):
        require(isinstance(spec, RunSpec),
                f"specs[{i}] is not a RunSpec: {spec!r}")
    cfg = config or ResilienceConfig()
    ckpt: Optional[SweepCheckpoint]
    if checkpoint is None or isinstance(checkpoint, SweepCheckpoint):
        ckpt = checkpoint
    else:
        ckpt = SweepCheckpoint(checkpoint)

    sweep = _Sweep(spec_list, jobs=jobs, config=cfg, checkpoint=ckpt, bus=bus)
    _emit(bus, obs_events.HARNESS_SWEEP_START,
          cells=len(spec_list), jobs=jobs)
    sweep.restore_from_checkpoint()
    previous = _install_handlers(sweep.flag)
    try:
        if sweep.pending:
            if jobs == 1 or len(sweep.pending) <= 1:
                sweep.run_serial()
            else:
                sweep.run_pool()
    except KeyboardInterrupt:
        # escalated second signal (or an embedder's interrupt): flush
        # what we have and surface the resume hint anyway
        sweep.interrupt()
    finally:
        _restore_handlers(previous)
    results = sweep.results
    assert all(r is not None for r in results)
    _emit(bus, obs_events.HARNESS_SWEEP_FINISH,
          cells=len(spec_list), cells_run=sweep.cells_run)
    return list(results), sweep.summary()  # type: ignore[arg-type]
