"""Metrics collection and the per-run result record.

The paper's three metrics (Sec. 5.1): mean response time over all file
access requests, energy consumed serving the whole request set, and the
array AFR from PRESS.  ``RequestMetrics`` gathers the first on the
completion path; the rest are computed from the array and model at the
end of the run and frozen into a :class:`SimulationResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.disk.drive import Job
from repro.faults.metrics import FaultSummary
from repro.obs.profiler import ProfileSummary
from repro.redundancy.metrics import RedundancySummary
from repro.obs.sampler import TimeSeries
from repro.press.model import DiskFactors
from repro.util.validation import require

__all__ = ["RequestMetrics", "SimulationResult"]


class RequestMetrics:
    """Accumulates per-request response times (user requests only).

    Used as the runner's job-completion callback; internal jobs
    (migrations, cache copies) are ignored here by construction — they
    never carry a ``request``.
    """

    def __init__(self, expected: int,
                 on_all_done: "Callable[[], None] | None" = None) -> None:
        require(expected >= 0, f"expected must be >= 0, got {expected}")
        self._expected = expected
        self._response_times = np.empty(expected, dtype=np.float64)
        self._waits = np.empty(expected, dtype=np.float64)
        self._count = 0
        self._failed = 0
        self._on_all_done = on_all_done

    # ------------------------------------------------------------------
    def on_complete(self, job: Job) -> None:
        """Job-completion callback; records user-request response times."""
        req = job.request
        if req is None:
            return
        count = self._count
        if count + self._failed >= self._expected:
            raise ValueError("more completions than expected requests")
        self._response_times[count] = req.completion_time - req.arrival_time
        self._waits[count] = req.service_start - req.arrival_time
        self._count = count + 1
        if count + 1 + self._failed >= self._expected and self._on_all_done is not None:
            self._on_all_done()

    def on_failed(self, job: Job) -> None:
        """A user request was failed permanently (fault injection).

        Failed requests count toward the expected total — the run's stop
        condition is "every request terminated", not "every request
        served" — but contribute nothing to the response-time arrays.
        """
        if job.request is None:
            return
        if self._count + self._failed >= self._expected:
            raise ValueError("more terminations than expected requests")
        self._failed += 1
        if self._count + self._failed >= self._expected and self._on_all_done is not None:
            self._on_all_done()

    # ------------------------------------------------------------------
    @property
    def completed(self) -> int:
        """User requests completed (served) so far."""
        return self._count

    @property
    def failed(self) -> int:
        """User requests permanently failed so far."""
        return self._failed

    @property
    def all_done(self) -> bool:
        """Whether every expected request has terminated (served or failed)."""
        return self._count + self._failed >= self._expected

    @property
    def response_times_s(self) -> np.ndarray:
        """Response times of completed requests (copy-free slice)."""
        return self._response_times[:self._count]

    @property
    def waiting_times_s(self) -> np.ndarray:
        """Queueing delays of completed requests."""
        return self._waits[:self._count]

    def mean_response_s(self) -> float:
        """The paper's headline performance metric."""
        require(self._count > 0, "no completed requests")
        return float(self.response_times_s.mean())

    def percentile_response_s(self, q: float) -> float:
        """Response-time percentile (q in [0, 100])."""
        require(self._count > 0, "no completed requests")
        return float(np.percentile(self.response_times_s, q))


@dataclass(frozen=True, slots=True)
class SimulationResult:
    """Everything one simulation cell reports (one point of Fig. 7)."""

    policy_name: str
    n_disks: int
    n_requests: int
    duration_s: float
    mean_response_s: float
    p95_response_s: float
    p99_response_s: float
    total_energy_j: float
    #: Array AFR (percent) = max over per-disk PRESS AFRs (Sec. 3.5).
    array_afr_percent: float
    per_disk: tuple[DiskFactors, ...]
    total_transitions: int
    internal_jobs: int
    energy_breakdown_j: dict[str, float] = field(default_factory=dict)
    policy_detail: dict[str, object] = field(default_factory=dict)
    #: Realized-reliability outcome; ``None`` when fault injection is off.
    faults: FaultSummary | None = None
    #: Kernel events the run executed (0 for results predating telemetry).
    events_executed: int = 0
    #: Wall-clock seconds the run took (0.0 for legacy results).
    #: Measurement noise, not simulation output — excluded from equality
    #: so serial/parallel sweeps still compare bit-for-bit.
    wall_clock_s: float = field(default=0.0, compare=False)
    #: Per-disk sampled telemetry; ``None`` unless sampling was enabled.
    timeseries: TimeSeries | None = None
    #: Kernel profiling summary; ``None`` unless profiling was enabled
    #: (wall timings inside, so excluded from equality like wall_clock_s).
    profile: ProfileSummary | None = field(default=None, compare=False)
    #: Which per-disk state layout produced this cell: ``"soa"``
    #: (struct-of-arrays buffers) or ``"object"`` (per-drive ledgers).
    #: Excluded from equality — backends are bit-identical by contract,
    #: and the cross-backend suite compares results across it.
    kernel_backend: str = field(default="object", compare=False)
    #: Frozen metrics-registry snapshot (``MetricsRegistry.as_dict()``
    #: shapes); ``None`` unless sampling was enabled.  For a merged
    #: sharded cell this is the *federated* registry, equal to the
    #: unsharded run's for shard-decomposable policies — so it is part
    #: of equality, like ``timeseries``.
    metrics: dict[str, dict[str, object]] | None = None
    #: Redundancy-group outcome + CTMC reliability; ``None`` unless a
    #: ``--redundancy`` scheme was active.
    redundancy: RedundancySummary | None = None

    @property
    def energy_kwh(self) -> float:
        """Total energy in kWh (for the cost model)."""
        return self.total_energy_j / 3.6e6

    @property
    def events_per_sec(self) -> float:
        """Simulation throughput (kernel events per wall-clock second)."""
        if self.wall_clock_s <= 0.0:
            return 0.0
        return self.events_executed / self.wall_clock_s

    @property
    def worst_disk(self) -> DiskFactors:
        """The disk that set the array AFR."""
        return max(self.per_disk, key=lambda f: f.afr_percent)

    def summary_row(self) -> dict[str, object]:
        """Flat dict for tabular reporting."""
        row: dict[str, object] = {
            "policy": self.policy_name,
            "disks": self.n_disks,
            "AFR_%": round(self.array_afr_percent, 3),
            "energy_kJ": round(self.total_energy_j / 1e3, 1),
            "mean_resp_ms": round(self.mean_response_s * 1e3, 2),
            "p95_resp_ms": round(self.p95_response_s * 1e3, 2),
            "transitions": self.total_transitions,
            "events": self.events_executed,
            "wall_s": round(self.wall_clock_s, 2),
            "events_per_s": round(self.events_per_sec),
            "backend": self.kernel_backend,
        }
        if self.faults is not None:
            row.update(self.faults.summary_row())
        if self.redundancy is not None:
            row.update(self.redundancy.summary_row())
        return row
