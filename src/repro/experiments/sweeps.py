"""Ablation sweeps over the design choices DESIGN.md calls out.

Each sweep isolates one resolved ambiguity or one READ mechanism and
reports how the headline metrics move:

* integrator combination strategy (DESIGN.md inconsistency 4);
* READ's adaptive idleness threshold on/off (Fig. 6 line 22);
* READ's transition cap S;
* READ's FRD migration on/off (``max_migrations_per_epoch=0``);
* the idleness threshold H itself, for every idling policy.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.experiments.metrics import SimulationResult
from repro.experiments.parallel import RunSpec, run_cell
from repro.experiments.resilience import ResilienceConfig, run_cell_resilient
from repro.experiments.runner import ExperimentConfig, make_policy
from repro.faults import FaultConfig
from repro.policies.base import SpeedControlConfig
from repro.press.integrator import CombinationStrategy
from repro.press.model import PRESSModel
from repro.util.validation import require

__all__ = [
    "sweep_fault_acceleration",
    "sweep_integrator_strategies",
    "sweep_read_transition_cap",
    "sweep_read_adaptive_threshold",
    "sweep_read_migration",
    "sweep_idle_threshold",
]


def _run_one(cfg: ExperimentConfig, policy_name: str, n_disks: int,
             press: PRESSModel | None = None,
             faults: FaultConfig | None = None,
             resilience: ResilienceConfig | None = None,
             **policy_kwargs) -> SimulationResult:
    spec = RunSpec(policy=policy_name, n_disks=n_disks,
                   workload=cfg.workload, policy_kwargs=policy_kwargs,
                   disk_params=cfg.disk_params, press=press,
                   faults=faults)
    # resilience=None keeps the exact historical path (no retry wrapper),
    # so existing callers and goldens are untouched
    if resilience is None:
        return run_cell(spec)
    return run_cell_resilient(spec, resilience)


def sweep_fault_acceleration(cfg: ExperimentConfig,
                             accels: Sequence[float] = (1e4, 5e4, 2e5), *,
                             policy: str = "read", n_disks: int = 10,
                             seed: int = 0,
                             resilience: ResilienceConfig | None = None,
                             ) -> dict[float, SimulationResult]:
    """Realized reliability vs hazard acceleration: how availability and
    data-loss exposure degrade as failures become more frequent, for one
    policy at one array size.  The same base seed is used at every
    acceleration so the failure *budgets* are held fixed and only the
    hazard scale moves."""
    require(len(accels) >= 1, "need at least one acceleration value")
    return {accel: _run_one(cfg, policy, n_disks, resilience=resilience,
                            faults=FaultConfig(seed=seed, accel=accel))
            for accel in accels}


def sweep_integrator_strategies(cfg: ExperimentConfig, *, n_disks: int = 10,
                                policy: str = "read",
                                resilience: ResilienceConfig | None = None,
                                ) -> dict[str, SimulationResult]:
    """Same run scored under every integrator combination strategy.

    The simulation itself is strategy-independent (the strategy only
    affects scoring), so the trace is replayed exactly once and the
    frozen per-disk factors are re-scored under each strategy via
    :meth:`~repro.press.model.PRESSModel.rescore_factors`.
    """
    base = _run_one(cfg, policy, n_disks, resilience=resilience)
    out: dict[str, SimulationResult] = {}
    for strategy in CombinationStrategy:
        press = PRESSModel.with_strategy(strategy)
        afr, factors = press.rescore_factors(base.per_disk)
        out[strategy.value] = replace(base, array_afr_percent=afr,
                                      per_disk=tuple(factors))
    return out


def sweep_read_transition_cap(cfg: ExperimentConfig, caps: Sequence[int] = (4, 10, 40, 200), *,
                              n_disks: int = 10,
                              resilience: ResilienceConfig | None = None,
                              ) -> dict[int, SimulationResult]:
    """READ's S: how hard does capping transitions trade energy for AFR?"""
    require(len(caps) >= 1, "need at least one cap value")
    return {cap: _run_one(cfg, "read", n_disks, resilience=resilience,
                          max_transitions_per_day=cap)
            for cap in caps}


def sweep_read_adaptive_threshold(cfg: ExperimentConfig, *,
                                  n_disks: int = 10,
                                  resilience: ResilienceConfig | None = None,
                                  ) -> dict[str, SimulationResult]:
    """Fig. 6 line 22 on vs off (H doubling at half budget)."""
    return {
        "adaptive": _run_one(cfg, "read", n_disks, resilience=resilience,
                             adaptive_threshold=True),
        "fixed": _run_one(cfg, "read", n_disks, resilience=resilience,
                          adaptive_threshold=False),
    }


def sweep_read_migration(cfg: ExperimentConfig, *,
                         n_disks: int = 10,
                         resilience: ResilienceConfig | None = None,
                         ) -> dict[str, SimulationResult]:
    """FRD on vs off: what does epoch redistribution buy?"""
    return {
        "frd_on": _run_one(cfg, "read", n_disks, resilience=resilience),
        "frd_off": _run_one(cfg, "read", n_disks, resilience=resilience,
                            max_migrations_per_epoch=0),
    }


def sweep_idle_threshold(cfg: ExperimentConfig, thresholds_s: Sequence[float] = (5.0, 30.0, 120.0),
                         *, policy: str = "pdc", n_disks: int = 10,
                         resilience: ResilienceConfig | None = None,
                         ) -> dict[float, SimulationResult]:
    """H for the idling policies: small H = eager spin-downs = transitions.

    Only H varies; each policy keeps its characteristic spin-up rule
    (MAID/PDC wake on any arrival, READ on sustained backlog) so the
    sweep isolates one knob.
    """
    require(policy in ("pdc", "maid", "read"), "idle-threshold sweep needs an idling policy")
    base = make_policy(policy).config.speed
    out: dict[float, SimulationResult] = {}
    for h in thresholds_s:
        speed = SpeedControlConfig(idle_threshold_s=h,
                                   spin_up_queue_len=base.spin_up_queue_len,
                                   spin_up_wait_s=base.spin_up_wait_s)
        out[h] = _run_one(cfg, policy, n_disks, resilience=resilience,
                          speed=speed)
    return out
