"""The trace-driven simulation runner (the paper's Sec. 5.1 methodology).

One call to :func:`run_simulation` evaluates one (policy, array size)
cell: it builds a fresh kernel + array, lets the policy lay data out,
streams the trace's arrivals through the policy's router, runs until the
last user request completes, then freezes metrics, energy, and the PRESS
reliability assessment into a :class:`SimulationResult`.

Arrivals are streamed (each arrival event schedules the next) rather
than pre-loaded, so multi-million-request traces don't balloon the event
heap.  End-of-run semantics: the measured horizon is the completion time
of the last user request; the policy is then shut down (periodic tasks
and timers cancelled) and any still-queued *internal* work is abandoned
— its already-elapsed disk time is accounted, matching how the paper's
"process of serving the entire request set" frames energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import lru_cache
from time import perf_counter
from typing import Callable

from repro.core.extensions import (
    ReplicatingREADConfig,
    ReplicatingREADPolicy,
    RotatingREADConfig,
    RotatingREADPolicy,
)
from repro.core.read_strategy import READConfig, READPolicy
from repro.disk.array import DiskArray
from repro.disk.drive import QueueDiscipline
from repro.disk.parameters import DiskSpeed, TwoSpeedDiskParams, cheetah_two_speed
from repro.experiments.metrics import RequestMetrics, SimulationResult
from repro.faults import FaultConfig, FaultInjector
from repro.obs import (
    DiskSampler,
    JsonlTraceWriter,
    KernelProfiler,
    MetricsRegistry,
    ObsConfig,
    TraceBus,
    write_timeseries,
)
from repro.obs import events as obs_events
from repro.policies.base import Policy
from repro.policies.maid import MAIDConfig, MAIDPolicy
from repro.policies.drpm import DRPMConfig, DRPMPolicy
from repro.policies.hibernator import HibernatorConfig, HibernatorPolicy
from repro.policies.pdc import PDCConfig, PDCPolicy
from repro.policies.static import StaticHighPolicy, StaticLowPolicy
from repro.policies.striped import StripedPolicyConfig, StripedStaticPolicy
from repro.press.model import PRESSModel
from repro.redundancy.ctmc import CtmcResult, assess_scheme
from repro.redundancy.groups import RedundancyGroups
from repro.redundancy.metrics import RedundancySummary, RedundancyTracker
from repro.redundancy.scheme import GroupScheme
from repro.sim.engine import Simulator
from repro.util.validation import require
from repro.workload.files import FileSet
from repro.workload.request import Request
from repro.workload.cache import cached_generate
from repro.workload.synthetic import SyntheticWorkloadConfig
from repro.workload.trace import Trace

__all__ = ["ExperimentConfig", "make_policy", "resolve_kernel_backend",
           "run_simulation"]


@lru_cache(maxsize=1)
def _default_disk_params() -> TwoSpeedDiskParams:
    """Shared default device model (immutable, so one instance is safe)."""
    return cheetah_two_speed()


@lru_cache(maxsize=1)
def _default_press() -> PRESSModel:
    """Shared default PRESS model (stateless between evaluations)."""
    return PRESSModel()

PolicyFactory = Callable[[], Policy]

_POLICY_REGISTRY: dict[str, PolicyFactory] = {
    "read": READPolicy,
    "read-rotate": RotatingREADPolicy,
    "read-replicate": ReplicatingREADPolicy,
    "maid": MAIDPolicy,
    "pdc": PDCPolicy,
    "drpm": DRPMPolicy,
    "hibernator": HibernatorPolicy,
    "static-high": StaticHighPolicy,
    "static-low": StaticLowPolicy,
    "striped-static": StripedStaticPolicy,
}


def make_policy(name: str, **config_kwargs) -> Policy:
    """Instantiate a policy by registry name.

    Keyword arguments are forwarded into the policy's config dataclass
    (``READConfig``/``MAIDConfig``/``PDCConfig``); the static baselines
    accept none.
    """
    require(name in _POLICY_REGISTRY,
            f"unknown policy {name!r}; known: {sorted(_POLICY_REGISTRY)}")
    if not config_kwargs:
        return _POLICY_REGISTRY[name]()
    if name == "read":
        return READPolicy(READConfig(**config_kwargs))
    if name == "read-rotate":
        return RotatingREADPolicy(RotatingREADConfig(**config_kwargs))
    if name == "read-replicate":
        return ReplicatingREADPolicy(ReplicatingREADConfig(**config_kwargs))
    if name == "maid":
        return MAIDPolicy(MAIDConfig(**config_kwargs))
    if name == "pdc":
        return PDCPolicy(PDCConfig(**config_kwargs))
    if name == "drpm":
        return DRPMPolicy(DRPMConfig(**config_kwargs))
    if name == "hibernator":
        return HibernatorPolicy(HibernatorConfig(**config_kwargs))
    if name == "striped-static":
        return StripedStaticPolicy(StripedPolicyConfig(**config_kwargs))
    raise ValueError(f"policy {name!r} takes no configuration")


@dataclass(frozen=True, slots=True)
class ExperimentConfig:
    """A reusable bundle: workload + device + model for a family of runs."""

    workload: SyntheticWorkloadConfig = field(default_factory=SyntheticWorkloadConfig)
    disk_params: TwoSpeedDiskParams = field(default_factory=cheetah_two_speed)

    def with_heavy_load(self, compression: float = 8.0) -> "ExperimentConfig":
        """The paper's heavy condition: same stream, time-compressed."""
        return replace(self, workload=self.workload.heavy(compression))

    def generate(self) -> tuple[FileSet, Trace]:
        """Materialize the (deterministic) workload.

        Served through the process-wide content-keyed cache, so repeated
        sweeps over the same config share one materialization.
        """
        return cached_generate(self.workload)


def resolve_kernel_backend(requested: str, *, faults_on: bool,
                           tracing_on: bool) -> str:
    """Pick the concrete kernel backend for one run.

    ``"auto"`` (the default) selects the struct-of-arrays backend unless
    fault injection or per-event tracing is enabled — those paths lean
    on per-drive object identity (cancellation of in-flight events,
    per-event emission) and stay on the battle-tested object dispatch.
    An explicit ``"soa"`` request likewise falls back to ``"object"``
    when faults are on; the resolved (actual) backend is recorded in
    :attr:`SimulationResult.kernel_backend` either way.  Results are
    bit-identical across backends, so the fallback is a safety valve,
    not a semantic switch.
    """
    require(requested in ("auto", "soa", "object"),
            f"kernel_backend must be 'auto', 'soa' or 'object', got {requested!r}")
    if requested == "object":
        return "object"
    if faults_on or tracing_on:
        return "object"
    return "soa"


def run_simulation(policy: Policy, fileset: FileSet, trace: Trace, *,
                   n_disks: int, disk_params: TwoSpeedDiskParams | None = None,
                   press: PRESSModel | None = None,
                   initial_speed: DiskSpeed = DiskSpeed.HIGH,
                   queue_discipline: QueueDiscipline = QueueDiscipline.FCFS,
                   faults: FaultConfig | None = None,
                   obs: ObsConfig | None = None,
                   kernel_backend: str = "auto",
                   redundancy: GroupScheme | None = None) -> SimulationResult:
    """Run one policy over one trace on an ``n_disks`` array.

    The same (fileset, trace) pair should be passed to every competing
    policy — that is the paper's fairness protocol (Sec. 3.5: "all
    algorithms are evaluated ... under the same conditions").

    ``faults`` enables in-simulation fault injection (see
    :mod:`repro.faults`); ``None`` keeps the fault-free fast path, whose
    results are bit-identical to runs predating the fault subsystem.

    ``obs`` enables the telemetry layer (see :mod:`repro.obs`): event
    tracing to JSONL, periodic per-disk sampling, and kernel profiling.
    ``None`` (and the all-off ``ObsConfig()``) attach nothing, keeping
    the hot path and the results bit-identical to an untraced run.

    ``kernel_backend`` selects the per-disk state layout: ``"soa"``
    (struct-of-arrays buffers, vectorized whole-array reads),
    ``"object"`` (per-drive Python ledgers), or ``"auto"`` (SoA unless
    faults/tracing force the object path — see
    :func:`resolve_kernel_backend`).  Results are bit-identical across
    backends; the resolved choice is recorded in the result.

    ``redundancy`` attaches a :class:`~repro.redundancy.scheme.GroupScheme`
    layout (``n_disks`` must be a multiple of its group size).  With
    faults on, the group geometry drives degraded reads, the data-loss
    census, rebuild fan-out, and (when ``domain_outage_per_year`` is
    set) correlated domain failures; with faults off the run itself is
    untouched and only the CTMC reliability assessment is computed from
    the run's PRESS factors.  ``None`` and the ``"none"`` scheme keep
    every path bit-identical to a redundancy-free run.
    """
    require(len(trace) >= 1, "trace must contain at least one request")
    params = disk_params if disk_params is not None else _default_disk_params()
    model = press if press is not None else _default_press()
    scheme = (None if redundancy is None or not redundancy.is_redundant
              else redundancy)
    groups = (None if scheme is None
              else RedundancyGroups(scheme, n_disks))
    backend = resolve_kernel_backend(
        kernel_backend, faults_on=faults is not None,
        tracing_on=obs is not None and obs.trace_path is not None)

    sim = Simulator()
    # Telemetry attaches before anything observes sim.trace: drives cache
    # the bus at construction, policies at bind, the injector at init.
    bus: TraceBus | None = None
    writer: JsonlTraceWriter | None = None
    profiler: KernelProfiler | None = None
    if obs is not None:
        if obs.trace_path is not None:
            bus = TraceBus()
            writer = JsonlTraceWriter(obs.trace_path)
            bus.subscribe(writer)
            sim.trace = bus
        if obs.profile:
            profiler = KernelProfiler()
            sim.set_profiler(profiler)
    array = DiskArray(sim, params, n_disks, fileset, initial_speed=initial_speed,
                      queue_discipline=queue_discipline, kernel_backend=backend)
    registry: MetricsRegistry | None = None
    sampler: DiskSampler | None = None
    if obs is not None and obs.wants_sampler:
        registry = MetricsRegistry()
        sampler = DiskSampler(sim, array, obs.effective_sample_interval_s,
                              registry=registry)
        sampler.install()
    metrics = RequestMetrics(expected=len(trace), on_all_done=sim.request_stop)

    policy.bind(sim, array, fileset)
    injector: FaultInjector | None = None
    if faults is None:
        policy.completion_callback = metrics.on_complete
    else:
        injector = FaultInjector(sim, array, policy, model, faults,
                                 on_success=metrics.on_complete,
                                 on_permanent_failure=metrics.on_failed,
                                 redundancy=groups)
        injector.install()
        policy.completion_callback = injector.on_user_job_complete
    policy.initial_layout()

    # Pre-convert the numpy columns to plain Python lists once: the
    # dispatch callback runs for every arrival, and list indexing returns
    # ready-made floats/ints instead of numpy scalars needing coercion.
    times = trace.times_s.tolist()
    ids = trace.file_ids.tolist()
    sizes = fileset.sizes_mb.tolist()
    n = len(trace)
    i = 0

    route = policy.route
    schedule_at = sim.schedule_at
    new_request = Request.from_validated

    def dispatch_next() -> None:
        nonlocal i
        fid = ids[i]
        route(new_request(sim.now, fid, sizes[fid]))
        i += 1
        if i < n:
            schedule_at(times[i], dispatch_next, priority=-1)

    schedule_at(times[0], dispatch_next, priority=-1)

    if bus is not None:
        bus.emit(obs_events.ENGINE_START, sim.now, policy=policy.name,
                 n_disks=n_disks, n_requests=n)

    # Run until every user request has completed: the metrics object
    # stops the kernel from inside the last completion callback.
    # Policies' periodic tasks keep the queue non-empty, so completion —
    # not queue exhaustion — is the intended stop condition.
    wall_start = perf_counter()
    try:
        sim.run_until_drained()
        if not metrics.all_done:
            raise RuntimeError(
                f"event queue drained with {metrics.completed}/{n} requests done"
            )
    except BaseException:
        # a dying run must not leave a half-written trace where a whole
        # one is expected: set it aside as <path>.partial
        if writer is not None:
            writer.abort()
        raise
    wall_clock_s = perf_counter() - wall_start

    duration = sim.now
    if injector is not None:
        injector.shutdown()
    policy.shutdown()
    array.finalize()

    timeseries = None
    metrics_snapshot: dict[str, dict[str, object]] | None = None
    if sampler is not None:
        sampler.sample_now()  # close the series with the final state
        sampler.shutdown()
        timeseries = sampler.series()
        if obs is not None and obs.metrics_path is not None:
            write_timeseries(timeseries, obs.metrics_path)
    if registry is not None:
        metrics_snapshot = registry.as_dict()
    if bus is not None:
        bus.emit(obs_events.ENGINE_STOP, duration,
                 events=sim.events_executed, duration_s=duration)
    if writer is not None:
        writer.close()
    profile = profiler.summary(wall_clock_s=wall_clock_s) if profiler is not None else None

    afr, factors = model.evaluate_array(array, duration)

    redundancy_summary: RedundancySummary | None = None
    if scheme is not None and groups is not None:
        measured_s = (injector.rtracker.mean_rebuild_s()
                      if injector is not None and injector.rtracker is not None
                      else None)
        if measured_s is not None:
            rebuild_hours = max(measured_s / 3600.0, 1e-3)
        else:
            # no rebuild completed (or faults off): estimate operator
            # delay + a full-capacity copy stream at high speed
            delay_s = (faults.repair_delay_s if faults is not None
                       else FaultConfig().repair_delay_s)
            used = max((float(m) for m in array.used_mb), default=0.0)
            transfer = params.mode(DiskSpeed.HIGH).transfer_mb_s
            rebuild_hours = max((delay_s + used / transfer) / 3600.0, 1e-3)
        ctmc: CtmcResult | None = assess_scheme(
            scheme, [f.afr_percent for f in factors],
            rebuild_hours=rebuild_hours)
        if injector is not None:
            redundancy_summary = injector.redundancy_summary(ctmc)
        else:
            redundancy_summary = RedundancyTracker().summarize(
                scheme=scheme.name, n_groups=groups.n_groups,
                final_states=("healthy",) * groups.n_groups, ctmc=ctmc)

    breakdown: dict[str, float] = {}
    for drive in array.drives:
        for state, joules in drive.energy.breakdown().items():
            breakdown[state] = breakdown.get(state, 0.0) + joules

    # under heavy fault injection every request can fail; response-time
    # stats are then undefined rather than an error
    no_served = metrics.completed == 0

    return SimulationResult(
        policy_name=policy.name,
        n_disks=n_disks,
        n_requests=n,
        duration_s=duration,
        mean_response_s=float("nan") if no_served else metrics.mean_response_s(),
        p95_response_s=float("nan") if no_served else metrics.percentile_response_s(95.0),
        p99_response_s=float("nan") if no_served else metrics.percentile_response_s(99.0),
        total_energy_j=array.total_energy_j(),
        array_afr_percent=afr,
        per_disk=tuple(factors),
        total_transitions=sum(d.stats.speed_transitions_total for d in array.drives),
        internal_jobs=sum(d.stats.internal_jobs_served for d in array.drives),
        energy_breakdown_j=breakdown,
        policy_detail=policy.describe(),
        faults=(None if injector is None else
                injector.tracker.summarize(n_disks=n_disks, duration_s=duration)),
        events_executed=sim.events_executed,
        wall_clock_s=wall_clock_s,
        timeseries=timeseries,
        profile=profile,
        kernel_backend=backend,
        metrics=metrics_snapshot,
        redundancy=redundancy_summary,
    )
