"""The title question, in dollars: is the energy saving worth the
reliability loss?

Section 3.5 argues qualitatively that "the value of lost data plus the
price of failed disks substantially outweigh the energy-saving gained"
when transition frequency is high.  This module makes that argument
computable: compare two simulation results (an energy-saving scheme vs
a reference) by converting

* the energy difference into dollars at an electricity price, and
* the AFR difference into expected annual failure cost
  (failures/year x [disk replacement + expected data-loss cost]),

both normalized to one year of operation at the simulated duty.

Loss-cost coupling
------------------
Without redundancy information the data-loss cost is charged per
independent disk failure — every failure is assumed to lose its data,
the paper's (and the legacy) convention.  When either result carries a
CTMC reliability assessment (``SimulationResult.redundancy``, produced
by running with ``--redundancy``), the data-loss term is instead routed
through the scheme-aware expected loss-event rate (``1 / MTTDL``):
replacement cost still scales with disk failures (every failed disk is
replaced regardless of redundancy), but data loss only accrues when the
redundancy is actually pierced.  For ``scheme=none`` the CTMC rate
degenerates to the per-disk failure rate, so both paths agree there by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.metrics import SimulationResult
from repro.redundancy.ctmc import CtmcResult
from repro.util.units import SECONDS_PER_YEAR, joules_to_kwh
from repro.util.validation import require, require_non_negative, require_positive

__all__ = ["CostAssumptions", "WorthwhileVerdict", "evaluate_worthwhileness",
           "expected_failures_per_year", "expected_loss_events_per_year"]


@dataclass(frozen=True, slots=True)
class CostAssumptions:
    """Economic inputs (2008-era defaults, all USD).

    ``data_loss_cost_usd`` is the *expected* cost of the data lost with
    a failed disk after accounting for whatever redundancy exists;
    reliability-critical sites (the paper's OLTP/Web examples) set this
    high, scratch storage sets it near zero.
    """

    electricity_usd_per_kwh: float = 0.10
    disk_replacement_usd: float = 300.0
    data_loss_cost_usd: float = 5_000.0
    #: Overhead multiplier for cooling etc. (1.0 = none); data-center
    #: practice charges ~2x the IT load.
    power_overhead_factor: float = 2.0

    def __post_init__(self) -> None:
        require_positive(self.electricity_usd_per_kwh, "electricity_usd_per_kwh")
        require_non_negative(self.disk_replacement_usd, "disk_replacement_usd")
        require_non_negative(self.data_loss_cost_usd, "data_loss_cost_usd")
        require(self.power_overhead_factor >= 1.0,
                f"power_overhead_factor must be >= 1, got {self.power_overhead_factor}")

    @property
    def failure_cost_usd(self) -> float:
        """Total expected cost of one disk failure."""
        return self.disk_replacement_usd + self.data_loss_cost_usd


@dataclass(frozen=True, slots=True)
class WorthwhileVerdict:
    """The annualized comparison of a scheme against a reference."""

    scheme: str
    reference: str
    energy_saving_usd_per_year: float
    extra_failure_cost_usd_per_year: float
    #: How the data-loss term was computed: ``"per-disk-afr"`` (legacy,
    #: every disk failure loses its data) or ``"ctmc"`` (scheme-aware
    #: loss-event rate from the redundancy CTMC).
    loss_model: str = "per-disk-afr"
    #: CTMC assessments backing a ``"ctmc"`` verdict (None under legacy).
    scheme_ctmc: CtmcResult | None = None
    reference_ctmc: CtmcResult | None = None

    @property
    def net_benefit_usd_per_year(self) -> float:
        """Positive when the scheme pays for its reliability loss."""
        return self.energy_saving_usd_per_year - self.extra_failure_cost_usd_per_year

    @property
    def worthwhile(self) -> bool:
        """The paper's question, answered for these assumptions."""
        return self.net_benefit_usd_per_year > 0.0


def _annualize(j: float, duration_s: float) -> float:
    return j * SECONDS_PER_YEAR / duration_s


def expected_failures_per_year(afr_percent: float, n_disks: int) -> float:
    """Expected disk failures per year for an array at a uniform AFR.

    Conservative reading of the paper's array-AFR convention: the max
    per-disk AFR is applied to every disk (the array is "only as
    reliable as its least reliable disk").  ``n_disks == 0`` is legal
    and yields 0.0 (an empty array cannot fail).
    """
    require_non_negative(afr_percent, "afr_percent")
    require(n_disks >= 0, f"n_disks must be >= 0, got {n_disks}")
    return afr_percent / 100.0 * n_disks


def expected_loss_events_per_year(result: SimulationResult) -> float:
    """Expected *data-loss* incidents per year for one result.

    With a CTMC assessment attached this is the scheme-aware rate
    ``1 / MTTDL_array``; without one it falls back to the legacy
    every-failure-loses-data convention (per-disk failure count at the
    array AFR), which is exactly what the CTMC degenerates to for
    ``scheme=none``.
    """
    if result.redundancy is not None and result.redundancy.ctmc is not None:
        return result.redundancy.ctmc.loss_events_per_year
    return expected_failures_per_year(result.array_afr_percent, result.n_disks)


def evaluate_worthwhileness(scheme: SimulationResult, reference: SimulationResult,
                            assumptions: CostAssumptions | None = None) -> WorthwhileVerdict:
    """Compare an energy-saving scheme against a reference run.

    Both results must come from the same trace and array size (the
    function refuses apples-to-oranges comparisons).  Energy and failure
    deltas are annualized from the simulated duration; a *negative*
    energy saving (the scheme used more energy) and a *negative* extra
    failure cost (the scheme is more reliable) are both legal and simply
    flow through the net-benefit sign.

    When either result carries a CTMC assessment (it ran with
    ``--redundancy``), the verdict's data-loss term switches to the
    scheme-aware loss-event rate (see the module docstring); runs
    without one keep the legacy per-failure charge bit-for-bit.
    """
    a = assumptions or CostAssumptions()
    require(scheme.n_disks == reference.n_disks,
            "scheme and reference must use the same array size")
    require(scheme.n_requests == reference.n_requests,
            "scheme and reference must replay the same trace")

    saved_j_per_year = (_annualize(reference.total_energy_j, reference.duration_s)
                        - _annualize(scheme.total_energy_j, scheme.duration_s))
    energy_usd = (joules_to_kwh(saved_j_per_year) * a.electricity_usd_per_kwh
                  * a.power_overhead_factor)

    extra_failures = (expected_failures_per_year(scheme.array_afr_percent, scheme.n_disks)
                      - expected_failures_per_year(reference.array_afr_percent,
                                                   reference.n_disks))
    scheme_ctmc = None if scheme.redundancy is None else scheme.redundancy.ctmc
    reference_ctmc = (None if reference.redundancy is None
                      else reference.redundancy.ctmc)
    if scheme_ctmc is None and reference_ctmc is None:
        # legacy: every extra disk failure is charged replacement + loss
        failure_usd = extra_failures * a.failure_cost_usd
        loss_model = "per-disk-afr"
    else:
        extra_losses = (expected_loss_events_per_year(scheme)
                        - expected_loss_events_per_year(reference))
        failure_usd = (extra_failures * a.disk_replacement_usd
                       + extra_losses * a.data_loss_cost_usd)
        loss_model = "ctmc"

    return WorthwhileVerdict(
        scheme=scheme.policy_name,
        reference=reference.policy_name,
        energy_saving_usd_per_year=energy_usd,
        extra_failure_cost_usd_per_year=failure_usd,
        loss_model=loss_model,
        scheme_ctmc=scheme_ctmc,
        reference_ctmc=reference_ctmc,
    )
