"""Plain-text reporting: compatibility re-exports.

The table/series formatters the benches print moved to
:mod:`repro.util.tables` so that lower layers (``repro.obs``) can format
output without importing ``repro.experiments`` (the ARCH001 layer
contract, DESIGN.md §10). This module keeps the historical import path
working for the benchmark harness and external callers.
"""

from __future__ import annotations

from repro.util.tables import format_improvement, format_series, format_table

__all__ = ["format_table", "format_series", "format_improvement"]
