"""Plain-text reporting: the tables and series the benches print.

The benchmark harness regenerates each paper figure as a printed table
(rows = sweep points, columns = policies/series) — the reproduction
compares *shapes* (ordering, ratios, crossovers), so aligned text output
is the right artifact for a terminal-first workflow.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.util.validation import require

__all__ = ["format_table", "format_series", "format_improvement"]


def format_table(rows: Sequence[Mapping[str, object]], *, title: str | None = None) -> str:
    """Render dict-rows as an aligned text table (union of keys, in
    first-seen order)."""
    require(len(rows) >= 1, "need at least one row")
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    cells = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in cells)) for i, col in enumerate(columns)]

    def line(values: Sequence[str]) -> str:
        return "  ".join(v.rjust(w) for v, w in zip(values, widths))

    out: list[str] = []
    if title:
        out.append(title)
    out.append(line(columns))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(r) for r in cells)
    return "\n".join(out)


def format_series(x: np.ndarray, series: Mapping[str, np.ndarray], *,
                  x_label: str, title: str | None = None,
                  fmt: str = "{:.4g}") -> str:
    """Render one x-axis with named y-series as an aligned table."""
    xs = np.asarray(x)
    require(xs.ndim == 1 and xs.size >= 1, "x must be a non-empty 1-D array")
    for name, ys in series.items():
        require(np.asarray(ys).shape == xs.shape,
                f"series {name!r} must match the x axis shape")
    rows = []
    for i, xv in enumerate(xs):
        row: dict[str, object] = {x_label: fmt.format(float(xv))}
        for name, ys in series.items():
            row[name] = fmt.format(float(np.asarray(ys)[i]))
        rows.append(row)
    return format_table(rows, title=title)


def format_improvement(base_name: str, base: np.ndarray,
                       other_name: str, other: np.ndarray) -> str:
    """One-line summary: mean / max percentage improvement of base vs other.

    Positive numbers mean ``base`` is lower (better, for AFR / energy /
    response time) than ``other`` — matching the paper's phrasing
    "READ ... improvement compared with MAID".
    """
    b = np.asarray(base, dtype=np.float64)
    o = np.asarray(other, dtype=np.float64)
    require(b.shape == o.shape and b.size >= 1, "series must align")
    require(bool(np.all(o > 0)), "reference series must be positive")
    rel = (o - b) / o * 100.0
    return (f"{base_name} vs {other_name}: mean {rel.mean():+.1f}%, "
            f"best {rel.max():+.1f}%, worst {rel.min():+.1f}%")


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
