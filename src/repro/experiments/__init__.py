"""Experiment harness: run policies over traces, regenerate the paper's
tables and figures, and answer the title question with a cost model.

Entry points:

* :func:`~repro.experiments.runner.run_simulation` — one (policy, trace,
  array size) cell; returns a :class:`~repro.experiments.metrics.SimulationResult`.
* :mod:`~repro.experiments.figures` — one function per paper figure.
* :mod:`~repro.experiments.sweeps` — ablations over the design choices
  DESIGN.md calls out.
* :mod:`~repro.experiments.costmodel` — "is it worthwhile?" in dollars.
"""

from repro.experiments.metrics import RequestMetrics, SimulationResult
from repro.experiments.parallel import CellExecutionError, RunSpec, run_cell, run_cells
from repro.experiments.runner import ExperimentConfig, run_simulation, make_policy
from repro.experiments.figures import (
    figure2b_series,
    figure3b_series,
    figure4a_series,
    figure4b_series,
    figure5_surface,
    figure7_comparison,
    headline_summary,
)
from repro.experiments.costmodel import CostAssumptions, WorthwhileVerdict, evaluate_worthwhileness
from repro.experiments.reporting import format_table, format_series
from repro.experiments.failures import FailureAnalysis, simulate_failures
from repro.experiments.report import render_markdown_report, write_markdown_report

__all__ = [
    "RequestMetrics",
    "SimulationResult",
    "ExperimentConfig",
    "run_simulation",
    "make_policy",
    "CellExecutionError",
    "RunSpec",
    "run_cell",
    "run_cells",
    "figure2b_series",
    "figure3b_series",
    "figure4a_series",
    "figure4b_series",
    "figure5_surface",
    "figure7_comparison",
    "headline_summary",
    "CostAssumptions",
    "WorthwhileVerdict",
    "evaluate_worthwhileness",
    "format_table",
    "format_series",
    "FailureAnalysis",
    "simulate_failures",
    "render_markdown_report",
    "write_markdown_report",
]
