"""READ's zone sizing and round-robin placement (Fig. 6, lines 3-7).

From gamma (Eq. 5) the hot-disk count is

    HD = gamma * n / (gamma + 1),    CD = n - HD

(rounded, clamped so both zones are non-empty), hot disks run high
speed, cold disks low speed, and files are dealt round-robin within
their zone: "the first file (supposed most popular one) onto the first
disk, the second file onto the second disk, and so on" — ordered
dealing spreads the *hottest* files across *different* hot disks, which
is what evens utilization out (the paper's third PRESS insight).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.popularity import PopularitySplit
from repro.util.validation import require, require_positive

__all__ = ["ZoneLayout", "compute_zone_layout", "round_robin_zone_placement"]


@dataclass(frozen=True, slots=True)
class ZoneLayout:
    """The hot/cold partition of a disk array."""

    n_disks: int
    n_hot: int

    def __post_init__(self) -> None:
        require(self.n_disks >= 2, f"READ needs >= 2 disks, got {self.n_disks}")
        require(1 <= self.n_hot <= self.n_disks - 1,
                f"n_hot must leave both zones non-empty, got {self.n_hot}/{self.n_disks}")

    @property
    def n_cold(self) -> int:
        """Cold-zone size."""
        return self.n_disks - self.n_hot

    @property
    def hot_ids(self) -> np.ndarray:
        """Hot-zone disk ids (the low-numbered disks, matching Fig. 6)."""
        return np.arange(self.n_hot, dtype=np.int64)

    @property
    def cold_ids(self) -> np.ndarray:
        """Cold-zone disk ids."""
        return np.arange(self.n_hot, self.n_disks, dtype=np.int64)

    def is_hot(self, disk_id: int) -> bool:
        """Whether a disk belongs to the hot zone."""
        return 0 <= disk_id < self.n_hot


def compute_zone_layout(gamma: float, n_disks: int) -> ZoneLayout:
    """Fig. 6 line 3: ``HD = gamma * n / (gamma + 1)``, both zones >= 1."""
    require_positive(gamma, "gamma")
    require(n_disks >= 2, f"READ needs >= 2 disks, got {n_disks}")
    n_hot = int(round(gamma * n_disks / (gamma + 1.0)))
    n_hot = min(max(n_hot, 1), n_disks - 1)
    return ZoneLayout(n_disks=n_disks, n_hot=n_hot)


def round_robin_zone_placement(split: PopularitySplit, layout: ZoneLayout,
                               sizes_mb: np.ndarray, capacity_mb: float) -> np.ndarray:
    """Deal popular files over hot disks and unpopular over cold disks.

    Round-robin in popularity order within each zone (Fig. 6, lines
    6-7), skipping disks whose remaining capacity cannot hold the file
    (the paper assumes capacity is ample; the guard keeps the invariant
    "every file placed, no disk over capacity" under any input).

    Returns ``placement[file_id] -> disk_id``.

    Raises
    ------
    ValueError
        If some file cannot fit anywhere in its zone *or the other zone*
        (the array is simply too small for the data set).
    """
    sizes = np.asarray(sizes_mb, dtype=np.float64)
    require(sizes.size == split.n_files, "sizes length must match the split population")
    require_positive(capacity_mb, "capacity_mb")

    placement = np.full(split.n_files, -1, dtype=np.int64)
    free = np.full(layout.n_disks, capacity_mb, dtype=np.float64)

    def deal(file_ids: np.ndarray, zone: np.ndarray) -> None:
        cursor = 0
        for fid in file_ids:
            size = float(sizes[fid])
            # first try the zone round-robin, then anywhere with space
            for attempt in range(zone.size):
                disk = int(zone[(cursor + attempt) % zone.size])
                if free[disk] >= size:
                    placement[fid] = disk
                    free[disk] -= size
                    cursor = (cursor + attempt + 1) % zone.size
                    break
            else:
                spill = int(np.argmax(free))
                require(free[spill] >= size,
                        f"file {fid} ({size} MB) does not fit on any disk")
                placement[fid] = spill
                free[spill] -= size

    deal(split.popular_ids, layout.hot_ids)
    deal(split.unpopular_ids, layout.cold_ids)
    return placement
