"""READ's popularity mathematics (paper Sec. 4, Eqs. 4-5).

Given the skew parameter theta (see :func:`repro.workload.zipf.skew_theta`
for the definition and the resolved ambiguity), READ derives:

* the popular-file count  ``|Fp| = (1 - theta) * m``;
* delta, the popular/unpopular *count* ratio (Eq. 4):
  ``delta = (1 - theta) / theta``;
* gamma, the hot/cold *disk* ratio (Eq. 5), driven by the ratio of the
  total popular load to the total unpopular load with the same
  ``(1-theta)/theta`` prefactor:

      gamma = (1 - theta) * sum_{i in Fp} h_i
              ----------------------------------
              theta       * sum_{j in Fu} h_j

where a file's load is ``h_i = lambda_i * s_i`` (access rate x size,
Sec. 4 — service time proportional to size under whole-file reads).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import require, require_in_range
from repro.workload.zipf import zipf_probabilities

__all__ = [
    "PopularitySplit",
    "popular_file_count",
    "split_by_popularity",
    "popular_unpopular_ratio_delta",
    "zone_load_ratio_gamma",
    "estimate_file_loads",
]

#: theta is kept strictly inside (0, 1): 0 would declare *every* file
#: popular with an infinite load prefactor, 1 would declare none (and
#: Eq. 4's delta divides by theta).
_THETA_EPS = 1e-6


def _check_theta(theta: float) -> float:
    return require_in_range(theta, _THETA_EPS, 1.0 - _THETA_EPS, "theta")


def popular_file_count(theta: float, n_files: int) -> int:
    """``|Fp| = (1 - theta) * m`` (Sec. 4), clamped to [1, m-1].

    The clamp keeps both file classes non-empty — READ's zones are
    meaningless otherwise (and the paper's Fig. 6 assumes both exist).
    """
    _check_theta(theta)
    require(n_files >= 2, f"READ needs at least 2 files, got {n_files}")
    count = int(round((1.0 - theta) * n_files))
    return min(max(count, 1), n_files - 1)


def popular_unpopular_ratio_delta(theta: float) -> float:
    """Eq. 4: ``delta = (1 - theta) / theta``."""
    _check_theta(theta)
    return (1.0 - theta) / theta


@dataclass(frozen=True, slots=True)
class PopularitySplit:
    """The popular/unpopular partition of the file population.

    ``popular_ids`` are ordered most-popular-first; ``unpopular_ids``
    continue the same ranking.  Together they are a permutation of
    ``0..m-1``.
    """

    popular_ids: np.ndarray
    unpopular_ids: np.ndarray
    theta: float

    @property
    def n_files(self) -> int:
        """Total population size."""
        return int(self.popular_ids.size + self.unpopular_ids.size)

    def is_popular(self) -> np.ndarray:
        """Boolean mask over file ids: True where popular."""
        mask = np.zeros(self.n_files, dtype=bool)
        mask[self.popular_ids] = True
        return mask


def split_by_popularity(ranking: np.ndarray, theta: float) -> PopularitySplit:
    """Split a most-popular-first ``ranking`` of file ids at ``|Fp|``.

    ``ranking`` is any permutation of file ids ordered by (estimated or
    measured) popularity — size order for READ's first round, FPT counts
    afterwards (Fig. 6, lines 5 and 10).
    """
    ids = np.asarray(ranking, dtype=np.int64)
    require(ids.ndim == 1 and ids.size >= 2, "ranking must be 1-D with >= 2 files")
    sorted_ids = np.sort(ids)
    require(bool(np.array_equal(sorted_ids, np.arange(ids.size))),
            "ranking must be a permutation of 0..m-1")
    n_pop = popular_file_count(theta, ids.size)
    return PopularitySplit(popular_ids=ids[:n_pop].copy(),
                           unpopular_ids=ids[n_pop:].copy(),
                           theta=float(theta))


def estimate_file_loads(sizes_mb: np.ndarray, ranking: np.ndarray, *,
                        zipf_alpha: float = 0.8,
                        counts: np.ndarray | None = None) -> np.ndarray:
    """Per-file load ``h_i = lambda_i * s_i`` indexed by file id.

    With observed ``counts`` (FPT), the access rate is the count itself
    (loads are only ever used in ratios, so the epoch length cancels).
    Without counts — READ's first round — rates are *assumed* Zipf over
    the provided ranking with exponent ``zipf_alpha``, implementing the
    paper's "popularity ... is inversely correlated to its size"
    bootstrap.
    """
    sizes = np.asarray(sizes_mb, dtype=np.float64)
    ids = np.asarray(ranking, dtype=np.int64)
    require(sizes.ndim == 1 and sizes.size == ids.size,
            "sizes and ranking must be 1-D with equal length")
    if counts is not None:
        rates = np.asarray(counts, dtype=np.float64)
        require(rates.size == sizes.size, "counts length must match sizes")
        require(bool(np.all(rates >= 0)), "counts must be non-negative")
        return rates * sizes
    probs = zipf_probabilities(ids.size, zipf_alpha)
    rates = np.empty(ids.size, dtype=np.float64)
    rates[ids] = probs  # rank r gets probability of rank r
    return rates * sizes


def zone_load_ratio_gamma(split: PopularitySplit, loads: np.ndarray) -> float:
    """Eq. 5: the hot/cold disk-count ratio gamma.

    ``loads`` is indexed by file id (see :func:`estimate_file_loads`).
    Degenerate workloads are clamped rather than raised: zero unpopular
    load yields a large-but-finite gamma (every disk but one hot), zero
    popular load a small-but-positive one.
    """
    h = np.asarray(loads, dtype=np.float64)
    require(h.size == split.n_files, "loads length must match the split population")
    require(bool(np.all(h >= 0)), "loads must be non-negative")
    popular_load = float(h[split.popular_ids].sum())
    unpopular_load = float(h[split.unpopular_ids].sum())
    prefactor = popular_unpopular_ratio_delta(split.theta)
    if unpopular_load <= 0.0:
        return 1e6
    if popular_load <= 0.0:
        return 1e-6
    return prefactor * popular_load / unpopular_load
