"""READ's File Redistribution Daemon planning (Fig. 6, lines 8-19).

At the end of each epoch the FRD re-sorts all files by their FPT access
counts, re-computes theta, re-splits popular/unpopular, and migrates:

* previously-hot files that fell out of the popular set -> cold zone;
* previously-cold files that entered the popular set   -> hot zone.

Planning is a pure function (placement in, moves out) so it can be unit-
and property-tested without a simulator; execution — issuing the actual
migration I/O — stays in the policy.  Destinations are chosen least-
loaded-first within the target zone, the dynamic analogue of the initial
round-robin deal (it keeps the zone's utilization even, PRESS insight 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.placement import ZoneLayout
from repro.core.popularity import PopularitySplit
from repro.util.validation import require

__all__ = ["MigrationPlan", "plan_migrations"]


@dataclass(frozen=True, slots=True)
class MigrationPlan:
    """The FRD's output for one epoch: an ordered list of file moves."""

    #: (file_id, destination_disk) pairs, hottest movers first.
    moves: tuple[tuple[int, int], ...] = field(default=())

    def __len__(self) -> int:
        return len(self.moves)

    @property
    def file_ids(self) -> list[int]:
        """Files being moved, in execution order."""
        return [fid for fid, _dst in self.moves]


def plan_migrations(split: PopularitySplit, layout: ZoneLayout,
                    placement: np.ndarray, zone_load_mb: np.ndarray,
                    sizes_mb: np.ndarray, capacity_mb: float, *,
                    max_moves: int | None = None) -> MigrationPlan:
    """Plan the epoch's hot<->cold corrections.

    Parameters
    ----------
    split:
        The epoch's fresh popular/unpopular partition (popular first =
        hottest first, which orders the move list).
    layout:
        The fixed zone layout (Fig. 6 computes zones once, before the
        epoch loop).
    placement:
        Current ``file_id -> disk_id`` map.
    zone_load_mb:
        Current per-disk stored MB (destination balancing input).
    sizes_mb / capacity_mb:
        File sizes and per-disk capacity for feasibility checks.
    max_moves:
        Optional cap on the epoch's move count (cost control; the paper
        flags "high file redistribution cost" as the failure mode of
        fully dynamic workloads).

    Moves that cannot fit anywhere in their target zone are skipped
    rather than spilled — a file serving from the "wrong" zone is a
    performance wart, a disk over capacity is a correctness bug.
    """
    place = np.asarray(placement, dtype=np.int64)
    sizes = np.asarray(sizes_mb, dtype=np.float64)
    require(place.size == split.n_files and sizes.size == split.n_files,
            "placement/sizes must cover the whole population")
    load = np.asarray(zone_load_mb, dtype=np.float64).copy()
    require(load.size == layout.n_disks, "zone_load_mb must have one entry per disk")

    moves: list[tuple[int, int]] = []

    def best_destination(zone: np.ndarray, size: float) -> int | None:
        candidates = zone[capacity_mb - load[zone] >= size]
        if candidates.size == 0:
            return None
        return int(candidates[np.argmin(load[candidates])])

    def consider(fid: int, target_zone: np.ndarray) -> None:
        if max_moves is not None and len(moves) >= max_moves:
            return
        size = float(sizes[fid])
        dst = best_destination(target_zone, size)
        if dst is None:
            return
        src = int(place[fid])
        load[src] -= size
        load[dst] += size
        moves.append((int(fid), dst))

    # hottest movers first: popular ids are already in rank order
    for fid in split.popular_ids:
        if not layout.is_hot(int(place[fid])):
            consider(int(fid), layout.hot_ids)
    for fid in split.unpopular_ids:
        if layout.is_hot(int(place[fid])):
            consider(int(fid), layout.cold_ids)

    return MigrationPlan(moves=tuple(moves))
