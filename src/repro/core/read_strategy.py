"""The READ policy — Fig. 6 of the paper, end to end.

Initial round (lines 1-7): from the configured skew parameter theta,
compute the popular/unpopular split (Eq. 4) and the hot/cold disk ratio
gamma (Eq. 5) using size-rank-estimated loads; configure hot disks high
/ cold disks low; deal files round-robin within their zones.

Epoch loop (lines 8-25): the Access Tracking Manager counts accesses
into the File Popularity Table; at each epoch boundary the File
Redistribution Daemon re-sorts files by observed counts, re-estimates
theta, re-splits, and migrates files whose class changed — at real I/O
cost.  Finally the transition-budget check (lines 20-24): any disk that
has spent half its daily budget S gets its idleness threshold H doubled,
and a disk at the full budget simply stops transitioning for the day.

Speed control: hot disks may sink to LOW after H idle seconds (budget
permitting) and any LOW disk spins up under the demand rule — both
directions debit the same budget, which is the mechanism that holds the
PRESS frequency factor down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.migration import plan_migrations
from repro.core.placement import ZoneLayout, compute_zone_layout, round_robin_zone_placement
from repro.core.popularity import estimate_file_loads, split_by_popularity, zone_load_ratio_gamma
from repro.disk.parameters import DiskSpeed
from repro.policies.base import Policy, SpeedControlConfig, SpeedController, TransitionBudget
from repro.policies.tracking import AccessTracker
from repro.sim.timers import PeriodicTask
from repro.util.validation import require, require_in_range, require_positive
from repro.workload.request import Request
from repro.workload.zipf import skew_theta, theta_from_counts

__all__ = ["READConfig", "READPolicy"]


@dataclass(frozen=True, slots=True)
class READConfig:
    """READ's inputs (the input list of Fig. 6).

    Attributes
    ----------
    epoch_s:
        Epoch length P.
    initial_theta:
        Skew parameter theta for the first placement round, before any
        accesses are observed.  Defaults to the 80/20 rule's theta.
    initial_zipf_alpha:
        Zipf exponent for the first round's load *estimates* (Eq. 5
        needs loads before any are measured).
    max_transitions_per_day:
        The cap S; the paper's experiments use S = 40 (Sec. 5.2).
    speed:
        Idleness threshold H and the spin-up demand rule.
    max_migrations_per_epoch:
        Optional FRD cost bound (None = unlimited).
    adaptive_threshold:
        Whether crossing S/2 doubles H (Fig. 6 line 22); switchable for
        the ablation bench.
    """

    epoch_s: float = 900.0
    initial_theta: float = skew_theta(80.0, 20.0)
    initial_zipf_alpha: float = 0.8
    max_transitions_per_day: int = 40
    #: READ's cold zone is a *slow service class*, not a sleeping tier:
    #: cold disks serve at low speed and only spin up under real backlog
    #: — that (plus the budget) is how READ keeps transitions rare.
    speed: SpeedControlConfig = SpeedControlConfig(
        idle_threshold_s=60.0, spin_up_queue_len=8, spin_up_wait_s=5.0)
    max_migrations_per_epoch: Optional[int] = None
    adaptive_threshold: bool = True

    def __post_init__(self) -> None:
        require_positive(self.epoch_s, "epoch_s")
        require_in_range(self.initial_theta, 1e-6, 1.0 - 1e-6, "initial_theta")
        require_in_range(self.initial_zipf_alpha, 0.0, 1.0, "initial_zipf_alpha")
        require(self.max_transitions_per_day >= 1,
                f"max_transitions_per_day must be >= 1, got {self.max_transitions_per_day}")
        if self.max_migrations_per_epoch is not None:
            require(self.max_migrations_per_epoch >= 0,
                    "max_migrations_per_epoch must be >= 0")


class READPolicy(Policy):
    """Reliability and Energy Aware Distribution (the paper's Sec. 4)."""

    name = "read"

    def __init__(self, config: READConfig | None = None) -> None:
        super().__init__()
        self.config = config or READConfig()
        self.layout: Optional[ZoneLayout] = None
        self._controller: Optional[SpeedController] = None
        self._budget: Optional[TransitionBudget] = None
        self._tracker: Optional[AccessTracker] = None
        self._epoch_task: Optional[PeriodicTask] = None
        self._theta = self.config.initial_theta
        self.migrations_performed = 0

    # ------------------------------------------------------------------
    def describe(self) -> dict[str, object]:
        return {
            "name": self.name,
            "epoch_s": self.config.epoch_s,
            "theta": self._theta,
            "n_hot": self.layout.n_hot if self.layout else None,
            "transition_cap_per_day": self.config.max_transitions_per_day,
            "idle_threshold_s": self.config.speed.idle_threshold_s,
            "adaptive_threshold": self.config.adaptive_threshold,
        }

    @property
    def theta(self) -> float:
        """Current skew-parameter estimate (re-fit each epoch)."""
        return self._theta

    # ------------------------------------------------------------------
    # initial round (Fig. 6 lines 1-7)
    # ------------------------------------------------------------------
    def initial_layout(self) -> None:
        array = self._require_bound()
        cfg = self.config
        sizes = self.fileset.sizes_mb

        # line 5: sort by size, non-decreasing == popularity estimate
        ranking = self.fileset.ids_sorted_by_size()
        split = split_by_popularity(ranking, cfg.initial_theta)
        loads = estimate_file_loads(sizes, ranking, zipf_alpha=cfg.initial_zipf_alpha)
        gamma = zone_load_ratio_gamma(split, loads)
        self.layout = compute_zone_layout(gamma, array.n_disks)

        # line 4: hot zone high speed, cold zone low speed (free, t=0)
        for disk_id in range(array.n_disks):
            target = DiskSpeed.HIGH if self.layout.is_hot(disk_id) else DiskSpeed.LOW
            if array.drive(disk_id).speed is not target:
                array.drive(disk_id).force_speed(target)

        # lines 6-7: round-robin deal within zones
        placement = round_robin_zone_placement(split, self.layout, sizes,
                                               array.params.capacity_mb)
        array.place_all(placement)

        # epoch machinery (lines 8-25)
        self._tracker = AccessTracker(len(self.fileset))
        self._budget = TransitionBudget(
            self.sim, cfg.max_transitions_per_day,
            on_half_spent=self._on_half_budget if cfg.adaptive_threshold else None,
        )
        self._controller = SpeedController(self.sim, array, cfg.speed,
                                           budget=self._budget)
        self._epoch_task = PeriodicTask(self.sim, cfg.epoch_s, self._on_epoch,
                                        priority=20)

    # ------------------------------------------------------------------
    # per-request path (ATM recording + routing)
    # ------------------------------------------------------------------
    def route(self, request: Request) -> None:
        # once per trace request — locals bound up front, misuse check first
        tracker = self._tracker
        controller = self._controller
        if tracker is None or controller is None:
            self._require_bound()  # raises PolicyError when unbound
            raise AssertionError("route() called before initial_layout()")
        fid = request.file_id
        tracker.record(fid)
        target = self.array.location_of(fid)
        controller.check_spin_up(target)
        self.submit(request, disk_id=target)

    def on_disk_idle(self, disk_id: int) -> None:
        if self._controller is not None:
            self._controller.on_disk_idle(disk_id)

    def on_disk_busy(self, disk_id: int) -> None:
        if self._controller is not None:
            self._controller.on_disk_busy(disk_id)

    def shutdown(self) -> None:
        if self._epoch_task is not None:
            self._epoch_task.stop()
        if self._controller is not None:
            self._controller.shutdown()

    # ------------------------------------------------------------------
    # budget adaptation (Fig. 6 lines 20-24)
    # ------------------------------------------------------------------
    def _on_half_budget(self, disk_id: int) -> None:
        assert self._controller is not None
        current = self._controller.idle_threshold(disk_id)
        self._controller.set_idle_threshold(disk_id, 2.0 * current)

    # ------------------------------------------------------------------
    # FRD epoch (Fig. 6 lines 9-19)
    # ------------------------------------------------------------------
    def _on_epoch(self, _tick: int) -> None:
        assert self._tracker is not None and self.layout is not None
        counts = self._tracker.roll_epoch()
        if counts.sum() == 0:
            return

        # line 11: re-estimate theta from observed accesses
        self._theta = float(np.clip(theta_from_counts(counts), 1e-6, 1.0 - 1e-6))
        ranking = self._tracker.popularity_ranking(counts=counts)
        split = split_by_popularity(ranking, self._theta)

        plan = plan_migrations(
            split, self.layout, self.array.placement,
            np.asarray(self.array.used_mb, dtype=np.float64),
            self.fileset.sizes_mb, self.array.params.capacity_mb,
            max_moves=self.config.max_migrations_per_epoch,
        )
        moved = 0
        for fid, dst in plan.moves:
            if self.array.migrate_file(fid, dst):
                moved += 1
        self.migrations_performed += moved
