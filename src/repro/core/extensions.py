"""READ extensions from the paper's own insights and future work.

* :class:`RotatingREADPolicy` — Sec. 3.5 insight 2: "workload-skew based
  energy-saving schemes need to rotate the role of workhorse disks
  regularly so that the scenario that a particular subset of disks is
  always running at high temperature can be prevented."  Every
  ``rotation_epochs`` epochs, the longest-serving hot disk swaps roles
  (speed + files) with a cold disk.  The swap's speed changes go through
  READ's normal transition budget and its file moves through the normal
  migration path — rotation is not free, which is exactly the trade-off
  worth measuring (see ``benchmarks/bench_extensions.py``).

* :class:`ReplicatingREADPolicy` — Sec. 6 future work 1: "One possible
  solution is to use file replication technique."  The top-k hottest
  files get a replica on a second hot disk; requests pick the
  least-backlogged copy.  Replicas divert load without migration cost
  once created (creation is one internal write), trading capacity for
  lower queueing on the hottest disks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.read_strategy import READConfig, READPolicy
from repro.disk.parameters import DiskSpeed
from repro.util.validation import require
from repro.workload.request import Request

__all__ = [
    "RotatingREADConfig",
    "RotatingREADPolicy",
    "ReplicatingREADConfig",
    "ReplicatingREADPolicy",
]


# ----------------------------------------------------------------------
# role rotation
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class RotatingREADConfig(READConfig):
    """READ plus workhorse-role rotation.

    ``rotation_epochs``: a role swap is attempted every this many FRD
    epochs (1 = every epoch).
    """

    rotation_epochs: int = 4

    def __post_init__(self) -> None:
        READConfig.__post_init__(self)
        require(self.rotation_epochs >= 1,
                f"rotation_epochs must be >= 1, got {self.rotation_epochs}")


class RotatingREADPolicy(READPolicy):
    """READ with periodic hot/cold role swaps (PRESS insight 2)."""

    name = "read-rotate"

    def __init__(self, config: RotatingREADConfig | None = None) -> None:
        super().__init__(config or RotatingREADConfig())
        self.rotations_performed = 0
        #: cumulative epochs each disk has spent in the hot role
        self._hot_tenure: np.ndarray | None = None
        #: current physical membership of the hot role (starts as the
        #: layout's prefix; rotation permutes it)
        self._hot_set: set[int] = set()

    def describe(self) -> dict[str, object]:
        info = super().describe()
        info["rotation_epochs"] = self.config.rotation_epochs
        info["rotations_performed"] = self.rotations_performed
        return info

    def initial_layout(self) -> None:
        super().initial_layout()
        array = self._require_bound()
        self._hot_tenure = np.zeros(array.n_disks, dtype=np.float64)
        self._hot_set = set(int(d) for d in self.layout.hot_ids)

    def is_hot_disk(self, disk_id: int) -> bool:
        """Current (post-rotation) hot-role membership."""
        return disk_id in self._hot_set

    def _on_epoch(self, tick: int) -> None:
        super()._on_epoch(tick)
        assert self._hot_tenure is not None
        for d in self._hot_set:
            self._hot_tenure[d] += 1.0
        if (tick + 1) % self.config.rotation_epochs == 0:
            self._rotate_once()

    def _rotate_once(self) -> None:
        """Swap the longest-tenured hot disk with the coolest cold disk."""
        array = self._require_bound()
        assert self._hot_tenure is not None and self._budget is not None
        cold_set = [d for d in range(array.n_disks) if d not in self._hot_set]
        if not cold_set or not self._hot_set:
            return
        hot = max(self._hot_set, key=lambda d: self._hot_tenure[d])
        cold = min(cold_set, key=lambda d: self._hot_tenure[d])

        # both speed changes must fit in the transition budget, or the
        # rotation is skipped this round (reliability first)
        if not (self._budget.available(hot) and self._budget.available(cold)):
            return
        self._budget.spend(hot)
        self._budget.spend(cold)
        array.drive(cold).request_speed(DiskSpeed.HIGH)
        array.drive(hot).request_speed(DiskSpeed.LOW)

        # swap resident files (charged as normal migrations)
        hot_files = [int(f) for f in array.files_on(hot)]
        cold_files = [int(f) for f in array.files_on(cold)]
        moved = 0
        for fid in hot_files:
            if array.migrate_file(fid, cold):
                moved += 1
        for fid in cold_files:
            if array.migrate_file(fid, hot):
                moved += 1
        self.migrations_performed += moved

        self._hot_set.remove(hot)
        self._hot_set.add(cold)
        self.rotations_performed += 1


# ----------------------------------------------------------------------
# replication
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class ReplicatingREADConfig(READConfig):
    """READ plus top-k hot-file replication.

    ``replicate_top_k``: how many of the epoch's hottest files carry a
    replica.  ``0`` disables replication (degenerates to plain READ).
    """

    replicate_top_k: int = 10

    def __post_init__(self) -> None:
        READConfig.__post_init__(self)
        require(self.replicate_top_k >= 0,
                f"replicate_top_k must be >= 0, got {self.replicate_top_k}")


class ReplicatingREADPolicy(READPolicy):
    """READ with hot-file replicas across the hot zone (future work 1)."""

    name = "read-replicate"

    def __init__(self, config: ReplicatingREADConfig | None = None) -> None:
        super().__init__(config or ReplicatingREADConfig())
        #: file_id -> replica disk (one replica per file; the primary
        #: stays in the array's placement map)
        self._replicas: dict[int, int] = {}
        #: replica bytes parked per disk (capacity bookkeeping)
        self._replica_mb: np.ndarray | None = None
        self.replicas_created = 0

    def describe(self) -> dict[str, object]:
        info = super().describe()
        info["replicate_top_k"] = self.config.replicate_top_k
        info["active_replicas"] = len(self._replicas)
        return info

    def initial_layout(self) -> None:
        super().initial_layout()
        self._replica_mb = np.zeros(self._require_bound().n_disks, dtype=np.float64)

    # ------------------------------------------------------------------
    def route(self, request: Request) -> None:
        array = self._require_bound()
        assert self._tracker is not None and self._controller is not None
        self._tracker.record(request.file_id)
        primary = array.location_of(request.file_id)
        target = primary
        replica = self._replicas.get(request.file_id)
        if replica is not None:
            # pick the least-backlogged copy
            if array.drive(replica).queue_length < array.drive(primary).queue_length:
                target = replica
        self._controller.check_spin_up(target)
        self.submit(request, disk_id=target)

    # ------------------------------------------------------------------
    # degraded mode (fault injection)
    # ------------------------------------------------------------------
    def alternate_targets(self, file_id: int) -> tuple[int, ...]:
        """A file's replica is a servable alternate to its primary."""
        replica = self._replicas.get(file_id)
        return () if replica is None else (replica,)

    def on_disk_failed(self, disk_id: int) -> None:
        """Replicas on a failed disk are gone; drop the metadata.

        The next epoch's :meth:`_refresh_replicas` re-creates replicas
        for files that are still hot.
        """
        if self._replica_mb is None:
            return
        for fid in [f for f, d in self._replicas.items() if d == disk_id]:
            del self._replicas[fid]
        self._replica_mb[disk_id] = 0.0

    # ------------------------------------------------------------------
    def _on_epoch(self, tick: int) -> None:
        assert self._tracker is not None
        counts = self._tracker.current_counts.copy()
        super()._on_epoch(tick)
        if self.config.replicate_top_k == 0 or counts.sum() == 0:
            return
        self._refresh_replicas(counts)

    def _refresh_replicas(self, counts: np.ndarray) -> None:
        array = self._require_bound()
        assert self._replica_mb is not None and self.layout is not None
        top = np.argsort(-counts, kind="stable")[:self.config.replicate_top_k]
        top_set = {int(f) for f in top if counts[f] > 0}

        # drop replicas of files that cooled (metadata only)
        for fid in [f for f in self._replicas if f not in top_set]:
            disk = self._replicas.pop(fid)
            self._replica_mb[disk] -= self.fileset.size_of(fid)

        hot_ids = [int(d) for d in self.layout.hot_ids]
        if len(hot_ids) < 2:
            return  # nowhere distinct to put a replica
        for fid in top_set:
            if fid in self._replicas:
                continue
            primary = array.location_of(fid)
            size = self.fileset.size_of(fid)
            candidates = [d for d in hot_ids if d != primary and
                          array.disk_is_up(d) and
                          array.free_mb(d) - self._replica_mb[d] >= size]
            if not candidates:
                continue
            dest = min(candidates, key=lambda d: array.drive(d).queue_length)
            self._replicas[fid] = dest
            self._replica_mb[dest] += size
            array.submit_internal(dest, size)  # the replica write
            self.replicas_created += 1
