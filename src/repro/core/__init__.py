"""READ — Reliability and Energy Aware Distribution (paper Sec. 4).

READ is the paper's contribution: a workload-skew energy scheme designed
*around* the PRESS model's insights (Sec. 3.5) —

1. speed-transition frequency dominates reliability, so READ caps each
   disk's transitions per day (budget S) and adaptively doubles the
   idleness threshold H once half the budget is spent;
2. long high-speed residence drives temperature, handled by splitting
   the array once into a hot zone (high speed) and cold zone (low
   speed) sized by the workload's load ratio rather than by churning
   speeds;
3. utilization imbalance matters least, but READ still redistributes
   files every epoch (the File Redistribution Daemon) to keep the
   distribution even within each zone.

Module map: :mod:`popularity` (theta/delta/gamma math, Eqs. 4-5 and the
popular/unpopular split), :mod:`placement` (zone sizing + round-robin
layout), :mod:`migration` (FRD epoch planning), :mod:`read_strategy`
(the :class:`~repro.policies.base.Policy` implementation, Fig. 6).
"""

from repro.core.popularity import (
    PopularitySplit,
    popular_file_count,
    split_by_popularity,
    popular_unpopular_ratio_delta,
    zone_load_ratio_gamma,
    estimate_file_loads,
)
from repro.core.placement import ZoneLayout, compute_zone_layout, round_robin_zone_placement
from repro.core.migration import MigrationPlan, plan_migrations
from repro.core.read_strategy import READConfig, READPolicy
from repro.core.extensions import (
    ReplicatingREADConfig,
    ReplicatingREADPolicy,
    RotatingREADConfig,
    RotatingREADPolicy,
)

__all__ = [
    "PopularitySplit",
    "popular_file_count",
    "split_by_popularity",
    "popular_unpopular_ratio_delta",
    "zone_load_ratio_gamma",
    "estimate_file_loads",
    "ZoneLayout",
    "compute_zone_layout",
    "round_robin_zone_placement",
    "MigrationPlan",
    "plan_migrations",
    "READConfig",
    "READPolicy",
    "RotatingREADConfig",
    "RotatingREADPolicy",
    "ReplicatingREADConfig",
    "ReplicatingREADPolicy",
]
