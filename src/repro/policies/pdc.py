"""PDC — Popular Data Concentration (Pinheiro & Bianchini, ICS'04).

The paper's description (Sec. 2, Sec. 4): PDC "dynamically migrate[s]
popular data to a subset of the disks so that the load becomes skewed
towards a few of the disks and others can be sent to low-power modes".
With two-speed disks it is the second hybrid baseline of the evaluation.

Implementation model
--------------------
* Initial placement is round-robin in size order (no popularity
  knowledge yet — PDC learns online).
* Every epoch, files are re-ranked by last-epoch access count and
  *waterfilled* onto disks in id order: disk 0 takes the most popular
  files until its predicted load reaches ``load_cap`` (a fraction of
  the disk's high-speed service capacity) or its storage fills, then
  disk 1, and so on.  Predicted per-file load = last-epoch accesses x
  high-speed service time / epoch length — the standard PDC load
  estimator.
* Files whose assigned disk differs from their current one are migrated
  through :meth:`DiskArray.migrate_file`, i.e. at real I/O cost.
* All disks use the shared idleness spin-down / demand spin-up rules —
  under concentration the tail disks idle long enough to sink to low
  speed, which is where PDC's energy saving comes from.

Reliability character (what PRESS sees): the head disk's utilization is
pushed as high as the load cap allows — the "very high disk utilization
is detrimental" overuse the paper's Sec. 1 attributes to workload-skew
schemes — and every epoch's migration wave adds churn, so PDC lands at
the bottom of the reliability comparison (Fig. 7a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.obs import events as ev
from repro.policies.base import Policy, SpeedControlConfig, SpeedController
from repro.policies.tracking import AccessTracker
from repro.sim.timers import PeriodicTask
from repro.util.validation import require, require_fraction, require_positive
from repro.workload.request import Request

__all__ = ["PDCConfig", "PDCPolicy"]


@dataclass(frozen=True, slots=True)
class PDCConfig:
    """PDC tuning knobs.

    Attributes
    ----------
    epoch_s:
        Reorganization period (seconds).
    load_cap:
        Target fraction of a disk's high-speed service capacity the
        waterfill loads before spilling to the next disk.
    max_migrations_per_epoch:
        Upper bound on per-epoch file moves (None = unlimited); guards
        against pathological churn on popularity-flapping workloads.
    concentrate_share:
        PDC concentrates the smallest set of top-ranked files covering
        this fraction of the epoch's accesses (at least 2 accesses per
        concentrated file).  The remainder — the Zipf tail of stray
        accesses — stays where it is, spread across the array:
        concentrating noise would churn pointlessly, but leaving it
        spread is also what keeps waking PDC's tail disks.  A share
        (not an absolute count) so the cut lands on the same
        popularity quantile at any workload intensity.
    speed:
        Shared idleness/spin-up knobs.
    """

    epoch_s: float = 900.0
    load_cap: float = 1.0
    max_migrations_per_epoch: Optional[int] = None
    concentrate_share: float = 0.985
    #: Classic PDC spins a low-speed disk up on *any* arrival (the disks
    #: were originally stopped); spin_up_queue_len=1 reproduces that.
    speed: SpeedControlConfig = SpeedControlConfig(
        idle_threshold_s=20.0, spin_up_queue_len=1, spin_up_wait_s=0.5)

    def __post_init__(self) -> None:
        require_positive(self.epoch_s, "epoch_s")
        require_fraction(self.load_cap, "load_cap")
        require(self.load_cap > 0.0, "load_cap must be > 0")
        if self.max_migrations_per_epoch is not None:
            require(self.max_migrations_per_epoch >= 0,
                    "max_migrations_per_epoch must be >= 0")
        require_fraction(self.concentrate_share, "concentrate_share")
        require(self.concentrate_share > 0.0, "concentrate_share must be > 0")


class PDCPolicy(Policy):
    """Popular Data Concentration over two-speed disks."""

    name = "pdc"

    def __init__(self, config: PDCConfig | None = None) -> None:
        super().__init__()
        self.config = config or PDCConfig()
        self._controller: Optional[SpeedController] = None
        self._tracker: Optional[AccessTracker] = None
        self._epoch_task: Optional[PeriodicTask] = None
        self.migrations_performed = 0

    # ------------------------------------------------------------------
    def describe(self) -> dict[str, object]:
        return {"name": self.name, "epoch_s": self.config.epoch_s,
                "load_cap": self.config.load_cap,
                "idle_threshold_s": self.config.speed.idle_threshold_s}

    # ------------------------------------------------------------------
    def initial_layout(self) -> None:
        """Round-robin by size rank; arm the epoch task and speed control."""
        array = self._require_bound()
        order = self.fileset.ids_sorted_by_size()
        placement = np.empty(len(self.fileset), dtype=np.int64)
        placement[order] = np.arange(len(order)) % array.n_disks
        array.place_all(placement)

        self._tracker = AccessTracker(len(self.fileset))
        self._controller = SpeedController(self.sim, array, self.config.speed)
        self._epoch_task = PeriodicTask(self.sim, self.config.epoch_s,
                                        self._on_epoch, priority=20)

    def route(self, request: Request) -> None:
        """Serve from the primary copy; spin the disk up under demand."""
        self._require_bound()
        assert self._tracker is not None and self._controller is not None
        self._tracker.record(request.file_id)
        target = self.array.location_of(request.file_id)
        self._controller.check_spin_up(target)
        self.submit(request, disk_id=target)

    def on_disk_idle(self, disk_id: int) -> None:
        if self._controller is not None:
            self._controller.on_disk_idle(disk_id)

    def on_disk_busy(self, disk_id: int) -> None:
        if self._controller is not None:
            self._controller.on_disk_busy(disk_id)

    def shutdown(self) -> None:
        if self._epoch_task is not None:
            self._epoch_task.stop()
        if self._controller is not None:
            self._controller.shutdown()

    # ------------------------------------------------------------------
    # epoch reorganization
    # ------------------------------------------------------------------
    def target_placement(self, counts: np.ndarray) -> np.ndarray:
        """Waterfill *accessed* files onto the head disks; others stay put.

        PDC migrates popular data toward the front of the array — it
        does not touch data it has no popularity evidence for, so files
        with zero accesses this epoch keep their current disk (that is
        what leaves the tail disks holding rarely-touched data, the
        source of PDC's spin-up churn).  Returns the full
        ``file_id -> disk`` assignment.  Pure function of (counts, array
        geometry); exposed for tests and the ablation benches.
        """
        array = self._require_bound()
        n = array.n_disks
        cfg = self.config
        sizes = self.fileset.sizes_mb
        high = array.params.high
        epoch = cfg.epoch_s

        assignment = np.asarray(array.placement, dtype=np.int64).copy()
        total = int(counts.sum())
        if total == 0:
            return assignment
        order = np.argsort(-counts, kind="stable")
        cum = np.cumsum(counts[order])
        cutoff = int(np.searchsorted(cum, cfg.concentrate_share * total)) + 1
        ranking = order[:cutoff]
        ranking = ranking[counts[ranking] >= 2]
        if ranking.size == 0:
            return assignment
        concentrated = np.zeros(counts.size, dtype=bool)
        concentrated[ranking] = True
        service_s = high.positioning_s + sizes / high.transfer_mb_s
        predicted_load = counts * service_s / epoch  # utilization fraction

        disk = 0
        load_acc = 0.0
        cap_acc = 0.0
        capacity = array.params.capacity_mb
        for fid in ranking:
            f_load = float(predicted_load[fid])
            f_size = float(sizes[fid])
            while disk < n - 1 and (
                    (load_acc + f_load > cfg.load_cap and load_acc > 0.0)
                    or cap_acc + f_size > capacity):
                disk += 1
                load_acc = 0.0
                cap_acc = 0.0
            assignment[fid] = disk
            load_acc += f_load
            cap_acc += f_size

        # Concentration is bidirectional: a file that fell below the
        # popularity floor has no business occupying a head (loaded)
        # disk, so it is pushed to the coolest tail disk — freeing the
        # head for next epoch's popular set, at the cost of waking tail
        # disks with migration writes (PDC's characteristic churn).
        head_limit = disk
        if head_limit < n - 1:
            unaccessed = np.flatnonzero(~concentrated)
            on_head = unaccessed[assignment[unaccessed] <= head_limit]
            if on_head.size:
                tail = np.arange(head_limit + 1, n)
                tail_bytes = np.array([
                    float(sizes[assignment == d].sum()) for d in tail])
                for fid in on_head:
                    t = int(np.argmin(tail_bytes))
                    assignment[fid] = int(tail[t])
                    tail_bytes[t] += float(sizes[fid])
        return assignment

    def _on_epoch(self, _tick: int) -> None:
        assert self._tracker is not None
        counts = self._tracker.roll_epoch()
        if counts.sum() == 0:
            return
        assignment = self.target_placement(counts)
        current = self.array.placement
        movers = np.flatnonzero(assignment != current)
        # most popular movers first: they matter most before the next epoch
        movers = movers[np.argsort(-counts[movers], kind="stable")]
        limit = self.config.max_migrations_per_epoch
        moved = 0
        for fid in movers:
            if limit is not None and moved >= limit:
                break
            if self.array.migrate_file(int(fid), int(assignment[fid])):
                moved += 1
        self.migrations_performed += moved
        if self.trace is not None:
            self.trace.emit(ev.POLICY_EPOCH, self.sim.now, tick=_tick,
                            movers=int(movers.size), moved=moved)
