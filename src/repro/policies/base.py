"""Policy interface and the shared speed-control machinery.

``Policy`` is the contract the experiment runner drives; the helpers
here implement the mechanics every workload-skew scheme shares:

* :class:`SpeedControlConfig` — idleness threshold H and the spin-up
  demand rule (both MAID and PDC "send disks to low-power modes" after
  idle periods and return to full speed under load, Sec. 2);
* :class:`TransitionBudget` — READ's per-disk, per-day transition cap S
  with the "half the budget spent -> double H" adaptation (Fig. 6,
  lines 20-24); other policies run unbudgeted;
* :class:`SpeedController` — per-disk resettable idleness timers wired
  to the array's idle/busy hooks, plus the arrival-side spin-up check.
"""

from __future__ import annotations

import abc
from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Optional, Protocol

from repro.disk.array import DiskArray
from repro.disk.drive import Job
from repro.disk.parameters import DiskSpeed
from repro.obs import events as ev
from repro.sim.engine import Simulator
from repro.sim.timers import ResettableTimer
from repro.util.units import SECONDS_PER_DAY
from repro.util.validation import require, require_positive
from repro.workload.files import FileSet
from repro.workload.request import Request

__all__ = ["FaultDomain", "Policy", "PolicyError", "SpeedControlConfig",
           "SpeedController", "TransitionBudget"]


class PolicyError(RuntimeError):
    """Raised for policy misuse (unbound policy, invalid configuration)."""


class FaultDomain(Protocol):
    """What a policy needs from the fault layer: a mediated submit.

    Implemented by :class:`repro.faults.FaultInjector`; declared here as a
    protocol so the policy layer never imports the fault layer.
    """

    def submit_user_request(self, request: Request,
                            disk_id: Optional[int]) -> Job: ...


@dataclass(frozen=True, slots=True)
class SpeedControlConfig:
    """Shared knobs of idleness-driven speed control.

    Attributes
    ----------
    idle_threshold_s:
        Idle time H after which an eligible drive spins down to LOW.
    spin_up_queue_len:
        A LOW drive spins up when its backlog (queued + arriving job)
        reaches this many jobs.  1 means "any arrival spins up" (classic
        PDC behaviour); larger values serve light traffic at low speed.
    spin_up_wait_s:
        Alternative demand trigger: spin up when the estimated wait of
        the arriving job exceeds this bound (seconds).
    """

    idle_threshold_s: float = 30.0
    spin_up_queue_len: int = 4
    spin_up_wait_s: float = 2.0

    def __post_init__(self) -> None:
        require_positive(self.idle_threshold_s, "idle_threshold_s")
        require(self.spin_up_queue_len >= 1,
                f"spin_up_queue_len must be >= 1, got {self.spin_up_queue_len}")
        require_positive(self.spin_up_wait_s, "spin_up_wait_s")


class TransitionBudget:
    """Per-disk, per-day speed-transition budget (READ's cap S, Sec. 5.2).

    ``spend`` must be consulted *before* a transition is requested; it
    returns ``False`` once the disk has used its ``limit_per_day`` for
    the current simulated day.  Crossing ``limit/2`` fires the
    ``on_half_spent`` hook exactly once per disk per day — READ uses it
    to double that disk's idleness threshold (Fig. 6, line 22).
    """

    def __init__(self, sim: Simulator, limit_per_day: int, *,
                 on_half_spent: Optional[Callable[[int], None]] = None) -> None:
        require(limit_per_day >= 1, f"limit_per_day must be >= 1, got {limit_per_day}")
        self._sim = sim
        self.limit_per_day = limit_per_day
        self._on_half_spent = on_half_spent
        self._spent: dict[tuple[int, int], int] = defaultdict(int)
        self._half_fired: set[tuple[int, int]] = set()

    def _key(self, disk_id: int) -> tuple[int, int]:
        return (disk_id, int(self._sim.now // SECONDS_PER_DAY))

    def spent_today(self, disk_id: int) -> int:
        """Transitions already spent by ``disk_id`` in the current day."""
        return self._spent[self._key(disk_id)]

    def available(self, disk_id: int) -> bool:
        """Whether the disk may still transition today."""
        return self.spent_today(disk_id) < self.limit_per_day

    def spend(self, disk_id: int) -> bool:
        """Consume one transition if the budget allows; returns success."""
        key = self._key(disk_id)
        if self._spent[key] >= self.limit_per_day:
            return False
        self._spent[key] += 1
        if (self._on_half_spent is not None and key not in self._half_fired
                and 2 * self._spent[key] >= self.limit_per_day):
            self._half_fired.add(key)
            self._on_half_spent(disk_id)
        return True


class SpeedController:
    """Idleness-timer spin-down plus demand spin-up for a set of drives.

    Parameters
    ----------
    sim, array, config:
        Kernel, the controlled array, and the shared knobs.
    eligible:
        Predicate: may this disk ever be spun down?  (MAID excludes
        cache disks, READ's base layout excludes nothing but relies on
        its budget.)
    budget:
        Optional :class:`TransitionBudget`; when given, every transition
        (down *and* up) must be paid for, and an exhausted budget simply
        leaves the disk at its current speed.
    """

    def __init__(self, sim: Simulator, array: DiskArray, config: SpeedControlConfig, *,
                 eligible: Callable[[int], bool] = lambda _d: True,
                 budget: Optional[TransitionBudget] = None) -> None:
        self._sim = sim
        self._trace = sim.trace
        self._array = array
        #: drives indexed by disk id — the idle/busy hooks fire on every
        #: queue-drain/first-arrival edge, so skip the array.drive() hop
        self._drives = array.drives
        self.config = config
        self._eligible = eligible
        self._budget = budget
        self._timers: dict[int, ResettableTimer] = {}
        for disk_id in range(array.n_disks):
            self._timers[disk_id] = ResettableTimer(
                sim, config.idle_threshold_s,
                # default arg pins the loop variable
                (lambda d=disk_id: self._idle_expired(d)),
                priority=10,
            )

    # ------------------------------------------------------------------
    # hooks to wire into the array
    # ------------------------------------------------------------------
    def on_disk_idle(self, disk_id: int) -> None:
        """Array hook: a drive's queue drained — start its idleness clock."""
        if self._eligible(disk_id) and self._drives[disk_id].speed is DiskSpeed.HIGH:
            self._timers[disk_id].arm()

    def on_disk_busy(self, disk_id: int) -> None:
        """Array hook: an idle drive received work — stop its idleness clock."""
        self._timers[disk_id].cancel()

    # ------------------------------------------------------------------
    def _idle_expired(self, disk_id: int) -> None:
        drive = self._drives[disk_id]
        if not drive.is_idle or drive.speed is not DiskSpeed.HIGH:
            return
        if self._budget is not None and not self._budget.spend(disk_id):
            return
        if self._trace is not None:
            self._trace.emit(ev.POLICY_SPIN_DOWN, self._sim.now, disk=disk_id)
        drive.request_speed(DiskSpeed.LOW)

    def check_spin_up(self, disk_id: int, *, incoming_jobs: int = 1) -> None:
        """Arrival-side demand rule: spin a LOW drive up when the backlog
        or estimated wait crosses the configured trigger.

        Call *before* submitting the arriving job(s) so the decision uses
        the pre-arrival queue plus ``incoming_jobs``.  A failed drive is
        left alone (it cannot transition; the arriving work will be
        redirected or failed by the fault domain).
        """
        drive = self._drives[disk_id]
        if drive.is_failed:
            return
        self._timers[disk_id].cancel()
        if drive.effective_target_speed is DiskSpeed.HIGH:
            return
        backlog = drive.queue_length + incoming_jobs
        if (backlog >= self.config.spin_up_queue_len
                or drive.estimated_wait_s() > self.config.spin_up_wait_s):
            if self._budget is not None and not self._budget.spend(disk_id):
                return
            if self._trace is not None:
                self._trace.emit(ev.POLICY_SPIN_UP, self._sim.now,
                                 disk=disk_id, backlog=backlog)
            drive.request_speed(DiskSpeed.HIGH)

    def shutdown(self) -> None:
        """Cancel every armed idleness timer (end-of-run teardown)."""
        for timer in self._timers.values():
            timer.cancel()

    def set_idle_threshold(self, disk_id: int, threshold_s: float) -> None:
        """Rewrite one disk's idleness threshold H (READ's adaptation)."""
        require_positive(threshold_s, "threshold_s")
        self._timers[disk_id].interval = threshold_s

    def idle_threshold(self, disk_id: int) -> float:
        """Current idleness threshold H of one disk."""
        return self._timers[disk_id].interval


class Policy(abc.ABC):
    """Abstract energy-management policy.

    Lifecycle (driven by :class:`repro.experiments.runner.Simulation`):

    1. :meth:`bind` — receive kernel, array, and file set; install hooks.
    2. :meth:`initial_layout` — place every file; set initial speeds.
    3. :meth:`route` — called once per trace request, in arrival order.
    4. the kernel runs; the policy reacts through its installed hooks.
    """

    #: Human-readable policy name used in reports and figures.
    name: str = "abstract"

    def __init__(self) -> None:
        self.sim: Optional[Simulator] = None
        self.array: Optional[DiskArray] = None
        self.fileset: Optional[FileSet] = None
        self.completion_callback: Optional[Callable[[Job], None]] = None
        #: Installed by :class:`repro.faults.FaultInjector` when fault
        #: injection is active; ``None`` (the default) keeps the fast
        #: direct-submit path and today's bit-identical behaviour.
        self.fault_domain: Optional["FaultDomain"] = None
        #: Trace bus cached at :meth:`bind` time; ``None`` keeps every
        #: policy emission site a dead branch.
        self.trace = None

    # ------------------------------------------------------------------
    def bind(self, sim: Simulator, array: DiskArray, fileset: FileSet) -> None:
        """Attach the policy to a simulation; installs idle/busy hooks."""
        self.sim = sim
        self.trace = sim.trace
        self.array = array
        self.fileset = fileset
        array.set_idle_handler(self.on_disk_idle)
        array.set_busy_handler(self.on_disk_busy)

    def _require_bound(self) -> DiskArray:
        if self.array is None or self.sim is None or self.fileset is None:
            raise PolicyError(f"policy {self.name!r} used before bind()")
        return self.array

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def initial_layout(self) -> None:
        """Place all files and configure initial drive speeds."""

    @abc.abstractmethod
    def route(self, request: Request) -> None:
        """Submit one arriving request to the array."""

    def on_disk_idle(self, disk_id: int) -> None:
        """Hook: a drive's queue drained (default: no reaction)."""

    def on_disk_busy(self, disk_id: int) -> None:
        """Hook: an idle drive received work (default: no reaction)."""

    def shutdown(self) -> None:
        """End-of-run teardown: stop periodic tasks and timers so the
        event queue can drain (default: no reaction)."""

    # ------------------------------------------------------------------
    # degraded-mode interface (consulted only under fault injection)
    # ------------------------------------------------------------------
    def alternate_targets(self, file_id: int) -> tuple[int, ...]:
        """Disks besides the primary that hold a servable copy of
        ``file_id`` (replicas, cache copies).  Layouts without redundancy
        return the default empty tuple — requests for a file whose only
        copy sits on a failed disk then fail."""
        return ()

    def on_disk_failed(self, disk_id: int) -> None:
        """Hook: ``disk_id`` just failed (default: no reaction).

        Policies holding metadata about copies on that disk (MAID's
        cache map, READ-replicate's replica map) must drop it here."""

    def on_disk_restored(self, disk_id: int) -> None:
        """Hook: ``disk_id``'s rebuild finished; primary data is back
        (default: no reaction)."""

    # ------------------------------------------------------------------
    def submit(self, request: Request, *, disk_id: Optional[int] = None) -> Job:
        """Submit a user request with the runner's metrics callback attached.

        Under fault injection the submit is mediated by the fault domain,
        which redirects away from failed disks (via
        :meth:`alternate_targets`) or fails the request.
        """
        array = self.array
        if array is None:
            array = self._require_bound()
        if self.fault_domain is not None:
            return self.fault_domain.submit_user_request(request, disk_id)
        return array.submit_request(request, disk_id=disk_id,
                                    on_complete=self.completion_callback)

    def describe(self) -> dict[str, object]:
        """Policy parameters for experiment records (override to extend)."""
        return {"name": self.name}
