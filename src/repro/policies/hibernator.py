"""Hibernator-style coarse-grain speed setting (Zhu et al., SOSP'05).

The third power-management scheme the paper's Sec. 2 cites.  Where DRPM
reacts to short windows, Hibernator's defining idea is the *coarse
temporal granularity*: disk speeds are chosen once per long epoch and
held, explicitly bounding transition frequency (at most one change per
disk per epoch) while a performance model keeps response time within a
target.

Per epoch, for each disk this implementation:

1. estimates the disk's arrival rate and service-time moments from the
   epoch's observed per-file access counts (the same Pollaczek-Khinchine
   machinery that validates the simulator —
   :mod:`repro.experiments.validation`);
2. predicts the M/G/1 mean response time at LOW speed;
3. parks the disk at LOW if the prediction meets ``response_bound_s``
   (with ``utilization_guard`` headroom against instability), otherwise
   at HIGH.

No data moves; placement is round-robin by size.  Reliability character
(what PRESS sees): transitions are rare *by construction* — Hibernator
is the power-management design point closest to READ's reliability
behaviour, while its response time floats up to the configured bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.disk.parameters import DiskSpeed
from repro.policies.base import Policy
from repro.policies.tracking import AccessTracker
from repro.sim.timers import PeriodicTask
from repro.util.validation import require, require_fraction, require_positive
from repro.workload.request import Request

__all__ = ["HibernatorConfig", "HibernatorPolicy"]


@dataclass(frozen=True, slots=True)
class HibernatorConfig:
    """Coarse-grain controller knobs.

    Attributes
    ----------
    epoch_s:
        Speed-setting period (Hibernator used hours; default 30 min).
    response_bound_s:
        Per-disk mean-response target the LOW prediction must meet.
    utilization_guard:
        Maximum predicted LOW-speed utilization; above it the disk runs
        HIGH regardless of the response prediction (P-K diverges near 1).
    start_low:
        Whether disks boot at LOW (Hibernator's optimistic default).
    """

    epoch_s: float = 1800.0
    response_bound_s: float = 0.030
    utilization_guard: float = 0.7
    start_low: bool = True

    def __post_init__(self) -> None:
        require_positive(self.epoch_s, "epoch_s")
        require_positive(self.response_bound_s, "response_bound_s")
        require_fraction(self.utilization_guard, "utilization_guard")
        require(self.utilization_guard > 0.0, "utilization_guard must be > 0")


class HibernatorPolicy(Policy):
    """Epoch-granular model-driven speed setting; no data movement."""

    name = "hibernator"

    def __init__(self, config: HibernatorConfig | None = None) -> None:
        super().__init__()
        self.config = config or HibernatorConfig()
        self._tracker: Optional[AccessTracker] = None
        self._epoch_task: Optional[PeriodicTask] = None
        self.epoch_decisions = {"low": 0, "high": 0}

    # ------------------------------------------------------------------
    def describe(self) -> dict[str, object]:
        return {"name": self.name, "epoch_s": self.config.epoch_s,
                "response_bound_ms": self.config.response_bound_s * 1e3,
                "decisions": dict(self.epoch_decisions)}

    def initial_layout(self) -> None:
        array = self._require_bound()
        order = self.fileset.ids_sorted_by_size()
        placement = np.empty(len(self.fileset), dtype=np.int64)
        placement[order] = np.arange(len(order)) % array.n_disks
        array.place_all(placement)
        if self.config.start_low:
            for drive in array.drives:
                drive.force_speed(DiskSpeed.LOW)
        self._tracker = AccessTracker(len(self.fileset))
        self._epoch_task = PeriodicTask(self.sim, self.config.epoch_s,
                                        self._on_epoch, priority=30)

    def route(self, request: Request) -> None:
        self._require_bound()
        assert self._tracker is not None
        self._tracker.record(request.file_id)
        self.submit(request, disk_id=self.array.location_of(request.file_id))

    def shutdown(self) -> None:
        if self._epoch_task is not None:
            self._epoch_task.stop()

    # ------------------------------------------------------------------
    def predicted_low_speed_response_s(self, disk_id: int,
                                       counts: np.ndarray) -> tuple[float, float]:
        """(predicted mean response at LOW, predicted utilization).

        Returns ``(inf, inf)`` when the LOW-speed queue would be
        unstable or breach the utilization guard.
        """
        array = self._require_bound()
        on_disk = array.files_on(disk_id)
        disk_counts = counts[on_disk]
        total = float(disk_counts.sum())
        low = array.params.low
        if total == 0.0:
            return low.positioning_s, 0.0  # idle disk: service time only
        lam = total / self.config.epoch_s
        sizes = self.fileset.sizes_mb[on_disk]
        service = low.positioning_s + sizes / low.transfer_mb_s
        w = disk_counts / total
        es = float(np.sum(w * service))
        es2 = float(np.sum(w * service**2))
        rho = lam * es
        if rho >= self.config.utilization_guard:
            return float("inf"), rho
        wait = lam * es2 / (2.0 * (1.0 - rho))
        return wait + es, rho

    def _on_epoch(self, _tick: int) -> None:
        assert self._tracker is not None
        array = self._require_bound()
        counts = self._tracker.roll_epoch().astype(np.float64)
        for disk_id, drive in enumerate(array.drives):
            response, _rho = self.predicted_low_speed_response_s(disk_id, counts)
            if response <= self.config.response_bound_s:
                target = DiskSpeed.LOW
                self.epoch_decisions["low"] += 1
            else:
                target = DiskSpeed.HIGH
                self.epoch_decisions["high"] += 1
            if drive.effective_target_speed is not target:
                drive.request_speed(target)
