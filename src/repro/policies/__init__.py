"""Energy-management policies for the two-speed disk array.

Each policy owns three concerns, mirroring how the paper describes the
schemes it compares (Sec. 2, Sec. 4):

* **data placement** — where files live initially and how they move;
* **request routing** — which disk serves each request (MAID redirects
  to cache disks; the others serve from the file's primary location);
* **speed control** — when drives transition between the two spindle
  speeds (idleness thresholds, spin-up demand rules, READ's transition
  budget).

The READ policy itself — the paper's contribution — lives in
:mod:`repro.core` and plugs into the same :class:`Policy` interface.
"""

from repro.policies.base import (
    Policy,
    PolicyError,
    SpeedControlConfig,
    SpeedController,
    TransitionBudget,
)
from repro.policies.static import StaticHighPolicy, StaticLowPolicy
from repro.policies.maid import MAIDConfig, MAIDPolicy
from repro.policies.drpm import DRPMConfig, DRPMPolicy
from repro.policies.hibernator import HibernatorConfig, HibernatorPolicy
from repro.policies.pdc import PDCConfig, PDCPolicy
from repro.policies.striped import StripedPolicyConfig, StripedStaticPolicy

__all__ = [
    "Policy",
    "PolicyError",
    "SpeedControlConfig",
    "SpeedController",
    "TransitionBudget",
    "StaticHighPolicy",
    "StaticLowPolicy",
    "MAIDConfig",
    "MAIDPolicy",
    "PDCConfig",
    "PDCPolicy",
    "DRPMConfig",
    "DRPMPolicy",
    "HibernatorConfig",
    "HibernatorPolicy",
    "StripedPolicyConfig",
    "StripedStaticPolicy",
]
