"""Per-file access tracking shared by the adaptive policies.

Both PDC and READ learn popularity online: PDC re-ranks files every
epoch to concentrate load; READ's Access Tracking Manager (ATM) records
"each file's popularity in terms of number of accesses within one epoch
in a table called File Popularity Table (FPT)" (Sec. 4).  This module is
that table: a pair of count vectors (current epoch, previous epoch) with
an O(1) record path — it sits on the per-request hot path.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import require

__all__ = ["AccessTracker"]


class AccessTracker:
    """Counts file accesses per epoch (the paper's ATM + FPT).

    :meth:`record` is called once per routed request;
    :meth:`roll_epoch` snapshots the counts for the epoch that just
    ended and resets the live counters.
    """

    def __init__(self, n_files: int) -> None:
        require(n_files >= 1, f"n_files must be >= 1, got {n_files}")
        self._n_files = n_files
        self._current = np.zeros(n_files, dtype=np.int64)
        self._previous = np.zeros(n_files, dtype=np.int64)
        self._lifetime = np.zeros(n_files, dtype=np.int64)
        #: accesses recorded since the last flush — record() is a plain
        #: list append; counts fold into the vectors in one bincount when
        #: anything actually reads them (epoch roll, count properties)
        self._pending: list[int] = []
        self._epochs_completed = 0

    @property
    def n_files(self) -> int:
        """Tracked population size."""
        return int(self._current.size)

    @property
    def epochs_completed(self) -> int:
        """How many times :meth:`roll_epoch` has been called."""
        return self._epochs_completed

    def record(self, file_id: int) -> None:
        """Count one access to ``file_id`` in the current epoch."""
        if not 0 <= file_id < self._n_files:
            raise IndexError(f"file_id out of range: {file_id}")
        self._pending.append(file_id)

    def _flush(self) -> None:
        pending = self._pending
        if pending:
            delta = np.bincount(pending, minlength=self._n_files)
            self._current += delta
            self._lifetime += delta
            self._pending = []

    def roll_epoch(self) -> np.ndarray:
        """Close the current epoch; returns its counts (a copy).

        The returned array is also retained as :attr:`previous_counts`
        until the next roll.
        """
        self._flush()
        snapshot = self._current.copy()
        self._previous, self._current = snapshot, self._previous
        self._current[:] = 0
        self._epochs_completed += 1
        return snapshot.copy()

    @property
    def current_counts(self) -> np.ndarray:
        """Live counts of the in-progress epoch (read-only view)."""
        self._flush()
        view = self._current.view()
        view.setflags(write=False)
        return view

    @property
    def previous_counts(self) -> np.ndarray:
        """Counts of the last completed epoch (read-only view)."""
        view = self._previous.view()
        view.setflags(write=False)
        return view

    @property
    def lifetime_counts(self) -> np.ndarray:
        """Counts since construction (read-only view)."""
        self._flush()
        view = self._lifetime.view()
        view.setflags(write=False)
        return view

    def popularity_ranking(self, *, counts: np.ndarray | None = None) -> np.ndarray:
        """File ids sorted most-accessed first (stable; ties keep id order).

        Defaults to the last completed epoch's counts — what PDC's
        re-ranking and READ's FRD both sort by (Fig. 6, line 10).
        """
        base = self._previous if counts is None else np.asarray(counts)
        require(base.size == self.n_files, "counts length must match n_files")
        return np.argsort(-base, kind="stable").astype(np.int64)
