"""Static baselines: no energy management at all.

``StaticHighPolicy`` is the conventional always-full-speed array — the
energy ceiling and performance floor every scheme is implicitly measured
against.  ``StaticLowPolicy`` is the opposite corner (everything at low
speed, maximum energy saving available from speed alone, worst service
times).  Neither transitions ever, so their PRESS frequency factor is 0
and their AFR differences come purely from temperature and utilization —
which makes them useful calibration points in tests.
"""

from __future__ import annotations

import numpy as np

from repro.disk.parameters import DiskSpeed
from repro.policies.base import Policy
from repro.workload.request import Request

__all__ = ["StaticHighPolicy", "StaticLowPolicy"]


class _StaticPolicy(Policy):
    """Round-robin placement by size rank; fixed speed; direct routing."""

    def __init__(self, speed: DiskSpeed) -> None:
        super().__init__()
        self._speed = speed

    def initial_layout(self) -> None:
        """Round-robin files across disks in size order (balanced load
        under the size-popularity assumption) and pin every drive's speed."""
        array = self._require_bound()
        order = self.fileset.ids_sorted_by_size()
        placement = np.empty(len(self.fileset), dtype=np.int64)
        placement[order] = np.arange(len(order)) % array.n_disks
        array.place_all(placement)
        for drive in array.drives:
            if drive.speed is not self._speed:
                drive.force_speed(self._speed)

    def route(self, request: Request) -> None:
        """Serve from the file's placed disk; never change speeds."""
        self.submit(request)


class StaticHighPolicy(_StaticPolicy):
    """All drives at high speed forever (the no-energy-management array)."""

    name = "static-high"

    def __init__(self) -> None:
        super().__init__(DiskSpeed.HIGH)


class StaticLowPolicy(_StaticPolicy):
    """All drives at low speed forever (maximum speed-derived saving)."""

    name = "static-low"

    def __init__(self) -> None:
        super().__init__(DiskSpeed.LOW)
