"""DRPM-style dynamic speed modulation (Gurumurthi et al., ISCA'03).

The paper's Sec. 2 first category: "power management mechanisms based on
multi-speed disks like DRPM, Multi-speed, and Hibernator ... dynamically
modulate disk speed to control energy consumption."  Unlike the
workload-skew schemes, DRPM moves no data: each disk independently
watches its own recent utilization and steps its spindle speed up or
down between watermarks.

With two-speed disks the controller degenerates to a two-point
hysteresis loop per disk:

* utilization over the last control window > ``up_watermark``  -> HIGH
* utilization < ``down_watermark``                             -> LOW
* in between: hold (the hysteresis band prevents oscillation).

Reliability character (what PRESS sees): transition frequency scales
with how often per-disk load crosses the band — on bursty traffic that
is DRPM's known failure mode, and exactly the behaviour the paper's
frequency-reliability function punishes ("it is not wise to aggressively
switch disk speed to save some amount of energy", Sec. 3.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.disk.parameters import DiskSpeed
from repro.policies.base import Policy, SpeedControlConfig, SpeedController
from repro.sim.timers import PeriodicTask
from repro.util.validation import require, require_fraction, require_positive
from repro.workload.request import Request

__all__ = ["DRPMConfig", "DRPMPolicy"]


@dataclass(frozen=True, slots=True)
class DRPMConfig:
    """DRPM watermark controller knobs.

    Attributes
    ----------
    control_period_s:
        How often each disk re-evaluates its speed.
    up_watermark / down_watermark:
        Utilization thresholds (fractions of the window) for stepping
        up / down; the gap between them is the hysteresis band.
    demand_spin_up:
        Also spin up immediately on queue pressure (the "performance
        guarantee" rider DRPM variants add); uses the shared demand
        rule with ``spin_up_queue_len``/``spin_up_wait_s`` below.
    speed:
        The demand rule's parameters (the idleness threshold H is
        unused — spin-*down* is the watermark controller's job).
    """

    control_period_s: float = 60.0
    up_watermark: float = 0.30
    down_watermark: float = 0.05
    demand_spin_up: bool = True
    speed: SpeedControlConfig = SpeedControlConfig(
        idle_threshold_s=1e9, spin_up_queue_len=6, spin_up_wait_s=2.0)

    def __post_init__(self) -> None:
        require_positive(self.control_period_s, "control_period_s")
        require_fraction(self.up_watermark, "up_watermark")
        require_fraction(self.down_watermark, "down_watermark")
        require(self.down_watermark < self.up_watermark,
                "down_watermark must be below up_watermark (hysteresis)")


class DRPMPolicy(Policy):
    """Per-disk watermark speed control; no data movement."""

    name = "drpm"

    def __init__(self, config: DRPMConfig | None = None) -> None:
        super().__init__()
        self.config = config or DRPMConfig()
        self._controller: Optional[SpeedController] = None
        self._control_task: Optional[PeriodicTask] = None
        #: active-time snapshot per disk at the last control tick
        self._active_snapshot: Optional[np.ndarray] = None
        self.control_decisions = {"up": 0, "down": 0, "hold": 0}

    # ------------------------------------------------------------------
    def describe(self) -> dict[str, object]:
        return {"name": self.name,
                "control_period_s": self.config.control_period_s,
                "up_watermark": self.config.up_watermark,
                "down_watermark": self.config.down_watermark,
                "decisions": dict(self.control_decisions)}

    def initial_layout(self) -> None:
        """Round-robin by size rank; start every disk LOW (DRPM's premise
        is that full speed is rarely needed) and arm the controller."""
        array = self._require_bound()
        order = self.fileset.ids_sorted_by_size()
        placement = np.empty(len(self.fileset), dtype=np.int64)
        placement[order] = np.arange(len(order)) % array.n_disks
        array.place_all(placement)
        for drive in array.drives:
            drive.force_speed(DiskSpeed.LOW)

        self._active_snapshot = np.zeros(array.n_disks, dtype=np.float64)
        self._controller = SpeedController(self.sim, array, self.config.speed)
        self._control_task = PeriodicTask(self.sim, self.config.control_period_s,
                                          self._control_tick, priority=30)

    def route(self, request: Request) -> None:
        self._require_bound()
        target = self.array.location_of(request.file_id)
        if self.config.demand_spin_up:
            assert self._controller is not None
            self._controller.check_spin_up(target)
        self.submit(request, disk_id=target)

    def shutdown(self) -> None:
        if self._control_task is not None:
            self._control_task.stop()
        if self._controller is not None:
            self._controller.shutdown()

    # ------------------------------------------------------------------
    def _control_tick(self, _tick: int) -> None:
        """Per-disk watermark decision on the last window's utilization."""
        array = self._require_bound()
        assert self._active_snapshot is not None
        period = self.config.control_period_s
        for disk_id, drive in enumerate(array.drives):
            drive.finalize()  # flush the ledger so active time is current
            active = drive.energy.active_time_s
            window_util = (active - self._active_snapshot[disk_id]) / period
            self._active_snapshot[disk_id] = active

            if window_util > self.config.up_watermark:
                if drive.effective_target_speed is not DiskSpeed.HIGH:
                    drive.request_speed(DiskSpeed.HIGH)
                    self.control_decisions["up"] += 1
                else:
                    self.control_decisions["hold"] += 1
            elif window_util < self.config.down_watermark:
                if drive.effective_target_speed is not DiskSpeed.LOW:
                    drive.request_speed(DiskSpeed.LOW)
                    self.control_decisions["down"] += 1
                else:
                    self.control_decisions["hold"] += 1
            else:
                self.control_decisions["hold"] += 1
