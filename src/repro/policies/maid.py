"""MAID — Massive Array of Idle Disks (Colarelli & Grunwald, SC'02).

The paper's description (Sec. 2, Sec. 4): "copy the required data to a
set of 'cache disks' and put all the other disks in low-power mode.
Later accesses to the data may then hit the data on the cache disk(s)."
With two-speed disks MAID becomes the hybrid the paper evaluates: cache
disks run permanently at high speed, passive disks sink to low speed
after an idle period and return to high speed under demand.

Implementation model
--------------------
* ``n_cache_disks`` drives (the first ids) are cache disks; they hold
  *copies*, managed LRU by capacity.  The remaining passive drives hold
  every file's primary copy, round-robin by size rank.
* A request for a cached file is served by its cache disk (and refreshes
  LRU recency).  A miss is served by the passive disk and, on
  completion, the file is copied into cache: an internal write job on
  the least-loaded cache disk (the read side piggybacks on the just-
  completed user read, costing no extra passive-disk work).  The file
  only counts as cached once the write completes — concurrent misses on
  an in-flight copy keep hitting the passive disk rather than reading a
  half-written copy.
* Eviction is a metadata operation (no I/O): LRU entries are dropped
  until the new copy fits.

Reliability character (what PRESS sees): cache disks accumulate very
high utilization at permanently high temperature — exactly the
workhorse-overuse effect the paper's Sec. 1 calls out — while passive
disks rack up speed transitions under bursty misses.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.disk.drive import Job
from repro.obs import events as ev
from repro.policies.base import Policy, SpeedControlConfig, SpeedController
from repro.util.validation import require, require_fraction
from repro.workload.request import Request

__all__ = ["MAIDConfig", "MAIDPolicy"]


@dataclass(frozen=True, slots=True)
class MAIDConfig:
    """MAID tuning knobs.

    Attributes
    ----------
    n_cache_disks:
        Cache-disk count; ``None`` means ``max(1, round(n_disks / 4))``
        (the 1:3 cache-to-passive ratio of the original MAID paper's
        smaller configs).
    cache_fraction_of_data:
        Total logical cache size as a fraction of the stored data set.
        MAID's cache is by construction smaller than the data (that is
        the point of the passive tier); the fraction bounds hit rate and
        therefore how often passive disks are disturbed.  The per-disk
        physical capacity still caps the budget.
    speed:
        Shared idleness/spin-up knobs for the passive disks.
    """

    n_cache_disks: Optional[int] = None
    cache_fraction_of_data: float = 0.5
    #: Like PDC, a miss spins the passive disk up on any arrival — the
    #: passive tier is meant to be asleep, not a slow service class.
    speed: SpeedControlConfig = SpeedControlConfig(
        idle_threshold_s=20.0, spin_up_queue_len=1, spin_up_wait_s=0.5)

    def __post_init__(self) -> None:
        if self.n_cache_disks is not None:
            require(self.n_cache_disks >= 1,
                    f"n_cache_disks must be >= 1, got {self.n_cache_disks}")
        require_fraction(self.cache_fraction_of_data, "cache_fraction_of_data")
        require(self.cache_fraction_of_data > 0.0, "cache_fraction_of_data must be > 0")


class MAIDPolicy(Policy):
    """MAID with two-speed passive disks (the paper's comparison baseline)."""

    name = "maid"

    def __init__(self, config: MAIDConfig | None = None) -> None:
        super().__init__()
        self.config = config or MAIDConfig()
        self._n_cache = 0
        self._controller: Optional[SpeedController] = None
        #: file_id -> cache disk, in LRU order (oldest first).
        self._cache: OrderedDict[int, int] = OrderedDict()
        #: files whose cache copy is still being written.
        self._copying: set[int] = set()
        #: logical MB of copies held per cache disk.
        self._cache_used_mb: Optional[np.ndarray] = None
        #: cached result of :meth:`_cache_budget_mb` (set at layout time).
        self._budget_mb: Optional[float] = None
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------
    def describe(self) -> dict[str, object]:
        return {"name": self.name, "n_cache_disks": self._n_cache,
                "idle_threshold_s": self.config.speed.idle_threshold_s}

    def is_cache_disk(self, disk_id: int) -> bool:
        """Whether ``disk_id`` is one of the always-on cache disks."""
        return disk_id < self._n_cache

    @property
    def hit_rate(self) -> float:
        """Cache hit fraction over all routed requests so far."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    # ------------------------------------------------------------------
    def initial_layout(self) -> None:
        """Reserve cache disks, spread primaries over passive disks."""
        array = self._require_bound()
        n = array.n_disks
        cfg = self.config
        self._n_cache = cfg.n_cache_disks if cfg.n_cache_disks is not None else max(1, round(n / 4))
        require(self._n_cache < n,
                f"MAID needs at least one passive disk (n_cache={self._n_cache}, n={n})")
        n_passive = n - self._n_cache

        order = self.fileset.ids_sorted_by_size()
        placement = np.empty(len(self.fileset), dtype=np.int64)
        placement[order] = self._n_cache + (np.arange(len(order)) % n_passive)
        array.place_all(placement)

        self._cache_used_mb = np.zeros(self._n_cache, dtype=np.float64)
        self._budget_mb = None  # recompute below against the new array
        self._budget_mb = self._cache_budget_mb()
        # cache disks pinned high; passive disks idle down via controller
        self._controller = SpeedController(
            self.sim, array, cfg.speed,
            eligible=lambda d: not self.is_cache_disk(d),
        )

    # ------------------------------------------------------------------
    def route(self, request: Request) -> None:
        """Serve from cache on a hit; on a miss, serve passive + copy in."""
        self._require_bound()
        fid = request.file_id
        cached_on = self._cache.get(fid)
        if cached_on is not None and fid not in self._copying:
            self.cache_hits += 1
            if self.trace is not None:
                self.trace.emit(ev.POLICY_CACHE_HIT, self.sim.now,
                                file=fid, disk=cached_on)
            self._cache.move_to_end(fid)  # LRU refresh
            self.submit(request, disk_id=cached_on)
            return

        self.cache_misses += 1
        primary = self.array.location_of(fid)
        if self.trace is not None:
            self.trace.emit(ev.POLICY_CACHE_MISS, self.sim.now,
                            file=fid, disk=primary)
        assert self._controller is not None
        self._controller.check_spin_up(primary)
        job = self.submit(request, disk_id=primary)
        # job.failed is only set this early when the fault domain failed
        # the submit synchronously — nothing was read, so nothing to copy
        if cached_on is None and fid not in self._copying and not job.failed:
            self._start_copy(fid, job)

    def on_disk_idle(self, disk_id: int) -> None:
        if self._controller is not None:
            self._controller.on_disk_idle(disk_id)

    def on_disk_busy(self, disk_id: int) -> None:
        if self._controller is not None:
            self._controller.on_disk_busy(disk_id)

    def shutdown(self) -> None:
        if self._controller is not None:
            self._controller.shutdown()

    # ------------------------------------------------------------------
    # degraded mode (fault injection)
    # ------------------------------------------------------------------
    def alternate_targets(self, file_id: int) -> tuple[int, ...]:
        """A completed cache copy is a servable alternate to the primary."""
        disk = self._cache.get(file_id)
        if disk is not None and file_id not in self._copying:
            return (disk,)
        return ()

    def on_disk_failed(self, disk_id: int) -> None:
        """Drop cache metadata that pointed at the failed disk.

        A failed passive disk needs no cache-side action (its files'
        copies remain servable); a failed cache disk loses every copy it
        held — the copies are re-created by later misses, the rebuild
        only restores primary data.
        """
        if not self.is_cache_disk(disk_id) or self._cache_used_mb is None:
            return
        for fid in [f for f, d in self._cache.items() if d == disk_id]:
            del self._cache[fid]
        self._cache_used_mb[disk_id] = 0.0

    # ------------------------------------------------------------------
    # cache management
    # ------------------------------------------------------------------
    def _cache_budget_mb(self) -> float:
        """Per-cache-disk logical budget: data-relative, capacity-capped.

        Fixed once the policy is laid out (fileset, cache count, and
        capacity never change mid-run), so the value is computed once in
        :meth:`initial_layout` and reused on the per-miss path.
        """
        if self._budget_mb is not None:
            return self._budget_mb
        per_disk = (self.config.cache_fraction_of_data * self.fileset.total_mb
                    / max(self._n_cache, 1))
        return min(per_disk, 0.95 * self.array.params.capacity_mb)

    def _start_copy(self, fid: int, triggering_job: Job) -> None:
        """After the miss read completes, write the file into cache."""
        size = self.fileset.size_of(fid)
        if size > self._cache_budget_mb():
            return  # pathological: file larger than a cache disk's budget
        self._copying.add(fid)

        def _after_user_read(_job: Job) -> None:
            target = self._pick_cache_disk(size)
            if target is None or not self._evict_until_fits(target, size):
                # no room even after eviction (e.g. space pinned by other
                # in-flight copies): skip caching this access, don't fail
                self._copying.discard(fid)
                return
            self._cache_used_mb[target] += size

            def _after_cache_write(_wjob: Job) -> None:
                self._copying.discard(fid)
                if _wjob.failed:
                    # cache disk died before the copy landed: release the
                    # charged space, leave the file uncached
                    self._cache_used_mb[target] -= size
                    return
                self._cache[fid] = target  # becomes visible (and LRU-newest) now
                if self.trace is not None:
                    self.trace.emit(ev.POLICY_CACHE_INSERT, self.sim.now,
                                    file=fid, disk=target)

            self.array.submit_internal(target, size, on_complete=_after_cache_write)

        # chain onto the user read without clobbering the metrics callback
        prev = triggering_job.on_complete

        def _chained(job: Job) -> None:
            if prev is not None:
                prev(job)
            if job.failed:
                # the miss read never finished (disk failure); there is
                # nothing to copy — the retry path re-serves the request
                self._copying.discard(fid)
                return
            _after_user_read(job)

        triggering_job.on_complete = _chained

    def _pick_cache_disk(self, size_mb: float) -> Optional[int]:
        """Least-loaded cache disk that could hold ``size_mb`` after eviction."""
        assert self._cache_used_mb is not None
        if self._n_cache == 0:
            return None
        candidate = int(np.argmin(self._cache_used_mb))
        if self.array.drives[candidate].is_failed:
            up = [d for d in range(self._n_cache)
                  if not self.array.drives[d].is_failed]
            if not up:
                return None
            candidate = min(up, key=lambda d: float(self._cache_used_mb[d]))
        return candidate if size_mb <= self._cache_budget_mb() else None

    def _evict_until_fits(self, cache_disk: int, size_mb: float) -> bool:
        """Drop LRU entries on ``cache_disk`` until ``size_mb`` fits.

        Returns ``False`` when even a fully evicted disk cannot take the
        file — possible when in-flight copies (charged but not yet
        evictable) pin the space; the caller then skips caching.
        """
        budget = self._cache_budget_mb()
        if self._cache_used_mb[cache_disk] + size_mb <= budget:
            return True
        for fid in list(self._cache):  # insertion order: oldest first
            if self._cache[fid] != cache_disk:
                continue
            del self._cache[fid]
            self._cache_used_mb[cache_disk] -= self.fileset.size_of(fid)
            if self._cache_used_mb[cache_disk] + size_mb <= budget:
                return True
        return self._cache_used_mb[cache_disk] + size_mb <= budget
