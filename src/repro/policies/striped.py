"""RAID-0 striped service policy (paper future-work direction 2).

Serves every request by fanning its stripe chunks out to their disks in
parallel; the request completes when its **last** chunk completes
(fan-in).  All drives run at high speed — this is a performance
substrate, not an energy scheme; its role in the repository is (a) to
demonstrate the striping extension the paper sketches and (b) to give
the benchmarks a "best possible large-file response time" reference.

Large files gain (transfer is parallelized across disks); tiny files
pay nothing extra (single-chunk files take the non-striped path), which
is exactly the paper's Sec. 6 argument for why striping matters for
media files and not for 1998-era web objects.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.disk.drive import Job
from repro.disk.striping import PAPER_STRIPE_UNIT_MB, StripeLayout
from repro.obs import events as ev
from repro.policies.base import Policy
from repro.util.validation import require_positive
from repro.workload.request import Request

__all__ = ["StripedPolicyConfig", "StripedStaticPolicy"]


@dataclass(frozen=True, slots=True)
class StripedPolicyConfig:
    """Striping knobs: just the stripe unit (512 KB per the paper)."""

    stripe_unit_mb: float = PAPER_STRIPE_UNIT_MB

    def __post_init__(self) -> None:
        require_positive(self.stripe_unit_mb, "stripe_unit_mb")


class StripedStaticPolicy(Policy):
    """All-high-speed RAID-0 service with whole-request fan-in."""

    name = "striped-static"

    def __init__(self, config: StripedPolicyConfig | None = None) -> None:
        super().__init__()
        self.config = config or StripedPolicyConfig()
        self._layout: StripeLayout | None = None

    def describe(self) -> dict[str, object]:
        return {"name": self.name, "stripe_unit_mb": self.config.stripe_unit_mb}

    # ------------------------------------------------------------------
    def initial_layout(self) -> None:
        """Record chunk-0 placement (capacity bookkeeping) — physical
        chunks are implied by the stripe layout, not the placement map."""
        array = self._require_bound()
        self._layout = StripeLayout(array.n_disks, self.config.stripe_unit_mb)
        for file_id in range(len(self.fileset)):
            array.place_file(file_id, file_id % array.n_disks)

    # ------------------------------------------------------------------
    def route(self, request: Request) -> None:
        """Fan chunks out; complete the request on the last chunk."""
        array = self._require_bound()
        assert self._layout is not None
        chunks = self._layout.chunks_of(request.file_id, request.size_mb)

        if len(chunks) == 1:
            # small file: the ordinary whole-file path
            self.submit(request, disk_id=chunks[0].disk_id)
            return

        if self.trace is not None:
            self.trace.emit(ev.POLICY_STRIPE_FANOUT, self.sim.now,
                            file=request.file_id, chunks=len(chunks))
        request.served_by = chunks[0].disk_id
        state = {"remaining": len(chunks), "first_start": float("inf")}
        # a record job for the metrics callback; never submitted itself
        record = Job.for_request(request)

        def on_leg_complete(leg: Job) -> None:
            # a failed leg (disk death, fault injection) fails the whole
            # stripe read: RAID-0 has no redundancy to reconstruct from
            if leg.failed:
                record.failed = True
            else:
                state["first_start"] = min(state["first_start"], leg.service_start)
            state["remaining"] -= 1
            if state["remaining"] == 0:
                if not record.failed:
                    request.service_start = state["first_start"]
                    request.completion_time = self.sim.now
                    record.completion_time = self.sim.now
                if self.completion_callback is not None:
                    self.completion_callback(record)

        for chunk in chunks:
            array.submit_internal(chunk.disk_id, chunk.size_mb,
                                  on_complete=on_leg_complete)
