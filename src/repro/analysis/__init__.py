"""``repro.analysis`` — determinism & invariant static analysis.

Every guarantee this reproduction advertises (bit-identical results at a
fixed seed, byte-identical trace export, kill-and-resume sweeps equal to
uninterrupted ones) rests on invariants that regression tests can only
check *after* the fact.  This package enforces them at analysis time:
an AST-based rule engine walks the source tree and flags constructs that
would silently rot those guarantees — an unseeded RNG call in a policy,
a wall-clock read in the kernel, a raw ``open(..., "w")`` bypassing the
crash-safe :mod:`repro.util.atomicio` path.

Entry points
------------
* ``repro lint`` — the CLI subcommand (``repro lint --all`` also runs
  mypy and ruff when installed);
* ``python -m repro.analysis`` — the same interface, importable without
  installing the console script.

Violations that are *intended* are suppressed in place with a justified
pragma::

    risky_construct()  # repro: allow[IO001] streams to a tmp file, published atomically on close

The justification text is mandatory; an empty or missing justification
is itself a finding (``PRAGMA001``), and a pragma that suppresses
nothing is reported as stale (``PRAGMA002``).  DESIGN.md Sec. 10 is the
rule catalogue.
"""

from repro.analysis.core import (
    Finding,
    LintResult,
    ModuleInfo,
    Rule,
    all_rules,
    lint_paths,
    rule_codes,
)

__all__ = [
    "Finding",
    "LintResult",
    "ModuleInfo",
    "Rule",
    "all_rules",
    "lint_paths",
    "rule_codes",
]
