"""The rule engine: module parsing, rule registry, pragma suppression.

Design
------
Each :class:`Rule` owns one invariant, one stable code (``DET001``,
``IO001``, ...), and a *scope* — the set of ``repro`` subpackages the
invariant applies to (the kernel must not read wall clocks; a CLI
module may).  The engine parses every file once into a
:class:`ModuleInfo` (AST + import-alias table + pragma table) and hands
it to every in-scope rule; rules walk the shared tree and yield
:class:`Finding` records.

Name resolution is static and intentionally simple: the engine tracks
``import``/``from ... import`` bindings per module and resolves dotted
references back to their origin (``np.random.default_rng`` →
``numpy.random.default_rng``; ``ev.FAULT_INJECT`` →
``repro.obs.events.FAULT_INJECT``).  Local shadowing of imports is not
modelled — rules are heuristics with pragma escape hatches, not a type
checker.

Suppression
-----------
``# repro: allow[CODE] justification`` on the offending line suppresses
that code there; ``allow[CODE1,CODE2]`` suppresses several.  The
justification text is mandatory (``PRAGMA001`` otherwise) and a pragma
that suppresses nothing is stale (``PRAGMA002``) — suppressions must
never outlive the code they excuse.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Finding",
    "LintResult",
    "ModuleInfo",
    "Pragma",
    "Rule",
    "all_rules",
    "lint_paths",
    "register",
    "rule_codes",
]

#: Meta-codes emitted by the engine itself (not registered rules).
PRAGMA_MISSING_JUSTIFICATION = "PRAGMA001"
PRAGMA_STALE = "PRAGMA002"
PARSE_ERROR = "PARSE001"

_PRAGMA_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<codes>[A-Z0-9_,\s]+)\]\s*(?P<why>.*)$")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str
    tool: str = "repro"

    def render(self) -> str:
        """The conventional one-line ``path:line:col: CODE message`` form."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_json(self) -> dict[str, object]:
        """Flat JSON-serializable form (stable field names)."""
        return {"path": self.path, "line": self.line, "col": self.col,
                "code": self.code, "message": self.message, "tool": self.tool}


@dataclass(frozen=True)
class Pragma:
    """One parsed ``# repro: allow[...]`` suppression comment."""

    line: int
    codes: tuple[str, ...]
    justification: str


class ModuleInfo:
    """One parsed source file: AST, import aliases, pragmas, module name.

    ``module`` is the dotted module path inferred from the *last*
    ``repro`` segment of the file path (so both ``src/repro/sim/x.py``
    and a test fixture tree ``fixtures/known_bad/repro/sim/x.py``
    resolve to ``repro.sim.x``); files outside a ``repro`` tree get
    their bare stem, and scoped rules skip them.
    """

    def __init__(self, path: Path, display_path: str, source: str) -> None:
        self.path = path
        self.display_path = display_path
        self.source = source
        self.tree = ast.parse(source, filename=display_path)
        self.module = _module_name(path)
        self.pragmas = _parse_pragmas(source)
        self._bindings = _collect_bindings(self.tree)
        self._type_checking_lines = _type_checking_lines(self.tree)

    # ------------------------------------------------------------------
    @property
    def package_parts(self) -> tuple[str, ...]:
        """Dotted module path split into parts (``('repro', 'sim', 'x')``)."""
        return tuple(self.module.split("."))

    def in_scope(self, prefixes: Sequence[str]) -> bool:
        """Whether this module falls under any of the dotted prefixes."""
        if not prefixes:
            return self.module.startswith("repro")
        return any(self.module == p or self.module.startswith(p + ".")
                   for p in prefixes)

    def resolve(self, node: ast.AST) -> str | None:
        """Dotted origin of a ``Name``/``Attribute`` reference, or ``None``.

        Plain names that are not import bindings resolve to themselves
        (so builtins like ``open`` stay matchable); attribute chains
        whose root is an unbound local resolve to ``None``.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        origin = self._bindings.get(node.id)
        if origin is None:
            if parts:   # attribute chain rooted at a local variable
                return None
            return node.id
        parts.append(origin)
        return ".".join(reversed(parts))

    def is_type_checking_line(self, line: int) -> bool:
        """Whether ``line`` sits inside an ``if TYPE_CHECKING:`` block."""
        return line in self._type_checking_lines


# ----------------------------------------------------------------------
# rule base + registry
# ----------------------------------------------------------------------
class Rule:
    """Base class: subclass, set the class attributes, implement check().

    Attributes
    ----------
    code / name / description:
        Stable identifier, short slug, and the invariant the rule
        protects (rendered by ``repro lint --list-rules`` and quoted in
        DESIGN.md Sec. 10).
    scope:
        Dotted module prefixes the rule applies to; empty means every
        ``repro`` module.
    exempt:
        Exact module names skipped even when in scope (e.g. the module
        that *implements* the sanctioned pattern).
    """

    code: str = ""
    name: str = ""
    description: str = ""
    scope: tuple[str, ...] = ()
    exempt: tuple[str, ...] = ()

    def applies_to(self, module: ModuleInfo) -> bool:
        if module.module in self.exempt:
            return False
        return module.in_scope(self.scope)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        raise NotImplementedError

    # helper shared by subclasses
    def finding(self, module: ModuleInfo, node: ast.AST, message: str) -> Finding:
        return Finding(path=module.display_path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0) + 1,
                       code=self.code, message=message)


_REGISTRY: dict[str, type[Rule]] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry (unique code)."""
    if not rule_cls.code:
        raise ValueError(f"rule {rule_cls.__name__} has no code")
    if rule_cls.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule_cls.code}")
    _REGISTRY[rule_cls.code] = rule_cls
    return rule_cls


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, sorted by code."""
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    return [cls() for _, cls in sorted(_REGISTRY.items())]


def rule_codes() -> list[str]:
    """Registered rule codes, sorted."""
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    return sorted(_REGISTRY)


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------
@dataclass
class LintResult:
    """Outcome of one engine run over a set of paths."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[tuple[Finding, str]] = field(default_factory=list)
    files_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def extend(self, other: "LintResult") -> None:
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.files_checked += other.files_checked


def lint_paths(paths: Iterable[Path | str], *,
               rules: Sequence[Rule] | None = None,
               root: Path | str | None = None) -> LintResult:
    """Run the rule pack over files/directories; returns a :class:`LintResult`.

    Directories are walked recursively for ``*.py``; ``root`` (default:
    current directory) anchors the repo-relative paths findings are
    reported under.  Findings are sorted by (path, line, col, code) so
    output is deterministic regardless of filesystem walk order.
    """
    active = list(rules) if rules is not None else all_rules()
    root_path = Path(root) if root is not None else Path.cwd()
    result = LintResult()
    for file_path in _expand(paths):
        result.files_checked += 1
        display = _display_path(file_path, root_path)
        try:
            source = file_path.read_text(encoding="utf-8")
            module = ModuleInfo(file_path, display, source)
        except (SyntaxError, UnicodeDecodeError) as exc:
            line = getattr(exc, "lineno", None) or 1
            result.findings.append(Finding(
                path=display, line=int(line), col=1, code=PARSE_ERROR,
                message=f"file does not parse: {exc}"))
            continue
        result.extend(_lint_module(module, active))
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    result.suppressed.sort(key=lambda s: (s[0].path, s[0].line, s[0].code))
    return result


def _lint_module(module: ModuleInfo, rules: Sequence[Rule]) -> LintResult:
    raw: list[Finding] = []
    for rule in rules:
        if rule.applies_to(module):
            raw.extend(rule.check(module))

    result = LintResult(files_checked=0)
    pragmas_by_line = {p.line: p for p in module.pragmas}
    used_pragma_codes: dict[int, set[str]] = {}
    for finding in raw:
        pragma = pragmas_by_line.get(finding.line)
        if pragma is not None and finding.code in pragma.codes:
            if pragma.justification:
                result.suppressed.append((finding, pragma.justification))
                used_pragma_codes.setdefault(pragma.line, set()).add(finding.code)
                continue
            # unjustified pragma: keep the original finding AND flag the pragma
        result.findings.append(finding)

    for pragma in module.pragmas:
        if not pragma.justification:
            result.findings.append(Finding(
                path=module.display_path, line=pragma.line, col=1,
                code=PRAGMA_MISSING_JUSTIFICATION,
                message=f"suppression allow[{','.join(pragma.codes)}] needs a "
                        f"justification: '# repro: allow[CODE] <why>'"))
            continue
        unused = [c for c in pragma.codes
                  if c not in used_pragma_codes.get(pragma.line, set())]
        if unused:
            result.findings.append(Finding(
                path=module.display_path, line=pragma.line, col=1,
                code=PRAGMA_STALE,
                message=f"stale suppression: allow[{','.join(unused)}] "
                        f"matches no finding on this line"))
    return result


# ----------------------------------------------------------------------
# parsing helpers
# ----------------------------------------------------------------------
def _expand(paths: Iterable[Path | str]) -> list[Path]:
    files: list[Path] = []
    for p in paths:
        path = Path(p)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")
    return files


def _display_path(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _module_name(path: Path) -> str:
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return ".".join(parts[i:])
    return parts[-1] if parts else ""


def _parse_pragmas(source: str) -> tuple[Pragma, ...]:
    """Extract pragmas from real comments only (tokenize, not line regex),
    so pragma syntax quoted in docstrings or messages never registers."""
    import io
    import tokenize

    pragmas = []
    tokens = tokenize.generate_tokens(io.StringIO(source).readline)
    try:
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _PRAGMA_RE.search(tok.string)
            if match is None:
                continue
            codes = tuple(c.strip() for c in match.group("codes").split(",")
                          if c.strip())
            pragmas.append(Pragma(line=tok.start[0], codes=codes,
                                  justification=match.group("why").strip()))
    except tokenize.TokenError:   # truncated file: ast.parse already raised
        pass
    return tuple(pragmas)


def _collect_bindings(tree: ast.Module) -> dict[str, str]:
    """Map local names to dotted import origins, module-wide.

    Position-insensitive by design: rebinding an import name later in
    the module is not modelled (and would itself be questionable style).
    """
    bindings: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                origin = alias.name if alias.asname else alias.name.split(".")[0]
                bindings[local] = origin
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                bindings[local] = f"{node.module}.{alias.name}"
    return bindings


def _type_checking_lines(tree: ast.Module) -> frozenset[int]:
    """Line numbers inside ``if TYPE_CHECKING:`` blocks (typing-only code)."""
    lines: set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        is_tc = (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") or (
            isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING")
        if is_tc:
            for child in node.body:
                end = getattr(child, "end_lineno", child.lineno)
                lines.update(range(child.lineno, end + 1))
    return frozenset(lines)
