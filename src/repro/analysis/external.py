"""Gated wrappers around the external gate tools: mypy and ruff.

The container this library runs in may not ship either tool, so both
wrappers *detect* availability and report a ``skipped`` status instead
of failing — CI (which installs them) passes ``--require-tools`` to turn
a skip into a hard error, keeping local runs usable and the CI gate
strict.

mypy baseline
-------------
``repro.util``, ``repro.press`` and ``repro.obs.events`` are checked
strict with **no** escape hatch; the rest of the tree is gradually
typed, gated by the checked-in ``lint/mypy-baseline.txt``: an error is
tolerated only when a baseline entry (``<glob> :: <error-code-or-*>``)
matches it, and baseline entries can never match the strict modules.
``repro lint --update-baseline`` regenerates the file from the current
tree, so ratcheting the baseline down is one command.
"""

from __future__ import annotations

import importlib.util
import json
import re
import shutil
import subprocess
import sys
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path

from repro.analysis.core import Finding
from repro.util.atomicio import atomic_write_text

__all__ = ["ToolReport", "run_mypy", "run_ruff", "STRICT_MODULE_GLOBS",
           "BASELINE_RELPATH", "MYPY_CONFIG_RELPATH"]

#: Path globs (relative to the repo root) checked strict — never baselined.
STRICT_MODULE_GLOBS = ("src/repro/util/*.py", "src/repro/press/*.py",
                       "src/repro/redundancy/*.py",
                       "src/repro/obs/events.py")

BASELINE_RELPATH = Path("lint") / "mypy-baseline.txt"
MYPY_CONFIG_RELPATH = Path("mypy.ini")

_MYPY_LINE_RE = re.compile(
    r"^(?P<path>[^:]+):(?P<line>\d+)(?::(?P<col>\d+))?:\s*error:\s*"
    r"(?P<msg>.*?)(?:\s+\[(?P<code>[a-z0-9-]+)\])?$")


@dataclass
class ToolReport:
    """Outcome of one external tool invocation."""

    tool: str
    status: str                 # "ok" | "findings" | "skipped" | "error"
    detail: str = ""
    findings: list[Finding] = field(default_factory=list)
    baselined: int = 0

    def to_json(self) -> dict[str, object]:
        return {"tool": self.tool, "status": self.status, "detail": self.detail,
                "baselined": self.baselined,
                "findings": [f.to_json() for f in self.findings]}


def _is_strict_path(path: str) -> bool:
    return any(fnmatch(path, glob) for glob in STRICT_MODULE_GLOBS)


def _load_baseline(root: Path) -> list[tuple[str, str]]:
    baseline_path = root / BASELINE_RELPATH
    entries: list[tuple[str, str]] = []
    if not baseline_path.exists():
        return entries
    for raw in baseline_path.read_text(encoding="utf-8").splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        glob, _, code = line.partition("::")
        entries.append((glob.strip(), code.strip() or "*"))
    return entries


def _baselined(entries: list[tuple[str, str]], finding: Finding) -> bool:
    if _is_strict_path(finding.path):
        return False    # strict modules have no escape hatch
    return any(fnmatch(finding.path, glob) and code in ("*", finding.code)
               for glob, code in entries)


# ----------------------------------------------------------------------
# mypy
# ----------------------------------------------------------------------
def run_mypy(root: Path, *, update_baseline: bool = False,
             timeout_s: float = 600.0) -> ToolReport:
    """Run mypy over ``src/repro`` with the repo config, baseline-filtered."""
    if importlib.util.find_spec("mypy") is None:
        return ToolReport("mypy", "skipped", "mypy is not installed")
    config = root / MYPY_CONFIG_RELPATH
    cmd = [sys.executable, "-m", "mypy", "--config-file", str(config),
           "src/repro"]
    try:
        proc = subprocess.run(cmd, cwd=root, capture_output=True, text=True,
                              timeout=timeout_s)
    except (OSError, subprocess.TimeoutExpired) as exc:
        return ToolReport("mypy", "error", f"failed to run mypy: {exc}")
    if proc.returncode not in (0, 1):   # 2 = usage/config/internal error
        return ToolReport("mypy", "error",
                          (proc.stderr or proc.stdout).strip()[:2000])

    all_findings = _parse_mypy(proc.stdout)
    if update_baseline:
        _write_baseline(root, all_findings)
    entries = _load_baseline(root)
    fresh = [f for f in all_findings if not _baselined(entries, f)]
    baselined = len(all_findings) - len(fresh)
    status = "findings" if fresh else "ok"
    return ToolReport("mypy", status,
                      f"{len(fresh)} error(s), {baselined} baselined",
                      findings=fresh, baselined=baselined)


def _parse_mypy(stdout: str) -> list[Finding]:
    findings = []
    for line in stdout.splitlines():
        match = _MYPY_LINE_RE.match(line.strip())
        if match is None:
            continue
        findings.append(Finding(
            path=Path(match.group("path")).as_posix(),
            line=int(match.group("line")),
            col=int(match.group("col") or 1),
            code=match.group("code") or "error",
            message=match.group("msg"),
            tool="mypy"))
    return findings


def _write_baseline(root: Path, findings: list[Finding]) -> None:
    """Regenerate the baseline from the current tree (strict paths excluded)."""
    keys = sorted({f"{f.path} :: {f.code}" for f in findings
                   if not _is_strict_path(f.path)})
    header = (
        "# mypy baseline — errors tolerated in gradually-typed modules.\n"
        "# Format: <path glob> :: <mypy error code, or *>.\n"
        "# Strict modules (repro.util, repro.press, repro.obs.events) can\n"
        "# never be baselined.  Regenerate: repro lint --all --update-baseline\n")
    atomic_write_text(root / BASELINE_RELPATH, header + "\n".join(keys) + "\n")


# ----------------------------------------------------------------------
# ruff
# ----------------------------------------------------------------------
def run_ruff(root: Path, *, timeout_s: float = 300.0) -> ToolReport:
    """Run ruff over ``src/repro`` with the repo's pyproject config."""
    exe = shutil.which("ruff")
    if exe is not None:
        cmd = [exe, "check", "--output-format", "json", "src/repro"]
    elif importlib.util.find_spec("ruff") is not None:
        cmd = [sys.executable, "-m", "ruff", "check",
               "--output-format", "json", "src/repro"]
    else:
        return ToolReport("ruff", "skipped", "ruff is not installed")
    try:
        proc = subprocess.run(cmd, cwd=root, capture_output=True, text=True,
                              timeout=timeout_s)
    except (OSError, subprocess.TimeoutExpired) as exc:
        return ToolReport("ruff", "error", f"failed to run ruff: {exc}")
    if proc.returncode not in (0, 1):
        return ToolReport("ruff", "error",
                          (proc.stderr or proc.stdout).strip()[:2000])
    try:
        raw = json.loads(proc.stdout or "[]")
    except json.JSONDecodeError as exc:
        return ToolReport("ruff", "error", f"unparseable ruff output: {exc}")
    findings = [Finding(
        path=_relative_to(Path(item["filename"]), root),
        line=int(item["location"]["row"]),
        col=int(item["location"]["column"]),
        code=str(item.get("code") or "ruff"),
        message=str(item["message"]),
        tool="ruff") for item in raw]
    status = "findings" if findings else "ok"
    return ToolReport("ruff", status, f"{len(findings)} finding(s)",
                      findings=findings)


def _relative_to(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()
