"""The initial rule pack: the simulator's real invariants, one rule each.

Scopes use dotted module prefixes.  "Kernel" modules — the ones whose
behaviour must be a pure function of the seed — are ``repro.sim``,
``repro.disk``, ``repro.press``, ``repro.policies`` and ``repro.faults``;
"artifact" modules — the ones that persist results — are
``repro.experiments``, ``repro.obs`` and ``repro.workload``.

Every rule here is a heuristic over the AST, not a type checker: the
point is to catch the *pattern* early and force either a fix or a
justified ``# repro: allow[CODE]`` pragma that documents why the
pattern is safe at that site.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleInfo, Rule, register

__all__ = ["KERNEL_SCOPE", "ARTIFACT_SCOPE", "LAYER_CONTRACT"]

#: Modules whose behaviour must be a pure function of the seed.
KERNEL_SCOPE = ("repro.sim", "repro.disk", "repro.press",
                "repro.policies", "repro.faults", "repro.redundancy")

#: Modules that persist artifacts and must do so crash-safely.
ARTIFACT_SCOPE = ("repro.experiments", "repro.obs", "repro.workload")


def _call_name(module: ModuleInfo, node: ast.Call) -> str | None:
    return module.resolve(node.func)


# ----------------------------------------------------------------------
# DET001 — no unseeded / global-state RNG in kernel code
# ----------------------------------------------------------------------
_NP_RANDOM_ALLOWED = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})


@register
class NoGlobalRng(Rule):
    """Kernel randomness must flow from an explicit, seeded Generator."""

    code = "DET001"
    name = "no-global-rng"
    description = ("kernel code must not draw from process-global RNG state "
                   "(`random.*`, `np.random.<fn>`); take a seeded "
                   "`np.random.Generator` (see repro.util.rngtools) instead")
    scope = KERNEL_SCOPE

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            origin = module.resolve(node)
            if origin is None:
                continue
            if origin.startswith("random.") and origin != "random.Random":
                yield self.finding(module, node,
                                   f"global-state RNG `{origin}`: use a seeded "
                                   f"np.random.Generator (repro.util.rngtools)")
            elif origin.startswith(("numpy.random.", "np.random.")):
                fn = origin.split(".")[2] if origin.count(".") >= 2 else ""
                if fn and fn not in _NP_RANDOM_ALLOWED:
                    yield self.finding(module, node,
                                       f"module-level numpy RNG `{origin}`: use a "
                                       f"seeded np.random.Generator instead")


# ----------------------------------------------------------------------
# DET002 — no wall-clock / locale / environment reads in kernel code
# ----------------------------------------------------------------------
_WALL_CLOCK_ORIGINS = frozenset({
    "time.time", "time.time_ns", "time.localtime", "time.gmtime",
    "time.ctime", "time.strftime", "time.asctime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "os.environ", "os.getenv", "os.environb",
    "locale.getlocale", "locale.setlocale", "locale.getpreferredencoding",
})


@register
class NoWallClock(Rule):
    """Simulated time is the only clock; config is the only env reader.

    ``time.perf_counter``/``time.monotonic`` stay allowed: they feed
    telemetry (events/sec, profiling) that simulation *results* never
    depend on.
    """

    code = "DET002"
    name = "no-wall-clock"
    description = ("kernel code must not read wall clocks, locale, or the "
                   "environment (`time.time`, `datetime.now`, `os.environ`); "
                   "simulated time and explicit config are the only inputs")
    scope = KERNEL_SCOPE

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            origin = module.resolve(node)
            if origin in _WALL_CLOCK_ORIGINS:
                yield self.finding(module, node,
                                   f"non-deterministic input `{origin}` in "
                                   f"simulation code")


# ----------------------------------------------------------------------
# DET003 — no unordered iteration feeding ordered outputs
# ----------------------------------------------------------------------
@register
class NoUnorderedIteration(Rule):
    """Iteration order must be explicit wherever output order matters.

    Set iteration order depends on ``PYTHONHASHSEED`` for str keys, and
    ``.keys()`` hides whether insertion order is load-bearing — iterate
    the dict itself (insertion order, deterministic) or ``sorted(...)``.
    """

    code = "DET003"
    name = "no-unordered-iteration"
    description = ("kernel/export code must not iterate sets or `.keys()` "
                   "views; iterate the dict itself or wrap in `sorted(...)` "
                   "so ordering intent is explicit")
    scope = KERNEL_SCOPE + ARTIFACT_SCOPE + ("repro.core",)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            iters: list[ast.expr] = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for expr in iters:
                offender = self._offender(module, expr)
                if offender is not None:
                    yield offender

    def _offender(self, module: ModuleInfo, expr: ast.expr) -> Finding | None:
        """First unordered construct in ``expr`` not washed by sorted()."""
        if isinstance(expr, ast.Call):
            origin = _call_name(module, expr)
            if origin in ("sorted", "min", "max"):
                return None  # order-insensitive consumer downstream
            if origin in ("set", "frozenset"):
                return self.finding(module, expr,
                                    f"iterating `{origin}(...)`: set order is "
                                    f"hash-dependent; wrap in sorted(...)")
            if (isinstance(expr.func, ast.Attribute)
                    and expr.func.attr == "keys" and not expr.args):
                return self.finding(module, expr,
                                    "iterating `.keys()`: iterate the dict "
                                    "itself (insertion order) or sorted(...) "
                                    "to make ordering intent explicit")
            for child in ast.iter_child_nodes(expr):
                found = self._offender_child(module, child)
                if found is not None:
                    return found
            return None
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return self.finding(module, expr,
                                "iterating a set: order is hash-dependent; "
                                "use a list/tuple or sorted(...)")
        for child in ast.iter_child_nodes(expr):
            found = self._offender_child(module, child)
            if found is not None:
                return found
        return None

    def _offender_child(self, module: ModuleInfo, child: ast.AST) -> Finding | None:
        if isinstance(child, ast.expr):
            return self._offender(module, child)
        return None


# ----------------------------------------------------------------------
# IO001 — artifact writes must go through repro.util.atomicio
# ----------------------------------------------------------------------
_RAW_WRITERS = frozenset({
    "pickle.dump", "json.dump", "numpy.save", "numpy.savez",
    "numpy.savez_compressed", "numpy.savetxt", "np.save", "np.savez",
    "np.savez_compressed", "np.savetxt", "shutil.copyfile", "shutil.copy",
})
_WRITE_MODE_CHARS = frozenset("wax+")


@register
class AtomicArtifactWrites(Rule):
    """A killed process must never leave a torn artifact behind."""

    code = "IO001"
    name = "atomic-artifact-writes"
    description = ("artifact modules must publish files via "
                   "repro.util.atomicio (atomic replace + quarantine), not "
                   "raw `open(.., 'w')`/`pickle.dump`/`np.save`")
    scope = ARTIFACT_SCOPE
    exempt = ("repro.util.atomicio",)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = _call_name(module, node)
            if origin in _RAW_WRITERS:
                yield self.finding(module, node,
                                   f"raw `{origin}` write: publish through "
                                   f"repro.util.atomicio so readers never see "
                                   f"a torn file")
                continue
            if isinstance(node.func, ast.Attribute) and node.func.attr in (
                    "write_text", "write_bytes"):
                yield self.finding(module, node,
                                   f"raw `.{node.func.attr}()` write: use "
                                   f"repro.util.atomicio.atomic_write_*")
                continue
            mode = self._open_mode(module, node, origin)
            if mode is not None and _WRITE_MODE_CHARS & set(mode):
                yield self.finding(module, node,
                                   f"raw `open(.., {mode!r})`: write to a "
                                   f"buffer and publish via repro.util."
                                   f"atomicio, or justify with a pragma")

    @staticmethod
    def _open_mode(module: ModuleInfo, node: ast.Call,
                   origin: str | None) -> str | None:
        """Literal mode string of an open() / Path.open() call, if any."""
        if origin == "open":
            mode_arg = node.args[1] if len(node.args) > 1 else None
        elif isinstance(node.func, ast.Attribute) and node.func.attr == "open":
            mode_arg = node.args[0] if node.args else None
        else:
            return None
        for kw in node.keywords:
            if kw.arg == "mode":
                mode_arg = kw.value
        if isinstance(mode_arg, ast.Constant) and isinstance(mode_arg.value, str):
            return mode_arg.value
        return None


# ----------------------------------------------------------------------
# OBS001 — TraceBus.emit only with registered event names
# ----------------------------------------------------------------------
@register
class RegisteredEventsOnly(Rule):
    """The event taxonomy is closed: consumers key on it, exports sort by it."""

    code = "OBS001"
    name = "registered-events-only"
    description = ("`.emit(...)` must name its event via a repro.obs.events "
                   "constant (or a literal registered there); ad-hoc strings "
                   "silently fall out of every consumer")
    scope = ("repro",)

    def __init__(self) -> None:
        from repro.obs import events as _events

        self._registered_values = set(_events.ALL_EVENT_TYPES)
        self._registered_names = {
            name for name in dir(_events)
            if name.isupper() and isinstance(getattr(_events, name), str)
            and getattr(_events, name) in self._registered_values}

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "emit" and node.args):
                continue
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                if arg.value not in self._registered_values:
                    yield self.finding(module, node,
                                       f"emit of unregistered event "
                                       f"{arg.value!r}: add it to "
                                       f"repro.obs.events first")
                continue
            origin = module.resolve(arg)
            if origin is not None and origin.startswith("repro.obs.events."):
                const = origin.rsplit(".", 1)[1]
                if const not in self._registered_names:
                    yield self.finding(module, node,
                                       f"emit of unknown taxonomy constant "
                                       f"`{const}`")
                continue
            yield self.finding(module, node,
                               "emit with a dynamic event type: pass a "
                               "repro.obs.events constant (or pragma-justify "
                               "the forwarding site)")


# ----------------------------------------------------------------------
# NUM001 — no float equality in kernel code
# ----------------------------------------------------------------------
_FLOAT_SUFFIXES = ("_s", "_c", "_mb", "_ms", "_kwh", "_pct", "_percent",
                   "_ratio", "_rate", "_frac", "_fraction", "_afr", "_w", "_j")
_FLOAT_CONST_ORIGINS = frozenset({"math.inf", "math.nan", "math.pi", "math.e",
                                  "numpy.inf", "numpy.nan", "np.inf", "np.nan"})


@register
class NoFloatEquality(Rule):
    """Two independently computed floats are never reliably equal.

    The heuristic calls an operand "float-like" when it is a float
    literal, ``float(...)``, ``math.inf``/``nan``, or an identifier with
    one of the codebase's unit suffixes (``_s``, ``_c``, ``_mb``, ...).
    Exact comparison of a *propagated* value (same object written then
    read back) is legitimate — pragma those sites.
    """

    code = "NUM001"
    name = "no-float-equality"
    description = ("`==`/`!=` between floats in kernel code: use "
                   "math.isclose/np.isclose or an explicit tolerance; "
                   "pragma sites comparing a propagated exact value")
    scope = ("repro.sim", "repro.press", "repro.disk",
             "repro.experiments.costmodel")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[i], operands[i + 1]
                if self._floatish(module, left) or self._floatish(module, right):
                    yield self.finding(module, node,
                                       "float equality: use math.isclose / an "
                                       "explicit tolerance, or pragma if the "
                                       "value is propagated exactly")
                    break   # one finding per comparison chain

    @staticmethod
    def _floatish(module: ModuleInfo, node: ast.expr) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.Call):
            return module.resolve(node.func) == "float"
        if isinstance(node, ast.UnaryOp):
            return NoFloatEquality._floatish(module, node.operand)
        ident: str | None = None
        if isinstance(node, ast.Name):
            ident = node.id
        elif isinstance(node, ast.Attribute):
            origin = module.resolve(node)
            if origin in _FLOAT_CONST_ORIGINS:
                return True
            ident = node.attr
        return ident is not None and ident.endswith(_FLOAT_SUFFIXES)


# ----------------------------------------------------------------------
# NUM002 — no per-element Python loops over SoA buffers in hot modules
# ----------------------------------------------------------------------
#: The struct-of-arrays buffer attributes of repro.disk.state.ArrayState.
_SOA_BUFFER_NAMES = frozenset({
    "energy_time_s", "energy_j", "temp_c", "thermal_integral_c_s",
    "thermal_elapsed_s", "mb_served", "requests_served",
    "internal_jobs_served", "speed_transitions", "queue_depth",
    "speed_code", "phase_code", "start_time_s", "backlog_mb",
})


@register
class NoScalarLoopsOverSoA(Rule):
    """SoA buffers exist to be operated on whole; a Python ``for`` over
    one silently re-introduces the per-element interpreter cost the
    layout was built to remove.

    The heuristic flags loops/comprehensions whose *iterated expression*
    mentions an :class:`~repro.disk.state.ArrayState` buffer attribute
    (directly, or via ``enumerate``/``zip``/``range(len(...))``), and
    any iterated ``.tolist()`` call (the buffer-to-Python-list escape
    hatch).  Deliberate scalar reductions — e.g. summing in the object
    backend's exact order for bit-identity — are pragma sites.
    """

    code = "NUM002"
    name = "no-scalar-loops-over-soa"
    description = ("per-element Python loop over a struct-of-arrays buffer "
                   "in a hot module: use a vectorized NumPy expression, or "
                   "pragma-justify (e.g. bit-identity reduction order)")
    scope = ("repro.sim", "repro.disk")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            iters: list[ast.expr] = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for expr in iters:
                found = self._offender(module, expr)
                if found is not None:
                    yield found
                    break   # one finding per loop

    def _offender(self, module: ModuleInfo, expr: ast.expr) -> Finding | None:
        for sub in ast.walk(expr):
            if (isinstance(sub, ast.Attribute)
                    and sub.attr in _SOA_BUFFER_NAMES):
                return self.finding(module, expr,
                                    f"Python loop over SoA buffer "
                                    f"`.{sub.attr}`: vectorize with a NumPy "
                                    f"expression or pragma-justify")
            if (isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "tolist"):
                return self.finding(module, expr,
                                    "`.tolist()` feeding a Python loop: "
                                    "vectorize, or pragma-justify a "
                                    "deliberate scalar reduction")
        return None


# ----------------------------------------------------------------------
# ARCH001 — cross-module import layering
# ----------------------------------------------------------------------
#: Allowed intra-``repro`` dependencies per subpackage.  Root modules
#: (``repro.cli``, ``repro.__main__``, the package ``__init__``) sit on
#: top and may import anything.  ``if TYPE_CHECKING:`` imports are
#: ignored — typing-only cycles carry no runtime coupling.
LAYER_CONTRACT: dict[str, frozenset[str]] = {
    "util": frozenset(),
    "sim": frozenset({"util"}),
    "workload": frozenset({"util"}),
    "obs": frozenset({"util", "sim"}),
    "disk": frozenset({"util", "sim", "obs", "workload"}),
    "press": frozenset({"util", "disk"}),
    "policies": frozenset({"util", "sim", "disk", "obs", "workload"}),
    "core": frozenset({"util", "sim", "disk", "policies", "workload"}),
    "redundancy": frozenset({"util", "press"}),
    "faults": frozenset({"util", "sim", "disk", "press", "policies",
                         "obs", "workload", "redundancy"}),
    "experiments": frozenset({"util", "sim", "disk", "press", "policies",
                              "obs", "workload", "faults", "core",
                              "redundancy"}),
    "analysis": frozenset({"util", "obs"}),
}


@register
class ImportLayering(Rule):
    """The dependency DAG is part of the architecture; keep it acyclic."""

    code = "ARCH001"
    name = "import-layering"
    description = ("intra-repro imports must respect the declared layer "
                   "contract (e.g. repro.sim must not import "
                   "repro.experiments); see LAYER_CONTRACT in "
                   "repro.analysis.rules")
    scope = ("repro",)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        parts = module.package_parts
        if len(parts) < 2:
            return   # repro.__init__ / repro.cli / repro.__main__: top layer
        own = parts[1]
        allowed = LAYER_CONTRACT.get(own)
        if allowed is None:
            return   # unknown subpackage: contract does not cover it yet
        for node in ast.walk(module.tree):
            targets: list[tuple[ast.AST, str]] = []
            if isinstance(node, ast.Import):
                targets = [(node, alias.name) for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                targets = [(node, node.module)]
            for site, name in targets:
                if not (name == "repro" or name.startswith("repro.")):
                    continue
                if module.is_type_checking_line(site.lineno):
                    continue
                dep = name.split(".")[1] if "." in name else ""
                if dep in ("", own):
                    continue   # bare package / sibling in the same layer
                if dep in ("cli", "__main__"):
                    yield self.finding(module, site,
                                       f"layer `{own}` must not import the "
                                       f"CLI layer (`{name}`)")
                elif dep in LAYER_CONTRACT and dep not in allowed:
                    yield self.finding(module, site,
                                       f"layer `{own}` must not import "
                                       f"`repro.{dep}` (allowed: "
                                       f"{', '.join(sorted(allowed)) or 'none'})")
