"""The ``repro lint`` command (also ``python -m repro.analysis``).

Output contract (ROADMAP item 5, JSON-first CLI):

* stdout carries the *results* — human-readable finding lines, or one
  JSON document with ``--json``;
* stderr carries the *logs* — per-tool status, summary counts;
* the exit code is the machine answer: **0** clean, **1** findings,
  **2** usage or internal error (a skipped external tool is also 2
  under ``--require-tools``, which CI sets).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.core import all_rules, lint_paths
from repro.analysis.external import ToolReport, run_mypy, run_ruff

__all__ = ["add_lint_arguments", "build_parser", "main", "run_lint"]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to ``parser`` (shared with ``repro lint``)."""
    parser.add_argument("paths", nargs="*", metavar="PATH",
                        help="files/directories to lint "
                             "(default: the repro source tree)")
    parser.add_argument("--all", action="store_true", dest="run_all",
                        help="also run the external tools (mypy with the "
                             "checked-in baseline, ruff) — the full CI gate")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="one machine-readable JSON document on stdout")
    parser.add_argument("--rules", default=None, metavar="CODES",
                        help="comma-separated rule codes to run "
                             "(default: every registered rule)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--update-baseline", action="store_true",
                        help="with --all: regenerate lint/mypy-baseline.txt "
                             "from the current tree")
    parser.add_argument("--require-tools", action="store_true",
                        help="treat a missing external tool as an error "
                             "instead of a skip (CI sets this)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="determinism & invariant static analysis for the "
                    "repro source tree (exit 0 clean / 1 findings / 2 error)")
    add_lint_arguments(parser)
    return parser


def _repo_root() -> Path:
    """Repository root for a ``PYTHONPATH=src`` checkout, else the cwd."""
    package_dir = Path(__file__).resolve().parents[1]      # .../src/repro
    candidate = package_dir.parents[1]
    if (candidate / "pyproject.toml").exists():
        return candidate
    return Path.cwd()


def _default_paths() -> list[Path]:
    return [Path(__file__).resolve().parents[1]]


def _select_rules(spec: str | None) -> list:
    rules = all_rules()
    if spec is None:
        return rules
    wanted = {code.strip().upper() for code in spec.split(",") if code.strip()}
    known = {r.code for r in rules}
    unknown = wanted - known
    if unknown:
        raise ValueError(f"unknown rule code(s): {', '.join(sorted(unknown))}; "
                         f"known: {', '.join(sorted(known))}")
    return [r for r in rules if r.code in wanted]


def run_lint(args: argparse.Namespace) -> int:
    """Execute the lint described by parsed ``args``; returns the exit code."""
    log = sys.stderr
    if args.list_rules:
        for rule in all_rules():
            scope = ", ".join(rule.scope) or "repro.*"
            print(f"{rule.code}  {rule.name}\n    {rule.description}\n"
                  f"    scope: {scope}")
        return EXIT_CLEAN

    rules = _select_rules(args.rules)
    root = _repo_root()
    paths = [Path(p) for p in args.paths] if args.paths else _default_paths()
    result = lint_paths(paths, rules=rules, root=root)

    reports: list[ToolReport] = []
    if args.run_all:
        reports.append(run_mypy(root, update_baseline=args.update_baseline))
        reports.append(run_ruff(root))
    elif args.update_baseline:
        raise ValueError("--update-baseline requires --all (it runs mypy)")

    tool_findings = [f for r in reports for f in r.findings]
    findings = result.findings + tool_findings
    skipped = [r for r in reports if r.status == "skipped"]
    errored = [r for r in reports if r.status == "error"]

    for report in reports:
        print(f"[{report.tool}] {report.status}: {report.detail}", file=log)
    print(f"checked {result.files_checked} file(s): "
          f"{len(findings)} finding(s), {len(result.suppressed)} suppressed",
          file=log)

    if args.as_json:
        doc = {
            "version": 1,
            "files_checked": result.files_checked,
            "findings": [f.to_json() for f in findings],
            "suppressed": [
                {**f.to_json(), "justification": why}
                for f, why in result.suppressed],
            "tools": [r.to_json() for r in reports],
            "clean": not findings,
        }
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        for finding in findings:
            print(finding.render())

    if errored or (skipped and args.require_tools):
        for report in errored:
            print(f"error: {report.tool}: {report.detail}", file=log)
        for report in skipped:
            if args.require_tools:
                print(f"error: {report.tool} required but not installed",
                      file=log)
        return EXIT_ERROR
    return EXIT_FINDINGS if findings else EXIT_CLEAN


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return run_lint(args)
    except (ValueError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
