"""``python -m repro.analysis`` — the lint engine without the console script."""

import sys

from repro.analysis.cli import main

if __name__ == "__main__":
    sys.exit(main())
