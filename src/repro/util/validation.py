"""Small argument-validation helpers.

Raising early with a precise message is cheaper than debugging a silent
NaN three subsystems later; every public constructor in the library
validates through these helpers so the error style is uniform.
"""

from __future__ import annotations

import math
from typing import Any


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError(message)`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def _is_finite_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool) and math.isfinite(value)


def require_positive(value: float, name: str) -> float:
    """Validate that ``value`` is a finite number strictly greater than zero."""
    # fast path for the overwhelmingly common case (plain float, hot loops)
    if value.__class__ is float and 0.0 < value < math.inf:
        return value
    if not _is_finite_number(value) or value <= 0:
        raise ValueError(f"{name} must be a finite number > 0, got {value!r}")
    return float(value)


def require_non_negative(value: float, name: str) -> float:
    """Validate that ``value`` is a finite number greater than or equal to zero."""
    if value.__class__ is float and 0.0 <= value < math.inf:
        return value
    if not _is_finite_number(value) or value < 0:
        raise ValueError(f"{name} must be a finite number >= 0, got {value!r}")
    return float(value)


def require_in_range(value: float, low: float, high: float, name: str) -> float:
    """Validate that ``value`` lies in the closed interval ``[low, high]``."""
    if not _is_finite_number(value) or not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    return float(value)


def require_fraction(value: float, name: str) -> float:
    """Validate that ``value`` is a fraction in ``[0, 1]``."""
    return require_in_range(value, 0.0, 1.0, name)
