"""Deterministic random-number-generator plumbing.

Every stochastic component (workload generators, policies that break ties
randomly, failure-injection tests) takes either an integer seed or an
existing :class:`numpy.random.Generator`.  Centralizing the coercion here
keeps experiments reproducible: the same seed always yields the same
simulation, which the paper's methodology (same trace replayed against
each policy) depends on.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def rng_from(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` yields a fresh OS-entropy generator; an integer yields a
    PCG64 generator seeded with it; an existing generator passes through
    untouched (shared mutable state — intentional for sequential reuse).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from one seed.

    Uses :meth:`numpy.random.Generator.spawn` so children are
    statistically independent streams; handy when one experiment needs a
    separate stream per disk or per workload phase without correlated
    draws.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    return list(rng_from(seed).spawn(n))


def fixed_seed_sequence(base_seed: int, labels: Sequence[str]) -> dict[str, np.random.Generator]:
    """Map each label to a generator derived from ``(base_seed, label)``.

    Unlike :func:`spawn_rngs` this is order-insensitive: adding a new
    label never reshuffles the streams of existing labels, which keeps
    long-lived experiment configs stable across library versions.  The
    label is folded in with SHA-256 (not ``hash``, which is salted per
    process and would break cross-run determinism).
    """
    import hashlib

    out: dict[str, np.random.Generator] = {}
    for label in labels:
        material = f"{base_seed}:{label}".encode()
        digest = int.from_bytes(hashlib.sha256(material).digest()[:8], "little")
        out[label] = np.random.default_rng(digest)
    return out
