"""Crash-safe filesystem primitives: atomic publication and quarantine.

Every artifact the toolkit persists (workload cache entries, sweep
checkpoints, traces, time-series, reports) goes through one of these
helpers so a killed process can never leave a half-written file where a
reader expects a whole one:

* **atomic publication** — content is written to a uniquely-named
  temporary file *in the target directory* (same filesystem, so the
  final :func:`os.replace` is atomic on POSIX and Windows) and only
  renamed onto the destination once fully flushed;
* **quarantine** — a file that turns out to be corrupt (truncated
  pickle, damaged npz, bad checkpoint) is renamed aside with a marker
  suffix instead of deleted, so the operator can inspect it while every
  subsequent run regenerates cleanly.

The helpers never fsync: the contract is "no torn files", not
"durability across power loss" — simulation artifacts are always
recomputable from their seeds.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Union

__all__ = ["atomic_write_bytes", "atomic_write_text", "quarantine",
           "CORRUPT_SUFFIX", "PARTIAL_SUFFIX"]

PathLike = Union[str, "os.PathLike[str]"]

#: Suffix appended to files set aside because their content is damaged.
CORRUPT_SUFFIX = ".corrupt"
#: Suffix appended to files set aside because a writer died mid-stream.
PARTIAL_SUFFIX = ".partial"


def atomic_write_bytes(path: PathLike, data: bytes) -> Path:
    """Write ``data`` to ``path`` atomically; returns the final path.

    Readers never observe a partial file: they see either the previous
    content or the new content.  The parent directory is created if
    missing.  On any failure the temporary file is removed and the
    destination is left untouched.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=target.parent,
                                    prefix=target.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return target


def atomic_write_text(path: PathLike, text: str, *,
                      encoding: str = "utf-8") -> Path:
    """Text-mode companion of :func:`atomic_write_bytes`."""
    return atomic_write_bytes(path, text.encode(encoding))


def quarantine(path: PathLike, *, suffix: str = CORRUPT_SUFFIX) -> Path | None:
    """Rename a damaged file aside (``<name><suffix>``) instead of deleting.

    Returns the quarantine path, or ``None`` when the file could not be
    moved (already gone, or the directory is read-only) — quarantining
    is best-effort and must never mask the recovery that follows it.
    An earlier quarantine of the same name is overwritten: the newest
    corpse is the interesting one.
    """
    source = Path(path)
    target = source.with_name(source.name + suffix)
    try:
        os.replace(source, target)
    except OSError:
        return None
    return target
