"""Plain-text tables: the aligned output every CLI surface prints.

Lives in :mod:`repro.util` because both the low-level telemetry rollups
(:mod:`repro.obs.summarize`) and the experiment harness render through
it — it must sit below both layers (ARCH001).  The historical import
path :mod:`repro.experiments.reporting` re-exports everything here.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np
import numpy.typing as npt

from repro.util.validation import require

__all__ = ["format_table", "format_series", "format_improvement"]


def format_table(rows: Sequence[Mapping[str, object]], *,
                 title: str | None = None) -> str:
    """Render dict-rows as an aligned text table (union of keys, in
    first-seen order)."""
    require(len(rows) >= 1, "need at least one row")
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    cells = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in cells)) for i, col in enumerate(columns)]

    def line(values: Sequence[str]) -> str:
        return "  ".join(v.rjust(w) for v, w in zip(values, widths))

    out: list[str] = []
    if title:
        out.append(title)
    out.append(line(columns))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(r) for r in cells)
    return "\n".join(out)


def format_series(x: npt.ArrayLike, series: Mapping[str, npt.ArrayLike], *,
                  x_label: str, title: str | None = None,
                  fmt: str = "{:.4g}") -> str:
    """Render one x-axis with named y-series as an aligned table."""
    xs = np.asarray(x)
    require(xs.ndim == 1 and xs.size >= 1, "x must be a non-empty 1-D array")
    for name, ys in series.items():
        require(np.asarray(ys).shape == xs.shape,
                f"series {name!r} must match the x axis shape")
    rows: list[dict[str, object]] = []
    for i, xv in enumerate(xs):
        row: dict[str, object] = {x_label: fmt.format(float(xv))}
        for name, ys in series.items():
            row[name] = fmt.format(float(np.asarray(ys)[i]))
        rows.append(row)
    return format_table(rows, title=title)


def format_improvement(base_name: str, base: npt.ArrayLike,
                       other_name: str, other: npt.ArrayLike) -> str:
    """One-line summary: mean / max percentage improvement of base vs other.

    Positive numbers mean ``base`` is lower (better, for AFR / energy /
    response time) than ``other`` — matching the paper's phrasing
    "READ ... improvement compared with MAID".
    """
    b = np.asarray(base, dtype=np.float64)
    o = np.asarray(other, dtype=np.float64)
    require(b.shape == o.shape and b.size >= 1, "series must align")
    require(bool(np.all(o > 0)), "reference series must be positive")
    rel = (o - b) / o * 100.0
    return (f"{base_name} vs {other_name}: mean {rel.mean():+.1f}%, "
            f"best {rel.max():+.1f}%, worst {rel.min():+.1f}%")


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
