"""Shared utilities: unit conversions, argument validation, RNG helpers.

These are deliberately tiny, dependency-free building blocks used across
every other subpackage.  Nothing in here knows about disks, workloads, or
reliability models.
"""

from repro.util.units import (
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    SECONDS_PER_YEAR,
    JOULES_PER_KWH,
    celsius_to_kelvin,
    kelvin_to_celsius,
    joules_to_kwh,
    kwh_to_joules,
    mb_to_bytes,
    bytes_to_mb,
    per_day_to_per_month,
    per_month_to_per_day,
)
from repro.util.validation import (
    require,
    require_positive,
    require_non_negative,
    require_in_range,
    require_fraction,
)
from repro.util.rngtools import rng_from, spawn_rngs

__all__ = [
    "SECONDS_PER_DAY",
    "SECONDS_PER_HOUR",
    "SECONDS_PER_YEAR",
    "JOULES_PER_KWH",
    "celsius_to_kelvin",
    "kelvin_to_celsius",
    "joules_to_kwh",
    "kwh_to_joules",
    "mb_to_bytes",
    "bytes_to_mb",
    "per_day_to_per_month",
    "per_month_to_per_day",
    "require",
    "require_positive",
    "require_non_negative",
    "require_in_range",
    "require_fraction",
    "rng_from",
    "spawn_rngs",
]
