"""Unit conversions used throughout the simulator and reliability models.

The simulator's canonical units are:

* time        — seconds (floats)
* energy      — joules
* power       — watts
* data size   — megabytes (MB, 10**6 bytes, matching disk datasheets)
* temperature — degrees Celsius externally, Kelvin inside the Arrhenius
  equation (the paper uses ``273.16 + C``; we keep that constant for
  bit-compatibility with the published numbers even though 273.15 is the
  modern value)
"""

from __future__ import annotations

SECONDS_PER_HOUR: float = 3600.0
SECONDS_PER_DAY: float = 86400.0
#: Julian year, the convention disk datasheets use for "annualized" rates.
SECONDS_PER_YEAR: float = 365.25 * SECONDS_PER_DAY
DAYS_PER_MONTH: float = 30.0
JOULES_PER_KWH: float = 3.6e6
BYTES_PER_MB: float = 1.0e6

#: Celsius -> Kelvin offset as printed in the paper (Sec. 3.4).
PAPER_KELVIN_OFFSET: float = 273.16


def celsius_to_kelvin(celsius: float) -> float:
    """Convert degrees Celsius to Kelvin using the paper's 273.16 offset."""
    return celsius + PAPER_KELVIN_OFFSET


def kelvin_to_celsius(kelvin: float) -> float:
    """Convert Kelvin to degrees Celsius using the paper's 273.16 offset."""
    return kelvin - PAPER_KELVIN_OFFSET


def joules_to_kwh(joules: float) -> float:
    """Convert joules to kilowatt-hours."""
    return joules / JOULES_PER_KWH


def kwh_to_joules(kwh: float) -> float:
    """Convert kilowatt-hours to joules."""
    return kwh * JOULES_PER_KWH


def mb_to_bytes(mb: float) -> float:
    """Convert megabytes (10**6 bytes, datasheet convention) to bytes."""
    return mb * BYTES_PER_MB


def bytes_to_mb(nbytes: float) -> float:
    """Convert bytes to megabytes (10**6 bytes, datasheet convention)."""
    return nbytes / BYTES_PER_MB


def per_day_to_per_month(rate_per_day: float) -> float:
    """Convert an event rate from per-day to per-month (30-day month).

    IDEMA's start/stop adder is tabulated per month while the paper's
    frequency-reliability function uses per-day; both conversions share
    this 30-day convention (Sec. 3.4).
    """
    return rate_per_day * DAYS_PER_MONTH


def per_month_to_per_day(rate_per_month: float) -> float:
    """Convert an event rate from per-month to per-day (30-day month)."""
    return rate_per_month / DAYS_PER_MONTH
