"""Open accounting ledgers: deferred end-of-run closes for sharded runs.

A drive's energy/thermal/stats ledgers are exact up to its *last
accounting edge* (``TwoSpeedDrive._account`` runs on every dispatch,
completion, and transition).  A normal run then calls
:meth:`TwoSpeedDrive.finalize`, which charges the final interval from
that edge to ``sim.now`` in one step.

A *sharded* run (``repro.experiments.shard``) cannot do that: each
shard's sub-simulation stops at its own local end time, but the merged
result must account every disk up to the **global** end time — the
maximum over all shards — exactly as the unsharded simulation would
have.  Critically, the unsharded run closes each disk's ledgers from
its last edge to the global end in *one* ``accumulate``/``advance``
call, so a shard worker must not finalize locally and extend later
(two exponential thermal steps are not bit-identical to one).

The solution is the :class:`OpenDiskLedger`: a picklable capture of a
drive's raw accumulator state *before* the final flush, plus the power
state and thermal steady target that were open at capture.  The merge
step calls :meth:`OpenDiskLedger.close` with the global end time; its
arithmetic mirrors :meth:`EnergyMeter.accumulate` and
:meth:`ThermalModel.advance` float-op for float-op, so a closed ledger
equals the unsharded drive's finalized ledgers bit-for-bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.disk.energy import DiskPowerState
from repro.util.validation import require

__all__ = ["OpenDiskLedger", "ClosedDiskLedger"]

_STATES = tuple(DiskPowerState)
_ACTIVE_LOW_IDX = _STATES.index(DiskPowerState.ACTIVE_LOW)
_ACTIVE_HIGH_IDX = _STATES.index(DiskPowerState.ACTIVE_HIGH)


@dataclass(frozen=True, slots=True)
class ClosedDiskLedger:
    """One disk's ledgers, accounted up to a chosen end time.

    Field and property arithmetic mirror the live ledger objects
    (:class:`~repro.disk.energy.EnergyMeter`,
    :class:`~repro.disk.thermal.ThermalModel`,
    :class:`~repro.disk.stats.DiskStats`) so downstream consumers (PRESS
    scoring, energy breakdowns) read identical values either way.
    """

    disk_id: int
    #: Per power state, in :class:`DiskPowerState` definition order.
    time_s: tuple[float, ...]
    energy_j: tuple[float, ...]
    temperature_c: float
    integral_c_s: float
    elapsed_s: float
    requests_served: int
    internal_jobs_served: int
    mb_served: float
    transitions_total: int
    transitions_by_day: tuple[tuple[int, int], ...]

    @property
    def total_energy_j(self) -> float:
        """Total energy; same left-to-right state order as the meter."""
        return sum(self.energy_j)

    @property
    def active_time_s(self) -> float:
        """ACTIVE_LOW + ACTIVE_HIGH residency (utilization numerator)."""
        return (self.time_s[_ACTIVE_LOW_IDX] + self.time_s[_ACTIVE_HIGH_IDX])

    def mean_temperature_c(self) -> float:
        """Time-weighted mean temperature (instantaneous if no time)."""
        if self.elapsed_s <= 0.0:
            return self.temperature_c
        return self.integral_c_s / self.elapsed_s

    def breakdown(self) -> dict[str, float]:
        """Energy per state keyed by state value, definition order."""
        return {state.value: self.energy_j[i] for i, state in enumerate(_STATES)}


@dataclass(frozen=True, slots=True)
class OpenDiskLedger:
    """A drive's raw accumulator state captured *before* the final flush.

    Produced by :meth:`TwoSpeedDrive.open_ledger`; picklable (plain
    numbers and tuples only) so shard workers can return it across
    process boundaries.  ``state_index``/``power_w``/``steady_c``
    describe the interval that is still open at capture: the power
    state the drive sits in and the thermal steady target it is
    relaxing toward.  A failed drive has ``state_index=None`` — it
    draws no power and cools toward ambient.
    """

    disk_id: int
    last_account_s: float
    time_s: tuple[float, ...]
    energy_j: tuple[float, ...]
    #: Index of the open power state in definition order; None = failed.
    state_index: Optional[int]
    power_w: float
    steady_c: float
    temp_c: float
    integral_c_s: float
    elapsed_s: float
    tau_s: float
    requests_served: int
    internal_jobs_served: int
    mb_served: float
    transitions_total: int
    transitions_by_day: tuple[tuple[int, int], ...]

    @property
    def total_energy_j(self) -> float:
        """Energy accounted so far; same state order as the meter."""
        return sum(self.energy_j)

    @property
    def active_time_s(self) -> float:
        """ACTIVE_LOW + ACTIVE_HIGH residency accounted so far."""
        return (self.time_s[_ACTIVE_LOW_IDX] + self.time_s[_ACTIVE_HIGH_IDX])

    def advance(self, at_s: float) -> "OpenDiskLedger":
        """Charge the open interval up to ``at_s``; keep the ledger open.

        One accounting edge with the exact arithmetic of :meth:`close`
        (one ``EnergyMeter.accumulate`` + one ``ThermalModel.advance``
        over the interval), returning a new open ledger accounted up to
        ``at_s``.  This is how the merge replays the sampler ticks an
        early-draining shard never saw: splitting the residual interval
        at the global tick instants reproduces the unsharded sampled
        run's accounting edge sequence bit-for-bit.
        """
        require(at_s >= self.last_account_s,
                f"cannot advance disk {self.disk_id} to t={at_s}: ledger is "
                f"already accounted up to t={self.last_account_s}")
        time_s = list(self.time_s)
        energy_j = list(self.energy_j)
        temp = self.temp_c
        integral = self.integral_c_s
        elapsed = self.elapsed_s
        dt = at_s - self.last_account_s
        if dt > 0.0:
            if self.state_index is not None:
                # mirrors EnergyMeter.accumulate(state, dt)
                time_s[self.state_index] += dt
                energy_j[self.state_index] += self.power_w * dt
            # mirrors ThermalModel.advance(dt, steady_c)
            decay = math.exp(-dt / self.tau_s)
            t0 = temp
            temp = self.steady_c + (t0 - self.steady_c) * decay
            integral += self.steady_c * dt + (t0 - self.steady_c) * self.tau_s * (1.0 - decay)
            elapsed += dt
        return OpenDiskLedger(
            disk_id=self.disk_id,
            last_account_s=at_s,
            time_s=tuple(time_s),
            energy_j=tuple(energy_j),
            state_index=self.state_index,
            power_w=self.power_w,
            steady_c=self.steady_c,
            temp_c=temp,
            integral_c_s=integral,
            elapsed_s=elapsed,
            tau_s=self.tau_s,
            requests_served=self.requests_served,
            internal_jobs_served=self.internal_jobs_served,
            mb_served=self.mb_served,
            transitions_total=self.transitions_total,
            transitions_by_day=self.transitions_by_day,
        )

    def close(self, at_s: float) -> ClosedDiskLedger:
        """Charge the open interval up to ``at_s`` and seal the ledgers.

        Bit-identical to the drive having run ``finalize()`` at
        ``at_s``: one :meth:`EnergyMeter.accumulate` plus one
        :meth:`ThermalModel.advance` over the whole interval, in the
        same floating-point expression order.
        """
        require(at_s >= self.last_account_s,
                f"cannot close disk {self.disk_id} at t={at_s}: ledger is "
                f"already accounted up to t={self.last_account_s}")
        time_s = list(self.time_s)
        energy_j = list(self.energy_j)
        temp = self.temp_c
        integral = self.integral_c_s
        elapsed = self.elapsed_s
        dt = at_s - self.last_account_s
        if dt > 0.0:
            if self.state_index is not None:
                # mirrors EnergyMeter.accumulate(state, dt)
                time_s[self.state_index] += dt
                energy_j[self.state_index] += self.power_w * dt
            # mirrors ThermalModel.advance(dt, steady_c)
            decay = math.exp(-dt / self.tau_s)
            t0 = temp
            temp = self.steady_c + (t0 - self.steady_c) * decay
            integral += self.steady_c * dt + (t0 - self.steady_c) * self.tau_s * (1.0 - decay)
            elapsed += dt
        return ClosedDiskLedger(
            disk_id=self.disk_id,
            time_s=tuple(time_s),
            energy_j=tuple(energy_j),
            temperature_c=temp,
            integral_c_s=integral,
            elapsed_s=elapsed,
            requests_served=self.requests_served,
            internal_jobs_served=self.internal_jobs_served,
            mb_served=self.mb_served,
            transitions_total=self.transitions_total,
            transitions_by_day=self.transitions_by_day,
        )
