"""First-order thermal model of a disk drive.

Section 3.2 of the paper grounds its temperature assumptions in two
observations: (a) disk heat dissipation grows roughly with the cube of
RPM, and (b) a Cheetah reaches a *steady state* of 55.22 degC at
15 000 RPM "after 48 minutes" (ref. [12] of the paper).  Both facts are
captured by a standard first-order (lumped-capacitance) model:

    dT/dt = (T_ss(speed) - T) / tau

whose solution between state changes is the exponential approach

    T(t0 + dt) = T_ss + (T(t0) - T_ss) * exp(-dt / tau).

``tau`` defaults to 720 s so that four time constants — ~98 % of the way
to steady state — take the reported 48 minutes.

The model integrates the exact time-weighted temperature analytically
(no per-tick stepping), because PRESS consumes the *mean operating
temperature* over the simulated interval.
"""

from __future__ import annotations

import math

from repro.util.validation import require_non_negative, require_positive
from repro.disk.parameters import AMBIENT_TEMPERATURE_C

__all__ = ["ThermalModel", "steady_temperature_from_rpm"]

#: Default time constant: 48 min / 4 time constants (see module docstring).
DEFAULT_TAU_S = 720.0

_exp = math.exp  # bound once; advance() runs on every accounting edge


def steady_temperature_from_rpm(rpm: float, *, ambient_c: float = AMBIENT_TEMPERATURE_C) -> float:
    """Steady-state temperature of a drive spinning at ``rpm``.

    Power-law rise over ambient, calibrated through the paper's two
    anchors: 40 degC at 3 600 RPM and 50 degC at 10 000 RPM (Sec. 3.5).
    Heat *dissipation* scales ~RPM**3 (Sec. 3.2), but the resulting
    temperature rise is sublinear in dissipation (convective cooling
    improves with the airflow the platters themselves generate), so the
    fitted temperature exponent is ~0.59, not 3.
    """
    require_positive(rpm, "rpm")
    # exponent p solves (40-28)/(50-28) == (3600/10000)**p
    p = math.log(12.0 / 22.0) / math.log(3600.0 / 10000.0)
    rise_at_10k = 22.0
    return ambient_c + rise_at_10k * (rpm / 10_000.0) ** p


class ThermalModel:
    """Tracks one drive's temperature and its exact time integral.

    Call :meth:`advance` whenever the thermal environment changes (speed
    transition, end of simulation); it integrates the closed-form
    temperature trajectory over the elapsed interval.
    """

    def __init__(self, *, initial_c: float = AMBIENT_TEMPERATURE_C,
                 tau_s: float = DEFAULT_TAU_S) -> None:
        require_positive(tau_s, "tau_s")
        self._temp_c = float(initial_c)
        self._tau = tau_s
        self._integral_c_s = 0.0  # integral of T dt, degC * s
        self._elapsed_s = 0.0

    @property
    def temperature_c(self) -> float:
        """Instantaneous temperature (degC) as of the last :meth:`advance`."""
        return self._temp_c

    @property
    def elapsed_s(self) -> float:
        """Total time integrated so far."""
        return self._elapsed_s

    @property
    def tau_s(self) -> float:
        """The thermal time constant this model integrates with."""
        return self._tau

    @property
    def integral_c_s(self) -> float:
        """Exact integral of T dt so far (degC * s).

        ``mean_temperature_c() == integral_c_s / elapsed_s``; exposed so
        deferred end-of-run closes (:mod:`repro.disk.ledger`) can capture
        the raw accumulator and finish the integral elsewhere.
        """
        return self._integral_c_s

    def advance(self, dt: float, steady_c: float) -> float:
        """Advance ``dt`` seconds toward steady temperature ``steady_c``.

        Returns the new instantaneous temperature.  The time integral of
        the exponential trajectory is accumulated exactly:

            int T dt = T_ss * dt + (T0 - T_ss) * tau * (1 - exp(-dt/tau))
        """
        if not (dt > 0.0):  # False for NaN too
            if dt == 0.0:  # repro: allow[NUM001] exact zero-step fast path; any eps falls through to the integrator
                return self._temp_c
            require_non_negative(dt, "dt")  # raises with the precise message
        elif dt == math.inf:  # repro: allow[NUM001] inf compares exactly by IEEE-754 definition
            require_non_negative(dt, "dt")
        t0 = self._temp_c
        decay = _exp(-dt / self._tau)
        self._temp_c = steady_c + (t0 - steady_c) * decay
        self._integral_c_s += steady_c * dt + (t0 - steady_c) * self._tau * (1.0 - decay)
        self._elapsed_s += dt
        return self._temp_c

    def mean_temperature_c(self) -> float:
        """Time-weighted mean temperature over everything integrated so far.

        Falls back to the instantaneous temperature when no time has
        elapsed (e.g. PRESS evaluated at t = 0).
        """
        if self._elapsed_s <= 0.0:
            return self._temp_c
        return self._integral_c_s / self._elapsed_s

    def reset(self, *, temperature_c: float | None = None) -> None:
        """Clear the integral; optionally pin a new instantaneous temperature."""
        if temperature_c is not None:
            self._temp_c = float(temperature_c)
        self._integral_c_s = 0.0
        self._elapsed_s = 0.0

    def time_to_reach(self, target_c: float, steady_c: float) -> float:
        """Time for the trajectory toward ``steady_c`` to cross ``target_c``.

        Returns ``inf`` when the target is not between the current
        temperature and the steady state (never reached), and 0 when
        already past it.  Useful for thermal-headroom experiments.
        """
        t0 = self._temp_c
        if t0 == steady_c:  # repro: allow[NUM001] degenerate-trajectory guard: division below needs exact inequality only
            return 0.0 if target_c == steady_c else math.inf  # repro: allow[NUM001] exact asymptote membership; any eps is 'never reached'
        frac = (target_c - steady_c) / (t0 - steady_c)
        if frac >= 1.0:
            return 0.0
        if frac <= 0.0:
            return math.inf
        return -self._tau * math.log(frac)
