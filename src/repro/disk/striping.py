"""RAID-0 style striping layout (the paper's future-work direction 2).

Section 6: "we intend to enable the READ scheme to cooperate with the
RAID architecture, where files are usually striped across disks ...
For the web server environment, files are usually very small, and thus
stripping is not crucial.  However, for large files such as video clips
... stripping is needed."  The paper's reference stripe unit is 512 KB
(Sec. 4).

This module is pure layout math — which disks hold which chunk of a
file — shared by the striped policy and by tests.  Files at or below one
stripe unit stay whole (matching the paper's observation that striping
tiny web files is pointless).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import require, require_positive

__all__ = ["StripeChunk", "StripeLayout", "PAPER_STRIPE_UNIT_MB"]

#: The paper's "normal stripping block size 512 KB" (Sec. 4), in MB.
PAPER_STRIPE_UNIT_MB = 0.512


@dataclass(frozen=True, slots=True)
class StripeChunk:
    """One leg of a striped access: ``size_mb`` read from ``disk_id``."""

    disk_id: int
    size_mb: float


class StripeLayout:
    """Round-robin stripe mapping over ``n_disks``.

    A file's chunks start on disk ``file_id % n_disks`` (staggering the
    first chunks so small-file load spreads) and wrap round-robin in
    ``stripe_unit_mb`` pieces.  The mapping is stateless and
    deterministic — tests and the policy always agree on it.
    """

    def __init__(self, n_disks: int, stripe_unit_mb: float = PAPER_STRIPE_UNIT_MB) -> None:
        require(n_disks >= 1, f"n_disks must be >= 1, got {n_disks}")
        self.n_disks = n_disks
        self.stripe_unit_mb = require_positive(stripe_unit_mb, "stripe_unit_mb")

    def chunks_of(self, file_id: int, size_mb: float) -> list[StripeChunk]:
        """The chunk list of one whole-file access.

        Files <= one stripe unit return a single whole chunk; larger
        files return ceil(size/unit) chunks, the last one partial.  A
        file never gets two chunks on the same disk *per rotation*: with
        more chunks than disks the wrap continues (that disk serves
        multiple chunks sequentially, as real RAID-0 does).
        """
        require(file_id >= 0, f"file_id must be >= 0, got {file_id}")
        require_positive(size_mb, "size_mb")
        unit = self.stripe_unit_mb
        if size_mb <= unit:
            return [StripeChunk(file_id % self.n_disks, size_mb)]
        chunks: list[StripeChunk] = []
        remaining = size_mb
        disk = file_id % self.n_disks
        while remaining > 1e-12:
            piece = min(unit, remaining)
            chunks.append(StripeChunk(disk, piece))
            remaining -= piece
            disk = (disk + 1) % self.n_disks
        return chunks

    def disks_of(self, file_id: int, size_mb: float) -> list[int]:
        """Distinct disks touched by one access, in chunk order."""
        seen: list[int] = []
        for chunk in self.chunks_of(file_id, size_mb):
            if chunk.disk_id not in seen:
                seen.append(chunk.disk_id)
        return seen

    def per_disk_bytes(self, file_id: int, size_mb: float) -> dict[int, float]:
        """MB stored on each disk for one file (capacity accounting)."""
        out: dict[int, float] = {}
        for chunk in self.chunks_of(file_id, size_mb):
            out[chunk.disk_id] = out.get(chunk.disk_id, 0.0) + chunk.size_mb
        return out
