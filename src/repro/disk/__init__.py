"""Two-speed disk drive, thermal/energy accounting, and the disk array.

This is the paper's simulated device substrate (Sec. 5.1): an array of
two-speed disks whose low-speed statistics are derived from a
conventional Seagate Cheetah the same way the PDC paper [23] derived
them.  The drive is an event-driven state machine over
:class:`repro.sim.Simulator`; policies control it exclusively through
:meth:`TwoSpeedDrive.request_speed` and the placement/routing layer in
:class:`DiskArray`.
"""

from repro.disk.parameters import (
    DiskSpeed,
    SpeedModeParams,
    TwoSpeedDiskParams,
    cheetah_two_speed,
)
from repro.disk.thermal import ThermalModel, steady_temperature_from_rpm
from repro.disk.energy import DiskPowerState, EnergyMeter, N_POWER_STATES, STATE_INDEX
from repro.disk.stats import DiskStats
from repro.disk.state import (
    ArraySnapshot,
    ArrayState,
    SoADiskStats,
    SoAEnergyMeter,
    SoAThermalModel,
)
from repro.disk.ledger import ClosedDiskLedger, OpenDiskLedger
from repro.disk.drive import Job, TwoSpeedDrive, DrivePhase, QueueDiscipline
from repro.disk.array import DiskArray
from repro.disk.striping import PAPER_STRIPE_UNIT_MB, StripeChunk, StripeLayout

__all__ = [
    "DiskSpeed",
    "SpeedModeParams",
    "TwoSpeedDiskParams",
    "cheetah_two_speed",
    "ThermalModel",
    "steady_temperature_from_rpm",
    "DiskPowerState",
    "EnergyMeter",
    "N_POWER_STATES",
    "STATE_INDEX",
    "DiskStats",
    "OpenDiskLedger",
    "ClosedDiskLedger",
    "ArraySnapshot",
    "ArrayState",
    "SoADiskStats",
    "SoAEnergyMeter",
    "SoAThermalModel",
    "Job",
    "TwoSpeedDrive",
    "DrivePhase",
    "QueueDiscipline",
    "DiskArray",
    "PAPER_STRIPE_UNIT_MB",
    "StripeChunk",
    "StripeLayout",
]
