"""Per-drive operating statistics consumed by PRESS and the reports.

The three ESRRA factors the PRESS model needs per disk (Sec. 3) map to:

* operating temperature  -> the thermal model's time-weighted mean;
* utilization            -> active time / power-on time (Sec. 3.3's
  definition, verbatim);
* speed-transition freq. -> transitions normalized to a per-day rate.

``DiskStats`` also tracks served-request counters used by the
performance metrics and by policies (READ's FPT is file-level and lives
in :mod:`repro.core.popularity`; this is the disk-level view).
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field

from repro.util.units import SECONDS_PER_DAY
from repro.util.validation import require_non_negative, require_positive

_INF = math.inf

__all__ = ["DiskStats"]


@dataclass
class DiskStats:
    """Mutable per-drive counters updated by the drive state machine."""

    disk_id: int
    requests_served: int = 0
    internal_jobs_served: int = 0
    mb_served: float = 0.0
    speed_transitions_total: int = 0
    #: Transition counts bucketed by simulated day index (floor(t / 86400)).
    transitions_by_day: dict[int, int] = field(default_factory=lambda: defaultdict(int))

    # ------------------------------------------------------------------
    def record_service(self, size_mb: float, internal: bool) -> None:
        """Count one completed job of ``size_mb``."""
        if not (0.0 < size_mb < _INF):
            require_positive(size_mb, "size_mb")
        self.mb_served += size_mb
        if internal:
            self.internal_jobs_served += 1
        else:
            self.requests_served += 1

    def record_transition(self, at_time_s: float) -> None:
        """Count one speed transition occurring at simulated ``at_time_s``."""
        if not (0.0 <= at_time_s < _INF):
            require_non_negative(at_time_s, "at_time_s")
        self.speed_transitions_total += 1
        self.transitions_by_day[int(at_time_s // SECONDS_PER_DAY)] += 1

    # ------------------------------------------------------------------
    def transitions_on_day(self, day_index: int) -> int:
        """Transitions recorded during one simulated day."""
        return self.transitions_by_day.get(day_index, 0)

    def max_transitions_per_day(self) -> int:
        """Worst single-day transition count (0 when none occurred)."""
        return max(self.transitions_by_day.values(), default=0)

    def transitions_per_day(self, duration_s: float) -> float:
        """Transition count normalized to a per-day rate.

        For simulations shorter than a day this extrapolates linearly —
        the paper's frequency-reliability function is defined on
        transitions *per day*, and its own experiments replay a fraction
        of a day (Sec. 5.1), implying the same normalization.
        """
        require_positive(duration_s, "duration_s")
        return self.speed_transitions_total * SECONDS_PER_DAY / duration_s

    def utilization(self, active_time_s: float, power_on_time_s: float) -> float:
        """The paper's utilization: active time / power-on time (Sec. 3.3)."""
        require_non_negative(active_time_s, "active_time_s")
        require_positive(power_on_time_s, "power_on_time_s")
        util = active_time_s / power_on_time_s
        return min(util, 1.0)
