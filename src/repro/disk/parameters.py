"""Disk drive parameter sets and the Cheetah-derived two-speed model.

The paper gives no parameter table of its own; it states (Sec. 5.1) that
"the same strategy used in [23] to derive corresponding low speed mode
disk statistics from parameters of a conventional Cheetah disk is
adopted".  We therefore model a 10 000 RPM Cheetah-class drive and derive
the 3 600 RPM mode with the standard scaling rules that PDC/DRPM used:

* sequential transfer rate scales linearly with RPM (same areal density,
  fewer revolutions per second under the head);
* rotational latency is half a revolution, so it scales as 1/RPM;
* seek time is an arm property — unchanged by spindle speed;
* spindle power scales as RPM**2.8 (DRPM's empirical exponent); the
  electronics draw a speed-independent base power on top.

Operating-temperature anchors come from the paper's Sec. 3.2: the
3 600 RPM mode sits in [35, 40] degC and the 10 000 RPM mode in
[45, 50] degC, and Sec. 3.5 pins the PRESS inputs at 40/50 degC, which
are the steady-state temperatures used here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.util.validation import require, require_positive

__all__ = ["DiskSpeed", "SpeedModeParams", "TwoSpeedDiskParams", "cheetah_two_speed"]

#: DRPM's empirical spindle-power scaling exponent.
SPINDLE_POWER_RPM_EXPONENT = 2.8

#: Ambient temperature used throughout the paper's Sec. 3.4 (degC).
AMBIENT_TEMPERATURE_C = 28.0


class DiskSpeed(enum.IntEnum):
    """The two spindle speeds of a two-speed disk (Sec. 3.2)."""

    LOW = 0
    HIGH = 1

    @property
    def other(self) -> "DiskSpeed":
        """The opposite speed mode."""
        return DiskSpeed.HIGH if self is DiskSpeed.LOW else DiskSpeed.LOW


@dataclass(frozen=True, slots=True)
class SpeedModeParams:
    """Operating characteristics of one spindle-speed mode.

    Attributes
    ----------
    rpm:
        Spindle speed, revolutions per minute.
    transfer_mb_s:
        Sustained sequential transfer rate (MB/s) — the paper's
        ``t_h``/``t_l``.
    avg_seek_s / avg_rot_latency_s:
        Fixed per-request positioning overheads (seconds).
    active_w / idle_w:
        Power draw while transferring vs spinning idle (watts).
    steady_temp_c:
        Steady-state operating temperature at this speed (degC).
    """

    rpm: float
    transfer_mb_s: float
    avg_seek_s: float
    avg_rot_latency_s: float
    active_w: float
    idle_w: float
    steady_temp_c: float

    def __post_init__(self) -> None:
        require_positive(self.rpm, "rpm")
        require_positive(self.transfer_mb_s, "transfer_mb_s")
        require_positive(self.avg_seek_s, "avg_seek_s")
        require_positive(self.avg_rot_latency_s, "avg_rot_latency_s")
        require_positive(self.active_w, "active_w")
        require_positive(self.idle_w, "idle_w")
        require(self.active_w >= self.idle_w, "active_w must be >= idle_w")
        require_positive(self.steady_temp_c, "steady_temp_c")

    @property
    def positioning_s(self) -> float:
        """Total fixed overhead per whole-file access (seek + rotation)."""
        return self.avg_seek_s + self.avg_rot_latency_s

    def service_time_s(self, size_mb: float) -> float:
        """Time to serve one whole-file read of ``size_mb`` at this speed."""
        require_positive(size_mb, "size_mb")
        return self.positioning_s + size_mb / self.transfer_mb_s


@dataclass(frozen=True, slots=True)
class TwoSpeedDiskParams:
    """Full parameter set of a two-speed disk drive.

    ``transition_time_s``/``transition_energy_j`` apply to either
    direction of the LOW <-> HIGH switch; the paper treats the two
    directions symmetrically (Sec. 3.4: "speed transition is
    bi-directional").  No requests are served during a transition (Sec. 4).
    """

    name: str
    capacity_mb: float
    low: SpeedModeParams
    high: SpeedModeParams
    transition_time_s: float
    transition_energy_j: float

    def __post_init__(self) -> None:
        require_positive(self.capacity_mb, "capacity_mb")
        require_positive(self.transition_time_s, "transition_time_s")
        require_positive(self.transition_energy_j, "transition_energy_j")
        require(self.low.rpm < self.high.rpm, "low mode must have lower RPM than high mode")
        require(self.low.transfer_mb_s < self.high.transfer_mb_s,
                "low mode must have a lower transfer rate")
        require(self.low.steady_temp_c < self.high.steady_temp_c,
                "low mode must run cooler than high mode")

    def mode(self, speed: DiskSpeed) -> SpeedModeParams:
        """Parameters of the requested speed mode."""
        return self.high if speed is DiskSpeed.HIGH else self.low

    @property
    def transition_power_w(self) -> float:
        """Mean power draw during a speed transition."""
        return self.transition_energy_j / self.transition_time_s

    def with_capacity(self, capacity_mb: float) -> "TwoSpeedDiskParams":
        """Copy with a different capacity (experiment convenience)."""
        return replace(self, capacity_mb=capacity_mb)


def derive_low_mode(high: SpeedModeParams, low_rpm: float, *,
                    base_power_w: float, low_steady_temp_c: float) -> SpeedModeParams:
    """Derive a low-speed mode from a high-speed one (PDC's procedure).

    ``base_power_w`` is the speed-independent electronics draw; the
    remainder of the high mode's idle power is spindle power, scaled by
    ``(low_rpm/high_rpm) ** 2.8``.  The active-over-idle increment (head,
    servo, channel) is kept constant across speeds.
    """
    require_positive(low_rpm, "low_rpm")
    require(low_rpm < high.rpm, "low_rpm must be below the high mode's rpm")
    require(0 < base_power_w < high.idle_w,
            "base_power_w must be positive and below the high mode's idle power")

    ratio = low_rpm / high.rpm
    spindle_high = high.idle_w - base_power_w
    idle_low = base_power_w + spindle_high * ratio**SPINDLE_POWER_RPM_EXPONENT
    active_increment = high.active_w - high.idle_w
    return SpeedModeParams(
        rpm=low_rpm,
        transfer_mb_s=high.transfer_mb_s * ratio,
        avg_seek_s=high.avg_seek_s,
        avg_rot_latency_s=high.avg_rot_latency_s / ratio,
        active_w=idle_low + active_increment,
        idle_w=idle_low,
        steady_temp_c=low_steady_temp_c,
    )


def cheetah_two_speed(*, capacity_mb: float = 18_400.0,
                      transition_time_s: float = 4.0,
                      transition_energy_j: float = 70.0) -> TwoSpeedDiskParams:
    """The canonical two-speed Cheetah used by every experiment.

    High mode is a Seagate Cheetah-class 10 000 RPM drive (18.4 GB
    Cheetah 18XL era): 5.2 ms average seek, 3.0 ms rotational latency,
    31 MB/s sustained transfer, 13.5 W active / 10.2 W idle.  The low
    mode is derived at the paper's 3 600 RPM with a 4.0 W electronics
    base.  Steady temperatures are the paper's 50 degC (high) and
    40 degC (low).

    Transition figures (4 s, 70 J) are in the range DRPM/Hibernator
    report for partial-speed changes — substantially cheaper than a full
    stop/start, consistent with the paper's Sec. 3.4 argument.
    """
    high = SpeedModeParams(
        rpm=10_000.0,
        transfer_mb_s=31.0,
        avg_seek_s=5.2e-3,
        avg_rot_latency_s=0.5 * 60.0 / 10_000.0,
        active_w=13.5,
        idle_w=10.2,
        steady_temp_c=50.0,
    )
    low = derive_low_mode(high, 3_600.0, base_power_w=4.0, low_steady_temp_c=40.0)
    return TwoSpeedDiskParams(
        name="cheetah-2speed",
        capacity_mb=capacity_mb,
        low=low,
        high=high,
        transition_time_s=transition_time_s,
        transition_energy_j=transition_energy_j,
    )
