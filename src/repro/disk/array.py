"""The disk array: drives + file placement + data-movement plumbing.

The array owns the authoritative *placement map* (file id -> disk id)
and per-disk used-capacity ledger.  Policies mutate placement only
through :meth:`DiskArray.place_file` (free, initial layout) and
:meth:`DiskArray.migrate_file` (charged as real disk work: a read on the
source followed by a write on the destination, per DESIGN.md Sec. 5).

Routing a user request defaults to the file's placed disk; policies that
redirect (MAID serving from a cache disk) pass an explicit target.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.disk.drive import Job, QueueDiscipline, TwoSpeedDrive
from repro.disk.parameters import DiskSpeed, TwoSpeedDiskParams
from repro.disk.state import ArrayState
from repro.obs import events as ev
from repro.sim.engine import Simulator
from repro.util.validation import require
from repro.workload.files import FileSet
from repro.workload.request import Request

__all__ = ["DiskArray"]

IdleHandler = Callable[[int], None]
JobHandler = Callable[[Job], None]


class DiskArray:
    """An array of :class:`TwoSpeedDrive` sharing one simulation kernel.

    Parameters
    ----------
    sim, params:
        Kernel and device model shared by every drive.
    n_disks:
        Array size (the paper sweeps 6..16).
    fileset:
        The stored files; placement starts empty (-1) until a policy
        lays data out.
    initial_speed:
        Spindle speed every drive boots with.
    kernel_backend:
        ``"object"`` (default) keeps each drive's ledgers in per-drive
        Python objects; ``"soa"`` allocates one shared
        :class:`~repro.disk.state.ArrayState` and makes every drive a
        thin view over its slot, enabling vectorized whole-array reads
        (PRESS scoring, sampler snapshots).  Results are bit-identical
        either way; the runner picks the backend (see
        :func:`repro.experiments.runner.run_simulation`).
    """

    def __init__(self, sim: Simulator, params: TwoSpeedDiskParams, n_disks: int,
                 fileset: FileSet, *, initial_speed: DiskSpeed = DiskSpeed.HIGH,
                 queue_discipline: QueueDiscipline = QueueDiscipline.FCFS,
                 kernel_backend: str = "object") -> None:
        require(n_disks >= 1, f"n_disks must be >= 1, got {n_disks}")
        require(kernel_backend in ("object", "soa"),
                f"kernel_backend must be 'object' or 'soa', got {kernel_backend!r}")
        self.sim = sim
        self._trace = sim.trace
        self.params = params
        self.fileset = fileset
        self.kernel_backend = kernel_backend
        #: Shared struct-of-arrays buffers ("soa" backend) or ``None``.
        self.state: Optional[ArrayState] = (
            ArrayState(n_disks, params) if kernel_backend == "soa" else None)
        self.drives = [
            TwoSpeedDrive(sim, params, i, initial_speed=initial_speed,
                          queue_discipline=queue_discipline,
                          on_idle=self._forward_idle, on_busy=self._forward_busy,
                          state=self.state)
            for i in range(n_disks)
        ]
        self._placement = np.full(len(fileset), -1, dtype=np.int64)
        # mirror of _placement as a plain list: location_of runs once per
        # routed request, and list indexing returns a ready-made int
        # instead of a numpy scalar needing coercion
        self._placement_py: list[int] = [-1] * len(fileset)
        self._used_mb = np.zeros(n_disks, dtype=np.float64)
        self._idle_handler: Optional[IdleHandler] = None
        self._busy_handler: Optional[IdleHandler] = None
        require(fileset.total_mb <= params.capacity_mb * n_disks,
                f"fileset ({fileset.total_mb:.1f} MB) exceeds array capacity "
                f"({params.capacity_mb * n_disks:.1f} MB)")

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.drives)

    @property
    def n_disks(self) -> int:
        """Number of drives in the array."""
        return len(self.drives)

    def drive(self, disk_id: int) -> TwoSpeedDrive:
        """Drive by index."""
        return self.drives[disk_id]

    # ------------------------------------------------------------------
    # fault lifecycle (driven by repro.faults)
    # ------------------------------------------------------------------
    def disk_is_up(self, disk_id: int) -> bool:
        """Whether ``disk_id`` is in service (not failed)."""
        return not self.drives[disk_id].is_failed

    def fail_disk(self, disk_id: int) -> list[Job]:
        """Fail one drive; returns the jobs it dropped (see
        :meth:`TwoSpeedDrive.fail`).  Placement is untouched — the files
        are still *assigned* to the dead disk, they just cannot be served
        from it until the rebuild completes."""
        return self.drives[disk_id].fail()

    def replace_disk(self, disk_id: int, *,
                     speed: DiskSpeed = DiskSpeed.HIGH) -> None:
        """Install a replacement spindle in a failed slot (rebuild I/O is
        the caller's responsibility — see :class:`repro.faults.FaultInjector`)."""
        self.drives[disk_id].replace_with_new_spindle(speed=speed)

    # ------------------------------------------------------------------
    # policy hooks
    # ------------------------------------------------------------------
    def set_idle_handler(self, handler: Optional[IdleHandler]) -> None:
        """Install the policy callback fired when any drive's queue drains.

        The handler is bound onto each drive directly so the (very
        frequent) idle edge skips a forwarding hop through the array.
        """
        self._idle_handler = handler
        for drive in self.drives:
            drive.on_idle = handler

    def set_busy_handler(self, handler: Optional[IdleHandler]) -> None:
        """Install the policy callback fired when an idle drive gets work."""
        self._busy_handler = handler
        for drive in self.drives:
            drive.on_busy = handler

    def _forward_idle(self, disk_id: int) -> None:
        if self._idle_handler is not None:
            self._idle_handler(disk_id)

    def _forward_busy(self, disk_id: int) -> None:
        if self._busy_handler is not None:
            self._busy_handler(disk_id)

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    @property
    def placement(self) -> np.ndarray:
        """Read-only view: placement[file_id] == disk id (-1 = unplaced)."""
        view = self._placement.view()
        view.setflags(write=False)
        return view

    @property
    def used_mb(self) -> np.ndarray:
        """Read-only per-disk used capacity (primary copies only)."""
        view = self._used_mb.view()
        view.setflags(write=False)
        return view

    def free_mb(self, disk_id: int) -> float:
        """Remaining primary capacity on one disk."""
        return self.params.capacity_mb - float(self._used_mb[disk_id])

    def location_of(self, file_id: int) -> int:
        """Disk currently holding ``file_id`` (-1 if unplaced)."""
        return self._placement_py[file_id]

    def files_on(self, disk_id: int) -> np.ndarray:
        """All file ids placed on ``disk_id``."""
        return np.flatnonzero(self._placement == disk_id)

    def place_file(self, file_id: int, disk_id: int) -> None:
        """Set the initial location of a file (no I/O charged).

        Only valid for unplaced files — relocations must go through
        :meth:`migrate_file` so their cost is modeled.
        """
        require(0 <= disk_id < self.n_disks, f"disk_id out of range: {disk_id}")
        require(self._placement[file_id] == -1,
                f"file {file_id} already placed; use migrate_file")
        size = self.fileset.size_of(file_id)
        require(self._used_mb[disk_id] + size <= self.params.capacity_mb,
                f"disk {disk_id} over capacity placing file {file_id}")
        self._placement[file_id] = disk_id
        self._placement_py[file_id] = disk_id
        self._used_mb[disk_id] += size

    def place_all(self, placement: Sequence[int] | np.ndarray) -> None:
        """Bulk initial placement (validates capacity per disk)."""
        arr = np.asarray(placement, dtype=np.int64)
        require(arr.shape == self._placement.shape,
                "placement must assign every file exactly once")
        require(bool(np.all((arr >= 0) & (arr < self.n_disks))),
                "placement contains out-of-range disk ids")
        require(bool(np.all(self._placement == -1)),
                "place_all requires a fully unplaced array")
        used = np.bincount(arr, weights=self.fileset.sizes_mb, minlength=self.n_disks)
        require(bool(np.all(used <= self.params.capacity_mb)),
                "placement exceeds per-disk capacity")
        self._placement[:] = arr
        self._placement_py = arr.tolist()
        self._used_mb[:] = used

    # ------------------------------------------------------------------
    # traffic
    # ------------------------------------------------------------------
    def submit_request(self, request: Request, *, disk_id: Optional[int] = None,
                       on_complete: Optional[JobHandler] = None) -> Job:
        """Queue a user request on its placed disk (or an explicit target)."""
        target = self._placement_py[request.file_id] if disk_id is None else disk_id
        if target < 0:
            raise ValueError(f"file {request.file_id} is not placed on any disk")
        job = Job.for_request(request, on_complete=on_complete)
        self.drives[target].submit(job)
        return job

    def submit_internal(self, disk_id: int, size_mb: float, *,
                        on_complete: Optional[JobHandler] = None) -> Job:
        """Queue an internal transfer (cache copy / migration leg)."""
        job = Job.internal_transfer(size_mb, on_complete=on_complete)
        self.drives[disk_id].submit(job)
        return job

    def migrate_file(self, file_id: int, dst_disk: int, *,
                     on_done: Optional[Callable[[int, int, int], None]] = None) -> bool:
        """Move a file's primary copy, charging read + write disk work.

        The placement map and capacity ledger flip immediately (new
        requests route to the destination; serving half-moved files is
        out of scope per the whole-file model), while the physical cost
        is modeled as an internal read job on the source followed — on
        its completion — by an internal write job on the destination.
        Returns ``False`` without side effects when the destination lacks
        capacity or already holds the file.

        ``on_done(file_id, src, dst)`` fires when the write completes.
        """
        src = self.location_of(file_id)
        require(src >= 0, f"file {file_id} is not placed; cannot migrate")
        require(0 <= dst_disk < self.n_disks, f"dst_disk out of range: {dst_disk}")
        if src == dst_disk:
            return False
        size = self.fileset.size_of(file_id)
        if self._used_mb[dst_disk] + size > self.params.capacity_mb:
            return False

        self._placement[file_id] = dst_disk
        self._placement_py[file_id] = dst_disk
        self._used_mb[src] -= size
        self._used_mb[dst_disk] += size
        if self._trace is not None:
            self._trace.emit(ev.POLICY_MIGRATE, self.sim.now, file=file_id,
                             src=src, dst=dst_disk, size_mb=size)

        def _after_read(_job: Job) -> None:
            if _job.failed:
                # source died mid-migration (fault injection): the write
                # leg never happens; placement keeps the logical move
                return
            def _after_write(_wjob: Job) -> None:
                if on_done is not None and not _wjob.failed:
                    on_done(file_id, src, dst_disk)
            self.submit_internal(dst_disk, size, on_complete=_after_write)

        self.submit_internal(src, size, on_complete=_after_read)
        return True

    # ------------------------------------------------------------------
    # end-of-run accounting
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Flush every drive's energy/thermal ledgers to ``sim.now``."""
        for drive in self.drives:
            drive.finalize()

    def total_energy_j(self) -> float:
        """Array-wide energy (call :meth:`finalize` first for exactness)."""
        return sum(d.energy.total_energy_j for d in self.drives)
