"""Struct-of-arrays state for a disk array (the "soa" kernel backend).

Motivation
----------
The object backend keeps every per-disk quantity in per-drive Python
objects (:class:`~repro.disk.energy.EnergyMeter` dicts,
:class:`~repro.disk.thermal.ThermalModel` floats,
:class:`~repro.disk.stats.DiskStats` counters).  Anything that wants the
*array-level* view — the PRESS rescoring sweep, the telemetry sampler,
end-of-run aggregation — must walk ``n_disks`` objects attribute by
attribute.  This module flips the layout: one :class:`ArrayState` holds
contiguous NumPy buffers (one row / slot per disk) and the drive objects
become thin views over their slot, so whole-array reads are single
vectorized expressions and snapshots are one ``np.copy`` per buffer.

Bit-identity contract
---------------------
The write-back ledgers (:class:`SoAEnergyMeter`, :class:`SoAThermalModel`,
:class:`SoADiskStats`) *inherit* the object ledgers' hot path unchanged
— every per-event accumulation runs the identical scalar arithmetic on
identical Python storage, so per-event cost stays at object-path speed
(a NumPy scalar indexed read-modify-write is ~10x a dict/attribute
update and measurably slowed whole runs when tried).  Each ledger's
``sync()`` then publishes its accumulators into the shared buffers as a
lossless float64 copy; ``TwoSpeedDrive.finalize()`` syncs, and every
vectorized reader (sampler snapshot, PRESS ``factors_of_state``,
whole-array totals) reads only after an array-wide finalize.  A run on
the SoA backend is therefore bit-identical to the object backend by
construction; the equivalence suite
(``tests/experiments/test_soa_equivalence.py``) enforces it anyway.

Two deliberate non-vectorizations back the contract on the read side:

* the thermal update keeps scalar ``math.exp`` per accounting edge —
  ``np.exp`` is *not* bit-identical to ``math.exp`` on SIMD builds;
* whole-array reductions that feed results (total energy) sum in the
  same order as the object path (per-state chain per disk, then disks
  in index order), never via ``np.sum``'s pairwise tree.

Vectorized reads — the mean-temperature / utilization / transition-rate
gathers consumed by :meth:`repro.press.model.PRESSModel.evaluate_array`
— are elementwise float64 expressions, which are bit-identical to the
per-disk scalar forms (verified by the equivalence suite).

Batched kernel step
-------------------
:meth:`ArrayState.batch_step` is the vectorized tick: request admission,
queue drain, energy accrual, and thermal relaxation for *all* disks as
array ops, one kernel dispatch per tick (see
:class:`repro.sim.soa.BatchTicker`).  It operates on the same buffers
but integrates a homogeneous fixed-timestep (fluid) form of the model,
so it is the throughput workhorse — the ``kernel_events_per_sec`` bench
measures per-disk updates through this step — and the substrate for
coarse large-array capacity modeling, while the exact event-driven path
writes the same buffers per event edge.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

from repro.disk.energy import (
    N_POWER_STATES,
    STATE_INDEX,
    DiskPowerState,
    EnergyMeter,
)
from repro.disk.parameters import TwoSpeedDiskParams
from repro.disk.stats import DiskStats
from repro.disk.thermal import DEFAULT_TAU_S, ThermalModel
from repro.util.units import SECONDS_PER_DAY
from repro.util.validation import require, require_positive

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    import numpy.typing as npt

__all__ = [
    "ArrayState",
    "ArraySnapshot",
    "SoAEnergyMeter",
    "SoAThermalModel",
    "SoADiskStats",
    "PHASE_IDLE",
    "PHASE_BUSY",
    "PHASE_TRANSITIONING",
    "PHASE_FAILED",
    "PHASE_NAMES",
    "SPEED_NAMES",
]

_INF = math.inf
_exp = math.exp

#: Dense phase codes mirrored into :attr:`ArrayState.phase_code`.
#: Order matches :class:`repro.disk.drive.DrivePhase` definition order;
#: :data:`PHASE_NAMES` carries the matching ``DrivePhase.value`` strings.
PHASE_IDLE = 0
PHASE_BUSY = 1
PHASE_TRANSITIONING = 2
PHASE_FAILED = 3

PHASE_NAMES: tuple[str, ...] = ("idle", "busy", "transitioning", "failed")

#: Speed-code names; index matches ``int(DiskSpeed)`` (LOW=0, HIGH=1).
SPEED_NAMES: tuple[str, ...] = ("low", "high")

_ACTIVE_LOW_I = STATE_INDEX[DiskPowerState.ACTIVE_LOW]
_ACTIVE_HIGH_I = STATE_INDEX[DiskPowerState.ACTIVE_HIGH]


class ArraySnapshot:
    """One frozen whole-array operating point (plain arrays, no views).

    Produced by :meth:`ArrayState.snapshot`; every field is a fresh copy
    so later simulation progress cannot mutate a taken sample.
    """

    __slots__ = ("time_s", "utilization_pct", "temperature_c", "speed_code",
                 "phase_code", "queue_depth", "energy_j")

    def __init__(self, time_s: float, utilization_pct: np.ndarray,
                 temperature_c: np.ndarray, speed_code: np.ndarray,
                 phase_code: np.ndarray, queue_depth: np.ndarray,
                 energy_j: np.ndarray) -> None:
        self.time_s = time_s
        self.utilization_pct = utilization_pct
        self.temperature_c = temperature_c
        self.speed_code = speed_code
        self.phase_code = phase_code
        self.queue_depth = queue_depth
        self.energy_j = energy_j


class ArrayState:
    """Contiguous per-disk state buffers shared by a whole array.

    One row (or slot) per disk:

    * ``energy_time_s`` / ``energy_j`` — ``(n, 5)`` residence time and
      energy per :class:`~repro.disk.energy.DiskPowerState` (column
      order = :data:`~repro.disk.energy.STATE_INDEX`);
    * ``temp_c`` / ``thermal_integral_c_s`` / ``thermal_elapsed_s`` —
      the first-order thermal trajectory and its exact time integral;
    * ``mb_served`` / ``requests_served`` / ``internal_jobs_served`` /
      ``speed_transitions`` — the :class:`~repro.disk.stats.DiskStats`
      counters;
    * ``queue_depth`` / ``speed_code`` / ``phase_code`` — the live
      operating point mirrored by the drive state machine;
    * ``start_time_s`` — slot creation time (power-on reference);
    * ``backlog_mb`` — outstanding work of the batched fluid tick
      (:meth:`batch_step`); stays zero on the exact event-driven path.

    The exact path publishes into the slots through the ``SoA*``
    write-back ledgers at every ``finalize()``; the batched path
    mutates whole columns per tick.  The two write modes are exclusive
    per ``ArrayState`` instance — ``batch_step`` overwrites what the
    ledgers published and vice versa.
    """

    def __init__(self, n_disks: int, params: TwoSpeedDiskParams, *,
                 tau_s: float = DEFAULT_TAU_S) -> None:
        require(n_disks >= 1, f"n_disks must be >= 1, got {n_disks}")
        require_positive(tau_s, "tau_s")
        self.n_disks = n_disks
        self.params = params
        self.tau_s = float(tau_s)

        self.energy_time_s = np.zeros((n_disks, N_POWER_STATES), dtype=np.float64)
        self.energy_j = np.zeros((n_disks, N_POWER_STATES), dtype=np.float64)
        self.temp_c = np.zeros(n_disks, dtype=np.float64)
        self.thermal_integral_c_s = np.zeros(n_disks, dtype=np.float64)
        self.thermal_elapsed_s = np.zeros(n_disks, dtype=np.float64)
        self.mb_served = np.zeros(n_disks, dtype=np.float64)
        self.requests_served = np.zeros(n_disks, dtype=np.int64)
        self.internal_jobs_served = np.zeros(n_disks, dtype=np.int64)
        self.speed_transitions = np.zeros(n_disks, dtype=np.int64)
        self.queue_depth = np.zeros(n_disks, dtype=np.int64)
        self.speed_code = np.zeros(n_disks, dtype=np.int8)
        self.phase_code = np.zeros(n_disks, dtype=np.int8)
        self.start_time_s = np.zeros(n_disks, dtype=np.float64)
        self.backlog_mb = np.zeros(n_disks, dtype=np.float64)

        # per-speed lookup tables for the batched tick (index = speed code)
        low, high = params.low, params.high
        self._transfer_mb_s = np.array([low.transfer_mb_s, high.transfer_mb_s])
        self._idle_w = np.array([low.idle_w, high.idle_w])
        self._active_w = np.array([low.active_w, high.active_w])
        self._steady_c = np.array([low.steady_temp_c, high.steady_temp_c])

    # ------------------------------------------------------------------
    # vectorized whole-array reads (bit-identical to the per-disk forms)
    # ------------------------------------------------------------------
    def active_time_s(self) -> "npt.NDArray[np.float64]":
        """Per-disk transfer time at either speed (utilization numerator)."""
        return (self.energy_time_s[:, _ACTIVE_LOW_I]
                + self.energy_time_s[:, _ACTIVE_HIGH_I])

    def utilization_pct(self, now_s: float) -> "npt.NDArray[np.float64]":
        """Per-disk utilization percent at simulated time ``now_s``.

        Matches ``100.0 * TwoSpeedDrive.utilization()`` bit for bit:
        ``min(active / power_on, 1.0) * 100`` with a zero-elapsed guard.
        """
        elapsed = now_s - self.start_time_s
        with np.errstate(divide="ignore", invalid="ignore"):
            util = np.minimum(self.active_time_s() / elapsed, 1.0)
        return np.where(elapsed > 0.0, util, 0.0) * 100.0

    def mean_temperature_c(self) -> "npt.NDArray[np.float64]":
        """Per-disk time-weighted mean temperature (instantaneous at t=0)."""
        with np.errstate(divide="ignore", invalid="ignore"):
            mean = self.thermal_integral_c_s / self.thermal_elapsed_s
        return np.where(self.thermal_elapsed_s > 0.0, mean, self.temp_c)

    def transitions_per_day(self, duration_s: float) -> "npt.NDArray[np.float64]":
        """Per-disk transition count normalized to a daily rate."""
        require_positive(duration_s, "duration_s")
        return self.speed_transitions * SECONDS_PER_DAY / duration_s

    def total_energy_j_per_disk(self) -> "npt.NDArray[np.float64]":
        """Per-disk total energy, summed in power-state definition order.

        The chained elementwise adds reproduce the object meter's
        ``sum(energy_j.values())`` order exactly, so each entry is
        bit-identical to ``EnergyMeter.total_energy_j`` for that disk.
        """
        e = self.energy_j
        total = e[:, 0] + e[:, 1]
        for col in range(2, N_POWER_STATES):
            total = total + e[:, col]
        return total

    def total_energy_j(self) -> float:
        """Array-wide energy; disk-index summation order matches
        ``sum(d.energy.total_energy_j for d in drives)`` exactly."""
        total = 0.0
        for value in self.total_energy_j_per_disk().tolist():  # repro: allow[NUM002] bit-identity: must reduce in the object path's disk order, not np.sum's pairwise order
            total += value
        return total

    def snapshot(self, now_s: float) -> ArraySnapshot:
        """Freeze the whole-array operating point: one copy per buffer.

        Flush the ledgers first (``DiskArray.finalize``) so the energy
        and temperature columns are exact as of ``now_s``.
        """
        return ArraySnapshot(
            time_s=now_s,
            utilization_pct=self.utilization_pct(now_s),
            temperature_c=self.temp_c.copy(),
            speed_code=self.speed_code.copy(),
            phase_code=self.phase_code.copy(),
            queue_depth=self.queue_depth.copy(),
            energy_j=self.total_energy_j_per_disk(),
        )

    # ------------------------------------------------------------------
    # the batched kernel step (fixed-timestep fluid form of the model)
    # ------------------------------------------------------------------
    def batch_step(self, dt: float,
                   arrivals_mb: "npt.NDArray[np.float64] | None" = None) -> int:
        """Advance every disk by one ``dt`` tick with array ops only.

        One call performs, across all ``n_disks`` slots at once:

        * **admission** — ``arrivals_mb`` (per-disk MB of new work) joins
          the outstanding ``backlog_mb``;
        * **queue drain** — each up disk serves
          ``min(backlog, transfer_rate(speed) * dt)``;
        * **energy accrual** — active/idle wattage at the disk's speed,
          split by the fraction of the tick spent transferring, charged
          into the same per-state ledger columns the exact path uses;
        * **thermal relaxation** — the closed-form exponential approach
          toward the speed's steady temperature, with the exact time
          integral accumulated.

        Returns the number of per-disk lane updates performed (one per
        disk), which is what the batched-kernel throughput benchmark
        counts.  The fluid tick is *not* the exact event-driven path —
        it has no per-request queueing — so it backs throughput
        benchmarking and coarse capacity modeling, never
        :class:`~repro.experiments.metrics.SimulationResult` numbers.
        """
        if not (dt > 0.0) or dt == _INF:
            require_positive(dt, "dt")
        n = self.n_disks
        speed = self.speed_code
        # failed slots exist only after fault injection / explicit marking;
        # FAILED (3) is the largest phase code, so one max() detects them
        any_failed = int(self.phase_code.max()) == PHASE_FAILED

        backlog = self.backlog_mb
        if arrivals_mb is not None:
            backlog += arrivals_mb
        rate = self._transfer_mb_s[speed]
        capacity = rate * dt
        if any_failed:
            up = self.phase_code != PHASE_FAILED
            capacity = capacity * up
        served = np.minimum(backlog, capacity)
        backlog -= served
        self.mb_served += served

        # transfer rates are strictly positive, so capacity only hits
        # zero on failed slots — guard the division just for that case
        if any_failed:
            with np.errstate(divide="ignore", invalid="ignore"):
                busy_frac = np.where(capacity > 0.0, served / capacity, 0.0)
        else:
            busy_frac = served / capacity
        active_dt = busy_frac * dt
        idle_dt = dt - active_dt
        if any_failed:
            idle_dt *= up

        # split the tick into the four speed x activity ledger columns
        # via boolean mask products (cheaper than fancy-index scatters)
        high = speed.view(np.bool_)   # speed codes are 0/1 in int8
        low = ~high
        il = idle_dt * low
        ih = idle_dt * high
        al = active_dt * low
        ah = active_dt * high
        t = self.energy_time_s
        e = self.energy_j
        t[:, 0] += il
        t[:, 1] += ih
        t[:, 2] += al
        t[:, 3] += ah
        e[:, 0] += self._idle_w[0] * il
        e[:, 1] += self._idle_w[1] * ih
        e[:, 2] += self._active_w[0] * al
        e[:, 3] += self._active_w[1] * ah

        steady = self._steady_c[speed]
        if any_failed:
            steady = np.where(up, steady, self.temp_c)
        decay = _exp(-dt / self.tau_s)
        t0 = self.temp_c
        delta = t0 - steady
        self.temp_c = steady + delta * decay
        self.thermal_integral_c_s += steady * dt + delta * (self.tau_s * (1.0 - decay))
        self.thermal_elapsed_s += dt

        busy = served > 0.0
        if any_failed:
            phase = np.where(up, busy.view(np.int8), np.int8(PHASE_FAILED))
            self.phase_code = phase.astype(np.int8, copy=False)
        else:
            # PHASE_IDLE/PHASE_BUSY are 0/1: the busy mask IS the phase
            self.phase_code = busy.view(np.int8)
        self.queue_depth = np.ceil(backlog / rate).astype(np.int64)
        return n


# ----------------------------------------------------------------------
# write-back ledgers (object-ledger hot path, slot-backed reads)
# ----------------------------------------------------------------------
class SoAEnergyMeter(EnergyMeter):
    """An :class:`EnergyMeter` that publishes into an ``ArrayState`` row.

    The per-event hot path (``accumulate`` on every accounting edge) is
    *inherited unchanged* — Python-dict accumulators, because a NumPy
    scalar indexed read-modify-write costs ~10x a dict update and would
    slow whole event-driven runs by ~30%.  :meth:`sync` copies the dict
    values into the slot row; every vectorized reader goes through
    ``DiskArray.finalize()``, which syncs first, so the buffers are
    exact whenever they are read.  Bit-identity is structural: the
    arithmetic *is* the object meter's, and the sync is a lossless
    float64 copy.
    """

    def __init__(self, params: TwoSpeedDiskParams, state: ArrayState,
                 disk_id: int) -> None:
        super().__init__(params)
        self._time_row = state.energy_time_s[disk_id]
        self._energy_row = state.energy_j[disk_id]

    def sync(self) -> None:
        """Publish the accumulators into the array slot (lossless copy)."""
        # dict insertion order == DiskPowerState definition order == column order
        self._time_row[:] = list(self._time_s.values())
        self._energy_row[:] = list(self._energy_j.values())


class SoAThermalModel(ThermalModel):
    """A :class:`ThermalModel` that publishes into ``ArrayState`` slots.

    ``advance`` (and its scalar ``math.exp`` — ``np.exp`` is not
    bit-identical on SIMD builds) is inherited unchanged; :meth:`sync`
    writes the trajectory triple into the shared buffers.
    """

    def __init__(self, state: ArrayState, disk_id: int, *,
                 initial_c: float, tau_s: float = DEFAULT_TAU_S) -> None:
        super().__init__(initial_c=initial_c, tau_s=tau_s)
        self._soa = state
        self._i = disk_id
        self.sync()

    def sync(self) -> None:
        """Publish temperature, integral, and elapsed time into the slot."""
        state, i = self._soa, self._i
        state.temp_c[i] = self._temp_c
        state.thermal_integral_c_s[i] = self._integral_c_s
        state.thermal_elapsed_s[i] = self._elapsed_s


class SoADiskStats(DiskStats):
    """A :class:`DiskStats` that publishes into ``ArrayState`` slots.

    Counters stay plain Python ints/floats (the recorders are inherited
    unchanged); the per-day transition histogram stays a dict (sparse,
    never whole-array read).  :meth:`sync` publishes the four counters
    whole-array readers consume.
    """

    def __init__(self, state: ArrayState, disk_id: int) -> None:  # noqa: D107
        super().__init__(disk_id)
        self._state = state

    def sync(self) -> None:
        """Publish the scalar counters into the array slot."""
        state, i = self._state, self.disk_id
        state.mb_served[i] = self.mb_served
        state.requests_served[i] = self.requests_served
        state.internal_jobs_served[i] = self.internal_jobs_served
        state.speed_transitions[i] = self.speed_transitions_total
