"""The two-speed drive state machine.

One drive is, at any instant, in exactly one *phase* —

* ``IDLE``          — spinning at its current speed, queue empty;
* ``BUSY``          — transferring one job (FCFS, single actuator);
* ``TRANSITIONING`` — switching spindle speed; serves nothing (Sec. 4:
  "no requests can be served when a disk is switching its speed").

Transitions between phases drive three side ledgers in lock-step: the
:class:`~repro.disk.energy.EnergyMeter` (power state residency), the
:class:`~repro.disk.thermal.ThermalModel` (temperature trajectory), and
:class:`~repro.disk.stats.DiskStats` (throughput and transition counts).
The pattern is *account-then-change*: every state change first charges
the elapsed interval to the outgoing state, so the ledgers are exact by
construction and ``sum(state times) == power-on time`` is an invariant
the test suite checks.

Speed-change semantics
----------------------
Policies call :meth:`TwoSpeedDrive.request_speed`.  A request for the
current speed is a no-op (and clears any opposite pending request).  If
the drive is idle the transition starts immediately; if it is busy the
transition is *deferred* and starts when the in-flight transfer
completes — queued jobs then wait out the transition and resume at the
new speed.  This matches the paper's model where a spin-up triggered by
queued work delays that work by the transition time.
"""

from __future__ import annotations

import enum
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.disk.energy import STATE_INDEX, DiskPowerState, EnergyMeter
from repro.disk.ledger import OpenDiskLedger
from repro.disk.parameters import AMBIENT_TEMPERATURE_C, DiskSpeed, TwoSpeedDiskParams
from repro.disk.state import (
    ArrayState,
    SoADiskStats,
    SoAEnergyMeter,
    SoAThermalModel,
)
from repro.disk.stats import DiskStats
from repro.disk.thermal import ThermalModel
from repro.obs import events as ev
from repro.sim.engine import EventHandle, Simulator
from repro.util.validation import require_positive
from repro.workload.request import Request

__all__ = ["DrivePhase", "Job", "TwoSpeedDrive"]

_INF = math.inf


class DrivePhase(enum.Enum):
    """Mutually exclusive operating phases of a drive."""

    IDLE = "idle"
    BUSY = "busy"
    TRANSITIONING = "transitioning"
    #: The drive has failed and is out of service (fault injection);
    #: it draws no power, serves nothing, and drops submitted work.
    FAILED = "failed"


#: Dense code per phase, published into ``ArrayState.phase_code`` on
#: sync.  Definition order matches ``repro.disk.state.PHASE_NAMES``.
_PHASE_CODE: dict[DrivePhase, int] = {p: i for i, p in enumerate(DrivePhase)}


class QueueDiscipline(enum.Enum):
    """How a drive picks the next job from its queue.

    FCFS is the paper's (implicit) model and the default everywhere.
    SJF (shortest job first, non-preemptive) is provided for the classic
    mean-response-vs-tail trade-off ablation on heavy-tailed web sizes:
    it lowers the mean by letting small files jump the large-transfer
    queue, at the cost of large files' tail latency.
    """

    FCFS = "fcfs"
    SJF = "sjf"


@dataclass(slots=True)
class Job:
    """A unit of disk work: either a user request or internal data movement.

    Internal jobs (MAID cache copies, PDC/READ migrations) consume disk
    time and energy exactly like user requests but are excluded from
    response-time metrics — the paper charges migration overhead to
    energy and queueing, not to the response-time average directly.
    """

    size_mb: float
    internal: bool = False
    request: Optional[Request] = None
    on_complete: Optional[Callable[["Job"], None]] = None
    enqueue_time: float = field(default=-1.0)
    service_start: float = field(default=-1.0)
    completion_time: float = field(default=-1.0)
    #: Set when the serving disk failed before the transfer finished;
    #: ``on_complete`` still fires so owners can retry or clean up.
    failed: bool = field(default=False)

    def __post_init__(self) -> None:
        if not (0.0 < self.size_mb < _INF):
            require_positive(self.size_mb, "size_mb")

    @classmethod
    def for_request(cls, request: Request,
                    on_complete: Optional[Callable[["Job"], None]] = None) -> "Job":
        """Wrap a user request into a schedulable job.

        ``request.size_mb`` was already validated by
        ``Request.__post_init__``, so this runs the fast direct-slot
        construction instead of the validating dataclass init (one Job
        per routed request — it is a hot path).
        """
        job = cls.__new__(cls)
        job.size_mb = request.size_mb
        job.internal = False
        job.request = request
        job.on_complete = on_complete
        job.enqueue_time = -1.0
        job.service_start = -1.0
        job.completion_time = -1.0
        job.failed = False
        return job

    @classmethod
    def internal_transfer(cls, size_mb: float,
                          on_complete: Optional[Callable[["Job"], None]] = None) -> "Job":
        """A policy-generated transfer (migration read/write, cache copy)."""
        return cls(size_mb=size_mb, internal=True, on_complete=on_complete)


class TwoSpeedDrive:
    """Event-driven model of one two-speed disk.

    Parameters
    ----------
    sim:
        The shared simulation kernel.
    params:
        Device characteristics (see :func:`repro.disk.cheetah_two_speed`).
    disk_id:
        Dense index within the array.
    initial_speed:
        Spindle speed at t = 0 (policies configure zones before traffic).
    on_idle / on_busy:
        Optional hooks fired when the queue drains (arm an idleness
        timer) and when the drive leaves idle for work (cancel it).
    state:
        Optional shared :class:`~repro.disk.state.ArrayState`.  When
        given, the drive publishes its ledgers and its live
        speed/phase/queue-depth into the array's slot ``disk_id`` on
        every :meth:`finalize` (struct-of-arrays backend).  The hot
        path is the unmodified object-ledger arithmetic — the sync is
        a lossless write-back — so results are bit-identical to the
        object backend.
    """

    #: Event priority for job completions — fire before same-time timers.
    _PRIO_COMPLETE = 0
    #: Event priority for transition completions.
    _PRIO_TRANSITION = 1

    def __init__(self, sim: Simulator, params: TwoSpeedDiskParams, disk_id: int, *,
                 initial_speed: DiskSpeed = DiskSpeed.HIGH,
                 queue_discipline: QueueDiscipline = QueueDiscipline.FCFS,
                 on_idle: Optional[Callable[[int], None]] = None,
                 on_busy: Optional[Callable[[int], None]] = None,
                 state: Optional[ArrayState] = None) -> None:
        self._sim = sim
        # Cached trace-bus reference: None on the default path, so every
        # emission site is a single attribute load + is-None branch.
        self._trace = sim.trace
        self.params = params
        self.disk_id = disk_id
        self.queue_discipline = queue_discipline
        self.on_idle = on_idle
        self.on_busy = on_busy

        self._speed = initial_speed
        self._phase = DrivePhase.IDLE
        self._transition_target: Optional[DiskSpeed] = None
        self._pending_target: Optional[DiskSpeed] = None
        self._queue: deque[Job] = deque()
        self._current: Optional[Job] = None
        # handles to the in-flight completion/transition events, kept so
        # fault injection can cancel them when the drive dies mid-work
        self._completion_event: Optional[EventHandle] = None
        self._transition_event: Optional[EventHandle] = None

        # Drives were already spinning before the trace window opens, so
        # they start at their speed's steady temperature, not at ambient
        # (a cold start would understate every policy's temperature AFR
        # on short traces).
        initial_c = params.mode(initial_speed).steady_temp_c
        self._soa = state
        if state is None:
            self.stats = DiskStats(disk_id)
            self.energy = EnergyMeter(params)
            self.thermal = ThermalModel(initial_c=initial_c)
            self._soa_syncs: tuple[Callable[[], None], ...] = ()
        else:
            stats = SoADiskStats(state, disk_id)
            energy = SoAEnergyMeter(params, state, disk_id)
            thermal = SoAThermalModel(state, disk_id, initial_c=initial_c)
            self.stats, self.energy, self.thermal = stats, energy, thermal
            self._soa_syncs = (energy.sync, thermal.sync, stats.sync)
            state.start_time_s[disk_id] = sim.now
        self._last_account_s = sim.now
        self._start_time_s = sim.now
        self._refresh_speed_cache()
        if state is not None:
            self._sync_soa()

    def _refresh_speed_cache(self) -> None:
        """Re-derive the per-speed constants the service loop reads per job.

        Called on every ``_speed`` change so :meth:`_dispatch` computes
        service times from plain floats instead of re-resolving the mode.
        The arithmetic (``positioning + size / rate``) matches
        :meth:`SpeedModeParams.service_time_s` term for term, so results
        are bit-identical.
        """
        mode = self.params.mode(self._speed)
        self._svc_positioning_s = mode.avg_seek_s + mode.avg_rot_latency_s
        self._svc_transfer_mb_s = mode.transfer_mb_s
        self._steady_c_at_speed = mode.steady_temp_c

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def speed(self) -> DiskSpeed:
        """Current spindle speed (the *origin* speed while transitioning)."""
        return self._speed

    @property
    def phase(self) -> DrivePhase:
        """Current operating phase."""
        return self._phase

    @property
    def queue_length(self) -> int:
        """Jobs waiting (excluding the one in service)."""
        return len(self._queue)

    @property
    def is_idle(self) -> bool:
        """True when spinning idle with an empty queue."""
        return self._phase is DrivePhase.IDLE

    @property
    def is_failed(self) -> bool:
        """True while the drive is failed/out of service (fault injection)."""
        return self._phase is DrivePhase.FAILED

    @property
    def effective_target_speed(self) -> DiskSpeed:
        """The speed the drive is at or headed to (incl. deferred requests)."""
        if self._pending_target is not None:
            return self._pending_target
        if self._transition_target is not None:
            return self._transition_target
        return self._speed

    def power_on_time_s(self) -> float:
        """Seconds since this drive was created (all states count as on)."""
        return self._sim.now - self._start_time_s

    def utilization(self) -> float:
        """Active-time fraction per the paper's Sec. 3.3 definition.

        Includes time-in-flight of the current job only after accounting,
        so call :meth:`finalize` (or read after a state change) for exact
        end-of-run values.
        """
        elapsed = self.power_on_time_s()
        if elapsed <= 0.0:
            return 0.0
        return min(self.energy.active_time_s / elapsed, 1.0)

    def estimated_wait_s(self) -> float:
        """Crude wait estimate: queued work at the current speed plus any
        remaining transition time.  Policies use this for spin-up
        decisions; it deliberately ignores the in-flight job's residual.
        """
        mode = self.params.mode(self.effective_target_speed)
        backlog = sum(mode.service_time_s(j.size_mb) for j in self._queue)
        if self._phase is DrivePhase.TRANSITIONING:
            backlog += self.params.transition_time_s  # upper bound on residual
        return backlog

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def _current_power_state(self) -> DiskPowerState:
        if self._phase is DrivePhase.TRANSITIONING:
            return DiskPowerState.TRANSITION
        return DiskPowerState.of(self._phase is DrivePhase.BUSY, self._speed)

    def _steady_temp_c(self) -> float:
        if self._phase is DrivePhase.TRANSITIONING:
            assert self._transition_target is not None
            return self.params.mode(self._transition_target).steady_temp_c
        return self._steady_c_at_speed

    def _account(self) -> None:
        """Charge the interval since the last state change to that state.

        The state/steady-temperature selection mirrors
        :meth:`_current_power_state` / :meth:`_steady_temp_c` but is
        inlined: accounting runs on every dispatch, completion, and
        transition edge.
        """
        now = self._sim.now
        dt = now - self._last_account_s
        if dt > 0.0:
            phase = self._phase
            if phase is DrivePhase.FAILED:
                # a dead spindle draws no power; it cools toward ambient
                self.thermal.advance(dt, AMBIENT_TEMPERATURE_C)
                self._last_account_s = now
                return
            if phase is DrivePhase.TRANSITIONING:
                state = DiskPowerState.TRANSITION
                target = self._transition_target
                assert target is not None
                steady_c = self.params.mode(target).steady_temp_c
            else:
                high = self._speed is DiskSpeed.HIGH
                if phase is DrivePhase.BUSY:
                    state = DiskPowerState.ACTIVE_HIGH if high else DiskPowerState.ACTIVE_LOW
                else:
                    state = DiskPowerState.IDLE_HIGH if high else DiskPowerState.IDLE_LOW
                steady_c = self._steady_c_at_speed
            self.energy.accumulate(state, dt)
            self.thermal.advance(dt, steady_c)
            self._last_account_s = now

    def open_ledger(self) -> OpenDiskLedger:
        """Capture the raw accumulator state *without* the final flush.

        Used by sharded runs (``repro.experiments.shard``): the shard's
        sub-simulation stops at its local end time, but the merged
        result must charge each disk's final open interval up to the
        *global* end time in a single accounting step — exactly what
        :meth:`finalize` would have done there.  The returned ledger is
        picklable and :meth:`~repro.disk.ledger.OpenDiskLedger.close`
        performs that step with bit-identical arithmetic.

        Valid on both kernel backends: the SoA ledgers keep the object
        hot-path accumulators current, so the capture reads the same
        values either way.
        """
        energy, thermal, stats = self.energy, self.thermal, self.stats
        if self._phase is DrivePhase.FAILED:
            state_index: Optional[int] = None
            power_w = 0.0
            steady_c = AMBIENT_TEMPERATURE_C
        else:
            state = self._current_power_state()
            state_index = STATE_INDEX[state]
            power_w = energy.power_w(state)
            steady_c = self._steady_temp_c()
        return OpenDiskLedger(
            disk_id=self.disk_id,
            last_account_s=self._last_account_s,
            time_s=tuple(energy.time_s(s) for s in DiskPowerState),
            energy_j=tuple(energy.energy_j(s) for s in DiskPowerState),
            state_index=state_index,
            power_w=power_w,
            steady_c=steady_c,
            temp_c=thermal.temperature_c,
            integral_c_s=thermal.integral_c_s,
            elapsed_s=thermal.elapsed_s,
            tau_s=thermal.tau_s,
            requests_served=stats.requests_served,
            internal_jobs_served=stats.internal_jobs_served,
            mb_served=stats.mb_served,
            transitions_total=stats.speed_transitions_total,
            transitions_by_day=tuple(sorted(stats.transitions_by_day.items())),
        )

    def finalize(self) -> None:
        """Flush accounting up to the current simulation time.

        Call once at the end of a run before reading energy, utilization,
        or temperature; safe to call repeatedly.  On the SoA backend this
        also publishes the ledgers and the live operating point into the
        shared :class:`~repro.disk.state.ArrayState` slot, so vectorized
        whole-array reads are exact after an array-wide finalize.
        """
        self._account()
        if self._soa is not None:
            self._sync_soa()

    def _sync_soa(self) -> None:
        """Write-back the ledgers and speed/phase/queue into the slot."""
        for sync in self._soa_syncs:
            sync()
        soa = self._soa
        assert soa is not None
        i = self.disk_id
        soa.speed_code[i] = int(self._speed)
        soa.phase_code[i] = _PHASE_CODE[self._phase]
        soa.queue_depth[i] = len(self._queue)

    # ------------------------------------------------------------------
    # work submission
    # ------------------------------------------------------------------
    def submit(self, job: Job) -> None:
        """Enqueue a job; service starts immediately if the drive is idle.

        Submitting to a failed drive fails the job synchronously (its
        ``on_complete`` fires with ``job.failed`` set) instead of queueing
        work that could never be served.
        """
        now = self._sim.now
        job.enqueue_time = now
        trace = self._trace
        if trace is not None:
            request = job.request
            trace.emit(ev.REQUEST_SUBMIT, now, disk=self.disk_id,
                       size_mb=job.size_mb, internal=job.internal,
                       file=request.file_id if request is not None else None)
        phase = self._phase
        if phase is DrivePhase.IDLE:
            self._queue.append(job)
            if self.on_busy is not None:
                self.on_busy(self.disk_id)
            self._dispatch()
            return
        if phase is DrivePhase.FAILED:
            job.failed = True
            if trace is not None:
                trace.emit(ev.REQUEST_FAIL, now, disk=self.disk_id,
                           internal=job.internal, reason="submitted_to_failed_disk")
            if job.on_complete is not None:
                job.on_complete(job)
            return
        self._queue.append(job)

    # ------------------------------------------------------------------
    # speed control
    # ------------------------------------------------------------------
    def force_speed(self, target: DiskSpeed) -> None:
        """Pre-deployment speed configuration: instant, free, uncounted.

        Policies use this during ``initial_layout`` to set up zones (READ
        "configures HD disks to high speed mode and CD disks to low
        speed mode" before traffic starts); it is *not* a runtime
        transition, so it charges no time, energy, or transition count.
        Only legal while the drive is idle with an empty queue.
        """
        if self._phase is not DrivePhase.IDLE or self._queue:
            raise RuntimeError("force_speed is only valid on an idle, empty drive")
        self._account()
        self._speed = target
        self._refresh_speed_cache()
        self._pending_target = None
        if self._sim.now == self._start_time_s:  # repro: allow[NUM001] exact check: has any simulated time elapsed at all
            # pre-traffic configuration: the drive has "always" been at
            # this speed, so it starts at the matching steady temperature
            self.thermal.reset(temperature_c=self.params.mode(target).steady_temp_c)

    def request_speed(self, target: DiskSpeed) -> bool:
        """Ask the drive to move to ``target`` speed.

        Returns ``True`` if a transition was started or newly deferred,
        ``False`` if it was a no-op (already there / already heading
        there, or the drive is failed).  The caller (policy) is
        responsible for any transition budget checks *before* calling.
        """
        if self._phase is DrivePhase.FAILED:
            return False
        if self._phase is DrivePhase.TRANSITIONING:
            if self._transition_target is target:
                self._pending_target = None
                return False
            # reversal while mid-transition: remember it for completion time
            self._pending_target = target
            return True
        if self._speed is target:
            self._pending_target = None
            return False
        if self._phase is DrivePhase.BUSY:
            if self._pending_target is target:
                return False
            self._pending_target = target
            return True
        self._begin_transition(target)
        return True

    def _begin_transition(self, target: DiskSpeed) -> None:
        assert self._phase is DrivePhase.IDLE
        self._account()
        self._phase = DrivePhase.TRANSITIONING
        self._transition_target = target
        self._pending_target = None
        self.stats.record_transition(self._sim.now)
        if self._trace is not None:
            self._trace.emit(ev.DISK_TRANSITION_BEGIN, self._sim.now,
                             disk=self.disk_id,
                             **{"from": self._speed.name.lower(),
                                "to": target.name.lower()})
        self._transition_event = self._sim.schedule(
            self.params.transition_time_s, self._end_transition,
            priority=self._PRIO_TRANSITION)

    def _end_transition(self) -> None:
        assert self._transition_target is not None
        self._transition_event = None
        self._account()
        self._speed = self._transition_target
        self._refresh_speed_cache()
        self._transition_target = None
        self._phase = DrivePhase.IDLE
        if self._trace is not None:
            self._trace.emit(ev.DISK_TRANSITION_END, self._sim.now,
                             disk=self.disk_id, speed=self._speed.name.lower())
        if self._pending_target is not None and self._pending_target is not self._speed:
            target, self._pending_target = self._pending_target, None
            self._begin_transition(target)
            return
        self._pending_target = None
        self._dispatch()

    # ------------------------------------------------------------------
    # fault lifecycle (driven by repro.faults)
    # ------------------------------------------------------------------
    def fail(self) -> list[Job]:
        """Take the drive out of service immediately.

        The in-flight transfer (if any) and every queued job are failed:
        each gets ``job.failed`` set and its ``on_complete`` fired so
        owners can retry elsewhere or record the loss.  Pending
        completion/transition events are cancelled; any deferred speed
        request is dropped.  Returns the failed jobs (served-first order).
        Failing an already-failed drive is a no-op.
        """
        if self._phase is DrivePhase.FAILED:
            return []
        self._account()
        dropped: list[Job] = []
        if self._completion_event is not None:
            self._sim.cancel(self._completion_event)
            self._completion_event = None
        if self._transition_event is not None:
            self._sim.cancel(self._transition_event)
            self._transition_event = None
        if self._current is not None:
            dropped.append(self._current)
            self._current = None
        dropped.extend(self._queue)
        self._queue.clear()
        self._phase = DrivePhase.FAILED
        self._transition_target = None
        self._pending_target = None
        trace = self._trace
        for job in dropped:
            job.failed = True
            if trace is not None:
                trace.emit(ev.REQUEST_FAIL, self._sim.now, disk=self.disk_id,
                           internal=job.internal, reason="disk_failed")
            if job.on_complete is not None:
                job.on_complete(job)
        return dropped

    def replace_with_new_spindle(self, *, speed: DiskSpeed = DiskSpeed.HIGH) -> None:
        """Swap in a replacement drive (failed -> idle, empty, at ``speed``).

        Models the operator installing a fresh spindle: the replacement
        boots directly at ``speed`` (no transition charged — it spun up
        outside the array, like the t = 0 configuration) and is ready to
        take the rebuild stream.  Energy/thermal/stats ledgers continue —
        the slot, not the physical spindle, is the unit the experiment
        accounts (matching how the array AFR aggregates per slot).
        """
        if self._phase is not DrivePhase.FAILED:
            raise RuntimeError("replace_with_new_spindle requires a failed drive")
        self._account()
        self._phase = DrivePhase.IDLE
        self._speed = speed
        self._refresh_speed_cache()
        if self._trace is not None:
            self._trace.emit(ev.DISK_REPLACE, self._sim.now,
                             disk=self.disk_id, speed=speed.name.lower())

    # ------------------------------------------------------------------
    # service loop
    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        """From IDLE, start pending transition or next job (or stay idle)."""
        assert self._phase is DrivePhase.IDLE
        if self._pending_target is not None and self._pending_target is not self._speed:
            target, self._pending_target = self._pending_target, None
            self._begin_transition(target)
            return
        self._pending_target = None
        if not self._queue:
            if self.on_idle is not None:
                self.on_idle(self.disk_id)
            return
        queue = self._queue
        if self.queue_discipline is QueueDiscipline.FCFS or len(queue) == 1:
            job = queue.popleft()
        else:
            job = self._pick_next()
        now = self._sim.now
        if now != self._last_account_s:  # repro: allow[NUM001] propagated timestamp: dedupes the accounting call chained off _complete
            self._account()
        self._phase = DrivePhase.BUSY
        self._current = job
        job.service_start = now
        request = job.request
        if request is not None:
            request.service_start = now
            request.served_by = self.disk_id
        # inlined SpeedModeParams.service_time_s via the speed cache
        service_s = self._svc_positioning_s + job.size_mb / self._svc_transfer_mb_s
        if self._trace is not None:
            self._trace.emit(ev.REQUEST_DISPATCH, now, disk=self.disk_id,
                             wait_s=now - job.enqueue_time,
                             service_s=service_s, internal=job.internal)
        self._completion_event = self._sim.schedule(
            service_s, self._complete, priority=self._PRIO_COMPLETE)

    def _pick_next(self) -> Job:
        """Dequeue per the configured discipline (FIFO ties under SJF).

        The FCFS/single-entry shortcut is inlined in :meth:`_dispatch`;
        this handles the SJF scan.
        """
        if self.queue_discipline is QueueDiscipline.FCFS or len(self._queue) == 1:
            return self._queue.popleft()
        best = min(range(len(self._queue)), key=lambda i: self._queue[i].size_mb)
        job = self._queue[best]
        del self._queue[best]
        return job

    def _complete(self) -> None:
        job = self._current
        assert job is not None and self._phase is DrivePhase.BUSY
        self._completion_event = None
        self._account()
        self._phase = DrivePhase.IDLE
        self._current = None
        now = self._sim.now
        job.completion_time = now
        request = job.request
        if request is not None:
            request.completion_time = now
        self.stats.record_service(job.size_mb, job.internal)
        if self._trace is not None:
            self._trace.emit(ev.REQUEST_COMPLETE, now, disk=self.disk_id,
                             size_mb=job.size_mb,
                             sojourn_s=now - job.enqueue_time,
                             internal=job.internal)
        if job.on_complete is not None:
            job.on_complete(job)
        self._dispatch()
