"""Per-drive energy metering.

Energy is ``sum(power(state) * time_in_state)`` over the five power
states of a two-speed drive.  The meter is a pure accumulator — the drive
state machine tells it which state ruled each interval, which keeps the
accounting exact regardless of event ordering and makes "total time in
states == wall clock" an easily testable invariant.
"""

from __future__ import annotations

import enum
import math

from repro.disk.parameters import DiskSpeed, TwoSpeedDiskParams
from repro.util.validation import require_non_negative

_INF = math.inf

__all__ = ["DiskPowerState", "EnergyMeter", "STATE_INDEX", "N_POWER_STATES"]


class DiskPowerState(enum.Enum):
    """The five power-distinguishable states of a two-speed drive."""

    IDLE_LOW = "idle_low"
    IDLE_HIGH = "idle_high"
    ACTIVE_LOW = "active_low"
    ACTIVE_HIGH = "active_high"
    TRANSITION = "transition"

    # members are singletons, so identity hashing is exact — and it avoids
    # enum's Python-level __hash__ on the metering path's dict lookups
    __hash__ = object.__hash__

    @staticmethod
    def of(active: bool, speed: DiskSpeed) -> "DiskPowerState":
        """State for a (serving?, speed) pair outside of transitions."""
        if active:
            return DiskPowerState.ACTIVE_HIGH if speed is DiskSpeed.HIGH else DiskPowerState.ACTIVE_LOW
        return DiskPowerState.IDLE_HIGH if speed is DiskSpeed.HIGH else DiskPowerState.IDLE_LOW


#: Dense column index of each power state in struct-of-arrays ledgers
#: (definition order; see :class:`repro.disk.state.ArrayState`).
STATE_INDEX: dict[DiskPowerState, int] = {s: i for i, s in enumerate(DiskPowerState)}

#: Number of power-distinguishable states (column count of SoA ledgers).
N_POWER_STATES = len(DiskPowerState)


class EnergyMeter:
    """Accumulates energy and residence time per power state."""

    def __init__(self, params: TwoSpeedDiskParams) -> None:
        self._params = params
        self._power = {
            DiskPowerState.IDLE_LOW: params.low.idle_w,
            DiskPowerState.IDLE_HIGH: params.high.idle_w,
            DiskPowerState.ACTIVE_LOW: params.low.active_w,
            DiskPowerState.ACTIVE_HIGH: params.high.active_w,
            DiskPowerState.TRANSITION: params.transition_power_w,
        }
        self._energy_j = {state: 0.0 for state in DiskPowerState}
        self._time_s = {state: 0.0 for state in DiskPowerState}

    def power_w(self, state: DiskPowerState) -> float:
        """Power draw of ``state`` in watts."""
        return self._power[state]

    def accumulate(self, state: DiskPowerState, dt: float) -> None:
        """Charge ``dt`` seconds spent in ``state``."""
        if not (dt >= 0.0) or dt == _INF:  # also rejects NaN
            require_non_negative(dt, "dt")
        self._time_s[state] += dt
        self._energy_j[state] += self._power[state] * dt

    # ------------------------------------------------------------------
    @property
    def total_energy_j(self) -> float:
        """Total energy across all states, joules."""
        return sum(self._energy_j.values())

    @property
    def total_time_s(self) -> float:
        """Total metered time across all states, seconds."""
        return sum(self._time_s.values())

    def energy_j(self, state: DiskPowerState) -> float:
        """Energy spent in one state, joules."""
        return self._energy_j[state]

    def time_s(self, state: DiskPowerState) -> float:
        """Time spent in one state, seconds."""
        return self._time_s[state]

    def breakdown(self) -> dict[str, float]:
        """Energy per state keyed by state value (reporting convenience)."""
        return {state.value: self._energy_j[state] for state in DiskPowerState}

    @property
    def active_time_s(self) -> float:
        """Total transfer time at either speed (the numerator of the
        paper's utilization metric, Sec. 3.3)."""
        return (self._time_s[DiskPowerState.ACTIVE_LOW]
                + self._time_s[DiskPowerState.ACTIVE_HIGH])
