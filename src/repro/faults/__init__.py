"""In-simulation fault injection and degraded-mode serving.

The paper's title question — is sacrificing reliability worthwhile? —
needs reliability to be *realized*, not just predicted: PRESS produces
an AFR, but no disk ever fails during the trace-driven run.  This
package closes that loop.  :class:`FaultInjector` samples per-disk
failure times during the simulation from the PRESS-derived hazard
(re-evaluated as each disk's utilization and temperature evolve), drives
the disk lifecycle up -> failed -> rebuilding -> up through ordinary
kernel events, and mediates request routing so the array keeps serving
in degraded mode — redirecting reads to replicas/cache copies where the
layout has them and recording request failures, retries, and data-loss
incidents where it does not.

Everything is deterministic under a fixed :attr:`FaultConfig.seed`, and
with the injector absent (``faults=None`` everywhere) simulations are
bit-identical to fault-free runs.
"""

from repro.faults.config import FaultConfig, parse_faults_spec
from repro.faults.injector import DiskLifecycle, FaultInjector
from repro.faults.metrics import FaultSummary, FaultTracker

__all__ = [
    "DiskLifecycle",
    "FaultConfig",
    "FaultInjector",
    "FaultSummary",
    "FaultTracker",
    "parse_faults_spec",
]
