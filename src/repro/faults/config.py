"""Fault-injection configuration and the CLI ``--faults`` spec parser."""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.util.validation import require, require_non_negative, require_positive

__all__ = ["FaultConfig", "parse_faults_spec"]


@dataclass(frozen=True, slots=True)
class FaultConfig:
    """Knobs of the in-simulation fault injector.

    Attributes
    ----------
    seed:
        Base seed of the per-disk failure-budget streams.  Two runs with
        the same seed, trace, and policy produce identical failure
        schedules (the streams are derived per disk label, so array size
        changes never reshuffle other disks' draws).
    accel:
        Hazard acceleration factor.  Real AFRs are a few percent *per
        year* while traces span hours, so at ``accel=1`` (the physical
        rate) virtually no run would ever see a failure.  The default
        compresses time so that a multi-hour trace sees on the order of
        one failure per few disk-hours — enough to exercise degraded
        mode without turning the run into rubble.  Set 1.0 to measure
        the physical process.
    hazard_refresh_s:
        Period of the hazard re-evaluation tick.  Each tick re-scores
        every up disk's PRESS factors (mean temperature, utilization,
        transition frequency evolve with the workload) and extrapolates
        the resulting failure rate over the next period.
    repair_delay_s:
        Operator response time: seconds between a failure and the
        replacement spindle being installed (rebuild I/O then starts).
    max_retries:
        Resubmissions granted to a request whose serving disk failed
        (or whose file is on a failed disk with no live copy).
    retry_backoff_s:
        Delay before each resubmission.
    retry_timeout_s:
        Wall-clock cap, from arrival, after which a request is failed
        permanently instead of retried again.
    domain_outage_per_year:
        Rate of whole-fault-domain outages (rack power, datacenter
        network), events per domain per year before acceleration.
        Meaningful only when a ``--redundancy`` scheme with more than
        one fault domain is active; 0 (the default) disables the
        correlated-failure sampler entirely, keeping the failure
        schedule identical to pre-redundancy runs.  Outage rates are
        constant (external hazards, unlike the workload-driven PRESS
        per-disk hazard) and are accelerated by ``accel`` like disk
        failures.
    """

    seed: int = 0
    accel: float = 50_000.0
    hazard_refresh_s: float = 60.0
    repair_delay_s: float = 600.0
    max_retries: int = 2
    retry_backoff_s: float = 0.5
    retry_timeout_s: float = 120.0
    domain_outage_per_year: float = 0.0

    def __post_init__(self) -> None:
        require(self.seed >= 0, f"seed must be >= 0, got {self.seed}")
        require_positive(self.accel, "accel")
        require_positive(self.hazard_refresh_s, "hazard_refresh_s")
        require_non_negative(self.repair_delay_s, "repair_delay_s")
        require(self.max_retries >= 0,
                f"max_retries must be >= 0, got {self.max_retries}")
        require_positive(self.retry_backoff_s, "retry_backoff_s")
        require_positive(self.retry_timeout_s, "retry_timeout_s")
        require_non_negative(self.domain_outage_per_year, "domain_outage_per_year")


_INT_FIELDS = {"seed", "max_retries"}


def parse_faults_spec(spec: str) -> FaultConfig:
    """Parse the CLI ``--faults`` value into a :class:`FaultConfig`.

    ``"on"`` enables injection with defaults; otherwise the spec is a
    comma-separated ``key=value`` list over the config fields, e.g.
    ``"seed=7,accel=10000,repair_delay_s=300"``.  Unknown keys, missing
    ``=``, and non-numeric values raise :class:`ValueError` (the CLI
    maps that to exit code 2).
    """
    text = spec.strip()
    if not text:
        raise ValueError("--faults spec must not be empty (use 'on' for defaults)")
    if text.lower() == "on":
        return FaultConfig()
    known = {f.name for f in fields(FaultConfig)}
    kwargs: dict[str, object] = {}
    for part in text.split(","):
        key, sep, value = part.partition("=")
        key = key.strip()
        if not sep:
            raise ValueError(
                f"bad --faults entry {part!r}: expected key=value "
                f"(keys: {', '.join(sorted(known))})")
        if key not in known:
            raise ValueError(
                f"unknown --faults key {key!r}; known: {', '.join(sorted(known))}")
        try:
            kwargs[key] = (int(value) if key in _INT_FIELDS else float(value))
        except ValueError:
            raise ValueError(f"bad --faults value for {key!r}: {value.strip()!r}") from None
    return FaultConfig(**kwargs)
