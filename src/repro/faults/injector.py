"""The in-simulation fault injector.

Hazard sampling
---------------
Each disk d gets an exponential *failure budget* ``u_d ~ Exp(1)`` drawn
once up front from a per-disk deterministic stream (and re-drawn for the
replacement spindle after each rebuild).  Every ``hazard_refresh_s`` the
injector re-scores the disk's PRESS factors — mean temperature,
utilization, and transition frequency all evolve with the workload — and
converts the resulting AFR into an instantaneous failure rate via
:func:`repro.press.hazard.annual_failure_rate_to_rate`, scaled
by the acceleration factor.  The rate is held over the next refresh
period and the integrated hazard ``Lambda_d`` accumulates; when
``Lambda_d + rate * period`` would cross ``u_d`` the failure is
scheduled inside that period at the linearly interpolated instant.  This
is the standard time-rescaling construction of an inhomogeneous Poisson
first arrival, discretized at the refresh period; it is deterministic
given (seed, trace, policy) because the only random draws are the
budgets.

Lifecycle
---------
``UP -> (failure) -> FAILED -> (repair_delay_s) -> REBUILDING -> UP``.
A failure drops the disk's in-flight and queued jobs (their owners'
``on_complete`` callbacks fire with ``job.failed`` set); after the
operator delay a fresh spindle is installed and a single internal job
sized at the disk's used capacity models the rebuild stream — new
requests for that disk queue behind it, which is exactly the
rebuild-storm interference the scenario exists to expose.  Hazard
accumulation is suspended from failure until the rebuild completes.

Degraded-mode serving
---------------------
With an injector installed, every user submit is mediated by
:meth:`FaultInjector.submit_user_request`: requests whose target is down
are redirected to a live alternate copy when the policy has one
(:meth:`repro.policies.base.Policy.alternate_targets`), otherwise they
fail fast and re-enter through the retry path (bounded by
``max_retries`` / ``retry_timeout_s``) so a disk coming back mid-run can
still serve them.

Redundancy groups
-----------------
When a :class:`~repro.redundancy.groups.RedundancyGroups` layout is
attached, the group geometry supersedes the policy's copy metadata on
the whole fault path:

* *Serving*: a request whose target is down reconstructs from the
  group — a mirror read redirects to a live copy, a parity read fans
  ``k`` shard-sized internal legs across survivors and completes on the
  last leg (striped-style fan-in).  A request is unservable only when
  the group has fewer than ``k`` survivors.
* *Census*: the data-loss census at failure time asks the group (any
  ``k`` survivors?) instead of the policy's alternates.
* *Rebuild*: the restoration stream is pipelined — shard/copy read legs
  are fanned across the surviving sources *concurrently* with the
  replacement's write stream (the real rebuild storm: survivors serve
  user traffic and rebuild reads at once).  A lost group falls back to
  the legacy single write stream (a cold restore from external backup).
* *Correlated failures*: ``domain_outage_per_year > 0`` adds per-domain
  outage sampling (constant-rate exponential budgets from the same
  seeded stream family) that fails every up disk of one fault domain at
  the same instant.
* *Health*: every topology change reclassifies the affected group
  (healthy/degraded/critical/lost).  Health uses the injector's
  *lifecycle* view (a disk counts down until its rebuild completes),
  while serving uses the drive view (a REBUILDING disk queues requests
  behind the rebuild stream) — the former describes redundancy slack,
  the latter availability.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from repro.disk.array import DiskArray
from repro.disk.drive import Job
from repro.faults.config import FaultConfig
from repro.faults.metrics import FaultTracker
from repro.obs import events as ev
from repro.policies.base import Policy
from repro.press.hazard import annual_failure_rate_to_rate
from repro.press.model import PRESSModel
from repro.redundancy.ctmc import CtmcResult
from repro.redundancy.groups import GroupHealth, RedundancyGroups
from repro.redundancy.metrics import RedundancySummary, RedundancyTracker
from repro.sim.engine import EventHandle, Simulator
from repro.sim.timers import PeriodicTask
from repro.util.rngtools import fixed_seed_sequence
from repro.util.units import SECONDS_PER_YEAR
from repro.workload.request import Request

__all__ = ["DiskLifecycle", "FaultInjector"]


class DiskLifecycle(enum.Enum):
    """Injector-side view of one disk's fault state."""

    UP = "up"
    FAILED = "failed"
    REBUILDING = "rebuilding"


class FaultInjector:
    """Samples disk failures from the PRESS hazard and mediates serving.

    Event priorities: domain outages (18) and failures (20) fire before
    rebuild starts (22), retries (25), and the hazard refresh (30), so a
    failure scheduled at the exact refresh instant is applied before the
    next hazard scoring, and all of them fire after same-time job
    completions (priority 0).
    """

    _PRIO_DOMAIN = 18
    _PRIO_FAIL = 20
    _PRIO_REBUILD = 22
    _PRIO_RETRY = 25
    _PRIO_REFRESH = 30

    def __init__(self, sim: Simulator, array: DiskArray, policy: Policy,
                 press: PRESSModel, config: FaultConfig, *,
                 on_success: Callable[[Job], None],
                 on_permanent_failure: Callable[[Job], None],
                 redundancy: Optional[RedundancyGroups] = None) -> None:
        self._sim = sim
        self._trace = sim.trace
        self._array = array
        self._policy = policy
        self._press = press
        self.config = config
        self._on_success = on_success
        self._on_permanent_failure = on_permanent_failure
        self.tracker = FaultTracker()
        self._groups = redundancy
        self.rtracker: Optional[RedundancyTracker] = None
        self._group_health: list[GroupHealth] = []
        if redundancy is not None:
            self.rtracker = RedundancyTracker()
            self._group_health = [GroupHealth.HEALTHY] * redundancy.n_groups

        n = array.n_disks
        streams = fixed_seed_sequence(config.seed,
                                      [f"disk-{d}" for d in range(n)])
        self._rngs = [streams[f"disk-{d}"] for d in range(n)]
        #: exponential failure budget per disk (re-drawn after rebuild)
        self._budget = [float(rng.exponential()) for rng in self._rngs]
        #: integrated hazard accumulated toward the budget
        self._hazard = [0.0] * n
        self._lifecycle = [DiskLifecycle.UP] * n
        self._pending_failure: list[Optional[EventHandle]] = [None] * n
        self._pending_rebuild: list[Optional[EventHandle]] = [None] * n
        self._refresh_task: Optional[PeriodicTask] = None
        #: per-year -> per-second, with acceleration folded in once
        self._rate_scale = config.accel / SECONDS_PER_YEAR

        # correlated fault-domain outages: constant-rate exponential
        # budgets from their own label family, so enabling them never
        # perturbs the per-disk draws (and vice versa)
        self._pending_outage: list[Optional[EventHandle]] = []
        self._domain_rate = 0.0
        if (redundancy is not None and config.domain_outage_per_year > 0.0
                and redundancy.scheme.fault_domains > 1):
            n_dom = redundancy.scheme.fault_domains
            dom_streams = fixed_seed_sequence(
                config.seed, [f"domain-{i}" for i in range(n_dom)])
            self._domain_rngs = [dom_streams[f"domain-{i}"]
                                 for i in range(n_dom)]
            self._pending_outage = [None] * n_dom
            self._domain_rate = config.domain_outage_per_year * self._rate_scale
        else:
            self._domain_rngs = []

    # ------------------------------------------------------------------
    # lifecycle of the injector itself
    # ------------------------------------------------------------------
    def install(self) -> None:
        """Attach to the policy and start the hazard refresh ticks."""
        self._policy.fault_domain = self
        self._refresh_task = PeriodicTask(
            self._sim, self.config.hazard_refresh_s, self._refresh,
            priority=self._PRIO_REFRESH)
        for domain in range(len(self._domain_rngs)):
            self._schedule_outage(domain)

    def shutdown(self) -> None:
        """Stop ticks and cancel pending failure/rebuild/outage events."""
        if self._refresh_task is not None:
            self._refresh_task.stop()
            self._refresh_task = None
        for handles in (self._pending_failure, self._pending_rebuild,
                        self._pending_outage):
            for d, handle in enumerate(handles):
                if handle is not None:
                    self._sim.cancel(handle)
                    handles[d] = None

    def lifecycle_of(self, disk_id: int) -> DiskLifecycle:
        """Current fault state of one disk."""
        return self._lifecycle[disk_id]

    # ------------------------------------------------------------------
    # hazard sampling
    # ------------------------------------------------------------------
    def _refresh(self, _tick: int) -> None:
        now = self._sim.now
        period = self.config.hazard_refresh_s
        for d, drive in enumerate(self._array.drives):
            if (self._lifecycle[d] is not DiskLifecycle.UP
                    or self._pending_failure[d] is not None):
                continue
            drive.finalize()
            factors = self._press.factors_of(drive, now)
            # Eq. 3 caps below 100%, so the conversion cannot blow up
            rate = annual_failure_rate_to_rate(factors.afr_percent) * self._rate_scale
            if rate <= 0.0:
                continue
            gap = self._budget[d] - self._hazard[d]
            if rate * period >= gap:
                # budget crossed within the coming period: interpolate
                self._hazard[d] = self._budget[d]
                self._pending_failure[d] = self._sim.schedule(
                    gap / rate, (lambda disk=d: self._fail(disk)),
                    priority=self._PRIO_FAIL)
            else:
                self._hazard[d] += rate * period

    # ------------------------------------------------------------------
    # correlated fault-domain outages
    # ------------------------------------------------------------------
    def _schedule_outage(self, domain: int) -> None:
        delay = float(self._domain_rngs[domain].exponential()) / self._domain_rate
        self._pending_outage[domain] = self._sim.schedule(
            delay, (lambda dom=domain: self._domain_outage(dom)),
            priority=self._PRIO_DOMAIN)

    def _domain_outage(self, domain: int) -> None:
        """Fail every up disk of one fault domain at the same instant."""
        self._pending_outage[domain] = None
        assert self._groups is not None and self.rtracker is not None
        victims = [d for d in self._groups.disks_in_domain(domain)
                   if self._lifecycle[d] is DiskLifecycle.UP]
        self.rtracker.domain_outages += 1
        if self._trace is not None:
            self._trace.emit(ev.FAULT_DOMAIN_OUTAGE, self._sim.now,
                             domain=domain, disks_failed=len(victims))
        for disk_id in victims:
            handle = self._pending_failure[disk_id]
            if handle is not None:
                self._sim.cancel(handle)
                self._pending_failure[disk_id] = None
            self._fail(disk_id)
        self._schedule_outage(domain)

    # ------------------------------------------------------------------
    # redundancy-group bookkeeping
    # ------------------------------------------------------------------
    def _serving_up(self, disk_id: int) -> bool:
        """Serving view: a REBUILDING disk accepts (and queues) reads."""
        return not self._array.drives[disk_id].is_failed

    def _data_up(self, disk_id: int) -> bool:
        """Redundancy view: a disk counts once its data is fully restored."""
        return self._lifecycle[disk_id] is DiskLifecycle.UP

    def _update_group_health(self, group_id: int) -> None:
        assert self._groups is not None and self.rtracker is not None
        new = self._groups.health_of(group_id, self._data_up)
        old = self._group_health[group_id]
        if new is old:
            return
        self._group_health[group_id] = new
        self.rtracker.record_state_change(self._sim.now, group_id, old, new)
        if self._trace is not None:
            self._trace.emit(ev.REDUNDANCY_GROUP_STATE, self._sim.now,
                             group=group_id, **{"from": old.value,
                                                "to": new.value})

    def redundancy_summary(self, ctmc: Optional[CtmcResult]) -> Optional[RedundancySummary]:
        """Freeze the redundancy counters (None when no layout attached)."""
        if self._groups is None or self.rtracker is None:
            return None
        final = tuple(h.value
                      for h in self._groups.health_snapshot(self._data_up))
        return self.rtracker.summarize(
            scheme=self._groups.scheme.name, n_groups=self._groups.n_groups,
            final_states=final, ctmc=ctmc)

    # ------------------------------------------------------------------
    # disk lifecycle
    # ------------------------------------------------------------------
    def _fail(self, disk_id: int) -> None:
        self._pending_failure[disk_id] = None
        if self._lifecycle[disk_id] is not DiskLifecycle.UP:
            return
        now = self._sim.now
        self._lifecycle[disk_id] = DiskLifecycle.FAILED
        self.tracker.record_failure(disk_id, now)

        # data-availability census *before* the policy drops its copy
        # metadata: a file is lost (until rebuild) when every alternate
        # copy is also down.  Under a redundancy layout the group, not
        # the policy, owns the copies: every file on the disk shares
        # the group's fate, so the census is one geometry query.
        lost = 0
        if self._groups is not None and self._groups.scheme.is_redundant:
            if not self._groups.reconstruct_targets(disk_id, self._serving_up):
                lost = len(self._array.files_on(disk_id))
        else:
            for fid in self._array.files_on(disk_id):
                fid = int(fid)
                if not any(alt != disk_id and self._array.disk_is_up(alt)
                           for alt in self._policy.alternate_targets(fid)):
                    lost += 1
        if lost:
            self.tracker.data_loss_events += 1
            self.tracker.files_lost += lost
            if self._trace is not None:
                self._trace.emit(ev.FAULT_DATA_LOSS, now, disk=disk_id,
                                 files_lost=lost)

        # dropping jobs fires their on_complete callbacks (failed=True),
        # which re-enter through on_user_job_complete and schedule retries
        dropped = self._array.fail_disk(disk_id)
        if self._trace is not None:
            self._trace.emit(ev.FAULT_INJECT, now, disk=disk_id,
                             dropped_jobs=len(dropped))
        self._policy.on_disk_failed(disk_id)
        if self._groups is not None:
            self._update_group_health(self._groups.group_of(disk_id))
        self._pending_rebuild[disk_id] = self._sim.schedule(
            self.config.repair_delay_s,
            (lambda disk=disk_id: self._start_rebuild(disk)),
            priority=self._PRIO_REBUILD)

    def _start_rebuild(self, disk_id: int) -> None:
        self._pending_rebuild[disk_id] = None
        self._lifecycle[disk_id] = DiskLifecycle.REBUILDING
        self._array.replace_disk(disk_id)
        size_mb = float(self._array.used_mb[disk_id])
        if self._trace is not None:
            self._trace.emit(ev.FAULT_REBUILD_START, self._sim.now,
                             disk=disk_id, size_mb=size_mb)
        if size_mb <= 0.0:
            self._finish_rebuild(disk_id, rebuild_job=None)
            return
        if self._groups is not None and self._groups.scheme.is_redundant:
            self._fan_rebuild_reads(disk_id, size_mb)
        self._array.submit_internal(
            disk_id, size_mb,
            on_complete=(lambda job, disk=disk_id:
                         self._on_rebuild_complete(disk, job)))

    def _fan_rebuild_reads(self, disk_id: int, size_mb: float) -> None:
        """Fan the restoration's read traffic across surviving sources.

        Parity reconstruction reads one shard-run per source (``k``
        reads of the lost disk's full used size each — the erasure
        rebuild amplification); a mirror copy-stream splits the size
        across the live peers.  The legs run *concurrently* with the
        replacement's write stream (a pipelined rebuild), so their only
        effect on completion is the queueing they inflict on survivors
        — which is the rebuild-storm interference this path models.  A
        lost group has no sources and keeps the bare write stream (a
        cold restore from external backup, charged only to the
        replacement).
        """
        assert self._groups is not None and self.rtracker is not None
        sources = self._groups.rebuild_sources(disk_id, self._serving_up)
        if not sources:
            return
        if self._groups.scheme.kind == "parity":
            leg_mb = size_mb
        else:
            leg_mb = size_mb / len(sources)
        self.rtracker.rebuild_read_legs += len(sources)
        for source in sources:
            # completion is not gated on the legs: a source dying
            # mid-read surfaces as its own failure, not a rebuild abort
            self._array.submit_internal(source, leg_mb,
                                        on_complete=lambda job: None)

    def _on_rebuild_complete(self, disk_id: int, job: Job) -> None:
        if job.failed:
            # the replacement died mid-rebuild (hazard is suspended while
            # rebuilding, so only reachable through external fail_disk
            # calls in tests) — treat it as a fresh failure awaiting repair
            self._lifecycle[disk_id] = DiskLifecycle.FAILED
            self._pending_rebuild[disk_id] = self._sim.schedule(
                self.config.repair_delay_s,
                (lambda disk=disk_id: self._start_rebuild(disk)),
                priority=self._PRIO_REBUILD)
            return
        self._finish_rebuild(disk_id, rebuild_job=job)

    def _finish_rebuild(self, disk_id: int, *, rebuild_job: Optional[Job]) -> None:
        if rebuild_job is not None:
            drive = self._array.drives[disk_id]
            duration = rebuild_job.completion_time - rebuild_job.service_start
            self.tracker.rebuild_energy_j += (
                duration * drive.params.mode(drive.speed).active_w)
        if self.rtracker is not None:
            down_at = self.tracker.down_since.get(disk_id)
            if down_at is not None:
                # failure -> data restored, the CTMC's repair time
                self.rtracker.record_rebuild_duration(self._sim.now - down_at)
        self._lifecycle[disk_id] = DiskLifecycle.UP
        self.tracker.record_restored(disk_id, self._sim.now)
        if self._trace is not None:
            self._trace.emit(ev.FAULT_REBUILD_COMPLETE, self._sim.now,
                             disk=disk_id)
        # fresh spindle, fresh budget; hazard restarts from zero
        self._budget[disk_id] = float(self._rngs[disk_id].exponential())
        self._hazard[disk_id] = 0.0
        self._policy.on_disk_restored(disk_id)
        if self._groups is not None:
            self._update_group_health(self._groups.group_of(disk_id))

    # ------------------------------------------------------------------
    # degraded-mode serving (the FaultDomain protocol)
    # ------------------------------------------------------------------
    def submit_user_request(self, request: Request,
                            disk_id: Optional[int]) -> Job:
        """Mediated submit: redirect around failed disks or fail fast."""
        array = self._array
        target = array.location_of(request.file_id) if disk_id is None else disk_id
        if target < 0:
            raise ValueError(f"file {request.file_id} is not placed on any disk")
        if not array.drives[target].is_failed:
            return array.submit_request(request, disk_id=target,
                                        on_complete=self.on_user_job_complete)
        if self._groups is not None and self._groups.scheme.is_redundant:
            return self._submit_reconstruct(request, target)
        for alt in self._policy.alternate_targets(request.file_id):
            if alt != target and not array.drives[alt].is_failed:
                self.tracker.requests_redirected += 1
                if self._trace is not None:
                    self._trace.emit(ev.REQUEST_REDIRECT, self._sim.now,
                                     file=request.file_id,
                                     **{"from": target, "to": alt})
                return array.submit_request(request, disk_id=alt,
                                            on_complete=self.on_user_job_complete)
        # an explicit non-primary target (cache disk, replica) that died
        # can still fall back to the primary copy
        primary = array.location_of(request.file_id)
        if primary != target and not array.drives[primary].is_failed:
            self.tracker.requests_redirected += 1
            if self._trace is not None:
                self._trace.emit(ev.REQUEST_REDIRECT, self._sim.now,
                                 file=request.file_id,
                                 **{"from": target, "to": primary})
            return array.submit_request(request, disk_id=primary,
                                        on_complete=self.on_user_job_complete)
        # no live copy: synthesize the failed job so the retry/permanent
        # paths are uniform with a mid-service disk death
        job = Job.for_request(request, on_complete=self.on_user_job_complete)
        job.failed = True
        if self._trace is not None:
            self._trace.emit(ev.REQUEST_FAIL, self._sim.now, disk=target,
                             internal=False, reason="no_live_copy")
        self.on_user_job_complete(job)
        return job

    def _submit_reconstruct(self, request: Request, target: int) -> Job:
        """Serve a down target's data from its redundancy group.

        Mirror: a full-size read from the first live copy (one leg).
        Parity: ``k`` shard-sized internal reads fanned across
        survivors, completing on the last leg (striped-style fan-in) —
        the record job re-enters :meth:`on_user_job_complete` like any
        other user job, so retries and permanent-failure accounting are
        uniform.  No ``k`` survivors: fail fast into the retry path.
        """
        assert self._groups is not None and self.rtracker is not None
        array = self._array
        groups = self._groups
        targets = groups.reconstruct_targets(target, self._serving_up)
        now = self._sim.now
        if not targets:
            job = Job.for_request(request, on_complete=self.on_user_job_complete)
            job.failed = True
            if self._trace is not None:
                self._trace.emit(ev.REQUEST_FAIL, now, disk=target,
                                 internal=False, reason="group_unservable")
            self.on_user_job_complete(job)
            return job
        self.rtracker.reconstruct_reads += 1
        self.rtracker.reconstruct_legs += len(targets)
        if len(targets) == 1:
            # mirror (or k=1 parity): an ordinary redirect to the copy
            self.tracker.requests_redirected += 1
            if self._trace is not None:
                self._trace.emit(ev.REQUEST_REDIRECT, now,
                                 file=request.file_id,
                                 **{"from": target, "to": targets[0]})
            return array.submit_request(request, disk_id=targets[0],
                                        on_complete=self.on_user_job_complete)
        self.tracker.requests_redirected += 1
        if self._trace is not None:
            self._trace.emit(ev.REQUEST_RECONSTRUCT, now,
                             file=request.file_id, disk=target,
                             legs=len(targets))
        leg_mb = request.size_mb / len(targets)
        request.served_by = targets[0]
        record = Job.for_request(request)
        state = {"remaining": len(targets), "first_start": float("inf")}

        def on_leg_complete(leg: Job) -> None:
            if leg.failed:
                record.failed = True
            else:
                state["first_start"] = min(state["first_start"],
                                           leg.service_start)
            state["remaining"] -= 1
            if state["remaining"] == 0:
                if not record.failed:
                    request.service_start = state["first_start"]
                    request.completion_time = self._sim.now
                    record.completion_time = self._sim.now
                self.on_user_job_complete(record)

        for leg_disk in targets:
            array.submit_internal(leg_disk, leg_mb,
                                  on_complete=on_leg_complete)
        return record

    def on_user_job_complete(self, job: Job) -> None:
        if not job.failed:
            self._on_success(job)
            return
        request = job.request
        assert request is not None  # only user jobs carry this callback
        now = self._sim.now
        if (request.retries < self.config.max_retries
                and now - request.arrival_time < self.config.retry_timeout_s):
            request.retries += 1
            self.tracker.requests_retried += 1
            if self._trace is not None:
                self._trace.emit(ev.REQUEST_RETRY, now,
                                 file=request.file_id, attempt=request.retries)
            # re-enter through the policy's router (not a bare resubmit)
            # so striped fan-out, cache bookkeeping, and spin-up checks
            # all apply to the retry as they would to a fresh arrival
            self._sim.schedule(
                self.config.retry_backoff_s,
                (lambda req=request: self._policy.route(req)),
                priority=self._PRIO_RETRY)
            return
        self.tracker.requests_failed += 1
        self._on_permanent_failure(job)
