"""Fault accounting: the mutable in-run tracker and its frozen summary.

These live in ``repro.faults`` (not ``repro.experiments``) so the import
direction stays one-way: experiments consume fault results, the fault
layer never imports the experiments layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["FaultSummary", "FaultTracker"]


@dataclass(frozen=True, slots=True)
class FaultSummary:
    """Realized-reliability outcome of one fault-injected run.

    Frozen and built from plain types so it survives the pickle hop of
    the parallel sweep executor.
    """

    #: Disk failures that occurred during the run, as (disk_id, time_s)
    #: in occurrence order — the run's failure schedule.  Two runs with
    #: the same seed and workload must produce identical tuples.
    failure_schedule: tuple[tuple[int, float], ...]
    #: Rebuilds that completed before the run ended.
    rebuilds_completed: int
    #: User requests permanently failed (retries exhausted / timed out).
    requests_failed: int
    #: Resubmissions performed (one request may retry several times).
    requests_retried: int
    #: Requests served from a replica/cache copy because the primary was down.
    requests_redirected: int
    #: Failures that caught >= 1 file with no live redundant copy.
    data_loss_events: int
    #: Files unavailable (no live copy anywhere) summed over loss events.
    files_lost: int
    #: Energy attributed to rebuild I/O (active power x rebuild service time).
    rebuild_energy_j: float
    #: Summed per-disk out-of-service time (failure -> rebuild complete).
    downtime_s: float
    #: 1 - downtime / (n_disks * duration): fraction of disk-hours in service.
    availability: float

    @property
    def disk_failures(self) -> int:
        """Number of disk failures during the run."""
        return len(self.failure_schedule)

    def summary_row(self) -> dict[str, object]:
        """Flat dict for tabular reporting (merged into the result row)."""
        return {
            "failures": self.disk_failures,
            "availability_%": round(100.0 * self.availability, 4),
            "req_failed": self.requests_failed,
            "req_retried": self.requests_retried,
            "req_redirected": self.requests_redirected,
            "data_loss_events": self.data_loss_events,
            "files_lost": self.files_lost,
            "rebuild_kJ": round(self.rebuild_energy_j / 1e3, 2),
        }


@dataclass(slots=True)
class FaultTracker:
    """Mutable counters the injector updates as the run unfolds."""

    failure_schedule: list[tuple[int, float]] = field(default_factory=list)
    rebuilds_completed: int = 0
    requests_failed: int = 0
    requests_retried: int = 0
    requests_redirected: int = 0
    data_loss_events: int = 0
    files_lost: int = 0
    rebuild_energy_j: float = 0.0
    #: disk_id -> time it went down (removed when its rebuild completes).
    down_since: dict[int, float] = field(default_factory=dict)
    #: closed out-of-service intervals, summed.
    closed_downtime_s: float = 0.0

    def record_failure(self, disk_id: int, now: float) -> None:
        """A disk just failed at ``now``."""
        self.failure_schedule.append((disk_id, now))
        self.down_since[disk_id] = now

    def record_restored(self, disk_id: int, now: float) -> None:
        """``disk_id``'s rebuild completed at ``now``."""
        self.rebuilds_completed += 1
        started = self.down_since.pop(disk_id)
        self.closed_downtime_s += now - started

    def downtime_s(self, end_of_run: float) -> float:
        """Total out-of-service disk-seconds, open intervals clipped to
        ``end_of_run``."""
        open_s = sum(end_of_run - t for t in self.down_since.values())
        return self.closed_downtime_s + open_s

    def summarize(self, *, n_disks: int, duration_s: float) -> FaultSummary:
        """Freeze the counters into a picklable :class:`FaultSummary`."""
        downtime = self.downtime_s(duration_s)
        disk_seconds = n_disks * duration_s
        availability = 1.0 if disk_seconds <= 0.0 else max(
            0.0, 1.0 - downtime / disk_seconds)
        return FaultSummary(
            failure_schedule=tuple(self.failure_schedule),
            rebuilds_completed=self.rebuilds_completed,
            requests_failed=self.requests_failed,
            requests_retried=self.requests_retried,
            requests_redirected=self.requests_redirected,
            data_loss_events=self.data_loss_events,
            files_lost=self.files_lost,
            rebuild_energy_j=self.rebuild_energy_j,
            downtime_s=downtime,
            availability=availability,
        )
