"""The trace bus: structured event fan-out with a zero-cost off switch.

Instrumented layers (kernel, drives, array, policies, fault injector)
hold a reference to the simulation's bus — or ``None`` when observability
is off.  Every emission site is guarded by a single ``is not None``
check, so a run with no bus attached does no event construction, no
dict allocation, and no dispatch: the faults-off hot path stays
bit-identical to an uninstrumented build (asserted by the golden tests
and the throughput regression gate).

When a bus *is* attached, :meth:`TraceBus.emit` assigns a monotone
sequence number, builds a :class:`~repro.obs.events.TraceEvent`, and
forwards it to every subscriber in subscription order.  Determinism
contract: the only inputs are simulated time and the producers' payloads
— no wall-clock, no ids — so two runs of the same seeded configuration
emit byte-identical streams.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Iterable, Mapping, Optional

from repro.obs.events import TraceEvent
from repro.util.validation import require

__all__ = ["TraceBus"]

Subscriber = Callable[[TraceEvent], None]

IdMap = Callable[[int], int]


class TraceBus:
    """Fan-out of :class:`TraceEvent` records to subscribers.

    ``tags`` stamps constant fields into every payload (a shard worker
    tags each event with its shard index); ``id_maps`` rewrites integer
    id fields at emission time (the shard worker remaps local disk/file
    ids to global ones), keyed by payload field name.  Both default to
    off and cost nothing when unset; field order in the payload never
    affects the exported bytes (the exporter sorts keys).

    Examples
    --------
    >>> bus = TraceBus()
    >>> seen = []
    >>> bus.subscribe(seen.append)
    >>> bus.emit("engine.start", 0.0, policy="read")
    >>> seen[0].type, seen[0].data["policy"]
    ('engine.start', 'read')
    """

    __slots__ = ("_subscribers", "_seq", "counts", "_tags", "_id_maps")

    def __init__(self, *, tags: Optional[Mapping[str, object]] = None,
                 id_maps: Optional[Mapping[str, IdMap]] = None) -> None:
        self._subscribers: list[Subscriber] = []
        self._seq = 0
        #: Events emitted so far, by type (cheap always-on rollup).
        self.counts: Counter[str] = Counter()
        self._tags: Optional[dict[str, object]] = dict(tags) if tags else None
        # a sorted tuple of (field, map) pairs: deterministic application
        # order regardless of the mapping the caller handed in
        self._id_maps: Optional[tuple[tuple[str, IdMap], ...]] = (
            tuple(sorted(id_maps.items())) if id_maps else None)

    # ------------------------------------------------------------------
    # subscription management
    # ------------------------------------------------------------------
    def subscribe(self, subscriber: Subscriber) -> Subscriber:
        """Attach ``subscriber``; returns it (decorator-friendly)."""
        require(callable(subscriber), f"subscriber must be callable, got {subscriber!r}")
        self._subscribers.append(subscriber)
        return subscriber

    def unsubscribe(self, subscriber: Subscriber) -> None:
        """Detach ``subscriber``; raises ``ValueError`` when not attached."""
        self._subscribers.remove(subscriber)

    @property
    def subscriber_count(self) -> int:
        """Number of attached subscribers."""
        return len(self._subscribers)

    @property
    def events_emitted(self) -> int:
        """Total events emitted onto this bus."""
        return self._seq

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def emit(self, type_: str, time_: float, **data: object) -> None:
        """Emit one event; called only from sites that checked the bus
        is attached, so this never needs its own on/off branch."""
        seq = self._seq
        self._seq = seq + 1
        self.counts[type_] += 1
        if self._id_maps is not None:
            for field, id_map in self._id_maps:
                value = data.get(field)
                if value is not None:
                    data[field] = id_map(value)  # type: ignore[arg-type]
        if self._tags is not None:
            for key, value in self._tags.items():
                data.setdefault(key, value)
        event = TraceEvent(seq, time_, type_, data)
        for subscriber in self._subscribers:
            subscriber(event)

    def emit_many(self, events: Iterable[tuple[str, float, dict]]) -> None:
        """Bulk emission convenience for replays and tests."""
        for type_, time_, data in events:
            self.emit(type_, time_, **data)  # repro: allow[OBS001] forwarder: replayed events were taxonomy-checked at original emission
